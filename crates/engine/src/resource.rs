//! Bandwidth-limited servers with next-free-time queuing.

use crate::Cycle;

/// A bandwidth server: a shared facility that moves `bytes_per_cycle`
/// bytes of traffic per cycle, serializing overlapping requests.
///
/// `Resource` implements the classic *next-free-time* queuing model. A
/// request of `n` bytes arriving at time `t` begins service at
/// `max(t, next_free)`, occupies the server for `n / bytes_per_cycle`
/// cycles, and completes at the end of that occupancy. Requests that
/// arrive while the server is busy therefore see queuing delay — which is
/// exactly the phenomenon the MCM-GPU paper attributes the low-bandwidth
/// slowdowns to (§3.3.2: "increased queuing delays ... in the low
/// bandwidth scenarios").
///
/// Everything contended-for in the simulator is a `Resource`: inter-GPM
/// link segments, DRAM channels, cache banks, and SM instruction issue
/// slots (where "bytes" are issue slots instead).
///
/// Internal bookkeeping is in fractional cycles so that sub-cycle
/// occupancies accumulate correctly; completion times are rounded up to
/// whole cycles on return.
///
/// # Example
///
/// ```
/// use mcm_engine::{Cycle, Resource};
///
/// // A DRAM channel moving 32 bytes per cycle.
/// let mut chan = Resource::new("dram-ch0", 32.0);
/// assert_eq!(chan.service(Cycle::new(0), 128), Cycle::new(4));
/// // Arrives at cycle 2, but the channel is busy until 4.
/// assert_eq!(chan.service(Cycle::new(2), 128), Cycle::new(8));
/// assert_eq!(chan.total_bytes(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: &'static str,
    bytes_per_cycle: f64,
    /// Fractional-cycle time at which the server next becomes idle.
    next_free: f64,
    busy_cycles: f64,
    total_bytes: u64,
    requests: u64,
    queued_cycles: f64,
}

impl Resource {
    /// Creates a server with the given capacity in bytes per cycle.
    ///
    /// Use [`Resource::unlimited`] for a facility whose bandwidth should
    /// never constrain the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive.
    pub fn new(name: &'static str, bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle > 0.0,
            "resource {name:?} must have positive bandwidth"
        );
        Resource {
            name,
            bytes_per_cycle,
            next_free: 0.0,
            busy_cycles: 0.0,
            total_bytes: 0,
            requests: 0,
            queued_cycles: 0.0,
        }
    }

    /// Creates a server with effectively infinite bandwidth: requests
    /// complete instantly and never queue, but traffic is still counted.
    pub fn unlimited(name: &'static str) -> Self {
        Resource::new(name, f64::INFINITY)
    }

    /// Creates a server from a bandwidth expressed in GB/s at the 1 GHz
    /// core clock (1 GB/s = 1 byte/cycle).
    pub fn from_gbps(name: &'static str, gigabytes_per_second: f64) -> Self {
        Resource::new(name, gigabytes_per_second)
    }

    /// Submits a request of `bytes` arriving at `now`; returns the cycle
    /// at which the request finishes transiting this server.
    ///
    /// A zero-byte request completes immediately at `now` and is not
    /// counted.
    #[inline]
    pub fn service(&mut self, now: Cycle, bytes: u64) -> Cycle {
        // Multiplying the duration by exactly 1.0 is a bit-exact IEEE
        // identity, so the unstretched path stays cycle-identical.
        self.service_stretched(now, bytes, 1.0)
    }

    /// Like [`service`](Resource::service), but the occupancy is
    /// multiplied by `stretch` — the degraded-service primitive the
    /// fault layer uses to model a thermally throttled facility.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `stretch` is not a finite factor `>= 1.0`.
    #[inline]
    pub fn service_stretched(&mut self, now: Cycle, bytes: u64, stretch: f64) -> Cycle {
        debug_assert!(
            stretch.is_finite() && stretch >= 1.0,
            "stretch must be a finite factor >= 1.0, got {stretch}"
        );
        if bytes == 0 {
            return now;
        }
        let arrival = now.as_u64() as f64;
        let start = if self.next_free > arrival {
            self.queued_cycles += self.next_free - arrival;
            self.next_free
        } else {
            arrival
        };
        let duration = if self.bytes_per_cycle.is_infinite() {
            0.0
        } else {
            bytes as f64 / self.bytes_per_cycle * stretch
        };
        let end = start + duration;
        self.next_free = end;
        self.busy_cycles += duration;
        self.total_bytes += bytes;
        self.requests += 1;
        Cycle::new(end.ceil() as u64)
    }

    /// The earliest cycle at which a request arriving now would begin
    /// service.
    pub fn next_free(&self) -> Cycle {
        Cycle::new(self.next_free.ceil() as u64)
    }

    /// The server's capacity in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Total bytes that have transited the server.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of (non-empty) requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cumulative cycles requests spent waiting for the server.
    pub fn queued_cycles(&self) -> f64 {
        self.queued_cycles
    }

    /// Fraction of `elapsed` the server spent busy, in `[0, 1]` for any
    /// horizon that covers all submitted work.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == Cycle::ZERO {
            0.0
        } else {
            self.busy_cycles / elapsed.as_u64() as f64
        }
    }

    /// Achieved throughput in GB/s over `elapsed` (1 byte/cycle = 1 GB/s
    /// at the 1 GHz clock).
    pub fn achieved_gbps(&self, elapsed: Cycle) -> f64 {
        if elapsed == Cycle::ZERO {
            0.0
        } else {
            self.total_bytes as f64 / elapsed.as_u64() as f64
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets queue state and statistics, keeping the configured
    /// bandwidth.
    pub fn reset(&mut self) {
        self.next_free = 0.0;
        self.busy_cycles = 0.0;
        self.total_bytes = 0;
        self.requests = 0;
        self.queued_cycles = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_latency_is_bytes_over_bandwidth() {
        let mut r = Resource::new("r", 16.0);
        assert_eq!(r.service(Cycle::new(100), 64), Cycle::new(104));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = Resource::new("r", 8.0);
        let a = r.service(Cycle::new(0), 64); // 8 cycles
        let b = r.service(Cycle::new(0), 64); // queues behind a
        assert_eq!(a, Cycle::new(8));
        assert_eq!(b, Cycle::new(16));
        assert!(r.queued_cycles() >= 8.0);
    }

    #[test]
    fn idle_gap_resets_queuing() {
        let mut r = Resource::new("r", 8.0);
        r.service(Cycle::new(0), 64);
        // Arrives long after the first finished: no queuing.
        let done = r.service(Cycle::new(1000), 64);
        assert_eq!(done, Cycle::new(1008));
    }

    #[test]
    fn unlimited_resource_is_instant_but_counts() {
        let mut r = Resource::unlimited("xbar");
        assert_eq!(r.service(Cycle::new(7), 1 << 30), Cycle::new(7));
        assert_eq!(r.service(Cycle::new(7), 128), Cycle::new(7));
        assert_eq!(r.total_bytes(), (1 << 30) + 128);
        assert_eq!(r.utilization(Cycle::new(100)), 0.0);
    }

    #[test]
    fn zero_byte_request_is_free() {
        let mut r = Resource::new("r", 1.0);
        assert_eq!(r.service(Cycle::new(3), 0), Cycle::new(3));
        assert_eq!(r.requests(), 0);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn fractional_occupancy_accumulates() {
        let mut r = Resource::new("r", 3.0);
        // Each 1-byte request occupies 1/3 cycle; three of them fill one
        // cycle exactly.
        let mut last = Cycle::ZERO;
        for _ in 0..3 {
            last = r.service(Cycle::new(0), 1);
        }
        assert_eq!(last, Cycle::new(1));
        assert!((r.utilization(Cycle::new(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_throughput() {
        let mut r = Resource::new("r", 10.0);
        r.service(Cycle::new(0), 50); // busy 5 cycles
        assert!((r.utilization(Cycle::new(10)) - 0.5).abs() < 1e-9);
        assert!((r.achieved_gbps(Cycle::new(10)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn from_gbps_maps_one_to_one_at_1ghz() {
        let r = Resource::from_gbps("link", 768.0);
        assert!((r.bytes_per_cycle() - 768.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("r", 4.0);
        r.service(Cycle::new(0), 400);
        r.reset();
        assert_eq!(r.total_bytes(), 0);
        assert_eq!(r.next_free(), Cycle::ZERO);
        assert_eq!(r.service(Cycle::new(0), 4), Cycle::new(1));
    }

    #[test]
    #[should_panic(expected = "positive bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Resource::new("bad", 0.0);
    }

    #[test]
    fn stretched_service_takes_longer_and_queues() {
        let mut r = Resource::new("r", 16.0);
        // 64 bytes at ×2 occupy 8 cycles instead of 4.
        assert_eq!(r.service_stretched(Cycle::new(0), 64, 2.0), Cycle::new(8));
        // The stretched occupancy also delays the next request.
        assert_eq!(r.service(Cycle::new(0), 64), Cycle::new(12));
    }

    #[test]
    fn unit_stretch_matches_plain_service() {
        let mut a = Resource::new("a", 7.0);
        let mut b = Resource::new("b", 7.0);
        for i in 0..32u64 {
            let x = a.service(Cycle::new(i * 3), 13 + i);
            let y = b.service_stretched(Cycle::new(i * 3), 13 + i, 1.0);
            assert_eq!(x, y);
        }
        assert_eq!(a.queued_cycles(), b.queued_cycles());
    }
}
