//! Design-space exploration: the architect's view of one workload.
//!
//! Sweeps the two main MCM-GPU design levers — inter-GPM link bandwidth
//! and the L1.5/L2 capacity split — and prints how each point performs,
//! reproducing in miniature the §3.3/§5.1 methodology.
//!
//! ```text
//! cargo run --release --example design_space [workload-name]
//! ```

use mcm::gpu::{Simulator, SystemConfig};
use mcm::mem::cache::AllocFilter;
use mcm::workloads::suite;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Kmeans".to_string());
    let spec = suite::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .scaled(0.25);
    println!("workload: {spec}\n");

    // --- Lever 1: inter-GPM link bandwidth (paper §3.3.2, Fig. 4) ---
    println!("link-bandwidth sweep (baseline cache hierarchy):");
    println!(
        "{:>12} {:>12} {:>10} {:>11}",
        "link GB/s", "cycles", "slowdown", "ring TB/s"
    );
    let reference = Simulator::run(&SystemConfig::mcm_with_link(6144.0), &spec);
    for gbps in [6144.0, 3072.0, 1536.0, 768.0, 384.0] {
        let r = Simulator::run(&SystemConfig::mcm_with_link(gbps), &spec);
        println!(
            "{:>12.0} {:>12} {:>9.2}x {:>11.2}",
            gbps,
            r.cycles.as_u64(),
            r.cycles.as_u64() as f64 / reference.cycles.as_u64() as f64,
            r.inter_module_tbps()
        );
    }

    // --- Lever 2: the L1.5/L2 split and allocation policy (§5.1) ---
    println!("\nL1.5 design points (iso-transistor unless noted):");
    println!(
        "{:>28} {:>12} {:>9} {:>10} {:>10}",
        "hierarchy", "cycles", "speedup", "L1.5 hit%", "ring TB/s"
    );
    let base = Simulator::run(&SystemConfig::baseline_mcm(), &spec);
    let mut points = vec![(
        "no L1.5 (baseline)".to_string(),
        SystemConfig::baseline_mcm(),
    )];
    for mb in [8u64, 16] {
        for (label, filter) in [
            ("all-alloc", AllocFilter::All),
            ("remote-only", AllocFilter::RemoteOnly),
        ] {
            points.push((
                format!("{mb} MB {label}"),
                SystemConfig::mcm_with_l15(mb, filter),
            ));
        }
    }
    points.push((
        "32 MB remote-only (2x area)".to_string(),
        SystemConfig::mcm_with_l15_32mb(AllocFilter::RemoteOnly),
    ));
    for (label, cfg) in points {
        let r = Simulator::run(&cfg, &spec);
        println!(
            "{:>28} {:>12} {:>8.2}x {:>10.1} {:>10.2}",
            label,
            r.cycles.as_u64(),
            r.speedup_over(&base),
            r.l15.rate() * 100.0,
            r.inter_module_tbps()
        );
    }

    // --- Combined: the paper's final recipe (§5.4) ---
    let opt = Simulator::run(&SystemConfig::optimized_mcm(), &spec);
    println!(
        "\nfull recipe (8 MB remote-only L1.5 + distributed scheduling + first touch): \
         {:.2}x over baseline, {:.1}% of traffic local",
        opt.speedup_over(&base),
        opt.locality_rate() * 100.0
    );
}
