//! Benchmark harness for the MCM-GPU reproduction.
//!
//! [`figures`] contains one function per table and figure of the
//! paper's evaluation; [`harness`] provides the memoized runner and
//! text-table rendering they share. The `src/bin/` binaries are thin
//! wrappers — `cargo run -p mcm-bench --release --bin fig04_link_sensitivity`
//! regenerates Fig. 4, and `--bin reproduce` regenerates everything
//! into `results/`.
//!
//! Set `MCM_SCALE` (default 0.5) to trade run length for fidelity;
//! shapes are stable across scales.
//!
//! [`planner`] is the design-space exploration front end: it prices a
//! configuration grid with the calibrated analytical model
//! (`mcm_gpu::analytic`), prunes everything off the predicted Pareto
//! frontier, and confirms only the survivors with full simulation
//! (`cargo run -p mcm-bench --release --bin explore`).

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod planner;
pub mod resilience;
pub mod serve_backend;
