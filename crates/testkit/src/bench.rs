//! A wall-clock bench runner: warmup, N timed samples, median/p95.
//!
//! This replaces the `criterion` dependency for the workspace's
//! `harness = false` bench targets. It is deliberately simple — no
//! outlier rejection, no statistical tests — but batches fast closures
//! so sub-microsecond operations are measured against a ~millisecond
//! timer window rather than the timer's own overhead.
//!
//! ```no_run
//! use mcm_testkit::bench::Group;
//!
//! let mut g = Group::new("cache");
//! g.bench("access_hit", || 2 + 2);
//! ```

use std::time::Instant;

pub use std::hint::black_box;

/// Target wall-clock duration of one timed sample, in nanoseconds.
/// Fast closures are batched until a sample takes about this long.
const TARGET_SAMPLE_NS: f64 = 2_000_000.0;

/// The measured timings of one benchmark, in nanoseconds per call.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Group-qualified benchmark name (`group/bench`).
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Calls per timed sample (1 for slow closures).
    pub batch: u64,
    /// Number of timed samples.
    pub samples: u32,
}

impl Measurement {
    /// Calls per second implied by the median sample.
    ///
    /// # Panics
    ///
    /// Panics if `median_ns` is not a positive finite number — the
    /// runner clamps zero-duration samples (see [`nonzero_ns`]), so a
    /// non-positive median means the measurement was constructed by
    /// hand or corrupted, and any ratio built on it would be
    /// meaningless (a silent `inf`/`NaN` poisons every downstream
    /// geomean).
    pub fn ops_per_sec(&self) -> f64 {
        assert!(
            self.median_ns.is_finite() && self.median_ns > 0.0,
            "ops_per_sec on a non-positive median ({} ns) for {:?}",
            self.median_ns,
            self.name
        );
        1e9 / self.median_ns
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} median {:>10}  p95 {:>10}  min {:>10}  ({} samples x {} calls)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.p95_ns),
            fmt_ns(self.min_ns),
            self.samples,
            self.batch,
        )
    }
}

/// Clamps a measured duration to at least one nanosecond, warning
/// loudly the first time it fires. A coarse-grained clock (or a closure
/// the optimizer deleted) can report an elapsed time of exactly zero;
/// letting that through turns every per-call ratio and ops-per-second
/// figure downstream into `inf`.
fn nonzero_ns(elapsed_ns: f64, what: &str) -> f64 {
    if elapsed_ns > 0.0 {
        return elapsed_ns;
    }
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "mcm-testkit: zero-duration bench sample for {what:?} clamped to 1 ns \
             (timer too coarse for this closure; ratios would divide by zero)"
        );
    });
    1.0
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing sample settings, mirroring the
/// `criterion` group API the bench targets were written against.
#[derive(Debug)]
pub struct Group {
    name: String,
    warmup_samples: u32,
    samples: u32,
    results: Vec<Measurement>,
}

impl Group {
    /// Creates a group with default settings (2 warmup, 15 timed
    /// samples) and prints its header.
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            warmup_samples: 2,
            samples: 15,
            results: Vec::new(),
        }
    }

    /// Sets the number of timed samples (useful for slow end-to-end
    /// closures).
    pub fn sample_size(&mut self, samples: u32) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Measures `f`, prints one result line, and records it.
    ///
    /// The closure's return value is passed through [`black_box`] so
    /// the computation cannot be optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> &Measurement {
        // Calibrate: time a single call, then pick a batch size that
        // fills the target sample window.
        let t0 = Instant::now();
        black_box(f());
        let single_ns = (t0.elapsed().as_nanos() as f64).max(1.0);
        let batch = ((TARGET_SAMPLE_NS / single_ns) as u64).clamp(1, 50_000_000);

        for _ in 0..self.warmup_samples {
            for _ in 0..batch {
                black_box(f());
            }
        }
        let mut per_call: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                nonzero_ns(t.elapsed().as_nanos() as f64, name) / batch as f64
            })
            .collect();
        per_call.sort_by(|a, b| a.total_cmp(b));

        let m = Measurement {
            name: format!("{}/{name}", self.name),
            median_ns: quantile(&per_call, 0.5),
            p95_ns: quantile(&per_call, 0.95),
            min_ns: per_call[0],
            batch,
            samples: self.samples,
        };
        println!("{m}");
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Ends the group. Present for call-site symmetry with the
    /// criterion API; measurements are already printed as they finish.
    pub fn finish(&mut self) {}
}

/// Times a single call of `f` — no calibration pass, no warmup, no
/// batching — printing one result line and returning the closure's
/// output with the elapsed wall-clock seconds. For closures that
/// already run for seconds (whole-sweep comparisons, parallel-executor
/// speedup measurements) where [`Group::bench`]'s calibration call
/// would silently double the cost before the first timed sample.
pub fn bench_once<R, F: FnOnce() -> R>(name: &str, f: F) -> (R, f64) {
    let t = Instant::now();
    let out = black_box(f());
    let secs = nonzero_ns(t.elapsed().as_nanos() as f64, name) / 1e9;
    println!("{name:<40} {} (single shot)", fmt_ns(secs * 1e9));
    (out, secs)
}

/// The q-quantile of an ascending-sorted sample set (nearest rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample set");
    let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_ordered_quantiles() {
        let mut g = Group::new("selftest");
        g.sample_size(5);
        let m = g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.p95_ns);
        assert!(m.min_ns > 0.0);
        assert!(m.batch >= 1);
    }

    #[test]
    fn fast_closures_are_batched() {
        let mut g = Group::new("selftest_batch");
        g.sample_size(3);
        let m = g.bench("nop", || 1u64);
        assert!(m.batch > 1, "a ~1ns closure must batch, got {}", m.batch);
    }

    #[test]
    fn bench_once_returns_the_result_and_a_positive_time() {
        let (value, secs) = bench_once("selftest_once", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(value, (0..1000u64).sum());
        assert!(secs > 0.0);
    }

    #[test]
    fn zero_duration_samples_are_clamped() {
        // Regression: a coarse timer reading of exactly 0 ns used to
        // flow straight into per-call medians and ops-per-sec ratios.
        assert_eq!(nonzero_ns(0.0, "zero"), 1.0);
        assert_eq!(nonzero_ns(-3.0, "negative"), 1.0);
        assert_eq!(nonzero_ns(42.0, "normal"), 42.0);
        let (_, secs) = bench_once("selftest_instant", || ());
        assert!(secs > 0.0, "bench_once must never report zero seconds");
    }

    #[test]
    fn ops_per_sec_inverts_the_median() {
        let m = Measurement {
            name: "t/x".into(),
            median_ns: 100.0,
            p95_ns: 120.0,
            min_ns: 90.0,
            batch: 1,
            samples: 3,
        };
        assert!((m.ops_per_sec() - 1e7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "ops_per_sec on a non-positive median")]
    fn ops_per_sec_panics_loudly_on_zero_median() {
        let m = Measurement {
            name: "t/zero".into(),
            median_ns: 0.0,
            p95_ns: 0.0,
            min_ns: 0.0,
            batch: 1,
            samples: 3,
        };
        let _ = m.ops_per_sec();
    }

    #[test]
    fn quantile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn ns_formatting_scales_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 us");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }
}
