//! Model descriptors: the distilled, numeric view of a workload that
//! analytical performance models read.
//!
//! A [`crate::spec::WorkloadSpec`] describes a benchmark operationally —
//! enough to *generate* its address stream. An analytical model (such as
//! `mcm_gpu::analytic`) needs the same facts in closed form: how many
//! memory transactions one warp instruction implies, how the accesses
//! split across reuse regions, and how large each region is in cache
//! lines. [`ModelDescriptor`] precomputes exactly that, so a model never
//! re-derives stream mechanics (and silently diverges from them).

use crate::spec::{Category, WorkloadSpec};

/// How one workload's memory accesses partition across target regions,
/// as fractions of all memory accesses (the four fields plus
/// [`AccessMix::own_stream`] sum to 1).
///
/// The split mirrors [`crate::spec::LocalityProfile`]: own-slice
/// accesses either stream sequentially or revisit the reuse window;
/// the rest touch a neighbor CTA's slice, the hot shared region, or the
/// whole footprint uniformly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessMix {
    /// Own-slice sequential (streaming) accesses: no temporal reuse.
    pub own_stream: f64,
    /// Own-slice temporal-reuse accesses (revisit the reuse window).
    pub own_reuse: f64,
    /// Accesses to an adjacent CTA's slice (§5.2's inter-CTA locality).
    pub neighbor: f64,
    /// Accesses to the hot shared region (cacheable, never localizable).
    pub shared: f64,
    /// Uniform whole-footprint accesses (neither cacheable nor
    /// localizable).
    pub cold: f64,
}

impl AccessMix {
    /// Fraction of accesses with *temporal* reuse a cache can capture
    /// (everything except streaming and cold-uniform traffic).
    pub fn cacheable(&self) -> f64 {
        self.own_reuse + self.neighbor + self.shared
    }
}

/// The closed-form facts of one workload that a first-order analytical
/// model consumes. All region sizes are in 128-byte cache lines; all
/// rates are per warp instruction or per memory access as documented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelDescriptor {
    /// Reporting / calibration category.
    pub category: Category,
    /// Memory operations per warp instruction (`mem_ratio`).
    pub mem_per_inst: f64,
    /// Line transactions per memory operation once divergent gathers
    /// are expanded (1.0 for fully coalesced code).
    pub txns_per_mem: f64,
    /// Issue slots one warp instruction costs (divergent replays each
    /// cost a slot): `1 + mem_per_inst * (txns_per_mem - 1)`.
    pub issue_slots_per_inst: f64,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// Access split across reuse regions.
    pub mix: AccessMix,
    /// Temporal-reuse window per CTA, in lines.
    pub reuse_window_lines: f64,
    /// Hot shared region size, in lines.
    pub shared_region_lines: f64,
    /// Whole footprint, in lines.
    pub footprint_lines: f64,
    /// Warp instructions per warp per kernel launch — the *scaled*
    /// count when the spec came from [`WorkloadSpec::scaled`], so a
    /// model sees the same cache-warmup horizon the simulator runs.
    pub insts_per_warp: f64,
    /// CTAs per kernel launch.
    pub ctas: f64,
    /// Warps per CTA.
    pub warps_per_cta: f64,
    /// Total warps per kernel launch.
    pub total_warps: f64,
    /// Kernel launches (cross-kernel locality exists only above 1).
    pub kernel_iters: u32,
    /// Per-CTA work imbalance in `[0, 1]`.
    pub imbalance: f64,
}

impl WorkloadSpec {
    /// Distills this spec into the closed-form quantities analytical
    /// models read. Pure arithmetic over the spec's fields — calling it
    /// in a scoring loop costs nanoseconds.
    pub fn descriptor(&self) -> ModelDescriptor {
        let l = &self.locality;
        let own = (1.0 - l.neighbor_frac - l.shared_frac - l.cold_shared_frac).max(0.0);
        let mix = AccessMix {
            own_stream: own * l.streaming,
            own_reuse: own * (1.0 - l.streaming),
            neighbor: l.neighbor_frac,
            shared: l.shared_frac,
            cold: l.cold_shared_frac,
        };
        let txns_per_mem = match l.divergence {
            Some(d) => 1.0 + d.frac * f64::from(d.degree - 1),
            None => 1.0,
        };
        let footprint_lines = self.footprint_lines() as f64;
        ModelDescriptor {
            category: self.category,
            mem_per_inst: self.mem_ratio,
            txns_per_mem,
            issue_slots_per_inst: 1.0 + self.mem_ratio * (txns_per_mem - 1.0),
            write_frac: self.write_frac,
            mix,
            reuse_window_lines: f64::from(l.reuse_window_lines),
            shared_region_lines: (footprint_lines * l.shared_region_frac).max(1.0),
            footprint_lines,
            insts_per_warp: f64::from(self.insts_per_warp),
            ctas: f64::from(self.ctas),
            warps_per_cta: f64::from(self.warps_per_cta),
            total_warps: self.total_warps() as f64,
            kernel_iters: self.kernel_iters,
            imbalance: self.imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn mix_fractions_partition_the_accesses() {
        for spec in suite::suite() {
            let d = spec.descriptor();
            let sum =
                d.mix.own_stream + d.mix.own_reuse + d.mix.neighbor + d.mix.shared + d.mix.cold;
            assert!((sum - 1.0).abs() < 1e-9, "{}: mix sums to {sum}", spec.name);
            for f in [
                d.mix.own_stream,
                d.mix.own_reuse,
                d.mix.neighbor,
                d.mix.shared,
                d.mix.cold,
            ] {
                assert!((0.0..=1.0).contains(&f), "{}: fraction {f}", spec.name);
            }
        }
    }

    #[test]
    fn divergence_expands_transactions() {
        let mut spec = WorkloadSpec::template("t");
        assert_eq!(spec.descriptor().txns_per_mem, 1.0);
        spec.locality = spec.locality.with_divergence(0.5, 5);
        let d = spec.descriptor();
        // Half the memory ops issue 5 transactions: 0.5*1 + 0.5*5 = 3.
        assert!((d.txns_per_mem - 3.0).abs() < 1e-12);
        assert!((d.issue_slots_per_inst - (1.0 + 0.3 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn region_sizes_are_positive_lines() {
        for spec in suite::suite() {
            let d = spec.descriptor();
            assert!(d.reuse_window_lines >= 1.0, "{}", spec.name);
            assert!(d.shared_region_lines >= 1.0, "{}", spec.name);
            assert!(d.footprint_lines >= 1.0, "{}", spec.name);
            assert!(d.total_warps >= 1.0, "{}", spec.name);
        }
    }

    #[test]
    fn descriptor_tracks_the_spec() {
        let spec = suite::by_name("Stream").unwrap();
        let d = spec.descriptor();
        assert_eq!(d.category, spec.category);
        assert_eq!(d.mem_per_inst, spec.mem_ratio);
        assert_eq!(d.write_frac, spec.write_frac);
        assert_eq!(d.kernel_iters, spec.kernel_iters);
        assert_eq!(d.total_warps, spec.total_warps() as f64);
    }
}
