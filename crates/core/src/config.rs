//! System configurations: topologies, cache hierarchies, and the
//! presets for every machine the paper evaluates.

use mcm_engine::rng::StableHasher;
use mcm_engine::Cycle;
use mcm_interconnect::energy::Tier;
use mcm_interconnect::mesh::NetworkKind;
use mcm_mem::cache::AllocFilter;
use mcm_mem::page::PlacementPolicy;
use mcm_sm::{SchedulerPolicy, SmConfig};

/// Bytes in one mebibyte.
pub const MIB: u64 = 1 << 20;
/// Bytes in one kibibyte.
pub const KIB: u64 = 1 << 10;

/// The physical organization of the GPU: how many modules (GPMs or
/// discrete GPUs), how they are linked, and at what energy tier.
///
/// A monolithic GPU is the 1-module degenerate case: no inter-module
/// links, everything local.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Number of modules (GPMs in an MCM-GPU, GPUs in a multi-GPU).
    pub modules: u8,
    /// SMs per module.
    pub sms_per_module: u32,
    /// Bidirectional bandwidth of one inter-module link in GB/s (the
    /// paper's Table 3 "768 GB/s per link"); each direction carries
    /// half.
    pub link_gbps: f64,
    /// Latency of one inter-module hop, in cycles (paper §3.2: 32 for
    /// on-package GRS).
    pub hop_cycles: u64,
    /// Energy tier of the inter-module links.
    pub link_tier: Tier,
    /// Inter-module network topology (§3.2 uses a ring; the
    /// fully-connected alternative explores the same wiring budget
    /// spent on direct links).
    pub network: NetworkKind,
}

impl Topology {
    /// Total SM count.
    pub fn total_sms(&self) -> u32 {
        u32::from(self.modules) * self.sms_per_module
    }

    /// A single-die GPU of `sms` SMs.
    pub fn monolithic(sms: u32) -> Self {
        Topology {
            modules: 1,
            sms_per_module: sms,
            // Irrelevant for one module, but must be positive.
            link_gbps: 1.0,
            hop_cycles: 0,
            link_tier: Tier::Chip,
            network: NetworkKind::Ring,
        }
    }

    /// The paper's 4-GPM on-package organization with the given GRS
    /// link bandwidth.
    pub fn mcm(link_gbps: f64) -> Self {
        Topology {
            modules: 4,
            sms_per_module: 64,
            link_gbps,
            hop_cycles: 32,
            link_tier: Tier::Package,
            network: NetworkKind::Ring,
        }
    }

    /// The §6 multi-GPU organization: two maximally sized 128-SM GPUs
    /// joined by next-generation on-board links (256 GB/s aggregate,
    /// i.e. 128 GB/s per direction) with a board-class hop latency.
    pub fn multi_gpu() -> Self {
        Topology {
            modules: 2,
            sms_per_module: 128,
            link_gbps: 256.0,
            // On-board SerDes + protocol stack: several hundred
            // nanoseconds each way, an order worse than the on-package
            // GRS hop (Table 2's qualitative "High" overhead).
            hop_cycles: 120,
            link_tier: Tier::Board,
            network: NetworkKind::Ring,
        }
    }
}

/// Cache capacities and policies, expressed as machine totals (the
/// paper's convention: "16MB total L2", "8MB L1.5").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheHierarchy {
    /// Per-SM L1 data cache capacity in bytes (Table 3: 128 KB).
    pub l1_bytes_per_sm: u64,
    /// Total GPM-side L1.5 capacity in bytes across all modules; zero
    /// disables the level (the baseline).
    pub l15_bytes_total: u64,
    /// L1.5 allocation filter (§5.1.2 settles on remote-only).
    pub l15_filter: AllocFilter,
    /// Total memory-side L2 capacity in bytes across all partitions.
    pub l2_bytes_total: u64,
}

impl CacheHierarchy {
    /// The baseline hierarchy: 128 KB L1 per SM, no L1.5, 16 MB L2.
    pub fn baseline() -> Self {
        CacheHierarchy {
            l1_bytes_per_sm: 128 * KIB,
            l15_bytes_total: 0,
            l15_filter: AllocFilter::RemoteOnly,
            l2_bytes_total: 16 * MIB,
        }
    }

    /// An iso-transistor rebalance moving `l15_mb` of the 16 MB L2 into
    /// L1.5 caches (§5.1.2). Moving all 16 MB keeps the paper's vestigial
    /// 32 KB per-partition L2 for atomics.
    pub fn rebalanced(l15_mb: u64, filter: AllocFilter, modules: u8) -> Self {
        CacheHierarchy::rebalanced_from(16 * MIB, l15_mb * MIB, filter, modules)
    }

    /// Like [`CacheHierarchy::rebalanced`] for an arbitrary total cache
    /// budget in bytes (scaled-down machines in tests, design
    /// exploration): `l15_bytes` of `total_l2_bytes` move to the L1.5;
    /// moving everything keeps a vestigial 32 KB per partition.
    pub fn rebalanced_from(
        total_l2_bytes: u64,
        l15_bytes: u64,
        filter: AllocFilter,
        modules: u8,
    ) -> Self {
        let l2 = if l15_bytes >= total_l2_bytes {
            32 * KIB * u64::from(modules)
        } else {
            total_l2_bytes - l15_bytes
        };
        CacheHierarchy {
            l1_bytes_per_sm: 128 * KIB,
            l15_bytes_total: l15_bytes,
            l15_filter: filter,
            l2_bytes_total: l2,
        }
    }
}

/// One complete machine configuration: everything [`crate::Simulator`]
/// needs to build and time a system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Human-readable configuration name used in reports.
    pub name: String,
    /// Physical organization.
    pub topology: Topology,
    /// Cache capacities and policies.
    pub caches: CacheHierarchy,
    /// Aggregate DRAM bandwidth in GB/s (Table 3: 3 TB/s), split evenly
    /// across per-module partitions.
    pub dram_total_gbps: f64,
    /// DRAM access latency in nanoseconds (Table 3: 100 ns).
    pub dram_latency_ns: u64,
    /// Page placement policy (§3.2 interleaved baseline, §5.3 first
    /// touch).
    pub placement: PlacementPolicy,
    /// CTA scheduling policy (§3.2 centralized baseline, §5.2
    /// distributed).
    pub scheduler: SchedulerPolicy,
    /// Granularity at which the page-granular placement policies
    /// operate, in bytes (the GPU driver's allocation granularity;
    /// 64 KiB by default).
    pub ft_page_bytes: u64,
    /// Per-SM microarchitecture.
    pub sm: SmConfig,
}

// Grid executors move configurations, workloads, and reports across
// worker threads; keep that a compile-time guarantee rather than an
// accident of today's field types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SystemConfig>();
    assert_send_sync::<Topology>();
    assert_send_sync::<CacheHierarchy>();
};

impl SystemConfig {
    /// DRAM bandwidth of one module's local partition.
    pub fn dram_gbps_per_module(&self) -> f64 {
        self.dram_total_gbps / f64::from(self.topology.modules)
    }

    /// A stable 64-bit fingerprint over **every** field of the
    /// configuration — name, topology, caches, bandwidths, policies,
    /// and SM microarchitecture. Two configurations fingerprint equally
    /// iff they would simulate identically *and* report under the same
    /// name, so memo caches and artifact stems can key on this instead
    /// of the display name alone (two presets tweaked apart but left
    /// sharing a name no longer alias).
    ///
    /// The hash is [`StableHasher`] (FNV-1a): identical across runs,
    /// builds, and machines, making it safe to embed in golden-compared
    /// artifact filenames.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(&self.name);
        h.write_u8(self.topology.modules);
        h.write_u32(self.topology.sms_per_module);
        h.write_f64(self.topology.link_gbps);
        h.write_u64(self.topology.hop_cycles);
        h.write_u8(match self.topology.link_tier {
            Tier::Chip => 0,
            Tier::Package => 1,
            Tier::Board => 2,
            Tier::System => 3,
        });
        h.write_u8(match self.topology.network {
            NetworkKind::Ring => 0,
            NetworkKind::FullyConnected => 1,
        });
        h.write_u64(self.caches.l1_bytes_per_sm);
        h.write_u64(self.caches.l15_bytes_total);
        h.write_u8(match self.caches.l15_filter {
            AllocFilter::All => 0,
            AllocFilter::RemoteOnly => 1,
            AllocFilter::LocalOnly => 2,
            AllocFilter::Adaptive => 3,
        });
        h.write_u64(self.caches.l2_bytes_total);
        h.write_f64(self.dram_total_gbps);
        h.write_u64(self.dram_latency_ns);
        h.write_u8(match self.placement {
            PlacementPolicy::Interleaved => 0,
            PlacementPolicy::FirstTouch => 1,
            PlacementPolicy::PageRoundRobin => 2,
        });
        match self.scheduler {
            SchedulerPolicy::Centralized => h.write_u8(0),
            SchedulerPolicy::Distributed => h.write_u8(1),
            SchedulerPolicy::Chunked { group } => {
                h.write_u8(2);
                h.write_u32(group);
            }
            SchedulerPolicy::Dynamic { group } => {
                h.write_u8(3);
                h.write_u32(group);
            }
        }
        h.write_u64(self.ft_page_bytes);
        h.write_u32(self.sm.max_warps);
        h.write_f64(self.sm.issue_ipc);
        h.write_u64(self.sm.mshr_entries as u64);
        h.write_u32(self.sm.mlp_per_warp);
        h.finish()
    }

    /// DRAM latency as cycles at the 1 GHz core clock.
    pub fn dram_latency(&self) -> Cycle {
        Cycle::from_ns(self.dram_latency_ns)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.topology.modules == 0 || self.topology.sms_per_module == 0 {
            return Err("topology must have modules and SMs".into());
        }
        if !self.dram_total_gbps.is_finite() || self.dram_total_gbps <= 0.0 {
            return Err(format!(
                "DRAM bandwidth must be finite and positive, got {}",
                self.dram_total_gbps
            ));
        }
        // The link fields must be sane even for a monolithic machine (a
        // NaN would poison any later multi-module derivation of the
        // config), and a multi-module machine with free infinite links
        // and zero hop latency is a degenerate non-machine.
        if !self.topology.link_gbps.is_finite() || self.topology.link_gbps <= 0.0 {
            return Err(format!(
                "link bandwidth must be finite and positive, got {}",
                self.topology.link_gbps
            ));
        }
        if self.topology.modules > 1
            && self.topology.hop_cycles == 0
            && self.topology.link_gbps >= 1e9
        {
            return Err("multi-module links need either hop latency or finite bandwidth".into());
        }
        if !self.sm.issue_ipc.is_finite() || self.sm.issue_ipc <= 0.0 {
            return Err(format!(
                "SM issue rate must be finite and positive, got {}",
                self.sm.issue_ipc
            ));
        }
        if self.caches.l1_bytes_per_sm == 0 {
            return Err("SMs need an L1 (the model assumes one)".into());
        }
        if self.caches.l2_bytes_total == 0 {
            return Err("partitions need a (possibly tiny) L2".into());
        }
        if self.ft_page_bytes < mcm_mem::addr::LINE_BYTES {
            return Err("placement pages must hold at least one line".into());
        }
        Ok(())
    }

    /// Validates an explicit shard-count request against this
    /// configuration, over and above [`SystemConfig::validate`].
    ///
    /// The environment path (`MCM_SHARDS`) deliberately *clamps* instead
    /// — one knob value must work across a whole sweep of machines — via
    /// [`crate::effective_shards`]. This is the loud variant for callers
    /// who picked a shard count for one specific machine and want a
    /// mistake rejected, not silently degraded.
    ///
    /// # Errors
    ///
    /// Returns a named description of the first violated constraint:
    /// zero shards, more shards than modules (a shard owns at least one
    /// whole GPM), or multi-shard execution on a zero-lookahead fabric
    /// (`hop_cycles == 0` leaves no conservative window to run shards
    /// concurrently in).
    pub fn validate_shards(&self, shards: usize) -> Result<(), String> {
        self.validate()?;
        if shards == 0 {
            return Err("shard count must be at least 1 (got 0)".into());
        }
        let modules = usize::from(self.topology.modules);
        if shards > modules {
            return Err(format!(
                "shard count {shards} exceeds the {modules} module(s) of '{}': \
                 each shard must own at least one whole module",
                self.name
            ));
        }
        if shards > 1 && self.topology.hop_cycles == 0 {
            return Err(format!(
                "cannot run '{}' with {shards} shards: zero inter-module hop \
                 latency leaves no conservative lookahead window",
                self.name
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Presets: every machine the paper evaluates.
    // ------------------------------------------------------------------

    /// The baseline MCM-GPU of Table 3: 4 GPMs × 64 SMs, 768 GB/s GRS
    /// links, 16 MB L2, 3 TB/s DRAM, centralized scheduling, fine-grain
    /// interleaved placement, no L1.5.
    pub fn baseline_mcm() -> Self {
        SystemConfig {
            name: "MCM-GPU baseline (768 GB/s)".into(),
            topology: Topology::mcm(768.0),
            caches: CacheHierarchy::baseline(),
            dram_total_gbps: 3072.0,
            dram_latency_ns: 100,
            placement: PlacementPolicy::Interleaved,
            scheduler: SchedulerPolicy::Centralized,
            ft_page_bytes: 64 * KIB,
            sm: SmConfig::pascal_like(),
        }
    }

    /// A 256-SM MCM-GPU partitioned into `gpms` modules (2x128, 4x64,
    /// 8x32, ...) with the Table 3 link budget per link — the "at least
    /// two GPMs" design space §3.2 opens.
    ///
    /// # Panics
    ///
    /// Panics unless `gpms` divides 256.
    pub fn mcm_n_gpms(gpms: u8) -> Self {
        assert!(
            gpms > 0 && 256 % u32::from(gpms) == 0,
            "GPM count must divide 256"
        );
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.name = format!("MCM-GPU baseline ({gpms} GPMs)");
        cfg.topology.modules = gpms;
        cfg.topology.sms_per_module = 256 / u32::from(gpms);
        cfg
    }

    /// The baseline with a different inter-GPM link bandwidth — the
    /// Fig. 4 sweep.
    pub fn mcm_with_link(link_gbps: f64) -> Self {
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.name = format!("MCM-GPU ({link_gbps:.0} GB/s links)");
        cfg.topology.link_gbps = link_gbps;
        cfg
    }

    /// Baseline plus an iso-transistor L1.5 of `l15_mb` MB total with
    /// the given allocation filter — the Fig. 6 design-space points.
    pub fn mcm_with_l15(l15_mb: u64, filter: AllocFilter) -> Self {
        let mut cfg = SystemConfig::baseline_mcm();
        let policy = match filter {
            AllocFilter::RemoteOnly => "remote-only",
            AllocFilter::All => "all-alloc",
            AllocFilter::LocalOnly => "local-only",
            AllocFilter::Adaptive => "adaptive",
        };
        cfg.name = format!("MCM-GPU + {l15_mb} MB {policy} L1.5");
        cfg.caches = CacheHierarchy::rebalanced(l15_mb, filter, cfg.topology.modules);
        cfg
    }

    /// The non-iso-transistor 32 MB L1.5 of Fig. 6 (adds 16 MB of
    /// transistors on top of moving the entire L2).
    pub fn mcm_with_l15_32mb(filter: AllocFilter) -> Self {
        let mut cfg = SystemConfig::mcm_with_l15(32, filter);
        cfg.caches.l15_bytes_total = 32 * MIB;
        cfg.caches.l2_bytes_total = 32 * KIB * u64::from(cfg.topology.modules);
        cfg
    }

    /// Baseline + 16 MB remote-only L1.5 + distributed CTA scheduling
    /// (the Fig. 9/10 configuration).
    pub fn mcm_l15_ds() -> Self {
        let mut cfg = SystemConfig::mcm_with_l15(16, AllocFilter::RemoteOnly);
        cfg.name = "MCM-GPU + 16 MB RO L1.5 + DS".into();
        cfg.scheduler = SchedulerPolicy::Distributed;
        cfg
    }

    /// The fully optimized MCM-GPU (§5.3, Fig. 13's best variant):
    /// 8 MB remote-only L1.5 + 8 MB L2 + distributed scheduling +
    /// first-touch placement.
    pub fn optimized_mcm() -> Self {
        let mut cfg = SystemConfig::mcm_with_l15(8, AllocFilter::RemoteOnly);
        cfg.name = "MCM-GPU optimized (8 MB RO L1.5 + DS + FT)".into();
        cfg.scheduler = SchedulerPolicy::Distributed;
        cfg.placement = PlacementPolicy::FirstTouch;
        cfg
    }

    /// The optimized MCM-GPU with the §5.4 *dynamic* CTA scheduler the
    /// paper leaves to future work: contiguous groups of `group` CTAs
    /// with whole-group stealing.
    pub fn optimized_mcm_dynamic(group: u32) -> Self {
        let mut cfg = SystemConfig::optimized_mcm();
        cfg.name = format!("MCM-GPU optimized + dynamic scheduler (group {group})");
        cfg.scheduler = SchedulerPolicy::Dynamic { group };
        cfg
    }

    /// The optimized MCM-GPU with finer contiguous CTA groups but no
    /// stealing (§5.4's granularity observation).
    pub fn optimized_mcm_chunked(group: u32) -> Self {
        let mut cfg = SystemConfig::optimized_mcm();
        cfg.name = format!("MCM-GPU optimized + chunked scheduler (group {group})");
        cfg.scheduler = SchedulerPolicy::Chunked { group };
        cfg
    }

    /// The optimized MCM-GPU with the same package wiring budget spent
    /// on a fully connected inter-GPM fabric instead of a ring (§3.2's
    /// out-of-scope topology exploration).
    pub fn optimized_mcm_fully_connected() -> Self {
        let mut cfg = SystemConfig::optimized_mcm();
        cfg.name = "MCM-GPU optimized (fully connected fabric)".into();
        cfg.topology.network = NetworkKind::FullyConnected;
        cfg
    }

    /// The Fig. 13 alternative: FT + DS with the 16 MB L1.5 (only 32 KB
    /// of L2 per partition left) — worse than the 8/8 split.
    pub fn optimized_mcm_16mb_l15() -> Self {
        let mut cfg = SystemConfig::mcm_with_l15(16, AllocFilter::RemoteOnly);
        cfg.name = "MCM-GPU 16 MB RO L1.5 + DS + FT".into();
        cfg.scheduler = SchedulerPolicy::Distributed;
        cfg.placement = PlacementPolicy::FirstTouch;
        cfg
    }

    /// A monolithic single-die GPU of `sms` SMs with L2 and DRAM
    /// bandwidth scaled proportionally (Fig. 2's methodology: 384 GB/s
    /// and 2 MB L2 per 32 SMs). Buildable up to 128 SMs; larger counts
    /// are the paper's hypothetical comparison points.
    pub fn monolithic(sms: u32) -> Self {
        let units = f64::from(sms) / 32.0;
        SystemConfig {
            name: format!("Monolithic {sms}-SM GPU"),
            topology: Topology::monolithic(sms),
            caches: CacheHierarchy {
                l1_bytes_per_sm: 128 * KIB,
                l15_bytes_total: 0,
                l15_filter: AllocFilter::RemoteOnly,
                l2_bytes_total: ((units * 2.0 * MIB as f64) as u64).max(512 * KIB),
            },
            dram_total_gbps: 384.0 * units,
            dram_latency_ns: 100,
            placement: PlacementPolicy::Interleaved,
            scheduler: SchedulerPolicy::Centralized,
            ft_page_bytes: 64 * KIB,
            sm: SmConfig::pascal_like(),
        }
    }

    /// The largest buildable monolithic GPU (128 SMs, §2.1's reticle
    /// assumption).
    pub fn largest_buildable_monolithic() -> Self {
        let mut cfg = SystemConfig::monolithic(128);
        cfg.name = "Monolithic 128-SM GPU (largest buildable)".into();
        cfg
    }

    /// The hypothetical, unbuildable 256-SM monolithic GPU the paper
    /// compares against (within-10% target).
    pub fn hypothetical_monolithic_256() -> Self {
        let mut cfg = SystemConfig::monolithic(256);
        cfg.name = "Monolithic 256-SM GPU (unbuildable)".into();
        cfg
    }

    /// The §6 baseline multi-GPU: 2 × 128-SM GPUs, 1.5 TB/s DRAM and
    /// 8 MB L2 each, 256 GB/s aggregate board links, with distributed
    /// scheduling and first-touch placement applied (as §6.1 specifies).
    pub fn multi_gpu_baseline() -> Self {
        SystemConfig {
            name: "Multi-GPU baseline (2x128 SM)".into(),
            topology: Topology::multi_gpu(),
            caches: CacheHierarchy::baseline(),
            dram_total_gbps: 3072.0,
            dram_latency_ns: 100,
            placement: PlacementPolicy::FirstTouch,
            scheduler: SchedulerPolicy::Distributed,
            ft_page_bytes: 64 * KIB,
            sm: SmConfig::pascal_like(),
        }
    }

    /// The §6 optimized multi-GPU: baseline plus GPU-side remote caches
    /// (half the L2 capacity moved to remote-only L1.5s).
    pub fn multi_gpu_optimized() -> Self {
        let mut cfg = SystemConfig::multi_gpu_baseline();
        cfg.name = "Multi-GPU optimized (+ remote cache)".into();
        cfg.caches = CacheHierarchy::rebalanced(8, AllocFilter::RemoteOnly, cfg.topology.modules);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        let presets = [
            SystemConfig::baseline_mcm(),
            SystemConfig::mcm_with_link(384.0),
            SystemConfig::mcm_with_link(6144.0),
            SystemConfig::mcm_with_l15(8, AllocFilter::RemoteOnly),
            SystemConfig::mcm_with_l15(16, AllocFilter::All),
            SystemConfig::mcm_with_l15_32mb(AllocFilter::RemoteOnly),
            SystemConfig::mcm_l15_ds(),
            SystemConfig::optimized_mcm(),
            SystemConfig::optimized_mcm_16mb_l15(),
            SystemConfig::monolithic(32),
            SystemConfig::largest_buildable_monolithic(),
            SystemConfig::hypothetical_monolithic_256(),
            SystemConfig::multi_gpu_baseline(),
            SystemConfig::multi_gpu_optimized(),
            SystemConfig::mcm_n_gpms(2),
            SystemConfig::mcm_n_gpms(8),
            SystemConfig::optimized_mcm_dynamic(8),
            SystemConfig::optimized_mcm_chunked(32),
            SystemConfig::optimized_mcm_fully_connected(),
        ];
        for p in presets {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn baseline_matches_table3() {
        let cfg = SystemConfig::baseline_mcm();
        assert_eq!(cfg.topology.modules, 4);
        assert_eq!(cfg.topology.total_sms(), 256);
        assert_eq!(cfg.topology.link_gbps, 768.0);
        assert_eq!(cfg.topology.hop_cycles, 32);
        assert_eq!(cfg.caches.l1_bytes_per_sm, 128 * KIB);
        assert_eq!(cfg.caches.l2_bytes_total, 16 * MIB);
        assert_eq!(cfg.caches.l15_bytes_total, 0);
        assert_eq!(cfg.dram_total_gbps, 3072.0);
        assert_eq!(cfg.dram_latency_ns, 100);
        assert_eq!(cfg.sm.max_warps, 64);
        assert_eq!(cfg.scheduler, SchedulerPolicy::Centralized);
        assert_eq!(cfg.placement, PlacementPolicy::Interleaved);
    }

    #[test]
    fn rebalance_is_iso_transistor() {
        for mb in [8u64, 16] {
            let h = CacheHierarchy::rebalanced(mb, AllocFilter::RemoteOnly, 4);
            let total = h.l15_bytes_total + h.l2_bytes_total;
            // 16 MB case keeps the vestigial 32 KB per partition.
            assert!(
                (16 * MIB..=16 * MIB + 4 * 32 * KIB).contains(&total),
                "{mb} MB rebalance totals {total}"
            );
        }
        let h32 = SystemConfig::mcm_with_l15_32mb(AllocFilter::RemoteOnly).caches;
        assert_eq!(h32.l15_bytes_total, 32 * MIB, "32 MB point is non-iso");
    }

    #[test]
    fn monolithic_scaling_rule() {
        let g32 = SystemConfig::monolithic(32);
        assert_eq!(g32.dram_total_gbps, 384.0);
        assert_eq!(g32.caches.l2_bytes_total, 2 * MIB);
        let g256 = SystemConfig::monolithic(256);
        assert_eq!(g256.dram_total_gbps, 3072.0);
        assert_eq!(g256.caches.l2_bytes_total, 16 * MIB);
        assert_eq!(g256.topology.modules, 1);
    }

    #[test]
    fn multi_gpu_matches_section6() {
        let cfg = SystemConfig::multi_gpu_baseline();
        assert_eq!(cfg.topology.modules, 2);
        assert_eq!(cfg.topology.sms_per_module, 128);
        assert_eq!(cfg.topology.total_sms(), 256);
        // 256 GB/s aggregate across both directions.
        assert_eq!(cfg.topology.link_gbps, 256.0);
        assert_eq!(cfg.topology.link_tier, Tier::Board);
        // Per-GPU DRAM is 1.5 TB/s.
        assert_eq!(cfg.dram_gbps_per_module(), 1536.0);
        // §6.1: DS and FT are applied to the multi-GPU baseline.
        assert_eq!(cfg.scheduler, SchedulerPolicy::Distributed);
        assert_eq!(cfg.placement, PlacementPolicy::FirstTouch);
        let opt = SystemConfig::multi_gpu_optimized();
        assert_eq!(opt.caches.l15_bytes_total, 8 * MIB);
        assert_eq!(opt.caches.l2_bytes_total, 8 * MIB);
    }

    #[test]
    fn optimized_mcm_is_8_8_split_with_ds_ft() {
        let cfg = SystemConfig::optimized_mcm();
        assert_eq!(cfg.caches.l15_bytes_total, 8 * MIB);
        assert_eq!(cfg.caches.l2_bytes_total, 8 * MIB);
        assert_eq!(cfg.caches.l15_filter, AllocFilter::RemoteOnly);
        assert_eq!(cfg.scheduler, SchedulerPolicy::Distributed);
        assert_eq!(cfg.placement, PlacementPolicy::FirstTouch);
    }

    #[test]
    fn extension_presets_carry_their_policies() {
        use mcm_sm::SchedulerPolicy;
        assert_eq!(
            SystemConfig::optimized_mcm_dynamic(16).scheduler,
            SchedulerPolicy::Dynamic { group: 16 }
        );
        assert_eq!(
            SystemConfig::optimized_mcm_chunked(16).scheduler,
            SchedulerPolicy::Chunked { group: 16 }
        );
        assert_eq!(
            SystemConfig::optimized_mcm_fully_connected()
                .topology
                .network,
            NetworkKind::FullyConnected
        );
        // The extensions keep the optimized cache/placement recipe.
        let dynamic = SystemConfig::optimized_mcm_dynamic(16);
        assert_eq!(dynamic.caches, SystemConfig::optimized_mcm().caches);
        assert_eq!(dynamic.placement, SystemConfig::optimized_mcm().placement);
    }

    #[test]
    fn fingerprint_is_stable_and_equal_for_identical_configs() {
        let a = SystemConfig::optimized_mcm();
        let b = SystemConfig::optimized_mcm();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn fingerprint_separates_same_name_different_params() {
        // The memo-cache bug class: two configs sharing a display name
        // but differing in a tuned parameter must not alias.
        let a = SystemConfig::optimized_mcm();
        let mut b = SystemConfig::optimized_mcm();
        b.topology.link_gbps *= 2.0;
        assert_eq!(a.name, b.name);
        assert_ne!(a.fingerprint(), b.fingerprint());

        let mut c = SystemConfig::optimized_mcm();
        c.scheduler = SchedulerPolicy::Chunked { group: 32 };
        assert_ne!(a.fingerprint(), c.fingerprint());

        let mut d = SystemConfig::optimized_mcm();
        d.sm.mshr_entries += 1;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprints_of_all_presets_are_distinct() {
        let presets = [
            SystemConfig::baseline_mcm(),
            SystemConfig::mcm_with_link(384.0),
            SystemConfig::mcm_with_l15(8, AllocFilter::RemoteOnly),
            SystemConfig::mcm_l15_ds(),
            SystemConfig::optimized_mcm(),
            SystemConfig::monolithic(32),
            SystemConfig::largest_buildable_monolithic(),
            SystemConfig::hypothetical_monolithic_256(),
            SystemConfig::multi_gpu_baseline(),
            SystemConfig::multi_gpu_optimized(),
            SystemConfig::optimized_mcm_dynamic(8),
            SystemConfig::optimized_mcm_chunked(32),
            SystemConfig::optimized_mcm_fully_connected(),
        ];
        let mut prints: Vec<u64> = presets.iter().map(SystemConfig::fingerprint).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), presets.len(), "preset fingerprints collide");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.dram_total_gbps = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::baseline_mcm();
        cfg.topology.link_gbps = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::baseline_mcm();
        cfg.caches.l2_bytes_total = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_non_finite_floats() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let mut cfg = SystemConfig::baseline_mcm();
            cfg.dram_total_gbps = bad;
            assert!(cfg.validate().is_err(), "DRAM bandwidth {bad} accepted");

            let mut cfg = SystemConfig::baseline_mcm();
            cfg.topology.link_gbps = bad;
            assert!(cfg.validate().is_err(), "link bandwidth {bad} accepted");

            let mut cfg = SystemConfig::baseline_mcm();
            cfg.sm.issue_ipc = bad;
            assert!(cfg.validate().is_err(), "issue IPC {bad} accepted");
        }
        // Monolithic machines keep their don't-care link defaults, and
        // even a single-module NaN is rejected (it would poison derived
        // configs).
        assert!(SystemConfig::monolithic(32).validate().is_ok());
        let mut cfg = SystemConfig::monolithic(32);
        cfg.topology.link_gbps = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn shard_validation_rejects_bad_counts_loudly() {
        let cfg = SystemConfig::baseline_mcm(); // 4 modules, 32-cycle hops
        assert!(cfg.validate_shards(1).is_ok());
        assert!(cfg.validate_shards(4).is_ok());

        let err = cfg.validate_shards(0).unwrap_err();
        assert!(err.contains("at least 1"), "unhelpful error: {err}");

        let err = cfg.validate_shards(5).unwrap_err();
        assert!(
            err.contains("exceeds the 4 module"),
            "unhelpful error: {err}"
        );

        // A zero-lookahead fabric (still a valid *config* per
        // validation_rejects_free_infinite_fabric's second half) cannot
        // host more than one shard.
        let mut flat = SystemConfig::baseline_mcm();
        flat.topology.hop_cycles = 0;
        assert!(flat.validate().is_ok());
        assert!(flat.validate_shards(1).is_ok());
        let err = flat.validate_shards(2).unwrap_err();
        assert!(err.contains("lookahead"), "unhelpful error: {err}");

        // Monolithic: one shard only, and the module bound fires first.
        let mono = SystemConfig::monolithic(32);
        assert!(mono.validate_shards(1).is_ok());
        assert!(mono
            .validate_shards(2)
            .unwrap_err()
            .contains("exceeds the 1 module"));

        // An invalid base config is rejected before shard checks.
        let mut bad = SystemConfig::baseline_mcm();
        bad.dram_total_gbps = 0.0;
        assert!(bad.validate_shards(1).is_err());
    }

    #[test]
    fn fingerprint_ignores_shard_count() {
        // Sharding is an execution strategy, not a machine: memo caches
        // and artifact stems must not fork on MCM_SHARDS.
        let a = SystemConfig::baseline_mcm();
        let print = a.fingerprint();
        for shards in [1usize, 2, 4] {
            assert!(a.validate_shards(shards).is_ok());
            assert_eq!(a.fingerprint(), print);
        }
    }

    #[test]
    fn validation_rejects_free_infinite_fabric() {
        // A multi-module machine whose links are both latency-free and
        // effectively infinite is a monolithic die in disguise.
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.topology.hop_cycles = 0;
        cfg.topology.link_gbps = 1e12;
        assert!(cfg.validate().is_err());
        // Either a real hop latency or a finite link budget is fine.
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.topology.hop_cycles = 0;
        assert!(cfg.validate().is_ok());
    }
}
