//! One function per paper exhibit: each regenerates the corresponding
//! table or figure's data and returns it as a rendered text block.
//!
//! The functions take a [`Memo`] so exhibits sharing configurations
//! (nearly all share the baseline) reuse each other's runs within one
//! process — `reproduce` exploits this to regenerate everything in a
//! single pass.

use mcm_engine::stats::geomean;
use mcm_gpu::reference::{GPU_GENERATIONS, MAX_BUILDABLE_SMS};
use mcm_gpu::{RunReport, SystemConfig};
use mcm_interconnect::energy::Tier;
use mcm_mem::cache::AllocFilter;
use mcm_workloads::{suite, Category, WorkloadSpec};

use crate::harness::{f2, geomean_speedup, pct, Memo, TextTable};

fn m_intensive() -> Vec<WorkloadSpec> {
    suite::m_intensive_suite()
}

fn full_suite() -> Vec<WorkloadSpec> {
    suite::suite()
}

/// Warms the memo with the whole `configs x workloads` grid across
/// `MCM_JOBS` worker threads, so the serial reporting loops below run
/// entirely from cache. Every figure calls this first: the figure text
/// itself is assembled in a fixed order from memoized reports, which is
/// what keeps the output byte-identical at any job count.
fn warm_grid(memo: &mut Memo, configs: &[SystemConfig], workloads: &[WorkloadSpec]) {
    let pairs: Vec<(&SystemConfig, &WorkloadSpec)> = configs
        .iter()
        .flat_map(|c| workloads.iter().map(move |w| (c, w)))
        .collect();
    memo.warm(&pairs);
}

/// Table 1: key characteristics of recent NVIDIA GPUs.
pub fn table1() -> String {
    let mut t = TextTable::new(vec!["", "Fermi", "Kepler", "Maxwell", "Pascal"]);
    let g = GPU_GENERATIONS;
    t.row(vec![
        "SMs".to_string(),
        g[0].sms.to_string(),
        g[1].sms.to_string(),
        g[2].sms.to_string(),
        g[3].sms.to_string(),
    ]);
    t.row(vec![
        "BW (GB/s)".to_string(),
        g[0].bandwidth_gbps.to_string(),
        g[1].bandwidth_gbps.to_string(),
        g[2].bandwidth_gbps.to_string(),
        g[3].bandwidth_gbps.to_string(),
    ]);
    t.row(vec![
        "L2 (KB)".to_string(),
        g[0].l2_kb.to_string(),
        g[1].l2_kb.to_string(),
        g[2].l2_kb.to_string(),
        g[3].l2_kb.to_string(),
    ]);
    t.row(vec![
        "Transistors (B)".to_string(),
        g[0].transistors_b.to_string(),
        g[1].transistors_b.to_string(),
        g[2].transistors_b.to_string(),
        g[3].transistors_b.to_string(),
    ]);
    t.row(vec![
        "Tech. node (nm)".to_string(),
        g[0].tech_node_nm.to_string(),
        g[1].tech_node_nm.to_string(),
        g[2].tech_node_nm.to_string(),
        g[3].tech_node_nm.to_string(),
    ]);
    t.row(vec![
        "Chip size (mm2)".to_string(),
        g[0].chip_size_mm2.to_string(),
        g[1].chip_size_mm2.to_string(),
        g[2].chip_size_mm2.to_string(),
        g[3].chip_size_mm2.to_string(),
    ]);
    format!(
        "Table 1: key characteristics of recent NVIDIA GPUs\n\n{}",
        t.render()
    )
}

/// Table 2: bandwidth and energy parameters per integration domain.
pub fn table2() -> String {
    let mut t = TextTable::new(vec!["", "Chip", "Package", "Board", "System"]);
    let bw = |tier: Tier| -> String {
        let gbps = tier.bandwidth_gbps();
        if gbps >= 1000.0 {
            format!("{:.1} TB/s", gbps / 1000.0)
        } else {
            format!("{gbps} GB/s")
        }
    };
    t.row(vec![
        "BW".to_string(),
        bw(Tier::Chip),
        bw(Tier::Package),
        bw(Tier::Board),
        bw(Tier::System),
    ]);
    let e = |tier: Tier| format!("{} pJ/bit", tier.pj_per_bit());
    t.row(vec![
        "Energy".to_string(),
        e(Tier::Chip),
        e(Tier::Package),
        e(Tier::Board),
        e(Tier::System),
    ]);
    t.row(vec![
        "Overhead".to_string(),
        Tier::Chip.overhead().to_string(),
        Tier::Package.overhead().to_string(),
        Tier::Board.overhead().to_string(),
        Tier::System.overhead().to_string(),
    ]);
    format!(
        "Table 2: approximate bandwidth and energy parameters for \
         different integration domains\n\n{}",
        t.render()
    )
}

/// Table 3: the baseline MCM-GPU configuration.
pub fn table3() -> String {
    let cfg = SystemConfig::baseline_mcm();
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec![
        "Number of GPMs".to_string(),
        cfg.topology.modules.to_string(),
    ]);
    t.row(vec![
        "Total number of SMs".to_string(),
        cfg.topology.total_sms().to_string(),
    ]);
    t.row(vec!["GPU frequency".to_string(), "1 GHz".to_string()]);
    t.row(vec![
        "Max warps per SM".to_string(),
        cfg.sm.max_warps.to_string(),
    ]);
    t.row(vec![
        "L1 data cache".to_string(),
        format!("{} KB per SM, 128B lines", cfg.caches.l1_bytes_per_sm >> 10),
    ]);
    t.row(vec![
        "Total L2 cache".to_string(),
        format!(
            "{} MB, 128B lines, 16 ways",
            cfg.caches.l2_bytes_total >> 20
        ),
    ]);
    t.row(vec![
        "Inter-GPM interconnect".to_string(),
        format!(
            "{:.0} GB/s per link, ring, {} cycles/hop",
            cfg.topology.link_gbps, cfg.topology.hop_cycles
        ),
    ]);
    t.row(vec![
        "Total DRAM bandwidth".to_string(),
        format!("{:.0} GB/s", cfg.dram_total_gbps),
    ]);
    t.row(vec![
        "DRAM latency".to_string(),
        format!("{} ns", cfg.dram_latency_ns),
    ]);
    format!("Table 3: baseline MCM-GPU configuration\n\n{}", t.render())
}

/// Table 4: the memory-intensive workloads and their footprints.
pub fn table4() -> String {
    let mut t = TextTable::new(vec!["benchmark", "abbr.", "memory footprint (MB)"]);
    let long_names = [
        ("AMG", "Algebraic multigrid solver"),
        ("NN-Conv", "Neural network convolution"),
        ("BFS", "Breadth-first search"),
        ("CFD", "CFD Euler3D"),
        ("CoMD", "Classic molecular dynamics"),
        ("Kmeans", "K-means clustering"),
        ("Lulesh1", "Lulesh (size 150)"),
        ("Lulesh2", "Lulesh (size 190)"),
        ("Lulesh3", "Lulesh unstructured"),
        ("MiniAMR", "Adaptive mesh refinement"),
        ("MnCtct", "Mini contact solid mechanics"),
        ("MST", "Minimum spanning tree"),
        ("Nekbone1", "Nekbone solver (size 18)"),
        ("Nekbone2", "Nekbone solver (size 12)"),
        ("Srad-v2", "SRAD (v2)"),
        ("SSSP", "Shortest path"),
        ("Stream", "Stream triad"),
    ];
    for (abbr, long) in long_names {
        let w = suite::by_name(abbr).expect("Table 4 workload");
        t.row(vec![
            long.to_string(),
            abbr.to_string(),
            (w.footprint_bytes >> 20).to_string(),
        ]);
    }
    format!(
        "Table 4: the high-parallelism, memory-intensive workloads and \
         their memory footprints\n\n{}",
        t.render()
    )
}

/// Fig. 2: hypothetical monolithic-GPU performance scaling with SM
/// count (L2 and DRAM bandwidth scaled along), normalized to 32 SMs.
pub fn fig02(memo: &mut Memo) -> String {
    let sm_counts = [32u32, 64, 96, 128, 160, 192, 224, 256, 288];
    let all = full_suite();
    let base_cfg = SystemConfig::monolithic(32);
    let grid: Vec<SystemConfig> = sm_counts
        .iter()
        .map(|&s| SystemConfig::monolithic(s))
        .collect();
    warm_grid(memo, &grid, &all);
    let mut t = TextTable::new(vec![
        "SM count",
        "linear",
        "high-parallelism apps",
        "limited-parallelism apps",
    ]);
    for &sms in &sm_counts {
        let cfg = SystemConfig::monolithic(sms);
        let mut high = Vec::new();
        let mut limited = Vec::new();
        for w in &all {
            let s = memo.run(&cfg, w).speedup_over(&memo.run(&base_cfg, w));
            if w.category == Category::LimitedParallelism {
                limited.push(s);
            } else {
                high.push(s);
            }
        }
        t.row(vec![
            sms.to_string(),
            f2(f64::from(sms) / 32.0),
            f2(geomean(&high)),
            f2(geomean(&limited)),
        ]);
    }
    let high_at_256 = {
        let cfg = SystemConfig::monolithic(256);
        let speedups: Vec<f64> = all
            .iter()
            .filter(|w| w.category != Category::LimitedParallelism)
            .map(|w| memo.run(&cfg, w).speedup_over(&memo.run(&base_cfg, w)))
            .collect();
        geomean(&speedups)
    };
    format!(
        "Fig. 2: hypothetical GPU performance scaling with SM count \
         (speedup over 32 SMs; GPUs beyond {MAX_BUILDABLE_SMS} SMs are \
         unbuildable)\n\n{}\nhigh-parallelism apps at 256 SMs reach \
         {:.1}% of linear scaling (paper: 87.8%)\n",
        t.render(),
        high_at_256 / 8.0 * 100.0
    )
}

/// Fig. 4: performance sensitivity to inter-GPM link bandwidth,
/// relative to an abundant 6 TB/s, by category.
pub fn fig04(memo: &mut Memo) -> String {
    let links = [6144.0, 3072.0, 1536.0, 768.0, 384.0];
    let reference = SystemConfig::mcm_with_link(6144.0);
    let all = full_suite();
    let grid: Vec<SystemConfig> = links
        .iter()
        .map(|&g| SystemConfig::mcm_with_link(g))
        .collect();
    warm_grid(memo, &grid, &all);
    let mut t = TextTable::new(vec![
        "link BW",
        "M-Intensive",
        "C-Intensive",
        "Lim. Parallel",
    ]);
    for &gbps in &links {
        let cfg = SystemConfig::mcm_with_link(gbps);
        let mut cells = vec![format!("{:.0} GB/s", gbps)];
        for cat in Category::ALL {
            let s = geomean_speedup(memo, &all, &cfg, &reference, Some(cat));
            cells.push(f2(s));
        }
        t.row(cells);
    }
    format!(
        "Fig. 4: relative performance vs inter-GPM link bandwidth \
         (1.00 = 6 TB/s links; 4-GPM, 256-SM MCM-GPU)\n\n{}",
        t.render()
    )
}

/// The six Fig. 6 cache design points.
fn fig06_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::mcm_with_l15(8, AllocFilter::All),
        SystemConfig::mcm_with_l15(8, AllocFilter::RemoteOnly),
        SystemConfig::mcm_with_l15(16, AllocFilter::All),
        SystemConfig::mcm_with_l15(16, AllocFilter::RemoteOnly),
        SystemConfig::mcm_with_l15_32mb(AllocFilter::All),
        SystemConfig::mcm_with_l15_32mb(AllocFilter::RemoteOnly),
    ]
}

/// Fig. 6: L1.5 capacity and allocation-policy design space, speedup
/// over the baseline MCM-GPU. M-intensive workloads are listed in the
/// paper's bandwidth-sensitivity order.
pub fn fig06(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let configs = fig06_configs();
    let mut grid = configs.clone();
    grid.push(baseline.clone());
    warm_grid(memo, &grid, &full_suite());
    let mut t = TextTable::new(vec![
        "workload", "8MB", "8MB RO", "16MB", "16MB RO", "32MB", "32MB RO",
    ]);
    for w in m_intensive() {
        let base = memo.run(&baseline, &w);
        let mut cells = vec![w.name.to_string()];
        for cfg in &configs {
            cells.push(f2(memo.run(cfg, &w).speedup_over(&base)));
        }
        t.row(cells);
    }
    let all = full_suite();
    for cat in Category::ALL {
        let mut cells = vec![format!("GeoMean {}", cat.label())];
        for cfg in &configs {
            cells.push(f2(geomean_speedup(memo, &all, cfg, &baseline, Some(cat))));
        }
        t.row(cells);
    }
    format!(
        "Fig. 6: MCM-GPU performance with L1.5 caches (speedup over \
         baseline; iso-transistor except 32MB; RO = remote-only \
         allocation)\n\n{}",
        t.render()
    )
}

/// Fig. 7: total inter-GPM bandwidth, baseline vs 16 MB remote-only
/// L1.5.
pub fn fig07(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let l15 = SystemConfig::mcm_with_l15(16, AllocFilter::RemoteOnly);
    bandwidth_figure(
        memo,
        "Fig. 7: total inter-GPM bandwidth (TB/s), baseline vs 16 MB \
         remote-only L1.5",
        vec![("baseline", baseline), ("16MB RO L1.5", l15)],
    )
}

/// Fig. 9: performance with the distributed CTA scheduler on top of the
/// 16 MB remote-only L1.5.
pub fn fig09(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let cfg = SystemConfig::mcm_l15_ds();
    warm_grid(memo, &[baseline.clone(), cfg.clone()], &full_suite());
    let mut t = TextTable::new(vec!["workload", "speedup"]);
    for w in m_intensive() {
        let s = memo.run(&cfg, &w).speedup_over(&memo.run(&baseline, &w));
        t.row(vec![w.name.to_string(), f2(s)]);
    }
    let all = full_suite();
    for cat in Category::ALL {
        t.row(vec![
            format!("GeoMean {}", cat.label()),
            f2(geomean_speedup(memo, &all, &cfg, &baseline, Some(cat))),
        ]);
    }
    format!(
        "Fig. 9: performance with distributed CTA scheduling + 16 MB \
         remote-only L1.5 (speedup over baseline MCM-GPU)\n\n{}",
        t.render()
    )
}

/// Fig. 10: inter-GPM bandwidth with the distributed scheduler.
pub fn fig10(memo: &mut Memo) -> String {
    bandwidth_figure(
        memo,
        "Fig. 10: total inter-GPM bandwidth (TB/s) with distributed \
         scheduling",
        vec![
            ("baseline", SystemConfig::baseline_mcm()),
            ("16MB RO L1.5 + DS", SystemConfig::mcm_l15_ds()),
        ],
    )
}

/// Fig. 13: performance with first-touch page placement on top of DS
/// and the L1.5 — the 16 MB vs 8 MB (rebalanced) variants.
pub fn fig13(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let ft16 = SystemConfig::optimized_mcm_16mb_l15();
    let ft8 = SystemConfig::optimized_mcm();
    warm_grid(
        memo,
        &[baseline.clone(), ft16.clone(), ft8.clone()],
        &full_suite(),
    );
    let mut t = TextTable::new(vec!["workload", "16MB L1.5+DS+FT", "8MB L1.5+DS+FT"]);
    for w in m_intensive() {
        let base = memo.run(&baseline, &w);
        t.row(vec![
            w.name.to_string(),
            f2(memo.run(&ft16, &w).speedup_over(&base)),
            f2(memo.run(&ft8, &w).speedup_over(&base)),
        ]);
    }
    let all = full_suite();
    for cat in Category::ALL {
        t.row(vec![
            format!("GeoMean {}", cat.label()),
            f2(geomean_speedup(memo, &all, &ft16, &baseline, Some(cat))),
            f2(geomean_speedup(memo, &all, &ft8, &baseline, Some(cat))),
        ]);
    }
    format!(
        "Fig. 13: performance with first-touch page placement (speedup \
         over baseline; 16 MB L1.5 leaves a vestigial L2, 8 MB keeps an \
         8 MB L2)\n\n{}",
        t.render()
    )
}

/// Fig. 14: inter-GPM bandwidth with first-touch page placement.
pub fn fig14(memo: &mut Memo) -> String {
    bandwidth_figure(
        memo,
        "Fig. 14: total inter-GPM bandwidth (TB/s) with first-touch \
         page placement",
        vec![
            ("baseline", SystemConfig::baseline_mcm()),
            ("16MB L1.5+DS+FT", SystemConfig::optimized_mcm_16mb_l15()),
            ("8MB L1.5+DS+FT", SystemConfig::optimized_mcm()),
        ],
    )
}

/// Shared shape of Figs. 7/10/14: per-workload inter-GPM TB/s under a
/// set of configurations, with category averages.
fn bandwidth_figure(
    memo: &mut Memo,
    title: &str,
    configs: Vec<(&'static str, SystemConfig)>,
) -> String {
    let grid: Vec<SystemConfig> = configs.iter().map(|(_, c)| c.clone()).collect();
    warm_grid(memo, &grid, &full_suite());
    let mut header = vec!["workload".to_string()];
    header.extend(configs.iter().map(|(label, _)| label.to_string()));
    let mut t = TextTable::new(header);
    for w in m_intensive() {
        let mut cells = vec![w.name.to_string()];
        for (_, cfg) in &configs {
            cells.push(f2(memo.run(cfg, &w).inter_module_tbps()));
        }
        t.row(cells);
    }
    let all = full_suite();
    for cat in Category::ALL {
        let mut cells = vec![format!("Average {}", cat.label())];
        for (_, cfg) in &configs {
            let reports: Vec<RunReport> = all
                .iter()
                .filter(|w| w.category == cat)
                .map(|w| memo.run(cfg, w))
                .collect();
            let mean = reports
                .iter()
                .map(RunReport::inter_module_tbps)
                .sum::<f64>()
                / reports.len() as f64;
            cells.push(f2(mean));
        }
        t.row(cells);
    }
    // Overall byte-level reduction vs the first configuration.
    let base_bytes: u64 = all
        .iter()
        .map(|w| memo.run(&configs[0].1, w).inter_module_bytes)
        .sum();
    let mut extra = String::new();
    for (label, cfg) in configs.iter().skip(1) {
        let bytes: u64 = all
            .iter()
            .map(|w| memo.run(cfg, w).inter_module_bytes)
            .sum();
        extra.push_str(&format!(
            "{label}: {:.2}x total inter-GPM traffic reduction vs baseline\n",
            base_bytes as f64 / bytes.max(1) as f64
        ));
    }
    format!("{title}\n\n{}\n{extra}", t.render())
}

/// Fig. 15: s-curve of optimized-MCM speedups over the baseline for all
/// 48 workloads, sorted ascending.
pub fn fig15(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let optimized = SystemConfig::optimized_mcm();
    warm_grid(memo, &[baseline.clone(), optimized.clone()], &full_suite());
    let mut curve: Vec<(String, f64)> = full_suite()
        .iter()
        .map(|w| {
            let s = memo
                .run(&optimized, w)
                .speedup_over(&memo.run(&baseline, w));
            (w.name.to_string(), s)
        })
        .collect();
    curve.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite speedups"));
    let max = curve.last().map(|(_, s)| *s).unwrap_or(1.0);
    let mut t = TextTable::new(vec!["rank", "workload", "speedup", ""]);
    for (i, (name, s)) in curve.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            name.clone(),
            f2(*s),
            crate::harness::bar(*s, max, 32),
        ]);
    }
    let gains = curve.iter().filter(|(_, s)| *s > 1.01).count();
    let losses = curve.iter().filter(|(_, s)| *s < 0.99).count();
    format!(
        "Fig. 15: s-curve of optimized MCM-GPU speedups over baseline, \
         all 48 workloads\n\n{}\n{gains} workloads gain, {losses} lose \
         (paper: 31 gain, 9 lose)\n",
        t.render()
    )
}

/// Fig. 16: each optimization applied alone vs all together, plus the
/// unbuildable references.
pub fn fig16(memo: &mut Memo) -> String {
    use mcm_mem::page::PlacementPolicy;
    use mcm_sm::SchedulerPolicy;

    let baseline = SystemConfig::baseline_mcm();
    let l15_alone = SystemConfig::mcm_with_l15(16, AllocFilter::RemoteOnly);
    let mut ds_alone = SystemConfig::baseline_mcm();
    ds_alone.name = "MCM-GPU + DS only".into();
    ds_alone.scheduler = SchedulerPolicy::Distributed;
    let mut ft_alone = SystemConfig::baseline_mcm();
    ft_alone.name = "MCM-GPU + FT only".into();
    ft_alone.placement = PlacementPolicy::FirstTouch;
    let combined = SystemConfig::optimized_mcm();
    let six_tb = SystemConfig::mcm_with_link(6144.0);
    let mono = SystemConfig::hypothetical_monolithic_256();

    let all = full_suite();
    warm_grid(
        memo,
        &[
            baseline.clone(),
            l15_alone.clone(),
            ds_alone.clone(),
            ft_alone.clone(),
            combined.clone(),
            six_tb.clone(),
            mono.clone(),
            SystemConfig::largest_buildable_monolithic(),
        ],
        &all,
    );
    let mut t = TextTable::new(vec!["configuration", "speedup over baseline"]);
    for (label, cfg) in [
        ("Remote-only L1.5 alone (16MB)", &l15_alone),
        ("Distributed scheduling alone", &ds_alone),
        ("First-touch placement alone", &ft_alone),
        ("Proposed MCM-GPU (all three)", &combined),
        ("MCM-GPU with 6 TB/s links", &six_tb),
        ("Monolithic 256-SM (unbuildable)", &mono),
    ] {
        t.row(vec![
            label.to_string(),
            pct(geomean_speedup(memo, &all, cfg, &baseline, None)),
        ]);
    }
    let opt = geomean_speedup(memo, &all, &combined, &baseline, None);
    let mono_s = geomean_speedup(memo, &all, &mono, &baseline, None);
    let mono128 = geomean_speedup(
        memo,
        &all,
        &SystemConfig::largest_buildable_monolithic(),
        &baseline,
        None,
    );
    format!(
        "Fig. 16: sources of improvement, applied alone and together \
         (geomean over all 48 workloads)\n\n{}\n\
         optimized vs largest buildable (128-SM) monolithic: {}\n\
         optimized vs unbuildable 256-SM monolithic: within {:.1}%\n",
        t.render(),
        pct(opt / mono128),
        (mono_s / opt - 1.0) * 100.0
    )
}

/// Fig. 17: the MCM-GPU vs multi-GPU comparison, normalized to the
/// baseline multi-GPU.
pub fn fig17(memo: &mut Memo) -> String {
    let mgpu_base = SystemConfig::multi_gpu_baseline();
    let mgpu_opt = SystemConfig::multi_gpu_optimized();
    let mcm = SystemConfig::optimized_mcm();
    let mut mcm_6tb = SystemConfig::optimized_mcm();
    mcm_6tb.name = "MCM-GPU optimized (6 TB/s links)".into();
    mcm_6tb.topology.link_gbps = 6144.0;
    let mono = SystemConfig::hypothetical_monolithic_256();

    let all = full_suite();
    warm_grid(
        memo,
        &[
            mgpu_base.clone(),
            mgpu_opt.clone(),
            mcm.clone(),
            mcm_6tb.clone(),
            mono.clone(),
        ],
        &all,
    );
    let mut t = TextTable::new(vec!["configuration", "speedup over baseline multi-GPU"]);
    for (label, cfg) in [
        ("Optimized multi-GPU", &mgpu_opt),
        ("MCM-GPU (768 GB/s)", &mcm),
        ("MCM-GPU (6 TB/s)", &mcm_6tb),
        ("Monolithic GPU (unbuildable)", &mono),
    ] {
        t.row(vec![
            label.to_string(),
            f2(geomean_speedup(memo, &all, cfg, &mgpu_base, None)),
        ]);
    }
    format!(
        "Fig. 17: MCM-GPU vs multi-GPU (geomean speedup over the \
         baseline 2x128-SM multi-GPU; both buildable and unbuildable \
         machines shown)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Extensions beyond the paper's exhibits: the ablations DESIGN.md calls
// out (the §5.4 future-work schedulers, the §3.2 topology question) and
// the §6.2 efficiency argument quantified.
// ---------------------------------------------------------------------

/// Ablation: CTA scheduling granularity on the optimized MCM-GPU —
/// equal chunks (§5.2) vs finer contiguous groups vs the dynamic
/// stealing scheduler the paper leaves to future work (§5.4), on both a
/// balanced and a deliberately imbalanced workload.
pub fn ablation_scheduler(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let configs = [
        ("distributed (paper)", SystemConfig::optimized_mcm()),
        ("chunked, group 8", SystemConfig::optimized_mcm_chunked(8)),
        ("chunked, group 32", SystemConfig::optimized_mcm_chunked(32)),
        ("dynamic, group 8", SystemConfig::optimized_mcm_dynamic(8)),
        ("dynamic, group 32", SystemConfig::optimized_mcm_dynamic(32)),
    ];
    let mut workloads = vec![
        suite::by_name("Srad-v2").expect("suite workload"),
        suite::by_name("CoMD").expect("suite workload"),
    ];
    // The imbalance case §5.4 observes: "workloads ... where different
    // CTAs perform unequal amounts of work ... leads to workload
    // imbalance due to the coarse-grained distributed scheduling."
    let mut imbalanced = suite::by_name("Lulesh1").expect("suite workload");
    imbalanced.name = "Lulesh1-imbalanced";
    imbalanced.imbalance = 0.8;
    workloads.push(imbalanced);

    let mut grid: Vec<SystemConfig> = configs.iter().map(|(_, c)| c.clone()).collect();
    grid.push(baseline.clone());
    warm_grid(memo, &grid, &workloads);

    let mut header = vec!["workload".to_string()];
    header.extend(configs.iter().map(|(l, _)| l.to_string()));
    let mut t = TextTable::new(header);
    for w in &workloads {
        let base = memo.run(&baseline, w);
        let mut cells = vec![w.name.to_string()];
        for (_, cfg) in &configs {
            cells.push(f2(memo.run(cfg, w).speedup_over(&base)));
        }
        t.row(cells);
    }
    format!(
        "Ablation: CTA scheduler granularity and dynamic stealing \
         (speedup over baseline MCM-GPU; extension of §5.4's future \
         work)\n\n{}",
        t.render()
    )
}

/// Ablation: inter-GPM network topology at an equal wiring budget —
/// the paper's ring vs a fully connected fabric (§3.2 leaves this
/// exploration out of scope).
pub fn ablation_topology(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let ring = SystemConfig::optimized_mcm();
    let mesh = SystemConfig::optimized_mcm_fully_connected();
    let mut baseline_mesh = SystemConfig::baseline_mcm();
    baseline_mesh.name = "MCM-GPU baseline (fully connected)".into();
    baseline_mesh.topology.network = mcm_interconnect::mesh::NetworkKind::FullyConnected;

    let all = full_suite();
    warm_grid(
        memo,
        &[
            baseline.clone(),
            baseline_mesh.clone(),
            ring.clone(),
            mesh.clone(),
        ],
        &all,
    );
    let mut t = TextTable::new(vec![
        "configuration",
        "M-Intensive",
        "C-Intensive",
        "Lim. Parallel",
        "ALL",
    ]);
    for (label, cfg) in [
        ("baseline ring", &baseline),
        ("baseline fully connected", &baseline_mesh),
        ("optimized ring", &ring),
        ("optimized fully connected", &mesh),
    ] {
        let mut cells = vec![label.to_string()];
        for cat in Category::ALL {
            cells.push(f2(geomean_speedup(memo, &all, cfg, &baseline, Some(cat))));
        }
        cells.push(f2(geomean_speedup(memo, &all, cfg, &baseline, None)));
        t.row(cells);
    }
    format!(
        "Ablation: ring vs fully connected inter-GPM fabric at an equal \
         package wiring budget (speedup over the ring baseline; \
         extension of §3.2)\n\n{}",
        t.render()
    )
}

/// The §6.2 efficiency argument quantified: data-movement energy per
/// machine organization for the same work.
pub fn efficiency(memo: &mut Memo) -> String {
    let configs = [
        ("MCM-GPU baseline", SystemConfig::baseline_mcm()),
        ("MCM-GPU optimized", SystemConfig::optimized_mcm()),
        ("Multi-GPU baseline", SystemConfig::multi_gpu_baseline()),
        ("Multi-GPU optimized", SystemConfig::multi_gpu_optimized()),
        (
            "Monolithic 256 (unbuildable)",
            SystemConfig::hypothetical_monolithic_256(),
        ),
    ];
    let all = full_suite();
    let grid: Vec<SystemConfig> = configs.iter().map(|(_, c)| c.clone()).collect();
    warm_grid(memo, &grid, &all);
    let mut t = TextTable::new(vec![
        "configuration",
        "interconnect mJ",
        "DRAM mJ",
        "total mJ",
        "vs MCM optimized",
    ]);
    let mut totals = Vec::new();
    for (_, cfg) in &configs {
        let mut interconnect = 0.0;
        let mut dram = 0.0;
        for w in &all {
            let r = memo.run(cfg, w);
            dram += r.energy.dram_joules();
            interconnect += r.energy.total_joules() - r.energy.dram_joules();
        }
        totals.push((interconnect, dram));
    }
    let reference = totals[1].0 + totals[1].1;
    for ((label, _), (interconnect, dram)) in configs.iter().zip(&totals) {
        t.row(vec![
            label.to_string(),
            format!("{:.1}", interconnect * 1e3),
            format!("{:.1}", dram * 1e3),
            format!("{:.1}", (interconnect + dram) * 1e3),
            format!("{:.2}x", (interconnect + dram) / reference),
        ]);
    }
    format!(
        "Efficiency (§6.2 quantified): data-movement energy summed over \
         the 48-workload suite. On-package signaling at 0.5 pJ/bit vs \
         on-board at 10 pJ/bit is what separates the MCM-GPU from the \
         multi-GPU here.\n\n{}",
        t.render()
    )
}

/// Ablation: how many GPMs to split 256 SMs into — the design-space
/// question §3.2 opens ("moving forward beyond 128 SM counts will
/// almost certainly require at least two GPMs"), on both the baseline
/// and the optimized recipe, with ring and fully connected fabrics for
/// the 8-GPM point where topology starts to matter.
pub fn ablation_gpm_count(memo: &mut Memo) -> String {
    use mcm_interconnect::mesh::NetworkKind;
    let reference = SystemConfig::baseline_mcm(); // 4 GPMs
    let all = full_suite();

    let optimized_of = |gpms: u8, network: NetworkKind| -> SystemConfig {
        let mut cfg = SystemConfig::optimized_mcm();
        cfg.name = format!(
            "MCM-GPU optimized ({gpms} GPMs, {})",
            match network {
                NetworkKind::Ring => "ring",
                NetworkKind::FullyConnected => "fully connected",
            }
        );
        cfg.topology.modules = gpms;
        cfg.topology.sms_per_module = 256 / u32::from(gpms);
        cfg.topology.network = network;
        cfg
    };

    let mut t = TextTable::new(vec![
        "configuration",
        "M-Intensive",
        "C-Intensive",
        "Lim. Parallel",
        "ALL",
    ]);
    let mut rows: Vec<(String, SystemConfig)> = Vec::new();
    for gpms in [2u8, 4, 8] {
        rows.push((
            format!("baseline {gpms} GPMs"),
            SystemConfig::mcm_n_gpms(gpms),
        ));
    }
    for gpms in [2u8, 4, 8] {
        rows.push((
            format!("optimized {gpms} GPMs (ring)"),
            optimized_of(gpms, NetworkKind::Ring),
        ));
    }
    rows.push((
        "optimized 8 GPMs (fully connected)".to_string(),
        optimized_of(8, NetworkKind::FullyConnected),
    ));
    let mut grid: Vec<SystemConfig> = rows.iter().map(|(_, c)| c.clone()).collect();
    grid.push(reference.clone());
    warm_grid(memo, &grid, &all);
    for (label, cfg) in rows {
        let mut cells = vec![label];
        for cat in Category::ALL {
            cells.push(f2(geomean_speedup(memo, &all, &cfg, &reference, Some(cat))));
        }
        cells.push(f2(geomean_speedup(memo, &all, &cfg, &reference, None)));
        t.row(cells);
    }
    format!(
        "Ablation: GPM count for a 256-SM budget (speedup over the \
         4-GPM baseline; extension of §3.2)\n\n{}",
        t.render()
    )
}

/// Ablation: first-touch placement granularity. Small pages track
/// fragmented sharing better; big pages amortize driver work but pin
/// whole regions to one GPM. The paper's FT operates at the driver's
/// allocation granularity; this sweeps it.
pub fn ablation_page_size(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let all = full_suite();
    let mut grid = vec![baseline.clone()];
    for kib in [4u64, 16, 64, 256, 2048] {
        let mut cfg = SystemConfig::optimized_mcm();
        cfg.name = format!("MCM-GPU optimized (FT {kib} KiB pages)");
        cfg.ft_page_bytes = kib * 1024;
        grid.push(cfg);
    }
    warm_grid(memo, &grid, &all);
    let mut t = TextTable::new(vec![
        "FT page size",
        "M-Intensive",
        "C-Intensive",
        "Lim. Parallel",
        "ALL",
    ]);
    for kib in [4u64, 16, 64, 256, 2048] {
        let mut cfg = SystemConfig::optimized_mcm();
        cfg.name = format!("MCM-GPU optimized (FT {kib} KiB pages)");
        cfg.ft_page_bytes = kib * 1024;
        let mut cells = vec![format!("{kib} KiB")];
        for cat in Category::ALL {
            cells.push(f2(geomean_speedup(memo, &all, &cfg, &baseline, Some(cat))));
        }
        cells.push(f2(geomean_speedup(memo, &all, &cfg, &baseline, None)));
        t.row(cells);
    }
    format!(
        "Ablation: first-touch page granularity on the optimized \
         MCM-GPU (speedup over baseline)\n\n{}",
        t.render()
    )
}

/// Ablation: L1.5 allocation policies including the adaptive
/// (set-dueling) filter — extends §5.1.2's static exploration.
pub fn ablation_alloc_policy(memo: &mut Memo) -> String {
    let baseline = SystemConfig::baseline_mcm();
    let all = full_suite();
    let grid = [
        baseline.clone(),
        SystemConfig::mcm_with_l15(16, AllocFilter::All),
        SystemConfig::mcm_with_l15(16, AllocFilter::RemoteOnly),
        SystemConfig::mcm_with_l15(16, AllocFilter::Adaptive),
    ];
    warm_grid(memo, &grid, &all);
    let mut t = TextTable::new(vec![
        "L1.5 policy (16MB iso-transistor)",
        "M-Intensive",
        "C-Intensive",
        "Lim. Parallel",
        "ALL",
    ]);
    for (label, filter) in [
        ("cache-all", AllocFilter::All),
        ("remote-only (paper)", AllocFilter::RemoteOnly),
        ("adaptive (set dueling)", AllocFilter::Adaptive),
    ] {
        let cfg = SystemConfig::mcm_with_l15(16, filter);
        let mut cells = vec![label.to_string()];
        for cat in Category::ALL {
            cells.push(f2(geomean_speedup(memo, &all, &cfg, &baseline, Some(cat))));
        }
        cells.push(f2(geomean_speedup(memo, &all, &cfg, &baseline, None)));
        t.row(cells);
    }
    format!(
        "Ablation: L1.5 allocation policy, including a set-dueling \
         adaptive filter (speedup over baseline; extension of \
         §5.1.2)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        for text in [table1(), table2(), table3(), table4()] {
            assert!(text.lines().count() > 5, "table too short:\n{text}");
        }
        assert!(table1().contains("Pascal"));
        assert!(table2().contains("pJ/bit"));
        assert!(table3().contains("768"));
        assert!(table4().contains("5430"));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with --release"
    )]
    fn fig04_runs_at_tiny_scale() {
        let mut memo = Memo::new(0.01);
        let text = fig04(&mut memo);
        assert!(text.contains("384 GB/s"));
        assert!(text.lines().count() >= 7);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with --release"
    )]
    fn fig16_runs_at_tiny_scale() {
        let mut memo = Memo::new(0.01);
        let text = fig16(&mut memo);
        assert!(text.contains("Proposed MCM-GPU"));
        assert!(text.contains("Monolithic"));
    }
}
