//! The intra-GPM crossbar connecting SMs to the local memory subsystem
//! (the "GPM-Xbar" of Fig. 3).

use mcm_engine::{Cycle, Resource};

use crate::energy::Tier;

/// An on-die crossbar: high-bandwidth, low-latency, chip-tier energy.
///
/// On a monolithic die the crossbar is engineered to never be the
/// bottleneck; the model gives it generous bandwidth by default but
/// still counts traffic (and chip-tier energy) through it, and lets
/// experiments constrain it to study on-die fabric pressure.
///
/// # Example
///
/// ```
/// use mcm_engine::Cycle;
/// use mcm_interconnect::xbar::Crossbar;
///
/// let mut xbar = Crossbar::new("gpm0-xbar", 8192.0, Cycle::new(4));
/// let done = xbar.transfer(Cycle::ZERO, 128);
/// assert_eq!(done, Cycle::new(5));
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    fabric: Resource,
    latency: Cycle,
}

impl Crossbar {
    /// Creates a crossbar with `gbps` aggregate bandwidth and a fixed
    /// traversal `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive (propagated from
    /// [`Resource::new`]).
    pub fn new(name: &'static str, gbps: f64, latency: Cycle) -> Self {
        Crossbar {
            fabric: Resource::from_gbps(name, gbps),
            latency,
        }
    }

    /// Moves `bytes` across the crossbar starting at `now`; returns
    /// delivery time.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.fabric.service(now, bytes) + self.latency
    }

    /// Like [`Crossbar::transfer`], additionally reporting the traffic
    /// on `module`'s crossbar to `probe`.
    pub fn transfer_probed<P: mcm_probe::Probe>(
        &mut self,
        now: Cycle,
        bytes: u64,
        module: u32,
        probe: &mut P,
    ) -> Cycle {
        let done = self.transfer(now, bytes);
        if P::ACTIVE {
            probe.xbar_transfer(module, now, bytes);
        }
        done
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.fabric.total_bytes()
    }

    /// Chip-tier energy dissipated so far, in joules.
    pub fn joules(&self) -> f64 {
        Tier::Chip.joules_for_bytes(self.total_bytes())
    }

    /// Fraction of `elapsed` the fabric spent busy.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        self.fabric.utilization(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_latency() {
        let mut x = Crossbar::new("x", 128.0, Cycle::new(4));
        assert_eq!(x.transfer(Cycle::ZERO, 128), Cycle::new(5));
        assert_eq!(x.total_bytes(), 128);
    }

    #[test]
    fn saturating_the_fabric_queues() {
        let mut x = Crossbar::new("x", 10.0, Cycle::ZERO);
        let a = x.transfer(Cycle::ZERO, 100);
        let b = x.transfer(Cycle::ZERO, 100);
        assert_eq!(a, Cycle::new(10));
        assert_eq!(b, Cycle::new(20));
        assert!((x.utilization(Cycle::new(20)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probed_transfer_reports_module_bytes() {
        #[derive(Default)]
        struct Log(Vec<(u32, u64)>);
        impl mcm_probe::Probe for Log {
            fn xbar_transfer(&mut self, module: u32, _now: Cycle, bytes: u64) {
                self.0.push((module, bytes));
            }
        }
        let mut log = Log::default();
        let mut x = Crossbar::new("x", 128.0, Cycle::new(4));
        assert_eq!(
            x.transfer_probed(Cycle::ZERO, 128, 2, &mut log),
            Cycle::new(5)
        );
        assert_eq!(log.0, vec![(2, 128)]);
    }

    #[test]
    fn chip_tier_energy() {
        let mut x = Crossbar::new("x", 1000.0, Cycle::ZERO);
        x.transfer(Cycle::ZERO, 1_000_000);
        let expect = Tier::Chip.joules_for_bytes(1_000_000);
        assert!((x.joules() - expect).abs() < 1e-15);
    }
}
