//! Cross-field consistency of run reports: the accounting identities
//! that must hold for any workload on any machine.

use mcm::engine::stats::ToCsv;
use mcm::gpu::{RunReport, Simulator, SystemConfig};
use mcm::interconnect::energy::Tier;
use mcm::workloads::suite;

fn sample_runs() -> Vec<RunReport> {
    let mut out = Vec::new();
    for (name, cfg) in [
        ("Kmeans", SystemConfig::baseline_mcm()),
        ("Kmeans", SystemConfig::optimized_mcm()),
        ("DWT", SystemConfig::multi_gpu_baseline()),
        ("Stream", SystemConfig::monolithic(64)),
    ] {
        let mut spec = suite::by_name(name).expect("suite workload").scaled(0.03);
        spec.ctas = spec.ctas.min(128);
        let mut cfg = cfg;
        cfg.topology.sms_per_module = cfg.topology.sms_per_module.min(16);
        out.push(Simulator::run(&cfg, &spec));
    }
    out
}

#[test]
fn accounting_identities_hold() {
    for r in sample_runs() {
        assert_eq!(r.mem_ops, r.reads + r.writes, "{}: op split", r.config);
        // Placement decisions happen for every store and for every L1
        // read miss that issues a new fill (coalesced misses ride an
        // existing decision), so they are bounded by the L1 miss count
        // and from below by the store count.
        let placements = r.local_accesses + r.remote_accesses;
        assert!(
            placements <= r.l1.misses() + r.writes,
            "{}: more placements than L1 misses plus stores",
            r.config
        );
        assert!(
            placements >= r.writes,
            "{}: every store is placed",
            r.config
        );
        let ipc = r.instructions as f64 / r.cycles.as_u64() as f64;
        assert!((r.ipc() - ipc).abs() < 1e-9, "{}: ipc formula", r.config);
        // Energy ledger's package/board bytes equal the fabric's.
        let fabric = r.energy.bytes(Tier::Package) + r.energy.bytes(Tier::Board);
        assert_eq!(
            fabric, r.inter_module_bytes,
            "{}: fabric energy bytes",
            r.config
        );
        // Module stats tile the totals.
        let m_insts: u64 = r.modules.iter().map(|m| m.instructions).sum();
        assert_eq!(m_insts, r.instructions, "{}: module instructions", r.config);
        let m_dram: u64 = r.modules.iter().map(|m| m.dram_bytes).sum();
        assert_eq!(m_dram, r.dram_bytes, "{}: module dram", r.config);
    }
}

#[test]
fn csv_row_matches_header_arity() {
    let header_fields = RunReport::csv_header().split(',').count();
    for r in sample_runs() {
        let row = r.to_csv_row();
        // Workload/config names are quoted and contain no commas in the
        // suite, so a plain split is exact here.
        assert_eq!(
            row.split(',').count(),
            header_fields,
            "CSV arity mismatch: {row}"
        );
    }
}

#[test]
fn l1_hits_do_not_reach_the_page_map() {
    // A single-SM-per-module run with a tiny footprint: almost all
    // accesses should become L1 hits, and placement decisions must
    // track only the misses.
    let mut spec = suite::by_name("CFD").expect("suite workload").scaled(0.5);
    spec.ctas = 16;
    spec.kernel_iters = 1;
    spec.footprint_bytes = 4 << 20;
    spec.locality.reuse_window_lines = 16;
    spec.locality.streaming = 0.1;
    spec.locality.neighbor_frac = 0.0;
    spec.locality.shared_frac = 0.0;
    spec.locality.cold_shared_frac = 0.0;
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.topology.sms_per_module = 4;
    let r = Simulator::run(&cfg, &spec);
    assert!(r.l1.rate() > 0.3, "expected strong L1 reuse, got {}", r.l1);
    assert!(
        r.local_accesses + r.remote_accesses < r.mem_ops,
        "placement decisions must be fewer than memory ops when L1 hits"
    );
}
