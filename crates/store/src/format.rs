//! The `mcm-store-v1` on-disk record format and the recovery scan.
//!
//! A segment file is:
//!
//! ```text
//! +--------------------------+
//! | magic  "mcm-store-v1\n"  |  13 bytes, schema gate
//! +--------------------------+
//! | record 0                 |
//! | record 1                 |
//! | ...                      |
//! +--------------------------+
//! ```
//!
//! and each record is:
//!
//! ```text
//! offset  size  field
//!      0     8  key fingerprint        (u64 LE)
//!      8     4  name length            (u32 LE)
//!     12     4  payload length         (u32 LE)
//!     16     8  header checksum        (FNV-1a over bytes 0..16)
//!     24     n  workload name          (UTF-8)
//!   24+n     p  payload                (codec-encoded RunReport)
//! 24+n+p     8  body checksum          (FNV-1a over name + payload)
//! ```
//!
//! The header checksum makes the *lengths* trustworthy before anything
//! is allocated or skipped from them; the body checksum makes the
//! *contents* trustworthy. The scan distinguishes three failure shapes
//! and recovers differently from each:
//!
//! * **torn tail** — the file ends mid-record (a crash between write
//!   and fsync, or a scripted truncation). Everything before the tear
//!   is kept; the tail is quarantined and scanning stops.
//! * **corrupt header** — the header checksum fails, so the lengths
//!   cannot be trusted and there is no reliable way to find the next
//!   record. The rest of the file is quarantined (conservative).
//! * **corrupt body** — the header checksum passes but the body
//!   checksum or payload decode fails. Exactly this record is
//!   quarantined; the trusted lengths let the scan continue at the
//!   next record.

use mcm_engine::rng::StableHasher;
use mcm_gpu::RunReport;

use crate::codec;

/// Magic prefix of every segment file; the trailing version digit is
/// the schema gate.
pub const MAGIC: &[u8; 13] = b"mcm-store-v1\n";

/// Fixed-size record header length in bytes.
pub const HEADER_LEN: usize = 24;

/// Hard plausibility bounds enforced *in addition to* the header
/// checksum — an engineered or astronomically unlucky checksum
/// collision must still not make the scan allocate gigabytes.
const MAX_NAME_LEN: u32 = 1 << 12;
/// Payload bound; see [`MAX_NAME_LEN`].
const MAX_PAYLOAD_LEN: u32 = 1 << 26;

/// FNV-1a over a byte slice.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Serializes one `(fingerprint, name, report)` record, ready to be
/// appended to a segment body.
pub fn encode_record(fingerprint: u64, name: &str, report: &RunReport) -> Vec<u8> {
    let payload = codec::encode(report);
    assert!(
        name.len() <= MAX_NAME_LEN as usize,
        "workload name exceeds the format bound ({} > {MAX_NAME_LEN} bytes)",
        name.len()
    );
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN as usize,
        "encoded report exceeds the format bound ({} > {MAX_PAYLOAD_LEN} bytes)",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + name.len() + payload.len() + 8);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let header_cksum = checksum(&out[0..16]);
    out.extend_from_slice(&header_cksum.to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&payload);
    let mut body = StableHasher::new();
    body.write_bytes(name.as_bytes());
    body.write_bytes(&payload);
    out.extend_from_slice(&body.finish().to_le_bytes());
    out
}

/// One scan event: a live record or a quarantine decision.
#[derive(Debug)]
pub enum ScanEvent {
    /// A record that passed both checksums and decoded cleanly.
    Record {
        /// The record's key fingerprint.
        fingerprint: u64,
        /// The record's workload name.
        name: String,
        /// The decoded report (boxed: a report is an order of magnitude
        /// larger than the quarantine variant).
        report: Box<RunReport>,
    },
    /// A quarantined span; scanning may or may not continue after it.
    Quarantined {
        /// Byte offset of the bad span.
        offset: usize,
        /// Human-readable reason, for the loud stderr line.
        reason: String,
    },
}

/// Why an entire file was rejected before any record was read.
#[derive(Debug, PartialEq, Eq)]
pub enum FileRejection {
    /// Not an `mcm-store` file at all.
    ForeignMagic,
    /// An `mcm-store` file of a different schema version — refused
    /// rather than reinterpreted.
    SchemaVersion(String),
    /// Shorter than the magic itself.
    TooShort,
}

impl std::fmt::Display for FileRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileRejection::ForeignMagic => write!(f, "not an mcm-store file (bad magic)"),
            FileRejection::SchemaVersion(v) => {
                write!(f, "schema {v:?} is not {:?}", "mcm-store-v1")
            }
            FileRejection::TooShort => write!(f, "shorter than the file magic"),
        }
    }
}

/// Validates the file magic, separating "foreign file" from "right
/// store, wrong schema version" so the operator message is precise.
///
/// # Errors
///
/// Returns the [`FileRejection`] describing why the bytes cannot be
/// scanned as an `mcm-store-v1` segment.
pub fn check_magic(bytes: &[u8]) -> Result<(), FileRejection> {
    if bytes.len() < MAGIC.len() {
        return Err(FileRejection::TooShort);
    }
    if &bytes[..MAGIC.len()] == MAGIC {
        return Ok(());
    }
    // Same family, different version digit(s): e.g. "mcm-store-v2\n".
    let family = b"mcm-store-v";
    if bytes.len() >= family.len() && &bytes[..family.len()] == family {
        let version: String = bytes[..MAGIC.len()]
            .iter()
            .map(|&b| b as char)
            .take_while(|c| *c != '\n')
            .collect();
        return Err(FileRejection::SchemaVersion(version));
    }
    Err(FileRejection::ForeignMagic)
}

/// Scans one segment's bytes (magic already verified) and yields every
/// record and quarantine decision in file order. Never panics on any
/// input.
pub fn scan_records(bytes: &[u8]) -> Vec<ScanEvent> {
    let mut events = Vec::new();
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < HEADER_LEN {
            events.push(ScanEvent::Quarantined {
                offset: pos,
                reason: format!("torn tail: {remaining} bytes, record header needs {HEADER_LEN}"),
            });
            break;
        }
        let header = &bytes[pos..pos + HEADER_LEN];
        let fingerprint = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let name_len = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let payload_len = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let header_cksum = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if checksum(&header[0..16]) != header_cksum {
            events.push(ScanEvent::Quarantined {
                offset: pos,
                reason: "corrupt record header (checksum mismatch); \
                         rest of file quarantined"
                    .to_string(),
            });
            break;
        }
        if name_len > MAX_NAME_LEN || payload_len > MAX_PAYLOAD_LEN {
            events.push(ScanEvent::Quarantined {
                offset: pos,
                reason: format!(
                    "implausible record lengths (name {name_len}, payload {payload_len}); \
                     rest of file quarantined"
                ),
            });
            break;
        }
        let body_len = name_len as usize + payload_len as usize;
        let total = HEADER_LEN + body_len + 8;
        if remaining < total {
            events.push(ScanEvent::Quarantined {
                offset: pos,
                reason: format!("torn tail: record needs {total} bytes, {remaining} remain"),
            });
            break;
        }
        let body = &bytes[pos + HEADER_LEN..pos + HEADER_LEN + body_len];
        let stored_cksum = u64::from_le_bytes(
            bytes[pos + HEADER_LEN + body_len..pos + total]
                .try_into()
                .unwrap(),
        );
        if checksum(body) != stored_cksum {
            events.push(ScanEvent::Quarantined {
                offset: pos,
                reason: "corrupt record body (checksum mismatch)".to_string(),
            });
            pos += total; // lengths are trusted: skip exactly this record
            continue;
        }
        let name_bytes = &body[..name_len as usize];
        let payload = &body[name_len as usize..];
        match (std::str::from_utf8(name_bytes), codec::decode(payload)) {
            (Ok(name), Ok(report)) => events.push(ScanEvent::Record {
                fingerprint,
                name: name.to_string(),
                report: Box::new(report),
            }),
            (name, report) => {
                let reason = match (name, report) {
                    (Err(_), _) => "record name is not UTF-8".to_string(),
                    (_, Err(e)) => format!("record payload undecodable: {e}"),
                    _ => unreachable!(),
                };
                events.push(ScanEvent::Quarantined {
                    offset: pos,
                    reason,
                });
            }
        }
        pos += total;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests::sample_report;

    fn segment_with(records: &[(u64, &str)]) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for &(fp, name) in records {
            bytes.extend_from_slice(&encode_record(fp, name, &sample_report(fp)));
        }
        bytes
    }

    fn live(events: &[ScanEvent]) -> Vec<(u64, String)> {
        events
            .iter()
            .filter_map(|e| match e {
                ScanEvent::Record {
                    fingerprint, name, ..
                } => Some((*fingerprint, name.clone())),
                ScanEvent::Quarantined { .. } => None,
            })
            .collect()
    }

    fn quarantined(events: &[ScanEvent]) -> usize {
        events
            .iter()
            .filter(|e| matches!(e, ScanEvent::Quarantined { .. }))
            .count()
    }

    #[test]
    fn clean_segment_scans_fully() {
        let bytes = segment_with(&[(1, "a"), (2, "b"), (3, "c")]);
        let events = scan_records(&bytes);
        assert_eq!(
            live(&events),
            vec![(1, "a".into()), (2, "b".into()), (3, "c".into())]
        );
        assert_eq!(quarantined(&events), 0);
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let full = segment_with(&[(1, "a"), (2, "b")]);
        // Chop into the middle of the second record.
        let second_start = segment_with(&[(1, "a")]).len();
        for cut in [second_start + 1, second_start + HEADER_LEN, full.len() - 1] {
            let events = scan_records(&full[..cut]);
            assert_eq!(live(&events), vec![(1, "a".into())], "cut at {cut}");
            assert_eq!(quarantined(&events), 1, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_body_skips_exactly_one_record() {
        let mut bytes = segment_with(&[(1, "a"), (2, "b"), (3, "c")]);
        // Flip a byte inside record 2's payload (past its header).
        let first_end = segment_with(&[(1, "a")]).len();
        bytes[first_end + HEADER_LEN + 4] ^= 0x40;
        let events = scan_records(&bytes);
        assert_eq!(live(&events), vec![(1, "a".into()), (3, "c".into())]);
        assert_eq!(quarantined(&events), 1);
    }

    #[test]
    fn corrupt_header_quarantines_rest_of_file() {
        let mut bytes = segment_with(&[(1, "a"), (2, "b"), (3, "c")]);
        let first_end = segment_with(&[(1, "a")]).len();
        bytes[first_end + 3] ^= 0x01; // inside record 2's header
        let events = scan_records(&bytes);
        assert_eq!(live(&events), vec![(1, "a".into())]);
        assert_eq!(quarantined(&events), 1);
    }

    #[test]
    fn schema_version_bump_is_refused_not_reinterpreted() {
        let mut bytes = segment_with(&[(1, "a")]);
        bytes[11] = b'2'; // "mcm-store-v2\n"
        assert_eq!(
            check_magic(&bytes),
            Err(FileRejection::SchemaVersion("mcm-store-v2".into()))
        );
    }

    #[test]
    fn foreign_and_short_files_are_rejected() {
        assert_eq!(
            check_magic(b"not a store file longer than magic"),
            Err(FileRejection::ForeignMagic)
        );
        assert_eq!(check_magic(b"mcm"), Err(FileRejection::TooShort));
        assert_eq!(check_magic(&segment_with(&[])), Ok(()));
    }

    #[test]
    fn empty_segment_scans_to_nothing() {
        let events = scan_records(&segment_with(&[]));
        assert!(events.is_empty());
    }

    #[test]
    fn scan_never_panics_on_arbitrary_bytes() {
        // Seeded garbage after a valid magic: the scan must classify,
        // never panic.
        let mut rng = mcm_engine::rng::Xoshiro256::new(0x5EED);
        for len in [0usize, 1, 7, 23, 24, 100, 4096] {
            let mut bytes = MAGIC.to_vec();
            for _ in 0..len {
                bytes.push(rng.next_range(256) as u8);
            }
            let _ = scan_records(&bytes);
        }
    }
}
