//! Telemetry is strictly out-of-band: enabling it never perturbs
//! simulated behaviour, and the counters themselves honour their
//! declared reproducibility class.
//!
//! The registry is a process-wide singleton shared by every `#[test]`
//! in this binary, and its counters are cumulative — so each test
//! takes *deltas* around the work it drives and the whole file runs
//! under one mutex. (Byte-identity of artifacts with `MCM_TELEMETRY`
//! on vs off is the other half of this contract, enforced end-to-end
//! in `scripts/tier1.sh`.)

use std::sync::{Mutex, MutexGuard};

use mcm::fault::{FaultConfig, SeededFaultPlan};
use mcm::gpu::{RunReport, Simulator, SystemConfig};
use mcm::probe::NullProbe;
use mcm::telemetry::json::Json;
use mcm::telemetry::{global, Snapshot, Value};
use mcm::workloads::{suite, WorkloadSpec};

/// Serializes every test in this file: deltas of a shared cumulative
/// registry are only attributable when runs don't interleave.
fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn spec() -> WorkloadSpec {
    suite::by_name("Stream")
        .expect("suite workload")
        .scaled(0.02)
}

/// Runs `f` and returns its report plus the registry delta it caused.
fn delta_of<F: FnOnce() -> RunReport>(f: F) -> (RunReport, Snapshot) {
    let before = global().snapshot();
    let report = f();
    (report, global().snapshot().delta_since(&before))
}

fn sharded(shards: usize) -> RunReport {
    let cfg = SystemConfig::baseline_mcm();
    let mut plan = SeededFaultPlan::new(FaultConfig::with_rate(7, 0.02));
    let (report, _) =
        Simulator::run_faulted_sharded(&cfg, &spec(), &mut NullProbe, &mut plan, shards);
    report
}

#[test]
fn identical_runs_produce_identical_deterministic_and_per_config_deltas() {
    let _guard = registry_lock();
    let (report_a, delta_a) = delta_of(|| sharded(2));
    let (report_b, delta_b) = delta_of(|| sharded(2));
    assert_eq!(report_a, report_b, "reruns must be bit-identical");
    assert_eq!(
        delta_a.deterministic, delta_b.deterministic,
        "Deterministic-class deltas must reproduce across identical runs"
    );
    assert_eq!(
        delta_a.per_config, delta_b.per_config,
        "PerConfig-class deltas must reproduce at fixed knob settings"
    );
    // The run actually exercised the instrumented layers: fault
    // injection counters and shard accounting must be non-zero.
    let count = |d: &Snapshot, name: &str| match d.deterministic.get(name) {
        Some(Value::Counter(n)) => *n,
        other => panic!("{name} missing or not a counter: {other:?}"),
    };
    assert!(
        count(&delta_a, "fault.link.errors_injected") > 0,
        "rate 0.02 over a full run must inject at least one link error"
    );
    match delta_a.per_config.get("shard.events") {
        Some(Value::Counter(n)) => assert!(*n > 0, "sharded run must pop events"),
        other => panic!("shard.events missing: {other:?}"),
    }
}

#[test]
fn deterministic_class_survives_shard_count_changes() {
    let _guard = registry_lock();
    let (report2, delta2) = delta_of(|| sharded(2));
    let (report4, delta4) = delta_of(|| sharded(4));
    // Sharding is an execution strategy: simulated results and every
    // Deterministic-class counter are invariant under it...
    assert_eq!(report2, report4, "shard count must not change the report");
    assert_eq!(
        delta2.deterministic, delta4.deterministic,
        "Deterministic-class deltas must be shard-count invariant"
    );
    // ...while PerConfig counters may legitimately move: an event
    // crossing a shard boundary is re-enqueued on the receiving side,
    // so pop totals depend on the partition. That drift is exactly why
    // shard.events is classed PerConfig rather than Deterministic.
    let events = |d: &Snapshot| match d.per_config.get("shard.events") {
        Some(Value::Counter(n)) => *n,
        other => panic!("shard.events missing: {other:?}"),
    };
    assert!(events(&delta2) > 0 && events(&delta4) > 0);
}

#[test]
fn telemetry_does_not_perturb_the_serial_engine() {
    let _guard = registry_lock();
    let cfg = SystemConfig::baseline_mcm();
    let spec = spec();
    // A run before any snapshot-taking, one surrounded by snapshots,
    // and one after: all bit-identical. The registry is observation
    // only.
    let untouched = Simulator::run(&cfg, &spec);
    let (observed, _delta) = delta_of(|| Simulator::run(&cfg, &spec));
    let after = Simulator::run(&cfg, &spec);
    assert_eq!(untouched, observed);
    assert_eq!(untouched, after);
}

#[test]
fn snapshot_json_round_trips_with_volatile_quarantined() {
    let _guard = registry_lock();
    let (_report, delta) = delta_of(|| sharded(2));
    let text = delta.to_json("roundtrip");
    let doc = Json::parse(&text).expect("snapshot JSON must parse with the in-repo reader");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(mcm::telemetry::snapshot::SCHEMA)
    );
    assert_eq!(doc.get("label").and_then(Json::as_str), Some("roundtrip"));
    for section in ["deterministic", "per_config", "volatile_not_reproducible"] {
        assert!(
            doc.get(section).and_then(Json::as_obj).is_some(),
            "snapshot must carry a {section:?} object"
        );
    }
    // Wall-clock style metrics live ONLY in the quarantined section —
    // nothing volatile may leak into the reproducible ones.
    let volatile = doc
        .get("volatile_not_reproducible")
        .and_then(Json::as_obj)
        .expect("volatile section");
    assert!(
        volatile.contains_key("shard.sequencer_stalls"),
        "sequencer stalls are scheduling-dependent and must be quarantined"
    );
    for section in ["deterministic", "per_config"] {
        let obj = doc.get(section).and_then(Json::as_obj).expect("section");
        for key in obj.keys() {
            assert!(
                !key.ends_with("_ns") && !key.contains("stall"),
                "{key:?} looks wall-clock-ish but sits in reproducible section {section:?}"
            );
        }
    }

    // CSV mirror: same metrics, stable header.
    let csv = delta.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("section,metric,kind,field,value"));
    assert!(
        csv.lines()
            .any(|l| l.starts_with("per_config,shard.events,counter,")),
        "CSV must carry the shard event counter:\n{csv}"
    );
}
