//! The seeded property runner.
//!
//! [`check`] generates deterministic cases from the workspace RNG,
//! executes the property under `catch_unwind` so plain `assert!`
//! macros work inside property bodies, and — on failure — greedily
//! shrinks the counterexample before panicking with a report that
//! includes the *case seed*. Re-running with that seed exported as
//! `MCM_PROP_SEED` replays exactly the failing case:
//!
//! ```text
//! MCM_PROP_SEED=0x1f3a... cargo test ring_hops_properties
//! ```
//!
//! Case counts default to [`DEFAULT_CASES`] and can be raised with
//! `MCM_PROP_CASES` for soak runs.

use std::panic::{self, AssertUnwindSafe};

use mcm_engine::rng::{SplitMix64, Xoshiro256};

use crate::gen::Gen;

/// Cases per property when `MCM_PROP_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// Panic payload that marks a case as discarded rather than failed
/// (emitted by the [`assume!`](crate::assume) macro).
#[derive(Debug, Clone, Copy)]
pub struct Discard;

/// Runner knobs; [`Config::default`] reads the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of non-discarded cases to execute.
    pub cases: u32,
    /// Cap on shrink attempts after a failure.
    pub max_shrink_steps: u32,
    /// Base seed the per-case seed stream derives from.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("MCM_PROP_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Config {
            cases,
            max_shrink_steps: 512,
            base_seed: 0x6D63_6D5F_7465_7374, // "mcm_test"
        }
    }
}

/// Runs `prop` against [`Config::default`]-many generated cases.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case fails, with
/// the shrunk counterexample and its reproducing seed in the message.
pub fn check<G, P>(name: &str, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value),
{
    check_with(&Config::default(), name, gen, prop);
}

/// [`check`] with explicit knobs.
pub fn check_with<G, P>(cfg: &Config, name: &str, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value),
{
    if let Some(seed) = seed_override() {
        run_seed(name, gen, &prop, seed, cfg.max_shrink_steps);
        return;
    }
    // A per-property seed stream: properties must not share case
    // streams, or every suite would explore correlated inputs.
    let mut master = SplitMix64::new(cfg.base_seed ^ fnv1a(name.as_bytes()));
    let mut executed = 0u32;
    let mut discards = 0u32;
    let max_discards = cfg.cases.saturating_mul(20).max(1000);
    while executed < cfg.cases {
        let case_seed = master.next_u64();
        match run_case(gen, &prop, case_seed) {
            CaseOutcome::Pass => executed += 1,
            CaseOutcome::Discard => {
                discards += 1;
                assert!(
                    discards <= max_discards,
                    "property '{name}': {discards} cases discarded before {} passed; \
                     loosen its assume! conditions or tighten its generators",
                    executed
                );
            }
            CaseOutcome::Fail(value, msg) => {
                report_failure(
                    cfg.max_shrink_steps,
                    name,
                    gen,
                    &prop,
                    value,
                    msg,
                    case_seed,
                );
            }
        }
    }
}

/// Replays exactly one case seed (the `MCM_PROP_SEED` path).
fn run_seed<G, P>(name: &str, gen: &G, prop: &P, seed: u64, max_shrink_steps: u32)
where
    G: Gen,
    P: Fn(&G::Value),
{
    match run_case(gen, prop, seed) {
        CaseOutcome::Pass => eprintln!("property '{name}': seed {seed:#x} passes"),
        CaseOutcome::Discard => eprintln!("property '{name}': seed {seed:#x} is discarded"),
        CaseOutcome::Fail(value, msg) => {
            report_failure(max_shrink_steps, name, gen, prop, value, msg, seed);
        }
    }
}

enum CaseOutcome<V> {
    Pass,
    Discard,
    Fail(V, String),
}

fn run_case<G, P>(gen: &G, prop: &P, case_seed: u64) -> CaseOutcome<G::Value>
where
    G: Gen,
    P: Fn(&G::Value),
{
    let mut rng = Xoshiro256::new(case_seed);
    let value = gen.generate(&mut rng);
    match execute(prop, &value) {
        Execution::Pass => CaseOutcome::Pass,
        Execution::Discard => CaseOutcome::Discard,
        Execution::Fail(msg) => CaseOutcome::Fail(value, msg),
    }
}

enum Execution {
    Pass,
    Discard,
    Fail(String),
}

fn execute<V, P: Fn(&V)>(prop: &P, value: &V) -> Execution {
    match panic::catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => Execution::Pass,
        Err(payload) => {
            if payload.is::<Discard>() {
                Execution::Discard
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Execution::Fail((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Execution::Fail(s.clone())
            } else {
                // Mirrors `mcm_exec::pool::panic_message` (testkit sits
                // below exec in the dependency order, so it cannot call
                // it): keep the payload's type and value instead of
                // flattening the cause to a generic placeholder.
                macro_rules! try_scalar {
                    ($($ty:ty),+) => {
                        $(if let Some(v) = payload.downcast_ref::<$ty>() {
                            return Execution::Fail(
                                format!("<{} panic payload: {v:?}>", stringify!($ty)),
                            );
                        })+
                    };
                }
                try_scalar!(i32, u32, i64, u64, usize, isize, bool, char);
                // `as_ref` first: `.type_id()` straight on the Box
                // would name the Box, not the payload.
                Execution::Fail(format!(
                    "<opaque panic payload: {:?}>",
                    payload.as_ref().type_id()
                ))
            }
        }
    }
}

/// Greedily shrinks a failing value, then panics with the report.
fn report_failure<G, P>(
    max_shrink_steps: u32,
    name: &str,
    gen: &G,
    prop: &P,
    value: G::Value,
    msg: String,
    case_seed: u64,
) -> !
where
    G: Gen,
    P: Fn(&G::Value),
{
    let mut current = value;
    let mut current_msg = msg;
    let mut budget = max_shrink_steps;
    let mut steps = 0u32;
    'outer: loop {
        for cand in gen.shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Execution::Fail(m) = execute(prop, &cand) {
                current = cand;
                current_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    panic!(
        "property '{name}' falsified\n\
         counterexample (after {steps} shrink steps): {current:?}\n\
         failure: {current_msg}\n\
         reproduce with: MCM_PROP_SEED={case_seed:#x} cargo test {name}"
    );
}

fn seed_override() -> Option<u64> {
    let raw = std::env::var("MCM_PROP_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("MCM_PROP_SEED must be a decimal or 0x-hex u64, got '{raw}'"),
    }
}

/// FNV-1a over bytes: a tiny stable hash for per-property seed streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Discards the current case unless `cond` holds — the moral
/// equivalent of `prop_assume!`. Discarded cases are regenerated and
/// do not count toward the case budget.
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::runner::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{u64s, vecs};

    #[test]
    fn passing_property_runs_all_cases() {
        let config = Config {
            cases: 50,
            ..Config::default()
        };
        check_with(&config, "tautology", &u64s(0..100), |&v| assert!(v < 100));
    }

    #[test]
    fn failing_property_reports_a_reproducing_seed_and_shrinks() {
        let gen = vecs(u64s(0..1000), 0..20);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check("sums_stay_small", &gen, |v: &Vec<u64>| {
                assert!(v.iter().sum::<u64>() < 500, "sum too big");
            });
        }));
        let msg = match result {
            Ok(()) => panic!("property should have been falsified"),
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
        };
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("MCM_PROP_SEED=0x"), "{msg}");
        // The shrunk counterexample should still violate the property
        // but be near-minimal: greedy shrinking on a sum bound lands
        // close to the 500 threshold, far below the ~10k worst case.
        let value_line = msg.lines().find(|l| l.contains("counterexample")).unwrap();
        assert!(value_line.contains('['), "{value_line}");

        // The printed seed reproduces the same failure end to end.
        let seed = msg
            .split("MCM_PROP_SEED=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("seed in message");
        let seed = u64::from_str_radix(seed.trim_start_matches("0x"), 16).unwrap();
        let replay = panic::catch_unwind(AssertUnwindSafe(|| {
            run_seed(
                "sums_stay_small",
                &gen,
                &|v: &Vec<u64>| {
                    assert!(v.iter().sum::<u64>() < 500, "sum too big");
                },
                seed,
                512,
            );
        }));
        let replay_msg = match replay {
            Ok(()) => panic!("replayed seed should fail again"),
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
        };
        assert!(replay_msg.contains("falsified"), "{replay_msg}");
    }

    #[test]
    fn shrinking_minimizes_simple_counterexamples() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check("all_below_700", &u64s(0..10_000), |&v| assert!(v < 700));
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Greedy halving toward the low bound must land exactly on the
        // boundary counterexample.
        assert!(
            msg.contains("counterexample (after") && msg.contains(": 700"),
            "expected fully shrunk value 700 in: {msg}"
        );
    }

    #[test]
    fn discarded_cases_do_not_count_and_excess_discards_abort() {
        let hits = std::cell::Cell::new(0u32);
        let config = Config {
            cases: 10,
            ..Config::default()
        };
        check_with(&config, "assume_filters", &u64s(0..100), |&v| {
            crate::assume!(v % 2 == 0);
            hits.set(hits.get() + 1);
            assert!(v % 2 == 0);
        });
        assert_eq!(hits.get(), 10, "every counted case survived the filter");

        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check("assume_everything_away", &u64s(0..100), |&v| {
                crate::assume!(v > 100); // impossible
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("discarded"), "{msg}");
    }

    /// Regression: a property that fails via `panic_any` with a
    /// non-string payload must surface the payload's type and value in
    /// the report, not an anonymous placeholder.
    #[test]
    fn non_string_property_panics_keep_their_cause() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check("typed_payload", &u64s(0..10), |&v| {
                if v < 10 {
                    panic::panic_any(v);
                }
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("<u64 panic payload:"),
            "typed payload missing from: {msg}"
        );
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"mcm"), fnv1a(b"mcm"));
    }
}
