//! Degradation curves under deterministic fault injection: sweeps
//! transient fault rates plus a hard single-GPM loss on one workload
//! per category, printing the curve and writing
//! `results/resilience.csv`.
//!
//! ```text
//! MCM_FAULT_SEED=42 cargo run --release -p mcm-bench --bin resilience
//! ```
//!
//! Honors `MCM_SCALE` (default 0.5) and `MCM_FAULT_SEED` (default:
//! the library's fixed seed); a fixed seed makes the CSV
//! byte-reproducible. `MCM_FAULT_RATE` is ignored — this bin sweeps
//! rates itself.

use std::fs;
use std::path::Path;

use mcm_bench::harness;
use mcm_bench::resilience;

fn main() {
    let _telemetry = mcm_bench::harness::telemetry_guard();
    let scale = harness::scale();
    let seed = harness::fault_seed();
    println!(
        "resilience sweep on the optimized MCM-GPU at MCM_SCALE={scale} \
         (seed {seed}); rates are per-site probabilities\n"
    );
    let points = resilience::sweep(scale, seed);
    print!("{}", resilience::render(&points));

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let path = out_dir.join("resilience.csv");
    fs::write(&path, resilience::to_csv(&points)).expect("write resilience.csv");
    eprintln!("\nwrote {}", path.display());
}
