//! Deterministic discrete-event simulation kernel for the MCM-GPU model.
//!
//! This crate is the substrate every other crate in the workspace builds
//! on. It deliberately contains **no** GPU-specific concepts; it provides
//! four things:
//!
//! * [`Cycle`] — the simulation clock (the modelled GPU runs at 1 GHz, so
//!   one cycle is one nanosecond).
//! * [`EventQueue`] — a calendar of timestamped events with a
//!   content-keyed `(time, wave, key)` tie-break, which makes
//!   whole-system runs bit-reproducible — even when one simulation is
//!   sharded across threads.
//! * [`Resource`] — a bandwidth server implementing the next-free-time
//!   queuing model. Links, DRAM channels, cache banks and SM issue slots
//!   are all `Resource`s; saturation and queuing delay emerge from it.
//! * [`rng`] and [`stats`] — reproducible random numbers and the counters
//!   and histograms every component reports through.
//!
//! # Example
//!
//! A 16 bytes/cycle resource serving two back-to-back 128-byte requests:
//! the second queues behind the first.
//!
//! ```
//! use mcm_engine::{Cycle, Resource};
//!
//! let mut link = Resource::new("link", 16.0);
//! let first = link.service(Cycle::new(0), 128);
//! let second = link.service(Cycle::new(0), 128);
//! assert_eq!(first, Cycle::new(8));
//! assert_eq!(second, Cycle::new(16));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cycle;
mod queue;
mod resource;

pub mod rng;
pub mod stats;

pub use cycle::Cycle;
pub use queue::EventQueue;
pub use resource::Resource;
