//! Property-based tests for the workload generator, running on the
//! in-repo `mcm-testkit` harness.
//!
//! Specs are built from tuples of primitives *inside* the property
//! bodies (rather than via `Gen::map`) so counterexamples shrink all
//! the way down through the constituent fields.

use mcm_mem::addr::LINES_PER_PAGE;
use mcm_testkit::prelude::*;
use mcm_workloads::spec::{LocalityProfile, WorkloadSpec};
use mcm_workloads::stream::{cta_insts, WarpOp, WarpStream};

/// The raw tuple a [`LocalityProfile`] is built from.
type ProfileParams = (f64, u32, f64, f64, f64, f64);

/// The raw tuple a [`WorkloadSpec`] is built from (minus the profile).
type SpecParams = (u32, u32, u32, f64, f64, u32, u64, u64, f64);

fn profile_gen() -> impl mcm_testkit::gen::Gen<Value = ProfileParams> {
    (
        f64s(0.0..1.0),  // streaming
        u32s(1..20_000), // reuse window
        f64s(0.0..0.4),  // neighbor frac
        f64s(0.0..0.4),  // shared frac
        f64s(0.0..0.5),  // shared region frac
        f64s(0.0..0.2),  // cold shared frac
    )
}

fn spec_gen() -> impl mcm_testkit::gen::Gen<Value = (SpecParams, ProfileParams)> {
    (
        (
            u32s(1..64),     // ctas
            u32s(1..8),      // warps per cta
            u32s(1..600),    // insts
            f64s(0.01..1.0), // mem ratio
            f64s(0.0..1.0),  // write frac
            u32s(1..4),      // iters
            u64s(20..28),    // footprint = 2^n bytes (1 MiB .. 128 MiB)
            any_u64(),       // seed
            f64s(0.0..1.0),  // imbalance
        ),
        profile_gen(),
    )
}

fn build_profile(p: ProfileParams) -> LocalityProfile {
    let (streaming, window, neighbor, shared, region, cold) = p;
    LocalityProfile {
        streaming,
        reuse_window_lines: window,
        neighbor_frac: neighbor,
        shared_frac: shared,
        shared_region_frac: region,
        cold_shared_frac: cold,
        divergence: None,
    }
}

fn build_spec(params: &(SpecParams, ProfileParams)) -> WorkloadSpec {
    let ((ctas, warps, insts, mem, wfrac, iters, fp, seed, imbalance), profile) = *params;
    WorkloadSpec {
        name: "prop",
        category: mcm_workloads::Category::MemoryIntensive,
        footprint_bytes: 1u64 << fp,
        ctas,
        warps_per_cta: warps,
        insts_per_warp: insts,
        mem_ratio: mem,
        write_frac: wfrac,
        kernel_iters: iters,
        locality: build_profile(profile),
        imbalance,
        seed,
    }
}

/// Every generated spec validates, and its streams (a) emit exactly
/// the per-CTA instruction budget, (b) stay inside the footprint,
/// and (c) are reproducible.
#[test]
fn stream_invariants() {
    check("stream_invariants", &spec_gen(), |params| {
        let spec = build_spec(params);
        assume!(spec.validate().is_ok());
        let cta = spec.ctas / 2;
        let warp = spec.warps_per_cta - 1;
        let ops: Vec<WarpOp> = WarpStream::new(&spec, 0, cta, warp).collect();
        let ops2: Vec<WarpOp> = WarpStream::new(&spec, 0, cta, warp).collect();
        assert_eq!(&ops, &ops2);

        let total: u64 = ops
            .iter()
            .map(|op| match op {
                WarpOp::Compute(n) => u64::from(*n),
                WarpOp::Access { .. } => 1,
            })
            .sum();
        assert_eq!(total, u64::from(cta_insts(&spec, cta)));

        let max_line = spec.footprint_lines();
        for op in &ops {
            if let WarpOp::Access { addr, .. } = op {
                assert!(addr.line().index() < max_line);
            }
        }
    });
}

/// Compute bursts are always nonzero (a zero burst would deadlock an
/// SM's issue accounting).
#[test]
fn compute_bursts_nonzero() {
    check("compute_bursts_nonzero", &spec_gen(), |params| {
        let spec = build_spec(params);
        assume!(spec.validate().is_ok());
        for op in WarpStream::new(&spec, 0, 0, 0) {
            if let WarpOp::Compute(n) = op {
                assert!(n > 0);
            }
        }
    });
}

/// Imbalance never shrinks a CTA's work below the base budget, and
/// is bounded by the configured factor.
#[test]
fn imbalance_bounds() {
    check(
        "imbalance_bounds",
        &(spec_gen(), u32s(0..64)),
        |&(ref params, cta)| {
            let spec = build_spec(params);
            assume!(spec.validate().is_ok());
            let cta = cta % spec.ctas;
            let n = cta_insts(&spec, cta);
            assert!(n >= spec.insts_per_warp);
            let ceil = (f64::from(spec.insts_per_warp) * (1.0 + spec.imbalance)).round() as u32 + 1;
            assert!(n <= ceil);
        },
    );
}

/// Cross-kernel page stability: with purely private access patterns
/// the pages a CTA touches in kernel 0 overlap heavily with kernel 1.
#[test]
fn cross_kernel_page_overlap() {
    check("cross_kernel_page_overlap", &any_u64(), |&seed| {
        let mut spec = WorkloadSpec::template("xk");
        spec.seed = seed;
        spec.insts_per_warp = 2000;
        spec.locality.shared_frac = 0.0;
        spec.locality.neighbor_frac = 0.0;
        let pages = |k: u32| -> std::collections::HashSet<u64> {
            WarpStream::new(&spec, k, 3, 0)
                .filter_map(|op| match op {
                    WarpOp::Access { addr, .. } => Some(addr.line().index() / LINES_PER_PAGE),
                    _ => None,
                })
                .collect()
        };
        let a = pages(0);
        let b = pages(1);
        assume!(!a.is_empty());
        let overlap = a.intersection(&b).count() as f64 / a.len() as f64;
        assert!(overlap > 0.5, "overlap {overlap}");
    });
}
