//! Analytical sweep planner: score a large configuration grid in
//! closed form, keep only the predicted Pareto frontier (plus a safety
//! band), and confirm those few points with full event simulation.
//!
//! The division of labour: `mcm_gpu::analytic` prices one point in
//! microseconds but carries model error; the event simulator is exact
//! but pays seconds per point. The planner composes them — the model
//! prunes the grid, the simulator (through [`Memo`], and therefore
//! through `MCM_STORE` warm starts) certifies the survivors, and every
//! confirmation is checked against the model's error envelope so a
//! drifting model fails loudly instead of silently pruning the true
//! optimum.
//!
//! Everything is deterministic: the grid, the calibration anchors, the
//! frontier selection, and the rendered report depend only on the
//! workload scale and the (memoized) simulation results — never on
//! whether the confirmations ran cold or were served from the store.

use std::sync::OnceLock;

use mcm_gpu::analytic::{AnalyticModel, Calibration, Observation};
use mcm_gpu::{SystemConfig, MIB};
use mcm_mem::cache::AllocFilter;
use mcm_mem::page::PlacementPolicy;
use mcm_sm::SchedulerPolicy;
use mcm_telemetry::{Class, Counter};
use mcm_workloads::{suite, Category, WorkloadSpec};

use crate::harness::{f2, pct, Memo, TextTable};

/// Pre-registered global `analytic.*` planner telemetry. The scoring
/// counter (`analytic.scored`) lives with the model itself in
/// `mcm_gpu::analytic`; these cover the planner's pruning and
/// confirmation decisions. All deterministic: the grid and frontier are
/// pure functions of the scale and the simulation results, independent
/// of `MCM_JOBS`/`MCM_SHARDS` and of store warmth.
struct PlannerTele {
    pruned: Counter,
    confirmed: Counter,
    violations: Counter,
}

fn tele() -> &'static PlannerTele {
    static TELE: OnceLock<PlannerTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let reg = mcm_telemetry::global();
        PlannerTele {
            pruned: reg.counter("analytic.pruned", Class::Deterministic),
            confirmed: reg.counter("analytic.confirmed", Class::Deterministic),
            violations: reg.counter("analytic.envelope_violations", Class::Deterministic),
        }
    })
}

/// One exploration request: the configuration grid, the workloads to
/// score it against, and the pruning/verification knobs.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Candidate configurations (the grid).
    pub configs: Vec<SystemConfig>,
    /// Workloads each configuration is scored and confirmed on.
    pub workloads: Vec<WorkloadSpec>,
    /// Safety band: a point survives pruning unless some cheaper-or-
    /// equal point beats its predicted throughput by more than this
    /// fraction. Insurance against model error near the frontier.
    pub band: f64,
    /// Per-point error envelope: a confirmed point whose geomean-IPC
    /// relative error (`|pred - sim| / sim` over the plan's workloads)
    /// exceeds this fraction counts as an envelope violation. The
    /// geomean is the quantity the planner ranks on; per-workload
    /// errors are reported but not gated (a first-order model's
    /// per-workload error is structurally larger than the error of the
    /// aggregate it prices the frontier with).
    pub envelope: f64,
    /// Seed for the calibration anchor selection.
    pub calibration_seed: u64,
}

impl Plan {
    /// The default exploration grid: link bandwidth × GPM count × L1.5
    /// design point × page placement × CTA scheduler — 120
    /// configurations, scored against one representative workload per
    /// category. Small enough for a tier-1 smoke, wide enough to cross
    /// every modeled design axis.
    pub fn default_grid() -> Plan {
        let links = [256.0, 512.0, 768.0, 1536.0, 3072.0];
        let gpms = [2u8, 4, 8];
        let l15_mb = [0u64, 16];
        let placements = [PlacementPolicy::Interleaved, PlacementPolicy::FirstTouch];
        let schedulers = [SchedulerPolicy::Centralized, SchedulerPolicy::Distributed];
        let mut configs = Vec::new();
        for &g in &gpms {
            for &link in &links {
                for &l15 in &l15_mb {
                    for &placement in &placements {
                        for &scheduler in &schedulers {
                            let mut cfg = SystemConfig::mcm_n_gpms(g);
                            cfg.topology.link_gbps = link;
                            cfg.caches.l15_bytes_total = l15 * MIB;
                            cfg.caches.l15_filter = AllocFilter::RemoteOnly;
                            cfg.placement = placement;
                            cfg.scheduler = scheduler;
                            let p = match placement {
                                PlacementPolicy::Interleaved => "int",
                                PlacementPolicy::FirstTouch => "ft",
                                PlacementPolicy::PageRoundRobin => "rr",
                            };
                            let s = match scheduler {
                                SchedulerPolicy::Centralized => "cen",
                                _ => "dis",
                            };
                            cfg.name = format!("x{g}g-{link:.0}gbps-{l15}mb-{p}-{s}");
                            cfg.validate().expect("grid configs must be valid");
                            configs.push(cfg);
                        }
                    }
                }
            }
        }
        // One representative workload per category, in category order —
        // the cheapest grid that still exercises every calibration
        // bucket.
        let all = suite::suite();
        let workloads = Category::ALL
            .iter()
            .map(|&cat| {
                all.iter()
                    .find(|w| w.category == cat)
                    .expect("every category is populated")
                    .clone()
            })
            .collect();
        Plan {
            configs,
            workloads,
            band: 0.10,
            envelope: 1.00,
            calibration_seed: 0x5EED,
        }
    }
}

/// A hardware-cost proxy for Pareto ranking: total package escape
/// bandwidth in GB/s plus an SRAM term (64 GB/s-equivalents per MiB of
/// L1.5), so bigger links and bigger GPM-side caches both cost.
pub fn hardware_cost(cfg: &SystemConfig) -> f64 {
    cfg.topology.link_gbps * f64::from(cfg.topology.modules)
        + (cfg.caches.l15_bytes_total / MIB) as f64 * 64.0
}

/// One analytically scored grid point.
#[derive(Debug, Clone)]
pub struct ScoredPoint {
    /// The configuration.
    pub config: SystemConfig,
    /// Geometric-mean predicted IPC over the plan's workloads.
    pub predicted_ipc: f64,
    /// [`hardware_cost`] of the configuration.
    pub cost: f64,
    /// Strictly non-dominated (band of zero)?
    pub on_frontier: bool,
}

/// One frontier point after simulation confirmed it.
#[derive(Debug, Clone)]
pub struct ConfirmedPoint {
    /// The scored point this confirms.
    pub point: ScoredPoint,
    /// Geometric-mean simulated IPC over the plan's workloads.
    pub simulated_ipc: f64,
    /// Relative error of the geomean IPC (`|pred - sim| / sim`) — the
    /// gated quantity.
    pub rel_err: f64,
    /// Worst per-workload relative IPC error (reported, not gated).
    pub worst_rel_err: f64,
    /// Did `rel_err` exceed the plan's envelope?
    pub violation: bool,
}

/// What one [`explore`] call produced.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The rendered, byte-deterministic report.
    pub rendered: String,
    /// Grid points scored analytically (configs × workloads).
    pub scored: usize,
    /// Configurations pruned without simulation.
    pub pruned: usize,
    /// Frontier + band configurations confirmed by simulation.
    pub confirmed: Vec<ConfirmedPoint>,
    /// Confirmed points whose error exceeded the envelope.
    pub envelope_violations: usize,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0u32);
    for v in values {
        sum += v.max(1e-12).ln();
        n += 1;
    }
    assert!(n > 0, "geomean of an empty selection");
    (sum / f64::from(n)).exp()
}

/// Runs the full plan: calibrate → score → prune → confirm → verify
/// envelope. Simulation happens only for calibration anchors and the
/// kept frontier/band points, all through `memo` (and so through
/// `MCM_STORE` when attached).
pub fn explore(memo: &mut Memo, plan: &Plan) -> ExploreOutcome {
    assert!(!plan.configs.is_empty() && !plan.workloads.is_empty());
    let scale = memo.scale();

    // --- calibrate once per category against the event simulator ----
    let anchor_pairs = Calibration::anchor_pairs(plan.calibration_seed);
    {
        let pairs: Vec<(&SystemConfig, &WorkloadSpec)> =
            anchor_pairs.iter().map(|(c, w)| (c, w)).collect();
        memo.warm(&pairs);
    }
    let anchors: Vec<(SystemConfig, WorkloadSpec, Observation)> = anchor_pairs
        .into_iter()
        .map(|(cfg, spec)| {
            let obs = Observation::from_report(&memo.run(&cfg, &spec));
            // The memo simulated `spec.scaled(scale)`; calibrate the
            // raw model against exactly that horizon.
            (cfg.clone(), spec.scaled(scale), obs)
        })
        .collect();
    let model = AnalyticModel::with_calibration(Calibration::fit(&anchors));

    // --- score the whole grid in closed form ------------------------
    let descriptors: Vec<_> = plan
        .workloads
        .iter()
        .map(|w| w.scaled(scale).descriptor())
        .collect();
    let mut points: Vec<ScoredPoint> = plan
        .configs
        .iter()
        .map(|cfg| {
            let predicted_ipc = geomean(
                descriptors
                    .iter()
                    .map(|d| model.predict_descriptor(cfg, d).ipc),
            );
            ScoredPoint {
                config: cfg.clone(),
                predicted_ipc,
                cost: hardware_cost(cfg),
                on_frontier: false,
            }
        })
        .collect();
    let scored = points.len() * descriptors.len();

    // --- keep the predicted Pareto frontier plus the safety band ----
    // `p` is dominated outright when some point at no greater cost
    // predicts at least its throughput (ties broken toward the cheaper
    // point); it is *pruned* only when the better point clears the
    // safety band, so model error near the frontier cannot starve the
    // confirmation pass.
    let dominates = |q: &ScoredPoint, p: &ScoredPoint, margin: f64| -> bool {
        q.cost <= p.cost
            && q.predicted_ipc >= p.predicted_ipc * (1.0 + margin)
            && (q.cost < p.cost || q.predicted_ipc > p.predicted_ipc)
    };
    for i in 0..points.len() {
        points[i].on_frontier = !points
            .iter()
            .enumerate()
            .any(|(j, q)| j != i && dominates(q, &points[i], 0.0));
    }
    let mut kept: Vec<ScoredPoint> = points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| q.config.name != p.config.name && dominates(q, p, plan.band))
        })
        .cloned()
        .collect();
    kept.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .expect("costs are finite")
            .then_with(|| a.config.name.cmp(&b.config.name))
    });
    let pruned = points.len() - kept.len();
    tele().pruned.add(pruned as u64);

    // --- confirm survivors with full simulation ---------------------
    {
        let pairs: Vec<(&SystemConfig, &WorkloadSpec)> = kept
            .iter()
            .flat_map(|p| plan.workloads.iter().map(move |w| (&p.config, w)))
            .collect();
        memo.warm(&pairs);
    }
    let mut confirmed = Vec::with_capacity(kept.len());
    let mut envelope_violations = 0usize;
    for point in kept {
        let mut worst_rel_err = 0.0f64;
        let mut sim_ipcs = Vec::with_capacity(plan.workloads.len());
        for (w, d) in plan.workloads.iter().zip(&descriptors) {
            let sim = memo.run(&point.config, w).ipc();
            let pred = model.predict_descriptor(&point.config, d).ipc;
            sim_ipcs.push(sim);
            worst_rel_err = worst_rel_err.max((pred - sim).abs() / sim);
            tele().confirmed.inc();
        }
        let simulated_ipc = geomean(sim_ipcs.into_iter());
        let rel_err = (point.predicted_ipc - simulated_ipc).abs() / simulated_ipc;
        let violation = rel_err > plan.envelope;
        if violation {
            envelope_violations += 1;
            tele().violations.inc();
        }
        confirmed.push(ConfirmedPoint {
            simulated_ipc,
            rel_err,
            worst_rel_err,
            violation,
            point,
        });
    }

    // --- render ------------------------------------------------------
    let mut t = TextTable::new(vec![
        "config", "cost", "pred IPC", "sim IPC", "err", "worst", "status",
    ]);
    for c in &confirmed {
        let err = c.simulated_ipc / c.point.predicted_ipc;
        t.row(vec![
            c.point.config.name.clone(),
            format!("{:.0}", c.point.cost),
            f2(c.point.predicted_ipc),
            f2(c.simulated_ipc),
            pct(err),
            format!("{:.0}%", c.worst_rel_err * 100.0),
            match (c.violation, c.point.on_frontier) {
                (true, _) => "VIOLATION".to_string(),
                (false, true) => "frontier".to_string(),
                (false, false) => "band".to_string(),
            },
        ]);
    }
    let frontier = confirmed.iter().filter(|c| c.point.on_frontier).count();
    let rendered = format!(
        "Analytic design-space exploration\n\
         grid: {} configurations x {} workloads = {} points scored analytically\n\
         pruned: {} configurations without simulation; confirming {} \
         ({} frontier + {} band, safety band {:.0}%)\n\n{}\n\
         envelope violations: {} (geomean-IPC error bound {:.0}%)\n",
        plan.configs.len(),
        plan.workloads.len(),
        scored,
        pruned,
        confirmed.len(),
        frontier,
        confirmed.len() - frontier,
        plan.band * 100.0,
        t.render(),
        envelope_violations,
        plan.envelope * 100.0,
    );
    ExploreOutcome {
        rendered,
        scored,
        pruned,
        confirmed,
        envelope_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_valid_and_unique() {
        let plan = Plan::default_grid();
        assert_eq!(plan.configs.len(), 120);
        assert_eq!(plan.workloads.len(), 3);
        let mut names: Vec<&str> = plan.configs.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), plan.configs.len(), "grid names must be unique");
    }

    #[test]
    fn cost_prices_links_and_sram() {
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.topology.link_gbps = 768.0;
        cfg.caches.l15_bytes_total = 0;
        let base = hardware_cost(&cfg);
        assert_eq!(base, 768.0 * 4.0);
        cfg.caches.l15_bytes_total = 16 * MIB;
        assert_eq!(hardware_cost(&cfg), base + 16.0 * 64.0);
    }

    #[test]
    fn explore_small_grid_prunes_and_confirms() {
        let mut plan = Plan::default_grid();
        // A tiny sub-grid keeps the test fast: one GPM count, all
        // links, no L1.5 axis.
        plan.configs.retain(|c| {
            c.topology.modules == 4 && c.caches.l15_bytes_total == 0 && c.name.ends_with("int-cen")
        });
        assert_eq!(plan.configs.len(), 5);
        plan.workloads = vec![suite::by_name("Stream").unwrap()];
        let mut memo = Memo::new(0.005);
        let outcome = explore(&mut memo, &plan);
        assert_eq!(outcome.scored, 5);
        assert!(!outcome.confirmed.is_empty());
        assert!(outcome.pruned + outcome.confirmed.len() == 5);
        assert!(outcome.rendered.contains("envelope violations"));
        // Determinism: a second pass over a fresh memo renders the
        // identical report (the memo serves everything from cache the
        // second time within one process anyway; use a new one).
        let mut memo2 = Memo::new(0.005);
        let outcome2 = explore(&mut memo2, &plan);
        assert_eq!(outcome.rendered, outcome2.rendered);
    }
}
