//! The streaming multiprocessor execution model.
//!
//! An [`SmCore`] models one SM as an in-order, warp-parallel issue
//! engine (§4: "SMs are modeled as in-order execution processors that
//! accurately model warp-level parallelism"). Its two constraints are
//! *occupancy* — at most `max_warps` resident warps (64, Table 3) — and
//! *issue bandwidth* — a [`Resource`] serving `issue_ipc` instructions
//! per cycle shared by all resident warps. Latency hiding emerges: while
//! one warp waits on memory, others consume the issue resource.

use mcm_engine::stats::Counter;
use mcm_engine::{Cycle, Resource};

/// Static configuration of one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmConfig {
    /// Maximum resident warps (Table 3: 64 per SM).
    pub max_warps: u32,
    /// Peak issue rate in instructions per cycle.
    pub issue_ipc: f64,
    /// Outstanding-miss entries in the SM's load/store unit MSHR.
    pub mshr_entries: usize,
    /// Independent loads a warp may keep in flight before blocking on
    /// the oldest (register-level memory parallelism; real SMs allow
    /// several).
    pub mlp_per_warp: u32,
}

impl SmConfig {
    /// The paper's baseline SM: 64 warps, dual issue, 64 MSHR entries.
    pub const fn pascal_like() -> Self {
        SmConfig {
            max_warps: 64,
            issue_ipc: 2.0,
            mshr_entries: 64,
            mlp_per_warp: 4,
        }
    }
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig::pascal_like()
    }
}

/// One SM's dynamic issue and occupancy state.
///
/// # Example
///
/// ```
/// use mcm_engine::Cycle;
/// use mcm_sm::core::{SmConfig, SmCore};
///
/// let mut sm = SmCore::new(SmConfig::pascal_like());
/// assert!(sm.try_admit(4)); // one 4-warp CTA
/// let done = sm.issue(Cycle::ZERO, 100);
/// assert_eq!(done, Cycle::new(50)); // 100 insts at 2 IPC
/// sm.retire_warps(4);
/// assert_eq!(sm.resident_warps(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SmCore {
    config: SmConfig,
    issue: Resource,
    resident_warps: u32,
    resident_ctas: u32,
    instructions: Counter,
    mem_ops: Counter,
}

impl SmCore {
    /// Creates an idle SM.
    pub fn new(config: SmConfig) -> Self {
        assert!(config.max_warps > 0, "SM needs warp slots");
        assert!(config.issue_ipc > 0.0, "SM needs issue bandwidth");
        SmCore {
            config,
            issue: Resource::new("sm-issue", config.issue_ipc),
            resident_warps: 0,
            resident_ctas: 0,
            instructions: Counter::new(),
            mem_ops: Counter::new(),
        }
    }

    /// The SM's configuration.
    pub fn config(&self) -> &SmConfig {
        &self.config
    }

    /// Admits a CTA of `warps` warps if occupancy allows; returns
    /// whether it was admitted.
    pub fn try_admit(&mut self, warps: u32) -> bool {
        if self.resident_warps + warps <= self.config.max_warps {
            self.resident_warps += warps;
            self.resident_ctas += 1;
            true
        } else {
            false
        }
    }

    /// Retires `warps` warps (a CTA completing).
    ///
    /// # Panics
    ///
    /// Panics if more warps retire than are resident — a scheduler bug.
    pub fn retire_warps(&mut self, warps: u32) {
        assert!(
            warps <= self.resident_warps,
            "retiring {warps} warps but only {} resident",
            self.resident_warps
        );
        self.resident_warps -= warps;
        self.resident_ctas = self.resident_ctas.saturating_sub(1);
    }

    /// Issues `insts` back-to-back instructions for one warp starting
    /// at `now`; returns when the burst has issued. Contention with
    /// other warps' bursts is captured by the shared issue resource.
    pub fn issue(&mut self, now: Cycle, insts: u32) -> Cycle {
        self.instructions.add(u64::from(insts));
        self.issue.service(now, u64::from(insts))
    }

    /// Records one memory operation issued (costs one issue slot).
    pub fn issue_mem_op(&mut self, now: Cycle) -> Cycle {
        self.mem_ops.inc();
        self.instructions.inc();
        self.issue.service(now, 1)
    }

    /// Currently resident warps.
    pub fn resident_warps(&self) -> u32 {
        self.resident_warps
    }

    /// Currently resident CTAs.
    pub fn resident_ctas(&self) -> u32 {
        self.resident_ctas
    }

    /// Whether any warps are resident.
    pub fn is_idle(&self) -> bool {
        self.resident_warps == 0
    }

    /// Total instructions issued.
    pub fn instructions(&self) -> u64 {
        self.instructions.get()
    }

    /// Total memory operations issued.
    pub fn mem_ops(&self) -> u64 {
        self.mem_ops.get()
    }

    /// Issue-slot utilization over `elapsed`.
    pub fn issue_utilization(&self, elapsed: Cycle) -> f64 {
        self.issue.utilization(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_limits_admission() {
        let mut sm = SmCore::new(SmConfig {
            max_warps: 8,
            issue_ipc: 2.0,
            mshr_entries: 4,
            mlp_per_warp: 4,
        });
        assert!(sm.try_admit(4));
        assert!(sm.try_admit(4));
        assert!(!sm.try_admit(1), "9th warp must be rejected");
        assert_eq!(sm.resident_warps(), 8);
        assert_eq!(sm.resident_ctas(), 2);
        sm.retire_warps(4);
        assert!(sm.try_admit(4));
    }

    #[test]
    fn issue_bandwidth_is_shared() {
        let mut sm = SmCore::new(SmConfig::pascal_like());
        sm.try_admit(2);
        // Two warps each issuing 100 instructions at the same time share
        // the 2-IPC pipe: 100 cycles total, not 50.
        let a = sm.issue(Cycle::ZERO, 100);
        let b = sm.issue(Cycle::ZERO, 100);
        assert_eq!(a, Cycle::new(50));
        assert_eq!(b, Cycle::new(100));
        assert_eq!(sm.instructions(), 200);
    }

    #[test]
    fn mem_ops_cost_an_issue_slot_and_are_counted() {
        let mut sm = SmCore::new(SmConfig::pascal_like());
        sm.try_admit(1);
        sm.issue_mem_op(Cycle::ZERO);
        assert_eq!(sm.mem_ops(), 1);
        assert_eq!(sm.instructions(), 1);
    }

    #[test]
    fn idle_tracking() {
        let mut sm = SmCore::new(SmConfig::pascal_like());
        assert!(sm.is_idle());
        sm.try_admit(4);
        assert!(!sm.is_idle());
        sm.retire_warps(4);
        assert!(sm.is_idle());
    }

    #[test]
    #[should_panic(expected = "retiring")]
    fn over_retirement_panics() {
        let mut sm = SmCore::new(SmConfig::pascal_like());
        sm.try_admit(2);
        sm.retire_warps(3);
    }

    #[test]
    fn utilization_reflects_issue_pressure() {
        let mut sm = SmCore::new(SmConfig::pascal_like());
        sm.try_admit(1);
        sm.issue(Cycle::ZERO, 100); // busy 50 cycles
        assert!((sm.issue_utilization(Cycle::new(100)) - 0.5).abs() < 1e-9);
    }
}
