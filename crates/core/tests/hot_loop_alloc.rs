//! The run loop's zero-allocation steady-state contract.
//!
//! The first few kernels warm every pool: slot arenas grow to their
//! peak, the calendar queue builds its node pool, first-touch page
//! mappings and MSHR maps reach capacity. Every later kernel of the
//! same grid must then execute **without a single allocator call** —
//! the event loop reuses pooled waiter buffers, recycled queue nodes
//! and the rewound CTA pool. The simulator is deterministic, so the counter delta is
//! exact: a regression that reintroduces per-event allocation fails
//! this test reproducibly, not statistically.

use mcm_engine::Cycle;
use mcm_gpu::{Simulator, SystemConfig};
use mcm_probe::Probe;
use mcm_testkit::alloc::CountingAllocator;
use mcm_workloads::WorkloadSpec;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const KERNELS: usize = 6;

/// Snapshots the allocator at each kernel boundary into fixed arrays —
/// the probe itself must not allocate, or it would poison the count.
struct KernelWindows {
    begin: [u64; KERNELS],
    end: [u64; KERNELS],
    seen: usize,
}

impl Probe for KernelWindows {
    fn kernel_begin(&mut self, kernel: u32, _now: Cycle) {
        self.begin[kernel as usize] = ALLOC.alloc_events();
    }

    fn kernel_end(&mut self, kernel: u32, _now: Cycle) {
        self.end[kernel as usize] = ALLOC.alloc_events();
        self.seen = self.seen.max(kernel as usize + 1);
    }
}

fn alloc_probe_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::template("alloc-probe");
    spec.ctas = 64;
    spec.warps_per_cta = 2;
    spec.insts_per_warp = 128;
    spec.kernel_iters = KERNELS as u32;
    // A small footprint with many more accesses than pages, so kernel 0
    // touches (and maps) every first-touch page and later kernels hit a
    // fully-built page table.
    spec.footprint_bytes = 1 << 20;
    spec
}

fn small_machine() -> SystemConfig {
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.topology.sms_per_module = 4; // 16 SMs
    cfg
}

/// Each kernel draws a fresh address stream, so first-touch page
/// mappings (and the hash-map capacity behind them) keep warming for a
/// few launches; the machine pools themselves are warm after kernel 0.
/// Steady state must then be exactly allocation-free.
fn assert_steady_state_alloc_free(probe: &KernelWindows) {
    assert_eq!(probe.seen, KERNELS, "every kernel must report its window");
    const WARMUP_KERNELS: usize = 3;
    for k in WARMUP_KERNELS..KERNELS {
        assert_eq!(
            probe.end[k] - probe.begin[k],
            0,
            "kernel {k} allocated in steady state (per-kernel allocator \
             calls: {:?})",
            (0..KERNELS)
                .map(|k| probe.end[k] - probe.begin[k])
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn steady_state_kernels_do_not_allocate() {
    let spec = alloc_probe_spec();
    let cfg = small_machine();
    let mut probe = KernelWindows {
        begin: [0; KERNELS],
        end: [0; KERNELS],
        seen: 0,
    };
    let report = Simulator::run_probed(&cfg, &spec, &mut probe);
    assert!(report.cycles > Cycle::ZERO);
    assert_steady_state_alloc_free(&probe);
}

/// The same contract holds per shard under sharded execution: after
/// warm-up, a steady-state kernel spends zero allocator calls across
/// ALL shard threads — the epoch mailboxes, sequencer slots, and
/// per-shard arenas reach capacity during the warm-up kernels and are
/// recycled thereafter. (The window probe is `ACTIVE = false`, so it
/// rides the sharded engine instead of forcing the serial fallback;
/// its kernel-boundary callbacks are forwarded by the epoch leader.)
#[test]
fn sharded_steady_state_kernels_do_not_allocate() {
    struct PassiveWindows(KernelWindows);
    impl Probe for PassiveWindows {
        const ACTIVE: bool = false;
        fn kernel_begin(&mut self, kernel: u32, now: Cycle) {
            self.0.kernel_begin(kernel, now);
        }
        fn kernel_end(&mut self, kernel: u32, now: Cycle) {
            self.0.kernel_end(kernel, now);
        }
    }

    let spec = alloc_probe_spec();
    let cfg = small_machine();
    let mut probe = PassiveWindows(KernelWindows {
        begin: [0; KERNELS],
        end: [0; KERNELS],
        seen: 0,
    });
    let (report, stats) =
        Simulator::run_faulted_sharded(&cfg, &spec, &mut probe, &mut mcm_fault::NullFaultPlan, 2);
    assert!(report.cycles > Cycle::ZERO);
    assert_eq!(stats.shards, 2, "the run must actually shard");
    assert_steady_state_alloc_free(&probe.0);
}
