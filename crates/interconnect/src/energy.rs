//! The integration-tier energy model of paper Table 2.
//!
//! The paper's energy argument is analytic: every byte moved across a
//! tier costs that tier's energy-per-bit, and the tiers get an order of
//! magnitude worse at each level of disintegration. [`EnergyLedger`]
//! accumulates traffic per tier and reports joules.

use std::fmt;

/// An integration tier from paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// On-chip wires (crossbars, cache banks).
    Chip,
    /// On-package GRS links between GPMs.
    Package,
    /// On-board links between GPUs (NVLink-class).
    Board,
    /// Off-node system interconnect (IB-class).
    System,
}

impl Tier {
    /// All tiers, in increasing energy order.
    pub const ALL: [Tier; 4] = [Tier::Chip, Tier::Package, Tier::Board, Tier::System];

    /// Signaling energy in picojoules per bit (paper Table 2).
    pub const fn pj_per_bit(self) -> f64 {
        match self {
            Tier::Chip => 0.08,   // 80 fJ/bit
            Tier::Package => 0.5, // GRS: 0.54 pJ/bit rounded as in Table 2
            Tier::Board => 10.0,
            Tier::System => 250.0,
        }
    }

    /// Approximate available bandwidth in GB/s (paper Table 2; "10s
    /// TB/s" for chip is represented as 20 TB/s).
    pub const fn bandwidth_gbps(self) -> f64 {
        match self {
            Tier::Chip => 20_000.0,
            Tier::Package => 1_500.0,
            Tier::Board => 256.0,
            Tier::System => 12.5,
        }
    }

    /// The qualitative overhead column of Table 2.
    pub const fn overhead(self) -> &'static str {
        match self {
            Tier::Chip => "Low",
            Tier::Package => "Medium",
            Tier::Board => "High",
            Tier::System => "Very High",
        }
    }

    /// Energy in joules to move `bytes` across this tier.
    pub fn joules_for_bytes(self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.pj_per_bit() * 1e-12
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Tier::Chip => "Chip",
            Tier::Package => "Package",
            Tier::Board => "Board",
            Tier::System => "System",
        };
        f.write_str(name)
    }
}

/// DRAM access energy per bit in picojoules, a standard HBM-class
/// estimate (≈4 pJ/bit) used so run reports can include memory energy
/// alongside interconnect energy. Not part of Table 2; documented in
/// DESIGN.md.
pub const DRAM_PJ_PER_BIT: f64 = 4.0;

/// Accumulates traffic per tier and converts it to energy.
///
/// # Example
///
/// ```
/// use mcm_interconnect::energy::{EnergyLedger, Tier};
///
/// let mut ledger = EnergyLedger::new();
/// ledger.record(Tier::Package, 1 << 30); // 1 GiB over GRS links
/// let j = ledger.joules(Tier::Package);
/// assert!(j > 0.004 && j < 0.005); // ~4.3 mJ at 0.5 pJ/bit
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    chip_bytes: u64,
    package_bytes: u64,
    board_bytes: u64,
    system_bytes: u64,
    dram_bytes: u64,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub const fn new() -> Self {
        EnergyLedger {
            chip_bytes: 0,
            package_bytes: 0,
            board_bytes: 0,
            system_bytes: 0,
            dram_bytes: 0,
        }
    }

    /// Records `bytes` moved across `tier`.
    pub fn record(&mut self, tier: Tier, bytes: u64) {
        let slot = match tier {
            Tier::Chip => &mut self.chip_bytes,
            Tier::Package => &mut self.package_bytes,
            Tier::Board => &mut self.board_bytes,
            Tier::System => &mut self.system_bytes,
        };
        *slot = slot.saturating_add(bytes);
    }

    /// Records `bytes` of DRAM array access.
    pub fn record_dram(&mut self, bytes: u64) {
        self.dram_bytes = self.dram_bytes.saturating_add(bytes);
    }

    /// Bytes recorded for `tier`.
    pub fn bytes(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Chip => self.chip_bytes,
            Tier::Package => self.package_bytes,
            Tier::Board => self.board_bytes,
            Tier::System => self.system_bytes,
        }
    }

    /// Energy spent on `tier`, in joules.
    pub fn joules(&self, tier: Tier) -> f64 {
        tier.joules_for_bytes(self.bytes(tier))
    }

    /// Bytes recorded as DRAM array accesses — the raw counter behind
    /// [`EnergyLedger::dram_joules`], exposed so a ledger can be
    /// persisted and reconstructed bit-exact.
    pub const fn dram_bytes(&self) -> u64 {
        self.dram_bytes
    }

    /// DRAM access energy, in joules.
    pub fn dram_joules(&self) -> f64 {
        self.dram_bytes as f64 * 8.0 * DRAM_PJ_PER_BIT * 1e-12
    }

    /// Total data-movement energy (all tiers + DRAM), in joules.
    pub fn total_joules(&self) -> f64 {
        Tier::ALL.iter().map(|&t| self.joules(t)).sum::<f64>() + self.dram_joules()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.chip_bytes += other.chip_bytes;
        self.package_bytes += other.package_bytes;
        self.board_bytes += other.board_bytes;
        self.system_bytes += other.system_bytes;
        self.dram_bytes += other.dram_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_get_monotonically_worse() {
        for w in Tier::ALL.windows(2) {
            assert!(w[0].pj_per_bit() < w[1].pj_per_bit());
            assert!(w[0].bandwidth_gbps() > w[1].bandwidth_gbps());
        }
    }

    #[test]
    fn table2_values() {
        assert_eq!(Tier::Package.pj_per_bit(), 0.5);
        assert_eq!(Tier::Board.pj_per_bit(), 10.0);
        assert_eq!(Tier::System.pj_per_bit(), 250.0);
        assert_eq!(Tier::Board.bandwidth_gbps(), 256.0);
        assert_eq!(Tier::Chip.overhead(), "Low");
        assert_eq!(Tier::System.overhead(), "Very High");
    }

    #[test]
    fn joules_arithmetic() {
        // 1 byte = 8 bits at 10 pJ/bit = 80 pJ.
        let j = Tier::Board.joules_for_bytes(1);
        assert!((j - 80e-12).abs() < 1e-18);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = EnergyLedger::new();
        a.record(Tier::Package, 100);
        a.record(Tier::Package, 50);
        a.record_dram(10);
        let mut b = EnergyLedger::new();
        b.record(Tier::Chip, 7);
        a.merge(&b);
        assert_eq!(a.bytes(Tier::Package), 150);
        assert_eq!(a.bytes(Tier::Chip), 7);
        assert!(a.dram_joules() > 0.0);
        assert!(a.total_joules() > a.joules(Tier::Package));
    }

    #[test]
    fn package_vs_board_ratio_is_20x() {
        // The paper's §6.2 efficiency argument: 0.5 pJ/b on-package vs
        // 10 pJ/b on-board.
        let ratio = Tier::Board.pj_per_bit() / Tier::Package.pj_per_bit();
        assert_eq!(ratio, 20.0);
    }

    #[test]
    fn display_nonempty() {
        for t in Tier::ALL {
            assert!(!t.to_string().is_empty());
        }
    }
}
