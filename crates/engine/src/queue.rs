//! A deterministic event calendar.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// One pending entry in the calendar: ordered by time, then insertion
/// sequence (FIFO among simultaneous events).
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq)
        // comes out first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// Events popped from the queue come out in nondecreasing timestamp
/// order; events scheduled for the *same* cycle come out in the order
/// they were pushed. That FIFO tie-break is what makes multi-component
/// simulations reproducible: two runs with the same inputs interleave
/// their events identically.
///
/// # Example
///
/// ```
/// use mcm_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "late");
/// q.push(Cycle::new(1), "early");
/// q.push(Cycle::new(5), "late-second");
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: Cycle,
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: Cycle::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            last_popped: Cycle::ZERO,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a
    /// simulation logic error; it is tolerated in release builds (the
    /// event fires "now") but trips a debug assertion.
    pub fn push(&mut self, at: Cycle, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at} which is before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the most recently popped event — the simulation's
    /// notion of "now".
    pub fn now(&self) -> Cycle {
        self.last_popped
    }

    /// Drops all pending events, keeping the current time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 3, 1, 100] {
            q.push(Cycle::new(t), t);
        }
        let mut out = Vec::new();
        while let Some((at, ev)) = q.pop() {
            assert_eq!(at.as_u64(), ev);
            out.push(ev);
        }
        assert_eq!(out, vec![1, 3, 3, 7, 9, 100]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.push(Cycle::new(10), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(10));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(2), 'a');
        q.push(Cycle::new(1), 'b');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 1u64);
        q.push(Cycle::new(5), 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Cycle::new(3), 3);
        q.push(Cycle::new(4), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }
}
