//! Regenerates the paper's Tables 1-4. Pass `table1`..`table4` to print
//! one, or nothing for all.
fn main() {
    let _telemetry = mcm_bench::harness::telemetry_guard();
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        ("table1", mcm_bench::figures::table1()),
        ("table2", mcm_bench::figures::table2()),
        ("table3", mcm_bench::figures::table3()),
        ("table4", mcm_bench::figures::table4()),
    ];
    for (name, text) in all {
        if which.is_empty() || which.iter().any(|w| w == name) {
            println!("{text}");
        }
    }
}
