//! Property-based tests for SM occupancy and CTA scheduling invariants.

use mcm_sm::scheduler::{owning_gpm, CtaPool, SchedulerPolicy};
use mcm_sm::{SmConfig, SmCore};
use proptest::prelude::*;

proptest! {
    /// Every CTA is handed out exactly once, regardless of policy or the
    /// order GPMs pull in.
    #[test]
    fn pool_hands_out_each_cta_once(
        total in 0u32..512,
        gpms in 1u32..9,
        distributed in any::<bool>(),
        pull_order in proptest::collection::vec(0usize..9, 0..2048),
    ) {
        let policy = if distributed {
            SchedulerPolicy::Distributed
        } else {
            SchedulerPolicy::Centralized
        };
        let mut pool = CtaPool::new(policy, total, gpms);
        let mut seen = std::collections::HashSet::new();
        for &g in &pull_order {
            if let Some(c) = pool.next_cta(g % gpms as usize) {
                prop_assert!(c < total);
                prop_assert!(seen.insert(c), "CTA {c} handed out twice");
            }
        }
        // Drain completely round-robin.
        loop {
            let mut any = false;
            for g in 0..gpms as usize {
                if let Some(c) = pool.next_cta(g) {
                    prop_assert!(seen.insert(c));
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        prop_assert_eq!(seen.len() as u32, total);
        prop_assert!(pool.is_exhausted());
    }

    /// Distributed chunks tile the CTA space exactly and differ in size
    /// by at most one.
    #[test]
    fn distributed_chunks_tile(total in 0u32..4096, gpms in 1u32..9) {
        let pool = CtaPool::new(SchedulerPolicy::Distributed, total, gpms);
        let mut covered = 0u32;
        let mut sizes = Vec::new();
        for g in 0..gpms as usize {
            let (start, end) = pool.chunk(g);
            prop_assert_eq!(start, covered);
            covered = end;
            sizes.push(end - start);
        }
        prop_assert_eq!(covered, total);
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// `owning_gpm` agrees with the chunk layout for every CTA.
    #[test]
    fn owning_gpm_consistent(total in 1u32..2048, gpms in 1u32..9, cta in 0u32..2048) {
        let cta = cta % total;
        let pool = CtaPool::new(SchedulerPolicy::Distributed, total, gpms);
        let g = owning_gpm(cta, total, gpms);
        let (start, end) = pool.chunk(g);
        prop_assert!((start..end).contains(&cta));
    }

    /// SM occupancy never exceeds the configured warp limit under any
    /// admit/retire sequence.
    #[test]
    fn occupancy_never_exceeds_limit(
        max_warps in 1u32..128,
        ops in proptest::collection::vec((any::<bool>(), 1u32..16), 0..256),
    ) {
        let mut sm = SmCore::new(SmConfig {
            max_warps,
            issue_ipc: 2.0,
            mshr_entries: 8,
            mlp_per_warp: 4,
        });
        let mut resident: Vec<u32> = Vec::new();
        for &(admit, warps) in &ops {
            if admit {
                if sm.try_admit(warps) {
                    resident.push(warps);
                }
            } else if let Some(w) = resident.pop() {
                sm.retire_warps(w);
            }
            prop_assert!(sm.resident_warps() <= max_warps);
            prop_assert_eq!(sm.resident_warps(), resident.iter().sum::<u32>());
        }
    }

    /// Issue completions are monotone for nondecreasing request times
    /// and total instructions are conserved.
    #[test]
    fn issue_accounting(bursts in proptest::collection::vec(1u32..1000, 1..64)) {
        let mut sm = SmCore::new(SmConfig::pascal_like());
        sm.try_admit(1);
        let mut last = mcm_engine::Cycle::ZERO;
        for &b in &bursts {
            let done = sm.issue(mcm_engine::Cycle::ZERO, b);
            prop_assert!(done >= last);
            last = done;
        }
        prop_assert_eq!(sm.instructions(), bursts.iter().map(|&b| u64::from(b)).sum::<u64>());
    }
}
