//! `mcm-exec`: the deterministic parallel sweep executor.
//!
//! Figure and table reproduction replays a grid of independent
//! `(configuration, workload)` simulations. Each grid item is a pure
//! function of its inputs, so the only thing parallelism may change is
//! wall-clock time — never results. This crate makes that contract
//! structural:
//!
//! * [`queue::GridQueue`] — a chunked work-stealing queue over grid
//!   indices. Workers drain their own chunk deque front-to-back and
//!   steal whole chunks from the back of a victim's deque when they run
//!   dry. Any interleaving of pops and steals yields every index
//!   exactly once.
//! * [`pool::run_grid`] — a seeded, bounded thread pool (scoped
//!   threads, no detached workers) that executes one closure per grid
//!   item and merges the results **in grid order**, regardless of which
//!   worker ran what when. The merge asserts that no index was dropped
//!   or duplicated. A task panic fails the whole grid fast, and the
//!   propagated panic names the poisoned grid index and carries the
//!   original message.
//! * [`pool::run_grid_supervised`] — the self-healing variant
//!   ([`supervised`], `MCM_SUPERVISED=1`): task panics are isolated,
//!   failing items are retried a bounded number of times
//!   ([`retries`], `MCM_RETRIES`), and items that still fail are
//!   quarantined into a structured [`pool::TaskFailure`] report while
//!   the rest of the grid completes. The report is byte-identical at
//!   every job count.
//! * [`barrier::ShardBarrier`] + [`barrier::run_shards`] — a reusable,
//!   abortable epoch barrier for teams of shards co-simulating a
//!   *single* run (the PDES mode), with panic-safe teardown.
//! * [`service::ServicePool`] — the long-running counterpart of
//!   [`pool::run_grid`] for server processes: persistent workers, a
//!   bounded queue with all-or-nothing batch admission, fair
//!   round-robin scheduling across caller-chosen lanes, and per-job
//!   panic isolation.
//!
//! The worker count comes from [`jobs`] (`MCM_JOBS`, default: available
//! parallelism); `MCM_JOBS=1` degenerates to an in-caller-thread serial
//! loop that is observably identical to never having used the executor.
//! Steal-victim selection is seeded ([`DEFAULT_SEED`]) so even the
//! scheduling noise is reproducible for a fixed interleaving.
//!
//! Hermetic per the workspace rule: `std` plus `mcm-engine`'s RNG only.
//!
//! # Example
//!
//! ```
//! let squares = mcm_exec::pool::run_grid(&[1u64, 2, 3, 4], 2, mcm_exec::DEFAULT_SEED, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod pool;
pub mod queue;
pub mod service;

/// The default steal-order seed used by harnesses that don't need a
/// specific one. Results never depend on it; only which victim a
/// starving worker tries first does.
pub const DEFAULT_SEED: u64 = 0x4D43_4D5F_4A4F_4253; // "MCM_JOBS"

/// The worker count for parallel sweeps, read from `MCM_JOBS`.
/// Unset defaults to the machine's available parallelism (1 when that
/// cannot be determined). `MCM_JOBS=1` forces the serial path — the
/// setting golden-output gates pin.
///
/// # Panics
///
/// Panics when `MCM_JOBS` is set but not a positive integer — a typo in
/// a knob must abort the run, not silently fall back.
pub fn jobs() -> usize {
    match std::env::var("MCM_JOBS") {
        Ok(raw) => {
            let n: usize = raw
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("MCM_JOBS must be a positive integer, got {raw:?}"));
            assert!(n >= 1, "MCM_JOBS must be >= 1, got {n}");
            n
        }
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Whether sweep harnesses should run under the supervised executor
/// ([`pool::run_grid_supervised`]), read from `MCM_SUPERVISED`. `1`
/// enables supervision; `0` or unset keeps the fail-fast default, so
/// every golden-output gate is untouched.
///
/// # Panics
///
/// Panics when `MCM_SUPERVISED` is set to anything but `0` or `1`.
pub fn supervised() -> bool {
    match std::env::var("MCM_SUPERVISED") {
        Ok(raw) => match raw.trim() {
            "1" => true,
            "0" => false,
            _ => panic!("MCM_SUPERVISED must be 0 or 1, got {raw:?}"),
        },
        Err(_) => false,
    }
}

/// How many times the supervised executor re-attempts a panicking grid
/// item before quarantining it, read from `MCM_RETRIES` (default 1).
/// `0` quarantines on the first panic.
///
/// # Panics
///
/// Panics when `MCM_RETRIES` is set but not a non-negative integer.
pub fn retries() -> u32 {
    match std::env::var("MCM_RETRIES") {
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("MCM_RETRIES must be a non-negative integer, got {raw:?}")),
        Err(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn jobs_defaults_to_available_parallelism() {
        // The test process does not set MCM_JOBS, so the default path
        // runs; it must be at least 1 on any machine.
        assert!(super::jobs() >= 1);
    }

    #[test]
    fn supervision_knobs_default_off() {
        // The test process sets neither knob, so the defaults run.
        assert!(!super::supervised());
        assert_eq!(super::retries(), 1);
    }
}
