//! GPU memory-system substrate for the MCM-GPU model.
//!
//! This crate provides the stateful memory components the paper's
//! evaluation depends on:
//!
//! * [`addr`] — byte/line/page address algebra, partition ids, and the
//!   local/remote [`addr::Locality`] distinction at the heart of the
//!   NUMA analysis.
//! * [`cache::SetAssocCache`] — real tag arrays with LRU replacement,
//!   write policies, MSHR-style fill-pending coalescing, and the
//!   allocation filters that implement the remote-only L1.5 (§5.1).
//! * [`mshr::Mshr`] — bounded outstanding-miss tracking for the SM
//!   load/store units.
//! * [`dram::DramPartition`] — channel-banked DRAM behind a fixed
//!   100 ns latency.
//! * [`page::PageMap`] — the baseline interleaved and the optimized
//!   first-touch page placement policies (§5.3).
//!
//! # Example
//!
//! A miss walks from cache to DRAM and fills on the way back:
//!
//! ```
//! use mcm_engine::Cycle;
//! use mcm_mem::addr::{AccessKind, LineAddr, Locality};
//! use mcm_mem::cache::{CacheConfig, CacheOutcome, SetAssocCache};
//! use mcm_mem::dram::{DramConfig, DramPartition};
//!
//! let mut l2 = SetAssocCache::new(CacheConfig::new("L2", 4 << 20));
//! let mut dram = DramPartition::new(DramConfig::with_bandwidth(768.0));
//! let line = LineAddr::new(99);
//!
//! let ready = match l2.access(Cycle::ZERO, line, AccessKind::Read, Locality::Local) {
//!     CacheOutcome::Hit { ready_at } => ready_at,
//!     CacheOutcome::Miss { allocate, ready_at } => {
//!         let from_dram = dram.access(ready_at, line, AccessKind::Read);
//!         if allocate {
//!             l2.fill(line, from_dram, false);
//!         }
//!         from_dram
//!     }
//!     CacheOutcome::Bypass => unreachable!("no filter configured"),
//! };
//! assert!(ready >= Cycle::from_ns(100));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cache;
pub mod dram;
pub mod mshr;
pub mod page;
