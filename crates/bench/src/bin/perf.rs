//! The pinned performance-trajectory suite: a micro + macro benchmark
//! set emitting a schema-versioned, machine-readable `BENCH_*.json`
//! snapshot, plus a comparator mode that diffs two snapshots and fails
//! on regressions.
//!
//! ```text
//! perf [--smoke] [--label L] [--out PATH]      run the suite
//! perf --compare OLD NEW [--threshold FRAC]    diff two snapshots
//! ```
//!
//! The suite is deliberately pinned: workload scale, op counts, and
//! repetition counts are hard-coded per mode (`--smoke` shrinks them
//! for CI), and the simulator is driven directly — `MCM_SCALE`,
//! `MCM_SHARDS`, `MCM_TRACE`, and `MCM_METRICS` are ignored so two
//! snapshots from the same binary always measured the same work.
//!
//! Every entry records wall times as integer nanoseconds (never NaN,
//! never negative); macro entries also record simulated cycle counts,
//! which the comparator checks for *equality* — a cycle drift between
//! two snapshots of the same mode is a determinism bug, not a
//! performance change. Wall-clock numbers live in the volatile part of
//! the document by construction; the run also embeds a delta of the
//! process's telemetry registry, whose sections are already classed.
//!
//! Exit codes: 0 success, 1 regression/determinism mismatch found by
//! `--compare`, 2 usage error.

use std::path::PathBuf;
use std::time::Instant;

use mcm_bench::harness;
use mcm_engine::rng::Xoshiro256;
use mcm_engine::{Cycle, EventQueue};
use mcm_gpu::{Simulator, SystemConfig};
use mcm_store::Store;
use mcm_telemetry::json::{push_escaped, push_f64, Json};
use mcm_workloads::suite;

/// Schema tag stamped into every snapshot this binary writes.
const SCHEMA: &str = "mcm-bench-v1";

/// One benchmark entry: repeated wall timings plus optional
/// work-descriptor fields.
struct Entry {
    name: &'static str,
    wall_ns_median: u64,
    wall_ns_min: u64,
    reps: u32,
    /// Operations per rep (micro entries).
    ops: Option<u64>,
    /// Simulated cycles (macro entries; must be identical across hosts
    /// and snapshots of the same mode).
    cycles: Option<u64>,
}

/// Times `reps` calls of `f`, returning `(median, min)` wall
/// nanoseconds (both clamped to >= 1, so ratios never divide by zero).
fn time_reps<F: FnMut()>(reps: u32, mut f: F) -> (u64, u64) {
    let mut ns: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            (t.elapsed().as_nanos() as u64).max(1)
        })
        .collect();
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0])
}

/// The pinned suite parameters for one mode.
struct Mode {
    smoke: bool,
    scale: f64,
    queue_ops: u64,
    reps: u32,
}

impl Mode {
    fn new(smoke: bool) -> Self {
        if smoke {
            Mode {
                smoke,
                scale: 0.01,
                queue_ops: 20_000,
                reps: 3,
            }
        } else {
            Mode {
                smoke,
                scale: 0.05,
                queue_ops: 200_000,
                reps: 5,
            }
        }
    }
}

/// Micro: the steady-state event-queue hold pattern (pop one, push one
/// near-future) for a fixed op count — the simulator's hottest loop.
fn micro_queue_hold(mode: &Mode) -> Entry {
    let mut q: EventQueue<u64> = EventQueue::with_capacity(512);
    let mut rng = Xoshiro256::new(0xBE7C);
    let now = q.now();
    for i in 0..256u64 {
        q.push(now + Cycle::new(rng.next_range(900)), i, i);
    }
    // One warm pass before timing.
    let mut hold = |ops: u64| {
        let mut acc = 0u64;
        for _ in 0..ops {
            let (t, v) = q.pop().expect("queue is held non-empty");
            q.push(t + Cycle::new(1 + rng.next_range(900)), v, v);
            acc = acc.wrapping_add(t.as_u64());
        }
        std::hint::black_box(acc)
    };
    hold(mode.queue_ops / 10);
    let (median, min) = time_reps(mode.reps, || {
        hold(mode.queue_ops);
    });
    Entry {
        name: "micro.queue_hold256",
        wall_ns_median: median,
        wall_ns_min: min,
        reps: mode.reps,
        ops: Some(mode.queue_ops),
        cycles: None,
    }
}

/// Micro: persistent-store hit latency — a warm index lookup plus a
/// bit-exact report clone, the per-pair cost a warm-started sweep pays
/// instead of a simulation. Uses a throwaway temp-dir store seeded
/// with a pinned record set.
fn micro_store_hit(mode: &Mode) -> Entry {
    let dir = std::env::temp_dir().join(format!("mcm-perf-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("open perf store in temp dir");
    let spec = suite::by_name("Stream")
        .expect("Stream workload in suite")
        .scaled(0.01);
    let report = Simulator::run(&SystemConfig::baseline_mcm(), &spec);
    const RECORDS: u64 = 64;
    for fp in 0..RECORDS {
        store.put(fp, "Stream", &report);
    }
    let ops = mode.queue_ops / 10;
    let mut rng = Xoshiro256::new(0x5709E);
    let (median, min) = time_reps(mode.reps, || {
        let mut acc = 0u64;
        for _ in 0..ops {
            let r = store
                .get(rng.next_range(RECORDS), "Stream")
                .expect("seeded store hit");
            acc = acc.wrapping_add(r.cycles.as_u64());
        }
        std::hint::black_box(acc);
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Entry {
        name: "micro.store_hit",
        wall_ns_median: median,
        wall_ns_min: min,
        reps: mode.reps,
        ops: Some(ops),
        cycles: None,
    }
}

/// Micro: one analytical fast-path prediction — the per-point price the
/// design-space planner pays instead of a full simulation. The macro
/// entries below time that simulation on the *same* pinned pair at the
/// *same* scale, so `analytic.speedup_vs_sim` is an apples-to-apples
/// per-point ratio.
fn micro_analytic_point(mode: &Mode) -> Entry {
    let cfg = SystemConfig::baseline_mcm();
    let descriptor = suite::by_name("Stream")
        .expect("Stream workload in suite")
        .scaled(mode.scale)
        .descriptor();
    let model = mcm_gpu::AnalyticModel::uncalibrated();
    let ops = mode.queue_ops / 10;
    let score = |ops: u64| {
        let mut acc = 0.0f64;
        for _ in 0..ops {
            acc += model.predict_descriptor(&cfg, &descriptor).ipc;
        }
        std::hint::black_box(acc)
    };
    score(ops / 10); // warm
    let (median, min) = time_reps(mode.reps, || {
        score(ops);
    });
    Entry {
        name: "micro.analytic_point",
        wall_ns_median: median,
        wall_ns_min: min,
        reps: mode.reps,
        ops: Some(ops),
        cycles: None,
    }
}

/// Macro: one full serial simulation of `cfg` on the pinned workload.
fn macro_run(name: &'static str, cfg: &SystemConfig, mode: &Mode) -> Entry {
    let spec = suite::by_name("Stream")
        .expect("Stream workload in suite")
        .scaled(mode.scale);
    let warm = Simulator::run(cfg, &spec);
    let mut cycles = warm.cycles.as_u64();
    let (median, min) = time_reps(mode.reps, || {
        let r = Simulator::run(cfg, &spec);
        assert_eq!(r.cycles.as_u64(), cycles, "{name}: nondeterministic rerun");
        cycles = r.cycles.as_u64();
    });
    Entry {
        name,
        wall_ns_median: median,
        wall_ns_min: min,
        reps: mode.reps,
        ops: None,
        cycles: Some(cycles),
    }
}

/// Sharded singles: the same single simulation at 1, 2, and 4 shards,
/// asserting bit-identical reports and recording each wall time.
fn sharded_runs(mode: &Mode) -> Vec<Entry> {
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.topology.sms_per_module = 4; // keep the single-run grain small
    let spec = suite::by_name("Stream")
        .expect("Stream workload in suite")
        .scaled(mode.scale);
    let serial = Simulator::run_sharded(&cfg, &spec, 1);
    [
        (1usize, "sharded.shards1"),
        (2, "sharded.shards2"),
        (4, "sharded.shards4"),
    ]
    .into_iter()
    .map(|(shards, name)| {
        let (median, min) = time_reps(mode.reps, || {
            let r = Simulator::run_sharded(&cfg, &spec, shards);
            assert_eq!(r, serial, "{name}: sharded run diverged from serial");
        });
        Entry {
            name,
            wall_ns_median: median,
            wall_ns_min: min,
            reps: mode.reps,
            ops: None,
            cycles: Some(serial.cycles.as_u64()),
        }
    })
    .collect()
}

fn push_u64(out: &mut String, v: u64) {
    push_f64(out, v as f64);
}

/// Renders the whole snapshot document.
fn render_json(
    label: &str,
    mode: &Mode,
    entries: &[Entry],
    ratios: &[(&str, f64)],
    telemetry_json: &str,
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::with_capacity(2048);
    out.push('{');
    push_escaped(&mut out, "schema");
    out.push(':');
    push_escaped(&mut out, SCHEMA);
    out.push(',');
    push_escaped(&mut out, "label");
    out.push(':');
    push_escaped(&mut out, label);
    out.push(',');
    push_escaped(&mut out, "smoke");
    out.push_str(if mode.smoke { ":true," } else { ":false," });
    push_escaped(&mut out, "scale");
    out.push(':');
    push_f64(&mut out, mode.scale);
    out.push(',');
    push_escaped(&mut out, "host");
    out.push_str(":{");
    push_escaped(&mut out, "os");
    out.push(':');
    push_escaped(&mut out, std::env::consts::OS);
    out.push(',');
    push_escaped(&mut out, "arch");
    out.push(':');
    push_escaped(&mut out, std::env::consts::ARCH);
    out.push(',');
    push_escaped(&mut out, "cores");
    out.push(':');
    push_u64(&mut out, cores as u64);
    out.push_str("},");
    push_escaped(&mut out, "caveats");
    out.push_str(":[");
    let mut caveats: Vec<String> = Vec::new();
    if cores <= 1 {
        caveats.push(
            "single-core host: sharded.shards2/4 measure coordination overhead, not speedup"
                .to_string(),
        );
    }
    if mode.smoke {
        caveats.push("smoke mode: tiny pinned scale, numbers are shape checks only".to_string());
    }
    for (i, c) in caveats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, c);
    }
    out.push_str("],");
    push_escaped(&mut out, "entries");
    out.push_str(":{");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, e.name);
        out.push_str(":{");
        push_escaped(&mut out, "wall_ns_median");
        out.push(':');
        push_u64(&mut out, e.wall_ns_median);
        out.push(',');
        push_escaped(&mut out, "wall_ns_min");
        out.push(':');
        push_u64(&mut out, e.wall_ns_min);
        out.push(',');
        push_escaped(&mut out, "reps");
        out.push(':');
        push_u64(&mut out, u64::from(e.reps));
        if let Some(ops) = e.ops {
            out.push(',');
            push_escaped(&mut out, "ops");
            out.push(':');
            push_u64(&mut out, ops);
        }
        if let Some(cycles) = e.cycles {
            out.push(',');
            push_escaped(&mut out, "cycles");
            out.push(':');
            push_u64(&mut out, cycles);
        }
        out.push('}');
    }
    out.push_str("},");
    push_escaped(&mut out, "ratios");
    out.push_str(":{");
    for (i, (name, v)) in ratios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, name);
        out.push(':');
        push_f64(&mut out, *v);
    }
    out.push_str("},");
    push_escaped(&mut out, "telemetry");
    out.push(':');
    out.push_str(telemetry_json);
    out.push('}');
    out
}

fn run_suite(label: &str, mode: &Mode, out_path: &PathBuf) {
    println!(
        "perf: running pinned suite (label {label:?}, smoke: {})",
        mode.smoke
    );
    let before = mcm_telemetry::global().snapshot();
    let mut entries = vec![
        micro_queue_hold(mode),
        micro_store_hit(mode),
        micro_analytic_point(mode),
        macro_run("macro.fig09_pair_base", &SystemConfig::baseline_mcm(), mode),
        macro_run("macro.fig09_pair_ds", &SystemConfig::mcm_l15_ds(), mode),
    ];
    entries.extend(sharded_runs(mode));
    let telemetry = mcm_telemetry::global()
        .snapshot()
        .delta_since(&before)
        .to_json(label);

    let wall = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.wall_ns_median as f64)
            .expect("suite entry present")
    };
    let cyc = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| e.cycles)
            .expect("suite entry has cycles") as f64
    };
    let ops = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| e.ops)
            .expect("suite entry has ops") as f64
    };
    let ratios = [
        (
            "sharded.speedup_2x",
            wall("sharded.shards1") / wall("sharded.shards2"),
        ),
        (
            // Per-point analytic-vs-simulated speedup on the same
            // (config, workload, scale): how much cheaper the planner's
            // scoring pass is than the simulation it avoids.
            "analytic.speedup_vs_sim",
            wall("macro.fig09_pair_base")
                / (wall("micro.analytic_point") / ops("micro.analytic_point")),
        ),
        (
            "sharded.speedup_4x",
            wall("sharded.shards1") / wall("sharded.shards4"),
        ),
        (
            "macro.ds_over_base_cycles",
            cyc("macro.fig09_pair_ds") / cyc("macro.fig09_pair_base"),
        ),
    ];

    for e in &entries {
        println!(
            "  {:<24} median {:>12} ns  min {:>12} ns{}",
            e.name,
            e.wall_ns_median,
            e.wall_ns_min,
            e.cycles.map_or(String::new(), |c| format!("  cycles {c}")),
        );
    }
    for (name, v) in &ratios {
        println!("  {name:<24} {v:.3}");
    }

    let doc = render_json(label, mode, &entries, &ratios, &telemetry);
    // Round-trip through the in-repo reader before writing: a snapshot
    // the comparator cannot parse is worse than no snapshot.
    Json::parse(&doc).expect("perf snapshot must be valid JSON");
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create snapshot directory");
        }
    }
    std::fs::write(out_path, &doc).expect("write BENCH snapshot");
    println!("perf: wrote {}", out_path.display());
}

/// Loads and structurally validates one snapshot.
fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_usage(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail_usage(&format!("{path} is not valid JSON: {e}")));
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => doc,
        Some(s) => fail_usage(&format!("{path} has schema {s:?}, expected {SCHEMA:?}")),
        None => fail_usage(&format!("{path} has no schema tag")),
    }
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("perf: {msg}");
    eprintln!(
        "usage: perf [--smoke] [--label L] [--out PATH]\n       perf --compare OLD NEW [--threshold FRAC]"
    );
    std::process::exit(2);
}

fn compare(old_path: &str, new_path: &str, threshold: f64) -> i32 {
    let old = load(old_path);
    let new = load(new_path);
    if old.get("smoke") != new.get("smoke") || old.get("scale") != new.get("scale") {
        fail_usage(&format!(
            "{old_path} and {new_path} were produced at different modes/scales; \
             their numbers are not comparable"
        ));
    }
    let old_entries = old
        .get("entries")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| fail_usage(&format!("{old_path} has no entries object")));
    let new_entries = new
        .get("entries")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| fail_usage(&format!("{new_path} has no entries object")));

    let mut failures = 0u32;
    println!(
        "{:<24} {:>14} {:>14} {:>8}  verdict (threshold {:.0}%)",
        "entry",
        "old median ns",
        "new median ns",
        "ratio",
        threshold * 100.0
    );
    for (name, old_e) in old_entries {
        let Some(new_e) = new_entries.get(name) else {
            println!(
                "{name:<24} {:>14} {:>14} {:>8}  MISSING in new snapshot",
                "-", "-", "-"
            );
            failures += 1;
            continue;
        };
        let (Some(a), Some(b)) = (
            old_e.get("wall_ns_median").and_then(Json::as_u64),
            new_e.get("wall_ns_median").and_then(Json::as_u64),
        ) else {
            println!("{name:<24} malformed wall_ns_median");
            failures += 1;
            continue;
        };
        let ratio = b as f64 / (a.max(1)) as f64;
        let verdict = if ratio > 1.0 + threshold {
            failures += 1;
            "REGRESSION"
        } else if ratio < 1.0 - threshold {
            "improved"
        } else {
            "ok"
        };
        println!("{name:<24} {a:>14} {b:>14} {ratio:>8.3}  {verdict}");
        // Simulated work must be *identical*, not merely close.
        let (oc, nc) = (
            old_e.get("cycles").and_then(Json::as_u64),
            new_e.get("cycles").and_then(Json::as_u64),
        );
        if let (Some(oc), Some(nc)) = (oc, nc) {
            if oc != nc {
                println!("{name:<24} cycle count changed: {oc} -> {nc}  DETERMINISM MISMATCH");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("\nperf: {failures} regression(s)/mismatch(es) beyond the threshold");
        1
    } else {
        println!("\nperf: no regressions beyond the threshold");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut label = "local".to_string();
    let mut out: Option<PathBuf> = None;
    let mut compare_paths: Option<(String, String)> = None;
    let mut threshold = 0.25f64;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--label" => {
                label = it
                    .next()
                    .unwrap_or_else(|| fail_usage("--label needs a value"));
            }
            "--out" => {
                out = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| fail_usage("--out needs a value")),
                ));
            }
            "--compare" => {
                let a = it
                    .next()
                    .unwrap_or_else(|| fail_usage("--compare needs OLD NEW"));
                let b = it
                    .next()
                    .unwrap_or_else(|| fail_usage("--compare needs OLD NEW"));
                compare_paths = Some((a, b));
            }
            "--threshold" => {
                let raw = it
                    .next()
                    .unwrap_or_else(|| fail_usage("--threshold needs a value"));
                threshold = raw
                    .parse()
                    .unwrap_or_else(|_| fail_usage(&format!("bad threshold {raw:?}")));
                if !threshold.is_finite() || threshold <= 0.0 {
                    fail_usage(&format!("threshold must be a positive fraction, got {raw}"));
                }
            }
            other => fail_usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some((a, b)) = compare_paths {
        std::process::exit(compare(&a, &b, threshold));
    }
    let _telemetry = harness::telemetry_guard();
    let out_path = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{label}.json")));
    run_suite(&label, &Mode::new(smoke), &out_path);
}
