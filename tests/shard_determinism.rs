//! Shard invariance: running ONE simulation split across worker cores
//! (`Simulator::run_sharded`, the `MCM_SHARDS` knob) is an execution
//! strategy, not a model change. Every test here pins the same
//! contract from a different angle: the report is **bit-identical** to
//! the serial engine at every shard count.
//!
//! The golden cycle counts of `tests/golden_determinism.rs` are
//! re-asserted under sharding, so the serial goldens pin the sharded
//! engine too.

use mcm::gpu::{effective_shards, RunReport, Simulator, SystemConfig};
use mcm::workloads::{suite, Category, WorkloadSpec};

/// Shard counts the knob is exercised at; 8 oversubscribes every
/// 4-module machine and must clamp, not diverge.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn scaled(name: &str, scale: f64) -> WorkloadSpec {
    suite::by_name(name).expect("suite workload").scaled(scale)
}

/// One representative workload per category (the golden-determinism
/// trio), plus a second per category for breadth.
fn category_representatives() -> Vec<WorkloadSpec> {
    let all = suite::suite();
    let mut picks = Vec::new();
    for cat in Category::ALL {
        let mut of_cat = all.iter().filter(|w| w.category == cat);
        picks.push(of_cat.next().expect("non-empty category").clone());
        picks.push(of_cat.next().expect("two per category").clone());
    }
    picks
}

#[test]
fn reports_are_shard_count_invariant_across_categories() {
    let configs = [SystemConfig::baseline_mcm(), SystemConfig::optimized_mcm()];
    for cfg in &configs {
        for spec in category_representatives() {
            let spec = spec.scaled(0.02);
            let serial = Simulator::run(cfg, &spec);
            for shards in SHARD_COUNTS {
                let sharded = Simulator::run_sharded(cfg, &spec, shards);
                assert_eq!(
                    serial, sharded,
                    "{} on {} diverged at {shards} shard(s)",
                    spec.name, cfg.name
                );
            }
        }
    }
}

#[test]
fn goldens_hold_under_sharding() {
    // The exact golden table of tests/golden_determinism.rs, which any
    // behavioural drift in the sharded engine would shift.
    const GOLDEN: &[(&str, u64, u64)] = &[
        ("Stream", 5049, 1794),
        ("Hotspot", 1303, 1225),
        ("DWT", 2799, 1898),
    ];
    let baseline = SystemConfig::baseline_mcm();
    let optimized = SystemConfig::optimized_mcm();
    for &(name, want_base, want_opt) in GOLDEN {
        let spec = scaled(name, 0.02);
        for shards in [2, 4] {
            assert_eq!(
                Simulator::run_sharded(&baseline, &spec, shards)
                    .cycles
                    .as_u64(),
                want_base,
                "{name} on baseline_mcm at {shards} shards broke the golden"
            );
            assert_eq!(
                Simulator::run_sharded(&optimized, &spec, shards)
                    .cycles
                    .as_u64(),
                want_opt,
                "{name} on optimized_mcm at {shards} shards broke the golden"
            );
        }
    }
}

#[test]
fn every_scheduler_and_fabric_is_shard_invariant() {
    // The policies with global decision points (centralized draw
    // cursor, work stealing, first-touch page claims) are where a
    // sharded engine could subtly diverge; each is pinned explicitly,
    // as is the 2-module multi-GPU (odd module/shard ratios) and the
    // fully connected fabric.
    let configs = [
        SystemConfig::baseline_mcm(),            // centralized + interleaved
        SystemConfig::mcm_l15_ds(),              // distributed
        SystemConfig::optimized_mcm(),           // distributed + first touch
        SystemConfig::optimized_mcm_dynamic(4),  // work stealing
        SystemConfig::optimized_mcm_chunked(16), // chunked
        SystemConfig::optimized_mcm_fully_connected(),
        SystemConfig::multi_gpu_baseline(),
    ];
    let spec = scaled("CFD", 0.02);
    for cfg in &configs {
        let serial = Simulator::run(cfg, &spec);
        for shards in [2, 3, 8] {
            assert_eq!(
                serial,
                Simulator::run_sharded(cfg, &spec, shards),
                "{} diverged at {shards} shard(s)",
                cfg.name
            );
        }
    }
}

#[test]
fn shard_stats_report_clamped_counts_and_clean_mailboxes() {
    let cfg = SystemConfig::baseline_mcm(); // 4 modules
    let spec = scaled("Stream", 0.02);
    for (requested, expect) in [(1, 1), (2, 2), (4, 4), (8, 4), (64, 4)] {
        assert_eq!(effective_shards(&cfg, requested), expect);
        let (_, stats) = Simulator::run_sharded_stats(&cfg, &spec, requested);
        assert_eq!(stats.shards, expect, "requested {requested}");
        if expect > 1 {
            assert!(stats.epochs > 0, "multi-shard runs advance in epochs");
            assert!(
                stats.messages > 0,
                "an interleaved workload must cross shards"
            );
        }
        assert_eq!(stats.late_deliveries, 0, "conservative window violated");
        assert_eq!(stats.residual_messages, 0, "mailboxes must drain");
    }
    // A monolithic machine has no usable parallelism at all.
    assert_eq!(effective_shards(&SystemConfig::monolithic(64), 8), 1);
}

#[test]
fn multi_kernel_grids_stay_shard_invariant() {
    // Kernel boundaries reset epoch time and re-launch placement; a
    // sharded run must cross them in lockstep with the serial engine.
    let cfg = SystemConfig::optimized_mcm();
    let mut spec = scaled("CoMD", 0.02);
    spec.kernel_iters = 4;
    let serial = Simulator::run(&cfg, &spec);
    for shards in [2, 4] {
        assert_eq!(
            serial,
            Simulator::run_sharded(&cfg, &spec, shards),
            "multi-kernel run diverged at {shards} shards"
        );
    }
}

#[test]
fn repeated_sharded_runs_are_identical() {
    let cfg = SystemConfig::optimized_mcm();
    let spec = scaled("Backprop", 0.02);
    let a: RunReport = Simulator::run_sharded(&cfg, &spec, 4);
    let b: RunReport = Simulator::run_sharded(&cfg, &spec, 4);
    assert_eq!(a, b, "sharded runs must be reproducible run-to-run");
}
