//! A deterministic event calendar.
//!
//! The queue is a *bucketed calendar*: events scheduled within the near
//! future land in a ring of per-cycle buckets (popping is a bitmap scan
//! plus a linked-list head removal, both allocation-free in steady
//! state), while far-future events wait in a small sorted overflow heap
//! and migrate into the ring as the window advances.
//!
//! Equal-time events are ordered by a caller-supplied **content key**
//! rather than insertion order: the pop order is `(time, wave, key)`,
//! where `wave` counts same-cycle re-push generations (see the
//! [`EventQueue`] docs). Content-keyed ordering is what lets a sharded
//! simulation reproduce the serial engine bit-for-bit: each shard's
//! local pop order is the restriction of the global `(time, wave, key)`
//! order to its own events, something no insertion-sequence tie-break
//! can offer once events arrive through per-shard mailboxes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Width of the near-future window, in cycles. Power of two so the
/// bucket index is a mask. One bucket per cycle: every bucket holds
/// events of exactly one timestamp, so bucket order *is* time order and
/// the per-bucket `(wave, key)`-sorted list totals the order.
const WINDOW: usize = 1024;
/// Bucket-index mask (`at & MASK` is `at % WINDOW`).
const MASK: u64 = WINDOW as u64 - 1;
/// Words in the occupancy bitmap.
const BITMAP_WORDS: usize = WINDOW / 64;
/// Null link in the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// One far-future entry, ordered by `(time, key)`. Far-future pushes
/// always carry wave 0: a nonzero wave is only assigned to a push at
/// the *current* cycle, which by definition lies inside the window.
struct Overflow<E> {
    at: Cycle,
    key: u64,
    event: E,
}

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}

impl<E> Eq for Overflow<E> {}

impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest key)
        // comes out first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// One pooled node of a bucket's sorted list. Freed nodes keep their
/// slot (`event` becomes `None`) and are recycled through a freelist,
/// so steady-state push/pop cycles never touch the allocator.
struct Node<E> {
    next: u32,
    wave: u32,
    key: u64,
    event: Option<E>,
}

/// A time-ordered queue of simulation events with a content-keyed
/// tie-break.
///
/// Events popped from the queue come out in nondecreasing timestamp
/// order; events scheduled for the *same* cycle come out ordered by
/// `(wave, key)`:
///
/// * `key` is a caller-supplied content identity (e.g. a warp or
///   request id). Among the events pending at any instant keys must be
///   unique per timestamp, or the relative order of equal keys is
///   unspecified (stable insertion order, which is *not* a
///   reproducibility contract).
/// * `wave` is assigned internally: a push at exactly the timestamp of
///   the most recently popped event lands one wave *after* that event
///   (`last_wave + 1`), so same-cycle continuations — a retiring warp
///   admitting its successor, a completing load waking its waiters —
///   run after the remaining events of the current wave, exactly as
///   they would if pushed at a strictly later time. Any push at a
///   different (necessarily later) timestamp carries wave 0.
///
/// Because the wave of a push depends only on the entry most recently
/// popped *from this queue*, a simulation split across several queues
/// (one per shard) assigns every event the same `(time, wave, key)`
/// coordinate as the single-queue run, making the global pop order
/// reproducible by construction. That is the foundation of the sharded
/// execution mode's bit-exactness (see `mcm-gpu`'s sharded runner).
///
/// # Example
///
/// ```
/// use mcm_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), 2, "late-high");
/// q.push(Cycle::new(1), 9, "early");
/// q.push(Cycle::new(5), 1, "late-low");
/// // Equal times pop in key order, regardless of push order.
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late-low")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late-high")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Head node index per bucket (`NIL` when empty).
    heads: Box<[u32; WINDOW]>,
    /// Tail node index per bucket, for O(1) append of the common
    /// already-largest case.
    tails: Box<[u32; WINDOW]>,
    /// One bit per bucket: set iff the bucket is nonempty. Popping
    /// scans this, 64 buckets per word.
    occupied: [u64; BITMAP_WORDS],
    /// Node pool backing every bucket list.
    nodes: Vec<Node<E>>,
    /// Freelist head into `nodes`.
    free: u32,
    /// Far-future events (at ≥ window end), ordered by (time, key).
    overflow: BinaryHeap<Overflow<E>>,
    /// Events currently in buckets (as opposed to the overflow heap).
    in_buckets: usize,
    /// Total pending events.
    len: usize,
    last_popped: Cycle,
    /// Wave of the most recently popped entry (reset by [`EventQueue::sync_to`]).
    last_wave: u32,
    /// Lower bound on the earliest bucketed timestamp (always at least
    /// `last_popped`); the bitmap scan starts here.
    scan: Cycle,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("in_buckets", &self.in_buckets)
            .field("last_popped", &self.last_popped)
            .field("last_wave", &self.last_wave)
            .finish_non_exhaustive()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heads: Box::new([NIL; WINDOW]),
            tails: Box::new([NIL; WINDOW]),
            occupied: [0; BITMAP_WORDS],
            nodes: Vec::new(),
            free: NIL,
            overflow: BinaryHeap::new(),
            in_buckets: 0,
            len: 0,
            last_popped: Cycle::ZERO,
            last_wave: 0,
            scan: Cycle::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = EventQueue::new();
        q.nodes.reserve(capacity);
        q
    }

    /// End of the near-future window (exclusive): events at or past it
    /// go to the overflow heap.
    #[inline]
    fn window_end(&self) -> u64 {
        self.last_popped.as_u64().saturating_add(WINDOW as u64)
    }

    /// Takes a node from the freelist (or grows the pool) and fills it.
    #[inline]
    fn take_node(&mut self, wave: u32, key: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.next = NIL;
            node.wave = wave;
            node.key = key;
            node.event = Some(event);
            idx
        } else {
            self.nodes.push(Node {
                next: NIL,
                wave,
                key,
                event: Some(event),
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `event` into the sorted list of the bucket for time `at`
    /// (which must lie inside the near-future window), keeping the list
    /// ordered by `(wave, key)`.
    #[inline]
    fn bucket_insert(&mut self, at: Cycle, wave: u32, key: u64, event: E) {
        debug_assert!(at >= self.last_popped && at.as_u64() < self.window_end());
        let b = (at.as_u64() & MASK) as usize;
        let idx = self.take_node(wave, key, event);
        if self.tails[b] == NIL {
            // Empty bucket.
            self.heads[b] = idx;
            self.tails[b] = idx;
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            let tail = self.tails[b] as usize;
            if (self.nodes[tail].wave, self.nodes[tail].key) <= (wave, key) {
                // Common case: new entry is the largest — append.
                self.nodes[tail].next = idx;
                self.tails[b] = idx;
            } else {
                let head = self.heads[b] as usize;
                if (wave, key) < (self.nodes[head].wave, self.nodes[head].key) {
                    self.nodes[idx as usize].next = self.heads[b];
                    self.heads[b] = idx;
                } else {
                    // Walk to the last node that sorts at or before the
                    // new entry and splice after it.
                    let mut prev = self.heads[b] as usize;
                    loop {
                        let next = self.nodes[prev].next;
                        debug_assert_ne!(next, NIL, "tail case handled above");
                        let n = next as usize;
                        if (wave, key) < (self.nodes[n].wave, self.nodes[n].key) {
                            self.nodes[idx as usize].next = next;
                            self.nodes[prev].next = idx;
                            break;
                        }
                        prev = n;
                    }
                }
            }
        }
        self.in_buckets += 1;
        if at < self.scan {
            self.scan = at;
        }
    }

    /// The earliest bucketed timestamp. Requires `in_buckets > 0`.
    ///
    /// Scans the occupancy bitmap forward from `scan`; because every
    /// bucketed timestamp lies in `[scan, scan + WINDOW)`, the ring
    /// offset from `scan`'s bucket recovers the absolute time.
    fn earliest_bucket_time(&self) -> Cycle {
        debug_assert!(self.in_buckets > 0);
        let start = self.scan.as_u64();
        let i0 = (start & MASK) as usize;
        let mut word = i0 / 64;
        let mut mask = !0u64 << (i0 % 64);
        for _ in 0..=BITMAP_WORDS {
            let bits = self.occupied[word] & mask;
            if bits != 0 {
                let b = word * 64 + bits.trailing_zeros() as usize;
                let delta = (b.wrapping_sub(i0) as u64) & MASK;
                return Cycle::new(start + delta);
            }
            word = (word + 1) % BITMAP_WORDS;
            mask = !0;
        }
        unreachable!("in_buckets > 0 but no occupied bucket found");
    }

    /// Schedules `event` to fire at absolute time `at` under content
    /// key `key`.
    ///
    /// A push at the current cycle (the last popped timestamp) is
    /// assigned the next wave after the entry being processed; any
    /// later timestamp gets wave 0. Scheduling in the past (before the
    /// last popped timestamp) is a simulation logic error; it is
    /// tolerated in release builds (the event is clamped to fire "now")
    /// but trips a debug assertion.
    pub fn push(&mut self, at: Cycle, key: u64, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at} which is before current time {}",
            self.last_popped
        );
        // Release builds honour the documented "fires now" contract:
        // without the clamp a stale timestamp would pop out of order
        // and regress `now()`.
        let at = at.max(self.last_popped);
        let wave = if at == self.last_popped {
            self.last_wave + 1
        } else {
            0
        };
        if at.as_u64() < self.window_end() {
            self.bucket_insert(at, wave, key, event);
        } else {
            debug_assert_eq!(wave, 0, "far-future pushes are never same-cycle");
            self.overflow.push(Overflow { at, key, event });
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event together with its full
    /// `(time, wave, key)` coordinate, or `None` when empty.
    ///
    /// The coordinate is the event's global position in the canonical
    /// order — the sharded runner publishes it as the shard's frontier.
    pub fn pop_entry(&mut self) -> Option<(Cycle, u32, u64, E)> {
        if self.len == 0 {
            return None;
        }
        // Bucketed events always precede overflow ones: buckets hold
        // times below the window end, the overflow at or above it.
        let at = if self.in_buckets > 0 {
            self.earliest_bucket_time()
        } else {
            self.overflow.peek().expect("len > 0 with empty buckets").at
        };
        self.last_popped = at;
        self.scan = at;
        // The window just advanced: migrate every overflow entry it now
        // covers into the sorted buckets (all carry wave 0).
        let wend = self.window_end();
        while let Some(head) = self.overflow.peek() {
            if head.at.as_u64() >= wend {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            self.bucket_insert(entry.at, 0, entry.key, entry.event);
        }
        // `at`'s bucket is nonempty now: either it supplied `at`, or the
        // first migrated entry (the overflow minimum) carried time `at`.
        // Its head is the minimal (wave, key) entry at this timestamp.
        let b = (at.as_u64() & MASK) as usize;
        let idx = self.heads[b];
        debug_assert_ne!(idx, NIL);
        let node = &mut self.nodes[idx as usize];
        let event = node.event.take().expect("bucketed node holds an event");
        let (wave, key) = (node.wave, node.key);
        self.heads[b] = node.next;
        node.next = self.free;
        self.free = idx;
        if self.heads[b] == NIL {
            self.tails[b] = NIL;
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.in_buckets -= 1;
        self.len -= 1;
        self.last_wave = wave;
        Some((at, wave, key, event))
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.pop_entry().map(|(at, _, _, event)| (at, event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.in_buckets > 0 {
            Some(self.earliest_bucket_time())
        } else {
            self.overflow.peek().map(|e| e.at)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The timestamp of the most recently popped event — the simulation's
    /// notion of "now".
    pub fn now(&self) -> Cycle {
        self.last_popped
    }

    /// Re-anchors the queue's clock and wave state at `now`, as if an
    /// entry `(now, wave 0)` had just been popped.
    ///
    /// Callers invoke this at synchronization points where event
    /// streams restart from a known instant (e.g. a kernel launch
    /// boundary), so that every engine — serial or sharded — assigns
    /// identical waves to the pushes that follow. The queue must be
    /// empty and `now` must not precede the current time.
    ///
    /// # Panics
    ///
    /// Panics if events are still pending.
    pub fn sync_to(&mut self, now: Cycle) {
        assert!(self.is_empty(), "sync_to on a non-empty queue");
        debug_assert!(now >= self.last_popped, "sync_to would rewind the clock");
        self.last_popped = now.max(self.last_popped);
        self.last_wave = 0;
        self.scan = self.last_popped;
    }

    /// Drops all pending events, keeping the current time.
    pub fn clear(&mut self) {
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.occupied = [0; BITMAP_WORDS];
        self.nodes.clear();
        self.free = NIL;
        self.overflow.clear();
        self.in_buckets = 0;
        self.len = 0;
        self.scan = self.last_popped;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 4, 1, 100] {
            q.push(Cycle::new(t), t, t);
        }
        let mut out = Vec::new();
        while let Some((at, ev)) = q.pop() {
            assert_eq!(at.as_u64(), ev);
            out.push(ev);
        }
        assert_eq!(out, vec![1, 3, 4, 7, 9, 100]);
    }

    #[test]
    fn simultaneous_events_pop_in_key_order() {
        let mut q = EventQueue::new();
        // Push keys in a scrambled order; pops come out sorted by key,
        // independent of push order.
        for i in 0..100u64 {
            let key = (i * 37) % 100;
            q.push(Cycle::new(42), key, key);
        }
        for want in 0..100u64 {
            assert_eq!(q.pop(), Some((Cycle::new(42), want)));
        }
    }

    #[test]
    fn same_cycle_repush_lands_in_the_next_wave() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), 10, "w0-k10");
        q.push(Cycle::new(5), 20, "w0-k20");
        assert_eq!(q.pop(), Some((Cycle::new(5), "w0-k10")));
        // Pushed at the current cycle with a *smaller* key: it still
        // runs after the remaining wave-0 entry.
        q.push(Cycle::new(5), 1, "w1-k1");
        assert_eq!(q.pop(), Some((Cycle::new(5), "w0-k20")));
        // Now last_wave is 0 again (we popped a wave-0 entry)... no:
        // (5, wave 1, key 1) is still pending and pops next.
        assert_eq!(q.pop(), Some((Cycle::new(5), "w1-k1")));
        // A push during a wave-1 entry's processing lands in wave 2.
        q.push(Cycle::new(5), 0, "w2-k0");
        q.push(Cycle::new(6), 0, "t6");
        assert_eq!(q.pop(), Some((Cycle::new(5), "w2-k0")));
        assert_eq!(q.pop(), Some((Cycle::new(6), "t6")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wave_depends_only_on_the_popped_entry() {
        // Two queues holding disjoint halves of one event set assign
        // the same waves as a single queue holding all of it — the
        // shard-invariance property in miniature.
        let mut whole = EventQueue::new();
        let mut half = EventQueue::new();
        // Whole queue: keys 1 (shard A) and 2 (shard B) at t=10.
        whole.push(Cycle::new(10), 1, 1u64);
        whole.push(Cycle::new(10), 2, 2u64);
        // Half queue: only shard B's key 2.
        half.push(Cycle::new(10), 2, 2u64);
        // Whole: pop key 1, then key 2; a push at t=10 during key 2's
        // processing gets wave = popped wave + 1 = 1.
        whole.pop();
        let (_, w_whole, _, _) = whole.pop_entry().unwrap();
        whole.push(Cycle::new(10), 3, 3u64);
        // Half: pop key 2 directly; same push gets the same wave.
        let (_, w_half, _, _) = half.pop_entry().unwrap();
        half.push(Cycle::new(10), 3, 3u64);
        assert_eq!(w_whole, w_half);
        let (_, a, _, _) = whole.pop_entry().unwrap();
        let (_, b, _, _) = half.pop_entry().unwrap();
        assert_eq!(a, b, "continuation waves must match across queues");
        assert_eq!(a, 1);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.push(Cycle::new(10), 0, ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(10));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(2), 0, 'a');
        q.push(Cycle::new(1), 1, 'b');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // The pool survives a clear and keeps working.
        q.push(Cycle::new(3), 0, 'c');
        assert_eq!(q.pop(), Some((Cycle::new(3), 'c')));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 1, 1u64);
        q.push(Cycle::new(5), 5, 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Cycle::new(3), 3, 3);
        q.push(Cycle::new(4), 4, 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn far_future_events_cross_the_window() {
        // Events far beyond the near-future window take the overflow
        // path and must still pop in (time, key) order.
        let w = WINDOW as u64;
        let mut q = EventQueue::new();
        q.push(Cycle::new(5 * w), 50, 50u64);
        q.push(Cycle::new(2), 2, 2);
        q.push(Cycle::new(5 * w), 51, 51);
        q.push(Cycle::new(3 * w + 7), 30, 30);
        assert_eq!(q.pop(), Some((Cycle::new(2), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(3 * w + 7), 30)));
        // A direct push at the same cycle as migrated overflow entries
        // sorts among them purely by key — here *before* both, despite
        // being pushed last.
        q.push(Cycle::new(5 * w), 49, 49);
        assert_eq!(q.pop(), Some((Cycle::new(5 * w), 49)));
        assert_eq!(q.pop(), Some((Cycle::new(5 * w), 50)));
        assert_eq!(q.pop(), Some((Cycle::new(5 * w), 51)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_bucket_different_epochs_do_not_mix() {
        // Times t and t + WINDOW share a bucket index; the window
        // machinery must keep their epochs ordered.
        let w = WINDOW as u64;
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 1, 1u64);
        q.push(Cycle::new(10 + w), 2, 2);
        q.push(Cycle::new(10 + 2 * w), 3, 3);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(10 + w), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(10 + 2 * w), 3)));
    }

    #[test]
    fn matches_a_reference_sorted_queue() {
        // Drive calendar and reference implementations with the same
        // deterministic push/pop script and demand identical outputs.
        // The reference models the full (time, wave, key) contract.
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::new(0xCAFE);
        let mut cal = EventQueue::new();
        let mut reference: Vec<(u64, u32, u64)> = Vec::new(); // (at, wave, key)
        let mut now = 0u64;
        let mut last_wave = 0u32;
        for step in 0..20_000u64 {
            if !rng.next_u64().is_multiple_of(3) || reference.is_empty() {
                // Mix of same-cycle, near, boundary, and far-future
                // offsets. Keys are unique (derived from the step).
                let off = match rng.next_u64() % 10 {
                    0..=1 => 0,
                    2..=5 => rng.next_u64() % 64,
                    6..=7 => WINDOW as u64 - 2 + rng.next_u64() % 4,
                    _ => rng.next_u64() % (4 * WINDOW as u64),
                };
                let key = step.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                cal.push(Cycle::new(now + off), key, key);
                let wave = if off == 0 { last_wave + 1 } else { 0 };
                reference.push((now + off, wave, key));
            } else {
                let (at, wave, key, ev) = cal.pop_entry().expect("reference nonempty");
                let min = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &coord)| coord)
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let want = reference.remove(min);
                assert_eq!((at.as_u64(), wave, key), want, "pop mismatch");
                assert_eq!(ev, key, "event payload follows its key");
                now = want.0;
                last_wave = want.1;
            }
        }
        while let Some((at, wave, key, _)) = cal.pop_entry() {
            let min = reference
                .iter()
                .enumerate()
                .min_by_key(|&(_, &coord)| coord)
                .map(|(i, _)| i)
                .expect("nonempty");
            let want = reference.remove(min);
            assert_eq!((at.as_u64(), wave, key), want, "drain mismatch");
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn steady_state_recycles_nodes() {
        let mut q = EventQueue::with_capacity(8);
        for round in 0..1000u64 {
            q.push(Cycle::new(round + 1), 0, round);
            q.push(Cycle::new(round + 2), 1, round);
            q.pop();
            q.pop();
        }
        assert!(q.is_empty());
        // Two live events at a time: the pool never needed more nodes.
        assert!(q.nodes.len() <= 2, "pool grew to {}", q.nodes.len());
    }

    #[test]
    fn sync_to_restarts_wave_numbering() {
        // Two queues with different histories, synced to the same
        // instant, order an identical push script identically — the
        // kernel-boundary contract between the serial and sharded
        // engines.
        let mut a = EventQueue::new();
        a.push(Cycle::new(3), 7, 7u64);
        a.pop();
        a.push(Cycle::new(3), 8, 8); // wave 1 entry
        a.pop();
        let mut b = EventQueue::new();
        b.push(Cycle::new(2), 9, 9u64);
        b.pop();
        a.sync_to(Cycle::new(10));
        b.sync_to(Cycle::new(10));
        for q in [&mut a, &mut b] {
            q.push(Cycle::new(10), 5, 5);
            q.push(Cycle::new(10), 4, 4);
            q.push(Cycle::new(11), 1, 1);
        }
        loop {
            let x = a.pop_entry();
            let y = b.pop_entry();
            assert_eq!(
                x.map(|(t, w, k, _)| (t, w, k)),
                y.map(|(t, w, k, _)| (t, w, k))
            );
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty queue")]
    fn sync_to_rejects_pending_events() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), 0, ());
        q.sync_to(Cycle::new(10));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before current time")]
    fn past_push_trips_debug_assertion() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 0, ());
        q.pop();
        q.push(Cycle::new(5), 0, ());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_push_clamps_to_now_in_release() {
        // Satellite regression: a stale timestamp must not pop
        // out-of-order or regress `now()`.
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 0, 0u64);
        q.pop();
        q.push(Cycle::new(5), 1, 1); // in the past: fires "now" (t=10)
        q.push(Cycle::new(10), 2, 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.now(), Cycle::new(10));
        assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
        assert_eq!(q.now(), Cycle::new(10));
    }

    #[test]
    fn pop_monotonicity_holds_across_window_sizes() {
        // Regression for the push-clamp bug: times handed out by `pop`
        // never decrease, whatever the push pattern.
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::new(0xBEEF);
        let mut q = EventQueue::new();
        let mut now = Cycle::ZERO;
        let mut last = Cycle::ZERO;
        for i in 0..5000u64 {
            let off = rng.next_u64() % (2 * WINDOW as u64);
            q.push(Cycle::new(now.as_u64() + off), i, i);
            if i % 2 == 1 {
                let (at, _) = q.pop().expect("pushed more than popped");
                assert!(at >= last, "pop regressed: {at} after {last}");
                last = at;
                now = at;
            }
        }
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
    }
}
