//! The paper's §3.3.1 back-of-the-envelope analysis of on-package
//! bandwidth requirements, as executable code.
//!
//! The argument: on-package links must be sized so the expensive DRAM
//! bandwidth can be fully utilized. With `n` GPMs each owning `b` GB/s
//! of local DRAM, an average L2 hit rate `h`, and fine-grain interleaved
//! addresses (a `1/n` chance any request is local), each memory
//! partition supplies `b / (1 - h)` GB/s of post-cache bandwidth, of
//! which `(n-1)/n` crosses the package to other GPMs. The paper runs
//! this with n = 4, b = 768 GB/s, h = 50 % and concludes a link
//! bandwidth of "4b" (3 TB/s) is needed, and that settings below it
//! degrade performance while settings above it buy nothing (§3.3.1).

/// Inputs to the §3.3.1 sizing exercise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSizing {
    /// Number of GPMs (the paper's 4).
    pub gpms: u32,
    /// Local DRAM bandwidth per GPM in GB/s (the paper's `b` = 768).
    pub dram_gbps_per_gpm: f64,
    /// Average memory-side L2 hit rate (the paper assumes ~0.5).
    pub l2_hit_rate: f64,
}

impl LinkSizing {
    /// Builds a sizing exercise, validating the GPM count up front.
    ///
    /// # Panics
    ///
    /// Panics unless `gpms >= 2`: cross-package sizing of a machine
    /// with fewer than two modules is meaningless, and the
    /// `(gpms - 1) / gpms` remote fraction would underflow at zero
    /// (a panic in debug, garbage via wraparound in release).
    pub fn new(gpms: u32, dram_gbps_per_gpm: f64, l2_hit_rate: f64) -> Self {
        assert!(
            gpms >= 2,
            "link sizing needs at least 2 GPMs (got {gpms}); \
             a {gpms}-module package has no cross-package links to size"
        );
        LinkSizing {
            gpms,
            dram_gbps_per_gpm,
            l2_hit_rate,
        }
    }

    /// The paper's own example: 4 GPMs × 768 GB/s at a 50 % L2 hit rate.
    pub fn paper_example() -> Self {
        LinkSizing::new(4, 768.0, 0.5)
    }

    /// Bandwidth each memory partition supplies to the SMs once the
    /// memory-side L2 filters DRAM traffic: `b / (1 - h)` (the paper's
    /// "2b units of bandwidth would be supplied from each L2 cache
    /// partition").
    ///
    /// # Panics
    ///
    /// Panics if the hit rate is not in `[0, 1)`.
    pub fn supply_per_partition_gbps(&self) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.l2_hit_rate),
            "hit rate must be in [0, 1)"
        );
        self.dram_gbps_per_gpm / (1.0 - self.l2_hit_rate)
    }

    /// Under uniform fine-grain interleaving, the fraction of each
    /// partition's supply consumed by *remote* GPMs.
    ///
    /// # Panics
    ///
    /// Panics when `gpms < 2` (the struct was built by literal rather
    /// than [`LinkSizing::new`]): with `gpms = 0` the old
    /// `gpms - 1` underflowed — a debug panic, or `u32::MAX` and a
    /// garbage fraction in release — and with `gpms = 1` it silently
    /// reported a remote fraction of 0 for a machine the sizing
    /// argument does not apply to.
    pub fn remote_fraction(&self) -> f64 {
        assert!(
            self.gpms >= 2,
            "remote fraction is undefined below 2 GPMs (got {})",
            self.gpms
        );
        f64::from(self.gpms - 1) / f64::from(self.gpms)
    }

    /// Total bandwidth crossing the package: supply × remote fraction,
    /// summed over partitions.
    pub fn total_cross_package_gbps(&self) -> f64 {
        self.supply_per_partition_gbps() * self.remote_fraction() * f64::from(self.gpms)
    }

    /// The per-GPM link bandwidth required so links never throttle the
    /// DRAM: each GPM both imports and exports its share of the
    /// cross-package traffic. This is the paper's "link bandwidth of 4b
    /// would be necessary to provide 4b total DRAM bandwidth".
    pub fn required_link_gbps(&self) -> f64 {
        // Each GPM exports supply×remote_fraction and imports the same
        // by symmetry; a link must carry both directions.
        2.0 * self.supply_per_partition_gbps() * self.remote_fraction()
    }

    /// Classifies a candidate link bandwidth the way §3.3.3 does:
    /// whether it leaves DRAM bandwidth stranded.
    pub fn verdict(&self, link_gbps: f64) -> LinkVerdict {
        let needed = self.required_link_gbps();
        if link_gbps >= needed {
            LinkVerdict::Sufficient {
                headroom: link_gbps / needed,
            }
        } else {
            LinkVerdict::Throttles {
                achievable_dram_fraction: link_gbps / needed,
            }
        }
    }
}

/// The outcome of sizing a link against the §3.3.1 requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkVerdict {
    /// The link meets or exceeds the requirement; extra capacity buys
    /// nothing ("not expected to yield any additional performance").
    Sufficient {
        /// Ratio of provided to required bandwidth.
        headroom: f64,
    },
    /// The link is undersized; at saturation only this fraction of the
    /// DRAM bandwidth is reachable.
    Throttles {
        /// Upper bound on the usable fraction of DRAM bandwidth.
        achievable_dram_fraction: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_reproduces_section_331() {
        let s = LinkSizing::paper_example();
        // "2b units of bandwidth would be supplied from each L2 cache
        // partition": 768 / (1 - 0.5) = 1536 = 2b.
        assert_eq!(s.supply_per_partition_gbps(), 1536.0);
        // "A link bandwidth of 4b would be necessary": 2 × 2b × 3/4 =
        // 3b... the paper rounds its symmetric import/export argument to
        // 4b; our directional accounting gives 2304 GB/s of demand per
        // GPM, within the same "multiple of b" regime.
        let needed = s.required_link_gbps();
        assert!((needed - 2304.0).abs() < 1e-9);
        // 3 TB/s links are sufficient; 768 GB/s throttles to a third.
        assert!(matches!(s.verdict(3072.0), LinkVerdict::Sufficient { .. }));
        match s.verdict(768.0) {
            LinkVerdict::Throttles {
                achievable_dram_fraction,
            } => assert!((achievable_dram_fraction - 768.0 / 2304.0).abs() < 1e-9),
            other => panic!("768 GB/s must throttle, got {other:?}"),
        }
    }

    #[test]
    fn higher_hit_rates_relax_the_requirement_per_dram_byte() {
        // A better L2 raises supply (more bandwidth amplification) —
        // the requirement *grows* with hit rate for fixed DRAM.
        let lo = LinkSizing {
            l2_hit_rate: 0.0,
            ..LinkSizing::paper_example()
        };
        let hi = LinkSizing {
            l2_hit_rate: 0.75,
            ..LinkSizing::paper_example()
        };
        assert!(hi.required_link_gbps() > lo.required_link_gbps());
        assert_eq!(lo.required_link_gbps(), 2.0 * 768.0 * 0.75);
    }

    #[test]
    fn more_gpms_raise_the_remote_fraction() {
        let four = LinkSizing::paper_example();
        let eight = LinkSizing {
            gpms: 8,
            ..LinkSizing::paper_example()
        };
        assert!(eight.remote_fraction() > four.remote_fraction());
        assert_eq!(four.remote_fraction(), 0.75);
        assert_eq!(eight.remote_fraction(), 0.875);
    }

    #[test]
    fn two_gpm_machine_halves_cross_traffic() {
        let two = LinkSizing {
            gpms: 2,
            dram_gbps_per_gpm: 1536.0,
            l2_hit_rate: 0.5,
        };
        assert_eq!(two.remote_fraction(), 0.5);
        assert_eq!(two.total_cross_package_gbps(), 3072.0);
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn unit_hit_rate_is_rejected() {
        let s = LinkSizing {
            l2_hit_rate: 1.0,
            ..LinkSizing::paper_example()
        };
        let _ = s.supply_per_partition_gbps();
    }

    #[test]
    #[should_panic(expected = "at least 2 GPMs (got 0)")]
    fn zero_gpm_machines_are_rejected_at_construction() {
        let _ = LinkSizing::new(0, 768.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least 2 GPMs (got 1)")]
    fn single_gpm_machines_are_rejected_at_construction() {
        let _ = LinkSizing::new(1, 768.0, 0.5);
    }

    /// Regression: a literally-constructed zero-GPM sizing used to
    /// underflow `gpms - 1` inside `remote_fraction` — a debug panic
    /// with an arithmetic message, or `u32::MAX / 0` garbage in
    /// release. Now it fails loudly either way, naming the constraint.
    #[test]
    #[should_panic(expected = "remote fraction is undefined below 2 GPMs (got 0)")]
    fn zero_gpm_remote_fraction_panics_loudly() {
        let s = LinkSizing {
            gpms: 0,
            dram_gbps_per_gpm: 768.0,
            l2_hit_rate: 0.5,
        };
        let _ = s.remote_fraction();
    }

    /// Regression: one GPM used to yield a silent remote fraction of 0
    /// (and so a "required link bandwidth" of 0 GB/s) for a machine the
    /// §3.3.1 argument does not even apply to.
    #[test]
    #[should_panic(expected = "remote fraction is undefined below 2 GPMs (got 1)")]
    fn single_gpm_remote_fraction_panics_loudly() {
        let s = LinkSizing {
            gpms: 1,
            dram_gbps_per_gpm: 768.0,
            l2_hit_rate: 0.5,
        };
        let _ = s.remote_fraction();
    }
}
