//! Extension ablation: how many GPMs to split 256 SMs into (§3.2's
//! design space). Honors `MCM_SCALE`.
fn main() {
    let _telemetry = mcm_bench::harness::telemetry_guard();
    let mut memo = mcm_bench::harness::Memo::from_env();
    println!("{}", mcm_bench::figures::ablation_gpm_count(&mut memo));
}
