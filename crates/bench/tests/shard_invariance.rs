//! End-to-end `MCM_SHARDS` plumbing: a figure binary's output is
//! byte-identical whether a simulation runs serially or sharded across
//! cores, both with artifact sinks disabled (the genuinely sharded
//! path) and enabled (the serial probed fallback, which the knob must
//! leave untouched).
//!
//! In-process shard invariance is pinned exhaustively in
//! `tests/shard_determinism.rs`; this suite exercises the environment
//! variable end to end through a real subprocess, mirroring
//! `parallel_determinism.rs`'s treatment of `MCM_JOBS`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mcm-shard-invariance-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every regular file under `dir` (recursively), keyed by its path
/// relative to `dir`, with full contents.
fn snapshot_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read artifact dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("path under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).expect("read artifact"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Runs `exe` in a fresh scratch directory under the given
/// `MCM_SHARDS`, optionally with artifact sinks pointed at the scratch
/// directory, and returns (stdout, files).
fn run_with_shards(
    tag: &str,
    exe: &str,
    shards: &str,
    artifacts: bool,
) -> (Vec<u8>, BTreeMap<String, Vec<u8>>) {
    let dir = scratch_dir(&format!("{tag}-shards{shards}"));
    let mut cmd = Command::new(exe);
    cmd.current_dir(&dir)
        .env("MCM_SCALE", "0.01")
        .env("MCM_JOBS", "1")
        .env("MCM_SHARDS", shards);
    if artifacts {
        cmd.env("MCM_TRACE", &dir).env("MCM_METRICS", &dir);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {tag}: {e}"));
    assert!(
        out.status.success(),
        "{tag} with MCM_SHARDS={shards} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let files = snapshot_files(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    (out.stdout, files)
}

/// With no artifact sinks configured, the harness routes every
/// simulation through the sharded engine — the printed figure table
/// must not move by a byte between one shard and two.
#[test]
fn fig09_stdout_is_shard_count_invariant() {
    let exe = env!("CARGO_BIN_EXE_fig09_distributed_sched");
    let (stdout_1, files_1) = run_with_shards("fig09-plain", exe, "1", false);
    let (stdout_2, files_2) = run_with_shards("fig09-plain", exe, "2", false);
    assert_eq!(
        stdout_1, stdout_2,
        "fig09 stdout differs between MCM_SHARDS=1 and MCM_SHARDS=2"
    );
    assert!(!stdout_1.is_empty(), "fig09 printed nothing");
    assert!(
        files_1.is_empty() && files_2.is_empty(),
        "no artifacts were requested, yet some were written"
    );
}

/// With trace/metrics sinks attached, probed runs fall back to the
/// serial engine regardless of `MCM_SHARDS` — so stdout *and* every
/// artifact byte must be identical, proving the knob cannot corrupt
/// observability output.
#[test]
fn fig09_artifacts_are_untouched_by_the_shard_knob() {
    let exe = env!("CARGO_BIN_EXE_fig09_distributed_sched");
    let (stdout_1, files_1) = run_with_shards("fig09-probed", exe, "1", true);
    let (stdout_2, files_2) = run_with_shards("fig09-probed", exe, "2", true);
    assert_eq!(
        stdout_1, stdout_2,
        "fig09 stdout differs between MCM_SHARDS=1 and MCM_SHARDS=2"
    );
    assert!(!files_1.is_empty(), "fig09 wrote no artifacts");
    assert_eq!(
        files_1.keys().collect::<Vec<_>>(),
        files_2.keys().collect::<Vec<_>>(),
        "artifact file sets differ across shard counts"
    );
    for (name, bytes) in &files_1 {
        assert_eq!(
            bytes, &files_2[name],
            "artifact {name} differs between MCM_SHARDS=1 and MCM_SHARDS=2"
        );
    }
}
