//! Microbenchmarks for the calendar event queue — the single hottest
//! structure in the simulator (every warp step and every request stage
//! goes through one push and one pop). Patterns mirror the run loop:
//! dense same-cycle bursts, short near-future latencies inside the
//! bucket window, far-future pushes through the overflow heap, and a
//! steady-state hold model. Runs on the in-repo `mcm-testkit`
//! wall-clock runner (`cargo bench -p mcm-engine`).

use mcm_engine::rng::Xoshiro256;
use mcm_engine::{Cycle, EventQueue};
use mcm_testkit::bench::{black_box, Group};

fn main() {
    let mut group = Group::new("event_queue");

    // Same-cycle burst: N events at one timestamp, drained in key
    // order — the kernel-launch placement pattern.
    {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(256);
        group.bench("same_cycle_burst_64", || {
            let now = q.now();
            for i in 0..64u64 {
                q.push(now, i, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        });
    }

    // Near-future uniform latencies (within the bucket window) at a
    // steady hold of 256 in-flight events — the run loop's steady
    // state.
    {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(512);
        let mut rng = Xoshiro256::new(0xBE7C);
        let now = q.now();
        for i in 0..256u64 {
            q.push(now + Cycle::new(rng.next_range(900)), i, i);
        }
        group.bench("hold256_near_future", || {
            let (t, v) = q.pop().expect("queue is held non-empty");
            q.push(t + Cycle::new(1 + rng.next_range(900)), v, v);
            black_box(t)
        });
    }

    // Far-future pushes: latencies beyond the bucket window exercise
    // the overflow heap and its migration into buckets.
    {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(512);
        let mut rng = Xoshiro256::new(0xFA2F);
        let now = q.now();
        for i in 0..256u64 {
            q.push(now + Cycle::new(2000 + rng.next_range(50_000)), i, i);
        }
        group.bench("hold256_far_future", || {
            let (t, v) = q.pop().expect("queue is held non-empty");
            q.push(t + Cycle::new(2000 + rng.next_range(50_000)), v, v);
            black_box(t)
        });
    }

    // Mixed model: mostly short hops with an occasional long DRAM-ish
    // latency, the closest microbenchmark to the simulator's event mix.
    {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(512);
        let mut rng = Xoshiro256::new(0x517E);
        let now = q.now();
        for i in 0..256u64 {
            q.push(now + Cycle::new(rng.next_range(64)), i, i);
        }
        group.bench("hold256_mixed_latency", || {
            let (t, v) = q.pop().expect("queue is held non-empty");
            let dt = if rng.chance(0.05) {
                1500 + rng.next_range(3000)
            } else {
                1 + rng.next_range(64)
            };
            q.push(t + Cycle::new(dt), v, v);
            black_box(t)
        });
    }

    group.finish();
}
