//! Property-based tests for interconnect invariants.

use mcm_engine::Cycle;
use mcm_interconnect::energy::{EnergyLedger, Tier};
use mcm_interconnect::link::Link;
use mcm_interconnect::ring::{NodeId, RingNetwork};
use proptest::prelude::*;

proptest! {
    /// Ring hop count is symmetric, bounded by floor(n/2), and zero only
    /// for self-routes.
    #[test]
    fn ring_hops_properties(n in 1u8..16, a in 0u8..16, b in 0u8..16) {
        let ring = RingNetwork::new(n, 768.0, Cycle::new(32));
        let a = NodeId(a % n);
        let b = NodeId(b % n);
        let h = ring.hops(a, b);
        prop_assert_eq!(h, ring.hops(b, a));
        prop_assert!(h <= u32::from(n) / 2);
        prop_assert_eq!(h == 0, a == b);
    }

    /// A ring transfer arrives no earlier than hops * hop_latency after
    /// departure, and charges exactly hops * bytes of segment traffic.
    #[test]
    fn ring_transfer_lower_bound(
        n in 2u8..9,
        from in 0u8..9,
        to in 0u8..9,
        bytes in 1u64..1_000_000,
    ) {
        let hop = Cycle::new(32);
        let mut ring = RingNetwork::new(n, 768.0, hop);
        let from = NodeId(from % n);
        let to = NodeId(to % n);
        let hops = ring.hops(from, to);
        let arrive = ring.transfer(Cycle::ZERO, from, to, bytes);
        prop_assert!(arrive.as_u64() >= u64::from(hops) * 32);
        prop_assert_eq!(ring.total_segment_bytes(), u64::from(hops) * bytes);
    }

    /// Link transfers never complete before arrival + hop latency.
    #[test]
    fn link_latency_floor(
        gbps in 1.0f64..10_000.0,
        hop in 0u64..128,
        at in 0u64..10_000,
        bytes in 1u64..1_000_000,
    ) {
        let mut l = Link::new("p", gbps, Cycle::new(hop), Tier::Package);
        let done = l.transfer(Cycle::new(at), bytes);
        prop_assert!(done >= Cycle::new(at + hop));
    }

    /// Energy ledgers: total is the sum of parts, and merging equals
    /// recording into one ledger.
    #[test]
    fn energy_ledger_additive(
        recs in proptest::collection::vec((0usize..4, 0u64..1_000_000), 0..64),
    ) {
        let mut one = EnergyLedger::new();
        let mut a = EnergyLedger::new();
        let mut b = EnergyLedger::new();
        for (i, &(t, bytes)) in recs.iter().enumerate() {
            let tier = Tier::ALL[t];
            one.record(tier, bytes);
            if i % 2 == 0 { a.record(tier, bytes) } else { b.record(tier, bytes) }
        }
        a.merge(&b);
        for tier in Tier::ALL {
            prop_assert_eq!(a.bytes(tier), one.bytes(tier));
        }
        let sum: f64 = Tier::ALL.iter().map(|&t| one.joules(t)).sum();
        prop_assert!((one.total_joules() - sum - one.dram_joules()).abs() < 1e-12);
    }
}
