//! Synthetic reconstruction of the MCM-GPU paper's 48-benchmark
//! evaluation suite.
//!
//! The paper's traces are proprietary; this crate reproduces each
//! workload's *published characteristics* — category, Table 4 memory
//! footprint, parallelism, memory intensity, and locality structure —
//! as a parameterized, deterministic address-stream generator. See
//! DESIGN.md for why this substitution preserves every evaluated
//! behaviour.
//!
//! * [`spec`] — [`spec::WorkloadSpec`] and [`spec::LocalityProfile`],
//!   the static description of one benchmark.
//! * [`descriptor`] — [`descriptor::ModelDescriptor`], the closed-form
//!   view of a spec that analytical performance models read.
//! * [`stream`] — [`stream::WarpStream`], the per-warp instruction and
//!   address generator.
//! * [`suite`] — the 48 concrete workloads, grouped and ordered as the
//!   paper's figures group and order them.
//! * [`trace`] — capture any stream into a concrete, serializable
//!   trace and replay it (the paper's simulator is trace-driven; bring
//!   your own traces here).
//!
//! # Example
//!
//! ```
//! use mcm_workloads::suite;
//! use mcm_workloads::stream::WarpStream;
//!
//! let stream = suite::by_name("Stream").expect("Table 4 workload");
//! let ops: Vec<_> = WarpStream::new(&stream, 0, 0, 0).take(10).collect();
//! assert!(!ops.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod descriptor;
pub mod spec;
pub mod stream;
pub mod suite;
pub mod trace;

pub use descriptor::{AccessMix, ModelDescriptor};
pub use spec::{Category, LocalityProfile, WorkloadSpec};
pub use stream::{WarpOp, WarpStream};
