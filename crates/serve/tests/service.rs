//! Integration tests for [`SweepService`] over scripted backends: the
//! exactly-once contract (hits never run, in-flight duplicates share
//! one run), admission control, and the shutdown drill — all over real
//! localhost sockets.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mcm_serve::protocol::report_slice;
use mcm_serve::service::{ServeOptions, SweepService};
use mcm_serve::{Backend, PairKey};

/// A manually opened gate that `ScriptedBackend::run` can block on,
/// counting entries so tests can wait for a worker to be mid-run.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicU64,
}

impl Gate {
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn pass(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn wait_entered(&self, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(Instant::now() < deadline, "gate never reached {n} entries");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// A backend over a fixed name grid; `run` renders a deterministic
/// fake report and records it so later lookups hit.
struct ScriptedBackend {
    configs: Vec<String>,
    workloads: Vec<String>,
    cache: Mutex<HashMap<u64, String>>,
    runs: AtomicU64,
    gate: Option<Arc<Gate>>,
}

impl ScriptedBackend {
    fn new(configs: &[&str], workloads: &[&str], gate: Option<Arc<Gate>>) -> Self {
        ScriptedBackend {
            configs: configs.iter().map(|s| (*s).to_string()).collect(),
            workloads: workloads.iter().map(|s| (*s).to_string()).collect(),
            cache: Mutex::new(HashMap::new()),
            runs: AtomicU64::new(0),
            gate,
        }
    }

    fn fingerprint(config: &str, workload: &str) -> u64 {
        // Deterministic, collision-free over the tiny test grids.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in config.bytes().chain([0u8]).chain(workload.bytes()) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn render(config: &str, workload: &str) -> String {
        format!("{{\"config\":\"{config}\",\"workload\":\"{workload}\",\"cycles\":42}}")
    }

    fn prefill(&self, config: &str, workload: &str) {
        self.cache.lock().unwrap().insert(
            Self::fingerprint(config, workload),
            Self::render(config, workload),
        );
    }
}

impl Backend for ScriptedBackend {
    fn resolve(&self, config: &str, workload: &str) -> Result<PairKey, String> {
        if !self.configs.iter().any(|c| c == config) {
            return Err(format!("unknown config \"{config}\""));
        }
        if !self.workloads.iter().any(|w| w == workload) {
            return Err(format!("unknown workload \"{workload}\""));
        }
        Ok(PairKey {
            fingerprint: Self::fingerprint(config, workload),
            config: config.to_string(),
            workload: workload.to_string(),
        })
    }

    fn lookup(&self, key: &PairKey) -> Option<String> {
        self.cache.lock().unwrap().get(&key.fingerprint).cloned()
    }

    fn run(&self, key: &PairKey) -> String {
        self.runs.fetch_add(1, Ordering::SeqCst);
        if let Some(gate) = &self.gate {
            gate.pass();
        }
        let report = Self::render(&key.config, &key.workload);
        self.cache
            .lock()
            .unwrap()
            .insert(key.fingerprint, report.clone());
        report
    }

    fn all_workloads(&self) -> Vec<String> {
        self.workloads.clone()
    }
}

/// A blocking line client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(service: &SweepService) -> Client {
        let stream = TcpStream::connect(service.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        line.trim_end().to_string()
    }

    /// Reads until the sweep's `done` line, returning every line seen
    /// (including it).
    fn recv_until_done(&mut self, id: u64) -> Vec<String> {
        let done = format!("{{\"done\":{id},");
        let mut lines = Vec::new();
        loop {
            let line = self.recv();
            let finished = line.starts_with(&done);
            lines.push(line);
            if finished {
                return lines;
            }
        }
    }

    /// Remaining lines until EOF.
    fn drain(mut self) -> Vec<String> {
        let mut lines = Vec::new();
        let mut line = String::new();
        while self.reader.read_line(&mut line).unwrap_or(0) > 0 {
            lines.push(line.trim_end().to_string());
            line.clear();
        }
        lines
    }
}

fn sweep_request(id: u64, configs: &[&str], workloads: &[&str]) -> String {
    let quote = |names: &[&str]| {
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{{\"op\":\"sweep\",\"id\":{id},\"configs\":[{}],\"workloads\":[{}]}}",
        quote(configs),
        quote(workloads)
    )
}

fn start(backend: Arc<dyn Backend>, workers: usize, queue_capacity: usize) -> SweepService {
    SweepService::start(
        "127.0.0.1:0",
        backend,
        ServeOptions {
            workers,
            queue_capacity,
        },
    )
    .expect("bind sweep service")
}

#[test]
fn ping_stats_and_shutdown_round_trip() {
    let backend = Arc::new(ScriptedBackend::new(&["a"], &["w"], None));
    let service = start(backend, 1, 16);
    let mut client = Client::connect(&service);
    client.send("{\"op\":\"ping\"}");
    assert_eq!(client.recv(), "{\"pong\":true}");
    client.send("{\"op\":\"stats\"}");
    let stats = client.recv();
    assert!(stats.contains("\"runs\":0"), "fresh stats: {stats}");
    client.send("not json");
    assert!(client.recv().contains("\"error\""));
    client.send("{\"op\":\"shutdown\"}");
    assert_eq!(client.recv(), "{\"bye\":true}");
    service.wait();
}

#[test]
fn hits_never_run_and_misses_run_once() {
    let backend = Arc::new(ScriptedBackend::new(&["a", "b"], &["w"], None));
    backend.prefill("a", "w");
    let service = start(Arc::clone(&backend) as Arc<dyn Backend>, 2, 16);
    let mut client = Client::connect(&service);

    client.send(&sweep_request(1, &["a", "b"], &["w"]));
    let lines = client.recv_until_done(1);
    assert_eq!(lines[0], "{\"ack\":1,\"pairs\":2}");
    let hit = lines
        .iter()
        .find(|l| l.contains("\"config\":\"a\""))
        .unwrap();
    assert!(hit.contains("\"source\":\"hit\""), "prefilled pair: {hit}");
    let run = lines
        .iter()
        .find(|l| l.contains("\"config\":\"b\""))
        .unwrap();
    assert!(run.contains("\"source\":\"run\""), "missing pair: {run}");
    assert_eq!(*lines.last().unwrap(), "{\"done\":1,\"pairs\":2}");

    // The same grid again is now all hits; the wildcard selection
    // resolves through all_workloads().
    client.send(&sweep_request(2, &["a", "b"], &["*"]));
    let again = client.recv_until_done(2);
    assert!(again.iter().all(|l| !l.contains("\"source\":\"run\"")));

    assert_eq!(backend.runs.load(Ordering::SeqCst), 1);
    let stats = service.stats();
    assert_eq!(stats.misses, 1, "exactly one simulation ever: {stats:?}");
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.requests, 2);
}

#[test]
fn unknown_names_reject_the_whole_request() {
    let backend = Arc::new(ScriptedBackend::new(&["a"], &["w"], None));
    let service = start(Arc::clone(&backend) as Arc<dyn Backend>, 1, 16);
    let mut client = Client::connect(&service);
    client.send(&sweep_request(3, &["a", "nope"], &["w"]));
    let line = client.recv();
    assert!(
        line.contains("\"error\"") && line.contains("unknown config") && line.contains("nope"),
        "got: {line}"
    );
    assert_eq!(backend.runs.load(Ordering::SeqCst), 0, "nothing scheduled");
    assert_eq!(service.stats().misses, 0);
}

#[test]
fn concurrent_duplicate_pairs_share_one_run() {
    let gate = Arc::new(Gate::default());
    let backend = Arc::new(ScriptedBackend::new(
        &["a"],
        &["w"],
        Some(Arc::clone(&gate)),
    ));
    let service = start(Arc::clone(&backend) as Arc<dyn Backend>, 2, 16);

    // First client owns the run; the gate holds it mid-simulation.
    let mut first = Client::connect(&service);
    first.send(&sweep_request(1, &["a"], &["w"]));
    assert_eq!(first.recv(), "{\"ack\":1,\"pairs\":1}");
    gate.wait_entered(1);

    // Second client asks for the same pair while it is in flight: it
    // must subscribe, not resubmit.
    let mut second = Client::connect(&service);
    second.send(&sweep_request(7, &["a"], &["w"]));
    assert_eq!(second.recv(), "{\"ack\":7,\"pairs\":1}");
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().inflight_dedups < 1 {
        assert!(Instant::now() < deadline, "dedupe never observed");
        std::thread::sleep(Duration::from_millis(2));
    }

    gate.open();
    let first_lines = first.recv_until_done(1);
    let second_lines = second.recv_until_done(7);
    let owner = &first_lines[0];
    let shared = &second_lines[0];
    assert!(owner.contains("\"source\":\"run\""), "owner: {owner}");
    assert!(shared.contains("\"source\":\"shared\""), "shared: {shared}");
    assert_eq!(
        report_slice(owner).unwrap(),
        report_slice(shared).unwrap(),
        "both clients received byte-identical reports"
    );

    assert_eq!(backend.runs.load(Ordering::SeqCst), 1, "one run, ever");
    let stats = service.stats();
    assert_eq!((stats.misses, stats.inflight_dedups), (1, 1), "{stats:?}");
}

#[test]
fn duplicate_pairs_within_one_request_run_once() {
    let backend = Arc::new(ScriptedBackend::new(&["a"], &["w"], None));
    let service = start(Arc::clone(&backend) as Arc<dyn Backend>, 1, 16);
    let mut client = Client::connect(&service);
    // configs ["a","a"] × workloads ["w"] — the same pair twice.
    client.send(&sweep_request(4, &["a", "a"], &["w"]));
    let lines = client.recv_until_done(4);
    assert_eq!(lines[0], "{\"ack\":4,\"pairs\":2}");
    assert_eq!(backend.runs.load(Ordering::SeqCst), 1);
    let sources: Vec<&str> = lines
        .iter()
        .filter_map(|l| {
            if l.contains("\"source\":\"run\"") {
                Some("run")
            } else if l.contains("\"source\":\"shared\"") {
                Some("shared")
            } else {
                None
            }
        })
        .collect();
    assert_eq!(sources.len(), 2);
    assert!(sources.contains(&"run") && sources.contains(&"shared"));
}

#[test]
fn oversized_requests_are_rejected_whole() {
    let gate = Arc::new(Gate::default());
    let backend = Arc::new(ScriptedBackend::new(
        &["a", "b", "c"],
        &["w"],
        Some(Arc::clone(&gate)),
    ));
    // One worker, queue bound of one: a blocked run leaves room for
    // exactly one queued job.
    let service = start(Arc::clone(&backend) as Arc<dyn Backend>, 1, 1);
    let mut client = Client::connect(&service);
    client.send(&sweep_request(1, &["a"], &["w"]));
    assert_eq!(client.recv(), "{\"ack\":1,\"pairs\":1}");
    gate.wait_entered(1); // worker is mid-run; the queue is empty

    // Two fresh misses cannot fit a queue of one: rejected whole, with
    // no ack and nothing scheduled.
    let mut greedy = Client::connect(&service);
    greedy.send(&sweep_request(2, &["b", "c"], &["w"]));
    let line = greedy.recv();
    assert!(
        line.contains("\"error\"") && line.contains("rejected"),
        "got: {line}"
    );

    gate.open();
    let lines = client.recv_until_done(1);
    assert!(lines.iter().any(|l| l.contains("\"source\":\"run\"")));
    assert_eq!(backend.runs.load(Ordering::SeqCst), 1, "b and c never ran");
    let stats = service.stats();
    assert_eq!(stats.rejections, 1, "{stats:?}");
}

#[test]
fn shutdown_drill_answers_pending_pairs_loudly() {
    let gate = Arc::new(Gate::default());
    let backend = Arc::new(ScriptedBackend::new(
        &["a", "b"],
        &["w"],
        Some(Arc::clone(&gate)),
    ));
    let service = start(Arc::clone(&backend) as Arc<dyn Backend>, 1, 16);
    let mut client = Client::connect(&service);
    // One worker: (a, w) starts running, (b, w) stays queued.
    client.send(&sweep_request(9, &["a", "b"], &["w"]));
    assert_eq!(client.recv(), "{\"ack\":9,\"pairs\":2}");
    gate.wait_entered(1);

    let mut controller = Client::connect(&service);
    controller.send("{\"op\":\"shutdown\"}");
    assert_eq!(controller.recv(), "{\"bye\":true}");
    // Hold the gate until the pool's shutdown has cleared the queued
    // (b, w) job; opening earlier would let the worker take it through
    // the open gate and turn the drill into a normal completion.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.queued() > 0 {
        assert!(Instant::now() < deadline, "queued job never cleared");
        std::thread::sleep(Duration::from_millis(2));
    }
    gate.open(); // let the in-flight run finish

    let lines = client.drain();
    let ran = lines
        .iter()
        .find(|l| l.contains("\"config\":\"a\""))
        .expect("in-flight pair completes through shutdown");
    assert!(ran.contains("\"source\":\"run\""), "got: {ran}");
    let dropped = lines
        .iter()
        .find(|l| l.contains("\"error\"") && l.contains("(b, w)"))
        .expect("queued pair answered with a shutdown error");
    assert!(dropped.contains("shut down"), "got: {dropped}");
    assert!(
        lines.iter().any(|l| l.starts_with("{\"done\":9,")),
        "the sweep still completes: {lines:?}"
    );
    assert_eq!(backend.runs.load(Ordering::SeqCst), 1, "b never ran");
    service.wait();
}
