//! Stress and law tests for the set-associative cache beyond the
//! basics: the LRU inclusion property and adaptive-filter sanity under
//! adversarial access mixes, on the in-repo `mcm-testkit` harness.

use mcm_engine::Cycle;
use mcm_mem::addr::{AccessKind, LineAddr, Locality};
use mcm_mem::cache::{AllocFilter, CacheConfig, CacheOutcome, SetAssocCache};
use mcm_testkit::prelude::*;

/// Builds a cache with the given total line capacity and associativity,
/// fixed set count (so two caches with equal `sets` share their set
/// mapping and the inclusion property is meaningful).
fn cache(sets: u64, ways: u32) -> SetAssocCache {
    let mut cfg = CacheConfig::new("s", sets * u64::from(ways) * 128);
    cfg.ways = ways;
    cfg.latency = Cycle::new(1);
    cfg.tag_latency = Cycle::new(1);
    SetAssocCache::new(cfg)
}

fn run_reads(c: &mut SetAssocCache, trace: &[u64]) {
    for (t, &line) in trace.iter().enumerate() {
        if let CacheOutcome::Miss { allocate: true, .. } = c.access(
            Cycle::new(t as u64),
            LineAddr::new(line),
            AccessKind::Read,
            Locality::Local,
        ) {
            c.fill(LineAddr::new(line), Cycle::new(t as u64), false);
        }
    }
}

/// LRU inclusion: after any read trace, everything resident in a
/// w-way cache is also resident in a 2w-way cache with the same set
/// count (the stack property that makes LRU miss rates monotone in
/// associativity).
#[test]
fn lru_inclusion_property() {
    check(
        "lru_inclusion_property",
        &(vecs(u64s(0..4096), 1..800), u32s(1..6)),
        |&(ref trace, ways)| {
            let mut small = cache(16, ways);
            let mut big = cache(16, ways * 2);
            run_reads(&mut small, trace);
            run_reads(&mut big, trace);
            for &line in trace {
                if small.contains(LineAddr::new(line)) {
                    assert!(
                        big.contains(LineAddr::new(line)),
                        "line {line} resident at {ways} ways but evicted at {} ways",
                        ways * 2
                    );
                }
            }
        },
    );
}

/// Associativity never increases the miss count on the same trace
/// (corollary of the stack property).
#[test]
fn more_ways_never_more_misses() {
    check(
        "more_ways_never_more_misses",
        &vecs(u64s(0..2048), 1..800),
        |trace: &Vec<u64>| {
            let mut last_misses = None;
            for ways in [1u32, 2, 4, 8] {
                let mut c = cache(16, ways);
                run_reads(&mut c, trace);
                let misses = c.stats().accesses.misses();
                if let Some(prev) = last_misses {
                    assert!(
                        misses <= prev,
                        "{ways} ways missed {misses} > previous {prev}"
                    );
                }
                last_misses = Some(misses);
            }
        },
    );
}

/// The adaptive filter stays well-formed under arbitrary mixed
/// traces: accounting identities hold and fills never exceed
/// admitted misses.
#[test]
fn adaptive_filter_accounting() {
    check(
        "adaptive_filter_accounting",
        &vecs((u64s(0..2048), bools(), bools()), 1..600),
        |ops: &Vec<(u64, bool, bool)>| {
            let mut cfg = CacheConfig::new("adp", 64 * 8 * 128);
            cfg.ways = 8;
            cfg.alloc_filter = AllocFilter::Adaptive;
            let mut c = SetAssocCache::new(cfg);
            let mut admitted_misses = 0u64;
            for (t, &(line, remote, write)) in ops.iter().enumerate() {
                let loc = if remote {
                    Locality::Remote
                } else {
                    Locality::Local
                };
                let kind = if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                match c.access(Cycle::new(t as u64), LineAddr::new(line), kind, loc) {
                    CacheOutcome::Miss { allocate: true, .. } => {
                        admitted_misses += 1;
                        c.fill(LineAddr::new(line), Cycle::new(t as u64), false);
                    }
                    CacheOutcome::Miss {
                        allocate: false, ..
                    }
                    | CacheOutcome::Hit { .. }
                    | CacheOutcome::Bypass => {}
                }
            }
            let s = *c.stats();
            assert_eq!(s.accesses.total() + s.bypasses.get(), ops.len() as u64);
            assert!(s.fills.get() <= admitted_misses);
            assert!(c.resident_lines() as u64 <= 64 * 8);
        },
    );
}

#[test]
fn thrash_pattern_defeats_small_cache_but_not_big() {
    // A classic cyclic thrash over 1.5x the small cache's capacity.
    let trace: Vec<u64> = (0..48u64).cycle().take(4800).collect();
    let mut small = cache(16, 2); // 32 lines
    let mut big = cache(16, 8); // 128 lines
    run_reads(&mut small, &trace);
    run_reads(&mut big, &trace);
    assert!(
        small.stats().accesses.rate() < 0.95,
        "32-line LRU shouldn't fully hold a 48-line cycle: {}",
        small.stats().accesses
    );
    assert!(
        big.stats().accesses.rate() > 0.97,
        "128 lines must capture a 48-line cycle: {}",
        big.stats().accesses
    );
}
