//! Bit-exact binary (de)serialization of [`RunReport`].
//!
//! The payload of every store record is produced here. The encoding is
//! deliberately dumb: a version byte, then every field in declaration
//! order as little-endian integers (ratios as numerator/denominator
//! pairs, the energy ledger as its five raw byte counters, strings
//! length-prefixed). No field of a report is a float, so a decoded
//! report compares equal to the original under `==` — byte-for-byte
//! identity of everything computed from it follows.
//!
//! Decoding is defensive end to end: every read is bounds-checked,
//! the version byte is verified first, and trailing bytes are rejected.
//! A corrupt payload that slipped past the record checksum (or a
//! checksum-valid record written by a buggy future encoder) surfaces as
//! a [`CodecError`], which the recovery scan treats exactly like a
//! checksum failure: quarantine the record, never panic.

use mcm_engine::stats::Ratio;
use mcm_engine::Cycle;
use mcm_gpu::{ModuleStats, RunReport};
use mcm_interconnect::energy::{EnergyLedger, Tier};

/// Version byte stamped at the head of every encoded report. Bump on
/// any layout change so old payloads are quarantined, not reinterpreted.
pub const CODEC_VERSION: u8 = 1;

/// Upper bound on the module list length a decoder will accept. The
/// largest simulated package is far below this; a huge count means the
/// length field is garbage.
const MAX_MODULES: u32 = 4096;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The version byte is not [`CODEC_VERSION`].
    Version(u8),
    /// The payload ended before a field was complete.
    Truncated,
    /// A length or count field holds an implausible value.
    Implausible(&'static str),
    /// A string field is not valid UTF-8.
    Utf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Version(v) => write!(f, "unknown codec version {v}"),
            CodecError::Truncated => write!(f, "payload truncated mid-field"),
            CodecError::Implausible(what) => write!(f, "implausible {what}"),
            CodecError::Utf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ratio(out: &mut Vec<u8>, r: Ratio) {
    put_u64(out, r.hits());
    put_u64(out, r.total());
}

fn put_energy(out: &mut Vec<u8>, e: &EnergyLedger) {
    for tier in Tier::ALL {
        put_u64(out, e.bytes(tier));
    }
    put_u64(out, e.dram_bytes());
}

/// Encodes `report` into a fresh payload buffer.
pub fn encode(report: &RunReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + report.modules.len() * 48);
    out.push(CODEC_VERSION);
    put_str(&mut out, &report.workload);
    put_str(&mut out, &report.config);
    put_u64(&mut out, report.cycles.as_u64());
    put_u64(&mut out, report.instructions);
    put_u64(&mut out, report.mem_ops);
    put_u64(&mut out, report.reads);
    put_u64(&mut out, report.writes);
    put_u64(&mut out, report.local_accesses);
    put_u64(&mut out, report.remote_accesses);
    put_ratio(&mut out, report.l1);
    put_ratio(&mut out, report.l15);
    put_ratio(&mut out, report.l2);
    put_u64(&mut out, report.inter_module_bytes);
    put_u64(&mut out, report.dram_bytes);
    put_energy(&mut out, &report.energy);
    put_u32(&mut out, report.modules.len() as u32);
    for m in &report.modules {
        put_u64(&mut out, m.instructions);
        put_u64(&mut out, m.dram_bytes);
        put_ratio(&mut out, m.l2);
        put_ratio(&mut out, m.l15);
    }
    out
}

/// A bounds-checked cursor over an encoded payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        if len > 1 << 16 {
            return Err(CodecError::Implausible("string length"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Utf8)
    }

    fn ratio(&mut self) -> Result<Ratio, CodecError> {
        let hits = self.u64()?;
        let total = self.u64()?;
        if hits > total {
            return Err(CodecError::Implausible("ratio (hits > total)"));
        }
        Ok(Ratio::from_parts(hits, total))
    }

    fn energy(&mut self) -> Result<EnergyLedger, CodecError> {
        let mut e = EnergyLedger::new();
        for tier in Tier::ALL {
            e.record(tier, self.u64()?);
        }
        e.record_dram(self.u64()?);
        Ok(e)
    }
}

/// Decodes a payload produced by [`encode`].
///
/// # Errors
///
/// Returns a [`CodecError`] on any malformed input: wrong version,
/// truncation, implausible lengths, invalid UTF-8, or trailing bytes.
pub fn decode(payload: &[u8]) -> Result<RunReport, CodecError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let version = r.u8()?;
    if version != CODEC_VERSION {
        return Err(CodecError::Version(version));
    }
    let workload = r.string()?;
    let config = r.string()?;
    let cycles = Cycle::new(r.u64()?);
    let instructions = r.u64()?;
    let mem_ops = r.u64()?;
    let reads = r.u64()?;
    let writes = r.u64()?;
    let local_accesses = r.u64()?;
    let remote_accesses = r.u64()?;
    let l1 = r.ratio()?;
    let l15 = r.ratio()?;
    let l2 = r.ratio()?;
    let inter_module_bytes = r.u64()?;
    let dram_bytes = r.u64()?;
    let energy = r.energy()?;
    let n_modules = r.u32()?;
    if n_modules > MAX_MODULES {
        return Err(CodecError::Implausible("module count"));
    }
    let mut modules = Vec::with_capacity(n_modules as usize);
    for _ in 0..n_modules {
        modules.push(ModuleStats {
            instructions: r.u64()?,
            dram_bytes: r.u64()?,
            l2: r.ratio()?,
            l15: r.ratio()?,
        });
    }
    if r.pos != payload.len() {
        return Err(CodecError::Implausible("trailing bytes"));
    }
    Ok(RunReport {
        workload,
        config,
        cycles,
        instructions,
        mem_ops,
        reads,
        writes,
        local_accesses,
        remote_accesses,
        l1,
        l15,
        l2,
        inter_module_bytes,
        dram_bytes,
        energy,
        modules,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A report exercising every field, including per-module stats and
    /// a non-trivial energy ledger.
    pub(crate) fn sample_report(salt: u64) -> RunReport {
        let mut l1 = Ratio::new();
        l1.record(true);
        l1.record(false);
        let mut energy = EnergyLedger::new();
        energy.record(Tier::Chip, 10 + salt);
        energy.record(Tier::Package, 20 + salt);
        energy.record(Tier::Board, 30 + salt);
        energy.record(Tier::System, 40 + salt);
        energy.record_dram(50 + salt);
        RunReport {
            workload: format!("w{salt}"),
            config: format!("c{salt} (tuned/+x)"),
            cycles: Cycle::new(1000 + salt),
            instructions: 2000 + salt,
            mem_ops: 300 + salt,
            reads: 200 + salt,
            writes: 100 + salt,
            local_accesses: 75 + salt,
            remote_accesses: 225 + salt,
            l1,
            l15: Ratio::from_parts(salt, salt + 7),
            l2: Ratio::from_parts(3, 9),
            inter_module_bytes: 1 << 30,
            dram_bytes: 1 << 29,
            energy,
            modules: (0..4)
                .map(|m| ModuleStats {
                    instructions: 500 + m + salt,
                    dram_bytes: 600 + m,
                    l2: Ratio::from_parts(m, m + 1),
                    l15: Ratio::from_parts(0, 0),
                })
                .collect(),
        }
    }

    #[test]
    fn round_trips_bit_exact() {
        for salt in [0, 1, 7, u32::MAX as u64] {
            let r = sample_report(salt);
            let decoded = decode(&encode(&r)).expect("round trip");
            assert_eq!(r, decoded);
        }
    }

    #[test]
    fn empty_modules_round_trip() {
        let mut r = sample_report(2);
        r.modules.clear();
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = encode(&sample_report(0));
        bytes[0] = CODEC_VERSION + 1;
        assert_eq!(decode(&bytes), Err(CodecError::Version(CODEC_VERSION + 1)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&sample_report(3));
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix of {} bytes must fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode(&sample_report(4));
        bytes.push(0);
        assert_eq!(
            decode(&bytes),
            Err(CodecError::Implausible("trailing bytes"))
        );
    }

    #[test]
    fn rejects_implausible_ratio() {
        let r = sample_report(5);
        let mut bytes = encode(&r);
        // The l1 ratio sits after version + two strings + 7 u64s; patch
        // its total below its hits by locating the known hits value.
        let hits = r.l1.hits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == hits)
            .expect("hits bytes present");
        // Overwrite the following total with hits - 1.
        let bad_total = (r.l1.hits() - 1).to_le_bytes();
        bytes[pos + 8..pos + 16].copy_from_slice(&bad_total);
        assert!(decode(&bytes).is_err());
    }
}
