//! The whole-system run loop: kernels, CTA placement, warp events, and
//! split-transaction memory requests.
//!
//! [`Simulator::run`] executes one workload on one configuration and
//! returns a [`RunReport`]. Execution is event-driven with **two event
//! kinds**: a *warp* event advances one warp (compute bursts issue
//! inline; loads block the warp), and a *request* event advances one
//! in-flight memory request through the next hierarchy stage (L1.5 →
//! fabric/ring → home L2/DRAM → ring response). Staging each traversal
//! as its own event keeps every bandwidth resource's arrivals globally
//! time-ordered, which the next-free-time queuing model requires.
//!
//! Loads coalesce through the per-SM MSHR: concurrent misses to a line
//! with a fill already in flight attach to that request as waiters. A
//! full MSHR stalls the warp; it replays the load when an entry frees
//! (as real SMs replay on structural hazards).
//!
//! Kernel launches are globally synchronous, as under the paper's
//! software coherence scheme: when a launch fully drains, all L1/L1.5
//! caches are flushed (§5.1.1) and the next launch begins. First-touch
//! page mappings persist across launches — the cross-kernel locality of
//! §5.3.

use mcm_engine::{Cycle, EventQueue};
use mcm_fault::{FaultPlan, NullFaultPlan};
use mcm_mem::addr::{AccessKind, LineAddr, Locality};
use mcm_mem::cache::CacheOutcome;
use mcm_mem::mshr::MshrLookup;
use mcm_probe::{FaultEvent, NullProbe, Probe, ReqStage, RequestMeta, WarpPhase};
use mcm_sm::CtaPool;
use mcm_workloads::stream::{WarpOp, WarpStream};
use mcm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::report::RunReport;
use crate::system::{L15Outcome, McmSystem, REQUEST_BYTES};
use mcm_interconnect::ring::RingDir;

/// Runs workloads on configurations.
///
/// The simulator is stateless between runs; each [`Simulator::run`]
/// builds a fresh machine, so runs are independent and bit-reproducible.
///
/// # Example
///
/// ```
/// use mcm_gpu::{Simulator, SystemConfig};
/// use mcm_workloads::WorkloadSpec;
///
/// let mut spec = WorkloadSpec::template("demo");
/// spec.ctas = 32;
/// spec.insts_per_warp = 64;
/// let report = Simulator::run(&SystemConfig::baseline_mcm(), &spec);
/// assert!(report.cycles.as_u64() > 0);
/// assert_eq!(report.instructions, spec.approx_instructions());
/// ```
#[derive(Debug)]
pub struct Simulator;

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Advance the warp in this slot.
    Warp(u32),
    /// Advance the in-flight memory request in this slot.
    Req(u32),
}

struct WarpRt {
    stream: WarpStream,
    sm: u32,
    cta_slot: u32,
    /// A load stalled on a full MSHR, awaiting replay.
    pending_load: Option<LineAddr>,
    /// Misses currently in flight for this warp.
    outstanding: u32,
    /// Latest data-ready time among resolved loads (the warp cannot
    /// retire or pass a use-sync point before it).
    resume_at: Cycle,
    /// Blocked at the MLP limit, waiting for any one load to land.
    blocked: bool,
    /// Out of instructions, waiting for in-flight loads to drain.
    draining: bool,
    /// Home locality of the warp's most recent outstanding miss — pure
    /// probe bookkeeping (attributes memory-wait phases to local vs
    /// remote); never consulted by the timing model, and not maintained
    /// when the probe is inactive.
    wait_loc: Locality,
}

struct CtaRt {
    warps_remaining: u32,
    sm: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    /// Probe the L1.5 and cross the module's crossbar.
    Access,
    /// Ride the ring toward the home module, one hop per event.
    ToHome {
        /// Node the message currently sits at.
        at: u8,
        /// Direction of travel.
        dir: RingDir,
        /// Hops still to take.
        left: u8,
    },
    /// Access the home L2/DRAM.
    AtMem,
    /// Ride the ring back to the requester, one hop per event.
    ToRequester {
        /// Node the response currently sits at.
        at: u8,
        /// Direction of travel.
        dir: RingDir,
        /// Hops still to take.
        left: u8,
    },
}

struct Req {
    /// Run-unique id, assigned at issue in creation order — the key the
    /// probe layer correlates request lifecycle events by.
    id: u64,
    line: LineAddr,
    sm: u32,
    module: u8,
    home: u8,
    locality: Locality,
    is_read: bool,
    l15_fill: bool,
    stage: Stage,
    /// Whether a poisoned fill already forced one replay — bounds the
    /// fault layer's MSHR-poison penalty to a single round trip.
    replayed: bool,
}

impl Req {
    /// Ring payload for the request leg: a control packet for reads,
    /// the full store data for writes.
    fn request_bytes(&self) -> u64 {
        if self.is_read {
            REQUEST_BYTES
        } else {
            mcm_mem::addr::LINE_BYTES
        }
    }
}

struct RunState<'a, P: Probe, F: FaultPlan> {
    spec: &'a WorkloadSpec,
    probe: &'a mut P,
    plan: &'a mut F,
    sys: McmSystem,
    queue: EventQueue<Ev>,
    warps: Vec<Option<WarpRt>>,
    free_warps: Vec<u32>,
    ctas: Vec<Option<CtaRt>>,
    free_ctas: Vec<u32>,
    reqs: Vec<Option<Req>>,
    free_reqs: Vec<u32>,
    /// Warps blocked on each request slot's fill (reads only; includes
    /// the initiator). Parallel to `reqs` and pooled with it: a slot's
    /// waiter list is drained with `clear()` at completion, so its
    /// buffer is reused by the slot's next occupant instead of being
    /// reallocated per request.
    waiters: Vec<Vec<u32>>,
    /// Per-SM warps stalled on a full MSHR.
    stalled: Vec<Vec<u32>>,
    /// Per-module hard-degradation mask, refreshed at each kernel
    /// launch from the fault plan; only consulted when `F::ACTIVE`.
    disabled: Vec<bool>,
    kernel: u32,
    /// Latest timestamp any event reached.
    horizon: Cycle,
    /// Next request id to hand out (see [`Req::id`]).
    next_req_id: u64,
}

impl Simulator {
    /// Runs `spec` to completion on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if either the configuration or the workload fails
    /// validation.
    pub fn run(cfg: &SystemConfig, spec: &WorkloadSpec) -> RunReport {
        Simulator::run_probed(cfg, spec, &mut NullProbe)
    }

    /// Runs `spec` to completion on `cfg`, streaming fine-grained
    /// events to `probe`.
    ///
    /// Probes are passive observers: the timing model never consults
    /// them, so an instrumented run is cycle-identical to
    /// [`Simulator::run`]. With [`NullProbe`] (whose
    /// [`Probe::ACTIVE`] is `false`) every hook call and every
    /// argument-preparation branch monomorphizes away, so `run` pays
    /// nothing for the instrumentation points.
    ///
    /// # Panics
    ///
    /// Panics if either the configuration or the workload fails
    /// validation.
    pub fn run_probed<P: Probe>(
        cfg: &SystemConfig,
        spec: &WorkloadSpec,
        probe: &mut P,
    ) -> RunReport {
        Simulator::run_faulted(cfg, spec, probe, &mut NullFaultPlan)
    }

    /// Runs `spec` to completion on `cfg` under a fault plan, streaming
    /// fine-grained events (including [`FaultEvent`]s) to `probe`.
    ///
    /// The plan is consulted at every link traversal (transient CRC
    /// errors → retransmit with backoff), every DRAM access (thermal
    /// throttle windows), every read completion (poisoned MSHR fill →
    /// one bounded replay), and every kernel launch (hard GPM loss →
    /// the CTA scheduler resteals the dead modules' work onto
    /// survivors). With [`NullFaultPlan`] (whose
    /// [`FaultPlan::ACTIVE`] is `false`) every consultation
    /// monomorphizes away and the run is cycle-identical to
    /// [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration or workload fails validation, or if
    /// the plan disables every module of the machine.
    pub fn run_faulted<P: Probe, F: FaultPlan>(
        cfg: &SystemConfig,
        spec: &WorkloadSpec,
        probe: &mut P,
        plan: &mut F,
    ) -> RunReport {
        cfg.validate().expect("invalid system configuration");
        spec.validate().expect("invalid workload spec");

        let sys = McmSystem::new(cfg);
        let total_sms = sys.total_sms();
        let module_count = sys.modules();
        // Pre-size the slot arenas to their occupancy ceilings so the
        // hot loop never regrows them: warps and CTAs are bounded by SM
        // occupancy, read requests by total MSHR capacity. Fire-and-
        // forget stores can exceed the MSHR bound, so `reqs` keeps a
        // store-burst slack proportional to resident warps and may still
        // grow once on a pathological store storm — after which the
        // arena is at peak and stays allocation-free.
        let warp_cap = (total_sms * cfg.sm.max_warps as usize).min(1 << 20);
        let cta_cap = if spec.warps_per_cta == 0 {
            spec.ctas as usize
        } else {
            (warp_cap / spec.warps_per_cta as usize + 1).min(spec.ctas as usize)
        };
        let req_cap = (total_sms * cfg.sm.mshr_entries + warp_cap).min(1 << 20);
        let mut state = RunState {
            spec,
            probe,
            plan,
            sys,
            queue: EventQueue::with_capacity(4096),
            warps: Vec::with_capacity(warp_cap),
            free_warps: Vec::with_capacity(warp_cap),
            ctas: Vec::with_capacity(cta_cap),
            free_ctas: Vec::with_capacity(cta_cap),
            reqs: Vec::with_capacity(req_cap),
            free_reqs: Vec::with_capacity(req_cap),
            waiters: Vec::with_capacity(req_cap),
            stalled: vec![Vec::new(); total_sms],
            disabled: vec![false; module_count],
            kernel: 0,
            horizon: Cycle::ZERO,
            next_req_id: 0,
        };

        // SMs in module-interleaved order: the centralized scheduler's
        // round-robin then sends consecutive CTAs to different modules,
        // the steady state of Fig. 8(a).
        let modules = state.sys.modules();
        let per_module = total_sms / modules;
        let mut sm_order = Vec::with_capacity(total_sms);
        for slot in 0..per_module {
            for m in 0..modules {
                sm_order.push(m * per_module + slot);
            }
        }

        // One pool for the whole run: later kernels rewind it in place
        // (`reset` keeps queue capacity), so steady-state launches
        // allocate nothing.
        let mut pool = CtaPool::new(cfg.scheduler, spec.ctas, modules as u32);
        let mut now = Cycle::ZERO;
        for kernel in 0..spec.kernel_iters {
            state.kernel = kernel;
            state.horizon = now;
            if P::ACTIVE {
                state.probe.kernel_begin(kernel, now);
            }
            if kernel > 0 {
                pool.reset();
            }

            if F::ACTIVE {
                // Refresh the hard-degradation mask at the launch
                // boundary (a GPM cannot die mid-kernel under the
                // paper's software-coherence model) and move the dead
                // modules' queued CTAs onto survivors. First-touch page
                // mappings stay put, so restolen CTAs pay the true NUMA
                // failover penalty for their remote data.
                let mut any_dead = false;
                for m in 0..modules {
                    let dead = state.plan.module_disabled(m, kernel);
                    state.disabled[m] = dead;
                    if dead {
                        any_dead = true;
                        if P::ACTIVE {
                            state.probe.fault(
                                now,
                                FaultEvent::ModuleDisabled {
                                    module: m as u32,
                                    kernel,
                                },
                            );
                        }
                    }
                }
                if any_dead {
                    pool.resteal_disabled(&state.disabled);
                }
            }

            // Initial placement: one CTA per SM per round until no SM
            // can take more (or the pool runs dry).
            loop {
                let mut admitted = false;
                for &sm in &sm_order {
                    if state.admit_cta(&mut pool, sm, now) {
                        admitted = true;
                    }
                }
                if !admitted {
                    break;
                }
            }

            // Drain the launch: warps, then their trailing stores.
            while let Some((t, ev)) = state.queue.pop() {
                state.horizon = state.horizon.max(t);
                if P::ACTIVE {
                    state.probe.queue_depth(t, state.queue.len());
                }
                match ev {
                    Ev::Warp(widx) => state.advance_warp(&mut pool, widx, t),
                    Ev::Req(ridx) => state.advance_req(ridx, t),
                }
            }

            debug_assert!(pool.is_exhausted(), "kernel drained with unscheduled CTAs");
            now = state.horizon;
            if P::ACTIVE {
                state.probe.kernel_end(kernel, now);
            }
            state.sys.flush_private_caches();
        }

        let sys = state.sys;
        RunReport {
            workload: spec.name.to_string(),
            config: cfg.name.clone(),
            cycles: now,
            instructions: sys.instructions(),
            mem_ops: sys.reads() + sys.writes(),
            reads: sys.reads(),
            writes: sys.writes(),
            local_accesses: sys.local_accesses(),
            remote_accesses: sys.remote_accesses(),
            l1: sys.l1_ratio(),
            l15: sys.l15_ratio(),
            l2: sys.l2_ratio(),
            inter_module_bytes: sys.inter_module_bytes(),
            dram_bytes: sys.dram_bytes(),
            energy: sys.energy_ledger(),
            modules: sys.module_stats(),
        }
    }
}

impl<P: Probe, F: FaultPlan> RunState<'_, P, F> {
    fn alloc_req(&mut self, req: Req) -> u32 {
        match self.free_reqs.pop() {
            Some(slot) => {
                debug_assert!(self.waiters[slot as usize].is_empty());
                self.reqs[slot as usize] = Some(req);
                slot
            }
            None => {
                self.reqs.push(Some(req));
                self.waiters.push(Vec::new());
                (self.reqs.len() - 1) as u32
            }
        }
    }

    /// Tries to pull one CTA from the pool onto `sm`; returns whether a
    /// CTA was admitted.
    fn admit_cta(&mut self, pool: &mut CtaPool, sm: usize, now: Cycle) -> bool {
        let warps = self.spec.warps_per_cta;
        // Check occupancy *before* drawing from the pool: a drawn CTA
        // cannot be returned.
        if self.sys.sm(sm).resident_warps() + warps > self.sys.sm(sm).config().max_warps {
            return false;
        }
        let module = self.sys.module_of(sm);
        // A hard-degraded GPM admits nothing; its share of the pool was
        // restolen to survivors at the launch boundary.
        if F::ACTIVE && self.disabled[module] {
            return false;
        }
        let Some(cta) = pool.next_cta(module) else {
            return false;
        };
        assert!(self.sys.sm_mut(sm).try_admit(warps));

        let cta_slot = match self.free_ctas.pop() {
            Some(slot) => slot,
            None => {
                self.ctas.push(None);
                (self.ctas.len() - 1) as u32
            }
        };
        self.ctas[cta_slot as usize] = Some(CtaRt {
            warps_remaining: warps,
            sm: sm as u32,
        });

        for w in 0..warps {
            let rt = WarpRt {
                stream: WarpStream::new(self.spec, self.kernel, cta, w),
                sm: sm as u32,
                cta_slot,
                pending_load: None,
                outstanding: 0,
                resume_at: now,
                blocked: false,
                draining: false,
                wait_loc: Locality::Local,
            };
            let widx = match self.free_warps.pop() {
                Some(slot) => {
                    self.warps[slot as usize] = Some(rt);
                    slot
                }
                None => {
                    self.warps.push(Some(rt));
                    (self.warps.len() - 1) as u32
                }
            };
            if P::ACTIVE {
                self.probe.warp_spawn(widx, sm as u32, now);
            }
            self.queue.push(now, Ev::Warp(widx));
        }
        true
    }

    /// Advances warp `widx` from time `t` until it hits its MLP limit,
    /// stalls on a full MSHR, runs out of instructions with loads still
    /// in flight, or retires.
    ///
    /// Loads are non-blocking up to `mlp_per_warp` in flight (register
    /// level memory parallelism): L1 hits only raise the warp's
    /// `resume_at` use-sync point, and every `mlp_per_warp` loads the
    /// warp synchronizes with it — modelling the consume of the oldest
    /// load without an extra event.
    fn advance_warp(&mut self, pool: &mut CtaPool, widx: u32, t: Cycle) {
        let mut warp = self.warps[widx as usize]
            .take()
            .expect("event for dead warp");
        let mlp = self.sys.sm(warp.sm as usize).config().mlp_per_warp.max(1);
        let sm = warp.sm;
        let mut t = t;

        // The wake at `t` closes whatever wait phase the warp parked in
        // (memory, MSHR-full, drain — or the initial issue slice).
        if P::ACTIVE {
            self.probe.warp_phase(widx, sm, t, WarpPhase::Issue);
        }
        // Phase the warp is in *locally*, to emit transitions only on
        // change (the probe charges intervals to the phase being left).
        let mut cur = WarpPhase::Issue;

        // A load stalled on a full MSHR replays first.
        if let Some(line) = warp.pending_load.take() {
            let keep_going = self.issue_load(&mut warp, widx, t, line);
            if !keep_going || warp.outstanding >= mlp {
                warp.blocked = warp.outstanding >= mlp && warp.pending_load.is_none();
                if P::ACTIVE {
                    let phase = if warp.pending_load.is_some() {
                        WarpPhase::MshrFull
                    } else {
                        WarpPhase::mem(warp.wait_loc.is_remote())
                    };
                    self.probe.warp_phase(widx, sm, t, phase);
                }
                self.warps[widx as usize] = Some(warp);
                return;
            }
        }

        let mut reads_since_sync = 0u32;
        loop {
            match warp.stream.next() {
                Some(WarpOp::Compute(n)) => {
                    if P::ACTIVE && cur != WarpPhase::Compute {
                        self.probe.warp_phase(widx, sm, t, WarpPhase::Compute);
                        cur = WarpPhase::Compute;
                    }
                    t = self.sys.compute(t, warp.sm as usize, n);
                }
                Some(WarpOp::Access { addr, kind }) => {
                    if P::ACTIVE && cur != WarpPhase::Issue {
                        self.probe.warp_phase(widx, sm, t, WarpPhase::Issue);
                        cur = WarpPhase::Issue;
                    }
                    if kind.is_write() {
                        t = self.issue_store(&warp, t, addr.line());
                    } else {
                        let keep_going = self.issue_load(&mut warp, widx, t, addr.line());
                        if !keep_going {
                            // MSHR full: warp parked on the stall list.
                            if P::ACTIVE {
                                self.probe.warp_phase(widx, sm, t, WarpPhase::MshrFull);
                            }
                            self.warps[widx as usize] = Some(warp);
                            return;
                        }
                        if warp.outstanding >= mlp {
                            warp.blocked = true;
                            if P::ACTIVE {
                                let phase = WarpPhase::mem(warp.wait_loc.is_remote());
                                self.probe.warp_phase(widx, sm, t, phase);
                            }
                            self.warps[widx as usize] = Some(warp);
                            return;
                        }
                        reads_since_sync += 1;
                        if reads_since_sync >= mlp {
                            // Use-sync: consume the oldest batch of
                            // resolved loads.
                            if P::ACTIVE && warp.resume_at > t {
                                let phase = WarpPhase::mem(warp.wait_loc.is_remote());
                                self.probe.warp_phase(widx, sm, t, phase);
                                self.probe
                                    .warp_phase(widx, sm, warp.resume_at, WarpPhase::Issue);
                            }
                            t = t.max(warp.resume_at);
                            reads_since_sync = 0;
                        }
                    }
                }
                None => {
                    if warp.outstanding > 0 {
                        warp.draining = true;
                        if P::ACTIVE {
                            self.probe.warp_phase(widx, sm, t, WarpPhase::Drain);
                        }
                        self.warps[widx as usize] = Some(warp);
                        return;
                    }
                    let end = t.max(warp.resume_at);
                    if P::ACTIVE {
                        if end > t {
                            // The tail wait for already-resolved loads.
                            let phase = WarpPhase::mem(warp.wait_loc.is_remote());
                            self.probe.warp_phase(widx, sm, t, phase);
                        }
                        self.probe.warp_retire(widx, sm, end);
                    }
                    self.horizon = self.horizon.max(end);
                    self.retire_warp(pool, warp, widx, end);
                    return;
                }
            }
        }
    }

    /// Retires a finished warp, releasing its CTA when it is the last.
    fn retire_warp(&mut self, pool: &mut CtaPool, warp: WarpRt, widx: u32, t: Cycle) {
        let sm = warp.sm;
        let cta_slot = warp.cta_slot;
        self.free_warps.push(widx);
        let cta = self.ctas[cta_slot as usize]
            .as_mut()
            .expect("warp retired into missing CTA");
        cta.warps_remaining -= 1;
        if cta.warps_remaining == 0 {
            debug_assert_eq!(cta.sm, sm);
            self.ctas[cta_slot as usize] = None;
            self.free_ctas.push(cta_slot);
            self.sys
                .sm_mut(sm as usize)
                .retire_warps(self.spec.warps_per_cta);
            // The freed SM immediately pulls its next CTA.
            self.admit_cta(pool, sm as usize, t);
        }
    }

    /// Issues one load: L1 probe, MSHR coalescing/reservation, request
    /// creation. Returns `false` when the warp stalled on a full MSHR
    /// (it was parked on the stall list); `true` otherwise. L1 hits
    /// only advance the warp's `resume_at`; misses raise `outstanding`.
    fn issue_load(&mut self, warp: &mut WarpRt, widx: u32, t: Cycle, line: LineAddr) -> bool {
        let sm = warp.sm as usize;
        let (_, outcome) = self
            .sys
            .l1_access_probed(t, sm, line, AccessKind::Read, self.probe);
        match outcome {
            CacheOutcome::Hit { ready_at } => {
                warp.resume_at = warp.resume_at.max(ready_at);
                true
            }
            CacheOutcome::Miss { ready_at, .. } => match self.sys.mshr_mut(sm).lookup(line) {
                MshrLookup::InFlight(req) => {
                    let shared = self.reqs[req as usize]
                        .as_ref()
                        .expect("MSHR points at freed request");
                    self.waiters[req as usize].push(widx);
                    if P::ACTIVE {
                        warp.wait_loc = shared.locality;
                    }
                    warp.outstanding += 1;
                    true
                }
                MshrLookup::CanIssue => {
                    let module = self.sys.module_of(sm);
                    let (home, locality) = self.sys.home_of(line, module);
                    let id = self.next_req_id;
                    self.next_req_id += 1;
                    let ridx = self.alloc_req(Req {
                        id,
                        line,
                        sm: warp.sm,
                        module: module as u8,
                        home: home as u8,
                        locality,
                        is_read: true,
                        l15_fill: false,
                        stage: Stage::Access,
                        replayed: false,
                    });
                    self.waiters[ridx as usize].push(widx);
                    self.sys.mshr_mut(sm).reserve_probed(
                        line,
                        u64::from(ridx),
                        warp.sm,
                        t,
                        self.probe,
                    );
                    if P::ACTIVE {
                        warp.wait_loc = locality;
                        // Stamped at the departure event, so the trace
                        // span opens no later than its first stage.
                        self.probe.request_issued(
                            id,
                            ready_at,
                            RequestMeta {
                                sm: warp.sm,
                                module: module as u8,
                                home: home as u8,
                                remote: locality.is_remote(),
                                is_read: true,
                            },
                        );
                    }
                    self.queue.push(ready_at, Ev::Req(ridx));
                    warp.outstanding += 1;
                    true
                }
                MshrLookup::Full => {
                    warp.pending_load = Some(line);
                    self.stalled[sm].push(widx);
                    false
                }
            },
            CacheOutcome::Bypass => unreachable!("L1 has no allocation filter"),
        }
    }

    /// Issues a store: write-through L1, then a fire-and-forget request
    /// event chain. Returns the time at which the warp may continue.
    fn issue_store(&mut self, warp: &WarpRt, t: Cycle, line: LineAddr) -> Cycle {
        let sm = warp.sm as usize;
        let (issued, outcome) =
            self.sys
                .l1_access_probed(t, sm, line, AccessKind::Write, self.probe);
        let depart = match outcome {
            CacheOutcome::Hit { ready_at } | CacheOutcome::Miss { ready_at, .. } => ready_at,
            CacheOutcome::Bypass => issued,
        };
        let module = self.sys.module_of(sm);
        let (home, locality) = self.sys.home_of(line, module);
        let id = self.next_req_id;
        self.next_req_id += 1;
        let ridx = self.alloc_req(Req {
            id,
            line,
            sm: warp.sm,
            module: module as u8,
            home: home as u8,
            locality,
            is_read: false,
            l15_fill: false,
            stage: Stage::Access,
            replayed: false,
        });
        if P::ACTIVE {
            self.probe.request_issued(
                id,
                depart,
                RequestMeta {
                    sm: warp.sm,
                    module: module as u8,
                    home: home as u8,
                    remote: locality.is_remote(),
                    is_read: false,
                },
            );
        }
        self.queue.push(depart, Ev::Req(ridx));
        issued
    }

    /// Advances request `ridx` from event time `now` through one or
    /// more stages.
    ///
    /// Each stage computes the request's next event time `t_next`. When
    /// probes are inactive, the common `Stage::Access` → ring-hop →
    /// memory chains are advanced **inline** whenever no other pending
    /// event is due at or before `t_next` — i.e. exactly when popping
    /// the queue would hand this request straight back. Skipping the
    /// push/pop round trip is then observationally identical: the
    /// global processing order (and with it every resource-model and
    /// fault-plan consultation order) is unchanged, so runs stay
    /// bit-exact. With an active probe the request is always re-queued,
    /// because `Probe::queue_depth` observes every pop.
    fn advance_req(&mut self, ridx: u32, now: Cycle) {
        let mut req = self.reqs[ridx as usize]
            .take()
            .expect("event for freed request");
        let mut now = now;
        loop {
            if P::ACTIVE {
                let stage = match req.stage {
                    Stage::Access => ReqStage::Access,
                    Stage::ToHome { at, .. } => ReqStage::ToHome { at },
                    Stage::AtMem => ReqStage::Mem,
                    Stage::ToRequester { at, .. } => ReqStage::ToRequester { at },
                };
                self.probe.request_stage(req.id, now, stage);
            }
            let t_next = match req.stage {
                Stage::Access => {
                    let module = usize::from(req.module);
                    let kind = if req.is_read {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    let mut t = now;
                    match self.sys.l15_access_probed(
                        now,
                        module,
                        req.line,
                        kind,
                        req.locality,
                        self.probe,
                    ) {
                        L15Outcome::Hit { ready_at } => {
                            if req.is_read {
                                self.complete_read(req, ridx, ready_at);
                                return;
                            }
                            // Write-through: the store continues
                            // downstream.
                            t = ready_at;
                        }
                        L15Outcome::Miss { ready_at, fill } => {
                            req.l15_fill = fill;
                            t = ready_at;
                        }
                        L15Outcome::NotPresent => {}
                    }
                    let out = self.sys.fabric_out_probed(t, module, self.probe);
                    if module == usize::from(req.home) {
                        req.stage = Stage::AtMem;
                    } else {
                        let (dir, hops) = self.sys.ring_route(module, usize::from(req.home));
                        debug_assert!(hops > 0);
                        req.stage = Stage::ToHome {
                            at: req.module,
                            dir,
                            left: hops as u8,
                        };
                    }
                    out
                }
                Stage::ToHome { at, dir, left } => {
                    let bytes = req.request_bytes();
                    let (next, arrival) = self.sys.ring_hop_faulted(
                        now,
                        usize::from(at),
                        usize::from(req.home),
                        dir,
                        bytes,
                        self.probe,
                        self.plan,
                    );
                    req.stage = if left == 1 {
                        debug_assert_eq!(next, usize::from(req.home));
                        Stage::AtMem
                    } else {
                        Stage::ToHome {
                            at: next as u8,
                            dir,
                            left: left - 1,
                        }
                    };
                    arrival
                }
                Stage::AtMem => {
                    let home = usize::from(req.home);
                    if req.is_read {
                        let ready = self.sys.mem_read_faulted(
                            now,
                            home,
                            req.line,
                            req.locality,
                            self.probe,
                            self.plan,
                        );
                        if req.locality.is_remote() {
                            let (dir, hops) = self.sys.ring_route(home, usize::from(req.module));
                            debug_assert!(hops > 0);
                            req.stage = Stage::ToRequester {
                                at: req.home,
                                dir,
                                left: hops as u8,
                            };
                            ready
                        } else {
                            self.complete_read(req, ridx, ready);
                            return;
                        }
                    } else {
                        self.sys.mem_write_faulted(
                            now,
                            home,
                            req.line,
                            req.locality,
                            self.probe,
                            self.plan,
                        );
                        if P::ACTIVE {
                            self.probe.request_retired(req.id, now);
                        }
                        self.horizon = self.horizon.max(now);
                        self.free_reqs.push(ridx);
                        return;
                    }
                }
                Stage::ToRequester { at, dir, left } => {
                    let (next, arrival) = self.sys.ring_hop_faulted(
                        now,
                        usize::from(at),
                        usize::from(req.module),
                        dir,
                        mcm_mem::addr::LINE_BYTES,
                        self.probe,
                        self.plan,
                    );
                    if left == 1 {
                        debug_assert_eq!(next, usize::from(req.module));
                        self.complete_read(req, ridx, arrival);
                        return;
                    }
                    req.stage = Stage::ToRequester {
                        at: next as u8,
                        dir,
                        left: left - 1,
                    };
                    arrival
                }
            };
            // Inline the next stage if this event would be the queue's
            // next pop anyway (strictly earlier than everything
            // pending — an equal-time pending event holds a smaller
            // insertion seq and must run first).
            if !P::ACTIVE
                && self
                    .queue
                    .peek_time()
                    .is_none_or(|pending| pending > t_next)
            {
                now = t_next;
                continue;
            }
            self.reqs[ridx as usize] = Some(req);
            self.queue.push(t_next, Ev::Req(ridx));
            return;
        }
    }

    /// Finishes a read: fills caches, releases the MSHR entry, resolves
    /// the load for every waiting warp (waking those blocked at the MLP
    /// limit or draining to retirement), and lets one MSHR-stalled warp
    /// replay.
    fn complete_read(&mut self, mut req: Req, ridx: u32, ready: Cycle) {
        // A poisoned fill: the line arrived corrupt past the link CRC,
        // so the MSHR discards it and replays the whole request once.
        // The entry stays reserved and the waiters stay attached, so no
        // warp instruction is re-issued — the penalty is exactly one
        // extra memory round trip.
        if F::ACTIVE && !req.replayed && self.plan.poison_fill(req.id) {
            req.replayed = true;
            if P::ACTIVE {
                self.probe
                    .fault(ready, FaultEvent::MshrPoison { request: req.id });
            }
            req.stage = Stage::Access;
            self.reqs[ridx as usize] = Some(req);
            self.queue.push(ready, Ev::Req(ridx));
            return;
        }
        let sm = req.sm as usize;
        if req.l15_fill {
            self.sys.l15_fill(usize::from(req.module), req.line, ready);
        }
        self.sys.l1_fill(sm, req.line, ready);
        let released = self
            .sys
            .mshr_mut(sm)
            .release_probed(req.line, req.sm, ready, self.probe);
        debug_assert_eq!(released, Some(u64::from(ridx)));
        if P::ACTIVE {
            self.probe.request_retired(req.id, ready);
        }
        // Detach the slot's waiter buffer while waking warps (the loop
        // needs `&mut self`), then hand it back drained-but-capacious
        // for the slot's next occupant. `mem::take` leaves an empty
        // `Vec`, which does not allocate.
        let mut waiters = std::mem::take(&mut self.waiters[ridx as usize]);
        for &w in &waiters {
            let warp = self.warps[w as usize]
                .as_mut()
                .expect("waiter warp missing");
            debug_assert!(warp.outstanding > 0);
            warp.outstanding -= 1;
            warp.resume_at = warp.resume_at.max(ready);
            if warp.blocked {
                // A slot freed: the warp resumes now.
                warp.blocked = false;
                self.queue.push(ready, Ev::Warp(w));
            } else if warp.draining && warp.outstanding == 0 {
                warp.draining = false;
                self.queue.push(warp.resume_at, Ev::Warp(w));
            }
        }
        waiters.clear();
        self.waiters[ridx as usize] = waiters;
        self.horizon = self.horizon.max(ready);
        self.free_reqs.push(ridx);
        // One MSHR entry freed: wake one stalled warp to replay.
        if let Some(w) = self.stalled[sm].pop() {
            self.queue.push(ready, Ev::Warp(w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_mem::page::PlacementPolicy;
    use mcm_sm::SchedulerPolicy;

    fn quick_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::template("quick");
        spec.ctas = 64;
        spec.warps_per_cta = 2;
        spec.insts_per_warp = 128;
        spec.kernel_iters = 2;
        spec.footprint_bytes = 8 << 20;
        spec
    }

    fn small_mcm() -> SystemConfig {
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.topology.sms_per_module = 4; // 16 SMs
        cfg
    }

    #[test]
    fn run_completes_and_counts_every_instruction() {
        let spec = quick_spec();
        let report = Simulator::run(&small_mcm(), &spec);
        assert_eq!(report.instructions, spec.approx_instructions());
        assert!(report.cycles > Cycle::ZERO);
        assert!(report.mem_ops > 0);
        assert_eq!(report.mem_ops, report.reads + report.writes);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = quick_spec();
        let cfg = small_mcm();
        let a = Simulator::run(&cfg, &spec);
        let b = Simulator::run(&cfg, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn warp_parallelism_actually_overlaps() {
        // The whole point of a GPU: N warps doing independent loads
        // finish in far less than N * load-latency. Guards against
        // event-ordering bugs that serialize the machine.
        let mut spec = quick_spec();
        spec.kernel_iters = 1;
        spec.mem_ratio = 1.0; // pure memory
        let report = Simulator::run(&small_mcm(), &spec);
        let serial_floor = report.reads * 150; // ~150 cycles per L2/DRAM trip
        assert!(
            report.cycles.as_u64() * 10 < serial_floor,
            "warps are not overlapping: {} cycles for {} reads",
            report.cycles,
            report.reads
        );
    }

    #[test]
    fn interleaved_placement_is_75_percent_remote() {
        let spec = quick_spec();
        let report = Simulator::run(&small_mcm(), &spec);
        let remote_frac =
            report.remote_accesses as f64 / (report.remote_accesses + report.local_accesses) as f64;
        assert!(
            (remote_frac - 0.75).abs() < 0.05,
            "4-module interleave should be ~75% remote, got {remote_frac}"
        );
    }

    #[test]
    fn ds_ft_localizes_traffic() {
        let spec = quick_spec();
        let mut cfg = small_mcm();
        cfg.scheduler = SchedulerPolicy::Distributed;
        cfg.placement = PlacementPolicy::FirstTouch;
        cfg.name = "dsft".into();
        let report = Simulator::run(&cfg, &spec);
        assert!(
            report.locality_rate() > 0.5,
            "DS+FT should localize most accesses, got {}",
            report.locality_rate()
        );
        let baseline = Simulator::run(&small_mcm(), &spec);
        assert!(
            report.inter_module_bytes < baseline.inter_module_bytes,
            "DS+FT must cut ring traffic ({} vs {})",
            report.inter_module_bytes,
            baseline.inter_module_bytes
        );
    }

    #[test]
    fn monolithic_beats_mcm_at_equal_sms() {
        let spec = quick_spec();
        let mcm = Simulator::run(&small_mcm(), &spec);
        let mut mono = SystemConfig::monolithic(16);
        mono.dram_total_gbps = 3072.0;
        mono.caches.l2_bytes_total = 16 << 20;
        let mono_r = Simulator::run(&mono, &spec);
        assert!(
            mono_r.cycles <= mcm.cycles,
            "a monolithic GPU with equal resources never loses to the NUMA MCM \
             (mono {} vs mcm {})",
            mono_r.cycles,
            mcm.cycles
        );
        assert_eq!(mono_r.inter_module_bytes, 0);
    }

    #[test]
    fn more_link_bandwidth_never_hurts() {
        let spec = quick_spec();
        let mut slow = small_mcm();
        slow.topology.link_gbps = 64.0;
        let mut fast = small_mcm();
        fast.topology.link_gbps = 6144.0;
        let slow_r = Simulator::run(&slow, &spec);
        let fast_r = Simulator::run(&fast, &spec);
        assert!(
            fast_r.cycles <= slow_r.cycles,
            "6 TB/s links can't be slower than 64 GB/s links"
        );
    }

    #[test]
    fn limited_parallelism_underfills_the_machine() {
        let mut spec = quick_spec();
        spec.ctas = 4; // far fewer CTAs than SMs
        let report = Simulator::run(&small_mcm(), &spec);
        assert_eq!(report.instructions, spec.approx_instructions());
    }

    #[test]
    fn single_cta_single_warp_edge_case() {
        let mut spec = quick_spec();
        spec.ctas = 1;
        spec.warps_per_cta = 1;
        spec.kernel_iters = 1;
        let report = Simulator::run(&small_mcm(), &spec);
        assert_eq!(report.instructions, u64::from(spec.insts_per_warp));
    }

    #[test]
    fn imbalanced_workload_completes() {
        let mut spec = quick_spec();
        spec.imbalance = 0.8;
        let report = Simulator::run(&small_mcm(), &spec);
        assert!(report.instructions >= spec.approx_instructions());
    }

    #[test]
    fn memory_level_parallelism_hides_latency() {
        // A warp allowed 8 outstanding loads must beat one that blocks
        // on every load, on a latency-dominated (underfilled) machine.
        let mut spec = quick_spec();
        spec.ctas = 8;
        spec.kernel_iters = 1;
        let mut serial = small_mcm();
        serial.sm.mlp_per_warp = 1;
        let mut parallel = small_mcm();
        parallel.sm.mlp_per_warp = 8;
        let serial_r = Simulator::run(&serial, &spec);
        let parallel_r = Simulator::run(&parallel, &spec);
        assert!(
            parallel_r.cycles.as_u64() as f64 <= serial_r.cycles.as_u64() as f64 * 0.8,
            "MLP 8 should be much faster than MLP 1 ({} vs {})",
            parallel_r.cycles,
            serial_r.cycles
        );
    }

    #[test]
    fn draining_warps_retire_after_their_last_load() {
        // A stream that ends on loads exercises the draining path; all
        // instructions must still be accounted for.
        let mut spec = quick_spec();
        spec.mem_ratio = 1.0; // every op is memory: ends in-flight
        spec.write_frac = 0.0;
        spec.kernel_iters = 1;
        let report = Simulator::run(&small_mcm(), &spec);
        assert_eq!(report.instructions, spec.approx_instructions());
        assert_eq!(report.reads, spec.approx_instructions());
    }

    #[test]
    fn null_fault_plan_is_cycle_identical() {
        let spec = quick_spec();
        let cfg = small_mcm();
        let plain = Simulator::run(&cfg, &spec);
        let faulted = Simulator::run_faulted(&cfg, &spec, &mut NullProbe, &mut NullFaultPlan);
        assert_eq!(plain, faulted);
    }

    #[test]
    fn zero_rate_seeded_plan_matches_plain_run() {
        // An *active* plan whose every rate is zero takes the faulted
        // code paths but must reproduce the plain run bit-exactly
        // (unit DRAM stretch, no link errors, no poison, no dead GPMs).
        let spec = quick_spec();
        let cfg = small_mcm();
        let plain = Simulator::run(&cfg, &spec);
        let mut plan =
            mcm_fault::SeededFaultPlan::new(mcm_fault::FaultConfig::with_rate(0x5EED, 0.0));
        let faulted = Simulator::run_faulted(&cfg, &spec, &mut NullProbe, &mut plan);
        assert_eq!(plain, faulted);
    }

    #[test]
    fn dead_module_survives_with_higher_cycles() {
        // Compute-bound so the lost SMs are the bottleneck: a
        // memory-bound spec on the interleaved baseline can even speed
        // up (the dead module's DRAM stays reachable while contention
        // drops).
        let mut spec = quick_spec();
        spec.mem_ratio = 0.05;
        let cfg = small_mcm();
        let healthy = Simulator::run(&cfg, &spec);
        let fc = mcm_fault::FaultConfig {
            dead_module: Some(mcm_fault::DeadModule {
                module: 1,
                from_kernel: 0,
            }),
            ..mcm_fault::FaultConfig::default()
        };
        let mut plan = mcm_fault::SeededFaultPlan::new(fc);
        let degraded = Simulator::run_faulted(&cfg, &spec, &mut NullProbe, &mut plan);
        assert_eq!(degraded.instructions, spec.approx_instructions());
        assert!(
            degraded.cycles > healthy.cycles,
            "losing a GPM must cost cycles ({} vs {})",
            degraded.cycles,
            healthy.cycles
        );
    }

    #[test]
    fn restealing_drains_distributed_queues_under_gpm_loss() {
        // The distributed scheduler owns per-module queues; a dead
        // module's queue must be restolen or the kernel never drains.
        let spec = quick_spec();
        let mut cfg = small_mcm();
        cfg.scheduler = SchedulerPolicy::Distributed;
        cfg.placement = PlacementPolicy::FirstTouch;
        cfg.name = "dsft-degraded".into();
        let healthy = Simulator::run(&cfg, &spec);
        let fc = mcm_fault::FaultConfig {
            dead_module: Some(mcm_fault::DeadModule {
                module: 2,
                from_kernel: 0,
            }),
            ..mcm_fault::FaultConfig::default()
        };
        let mut plan = mcm_fault::SeededFaultPlan::new(fc);
        let degraded = Simulator::run_faulted(&cfg, &spec, &mut NullProbe, &mut plan);
        assert_eq!(degraded.instructions, spec.approx_instructions());
        assert!(degraded.cycles > healthy.cycles);
    }

    #[test]
    fn poisoned_fills_replay_without_reissuing_instructions() {
        /// Poisons every fill's first arrival.
        struct PoisonAll;
        impl FaultPlan for PoisonAll {
            fn poison_fill(&mut self, _id: u64) -> bool {
                true
            }
        }
        let mut spec = quick_spec();
        spec.kernel_iters = 1;
        let cfg = small_mcm();
        let healthy = Simulator::run(&cfg, &spec);
        let poisoned = Simulator::run_faulted(&cfg, &spec, &mut NullProbe, &mut PoisonAll);
        // The MSHR entry survives the replay, so no warp re-issues: the
        // instruction count is exact, only the cycles grow.
        assert_eq!(poisoned.instructions, spec.approx_instructions());
        assert!(poisoned.cycles > healthy.cycles);
    }

    #[test]
    fn tiny_mshr_still_completes_by_replaying() {
        let mut cfg = small_mcm();
        cfg.sm.mshr_entries = 2; // force Full stalls
        let mut spec = quick_spec();
        spec.kernel_iters = 1;
        let report = Simulator::run(&cfg, &spec);
        // Replays re-issue instructions, so the count may exceed the
        // static budget, but never be below it — and the run finishes.
        assert!(report.instructions >= spec.approx_instructions());
        // A starved memory system must be slower than an unconstrained
        // one.
        let free = Simulator::run(&small_mcm(), &spec);
        assert!(report.cycles >= free.cycles);
    }
}
