//! Scratch calibration sweep (internal tool; the real harness is in
//! `src/bin/`). Prints per-workload speedups across the key
//! configurations and category geomeans.
use mcm_engine::stats::geomean;
use mcm_gpu::{Simulator, SystemConfig};
use mcm_mem::cache::AllocFilter;
use mcm_workloads::{suite, Category};

fn main() {
    let all = suite::suite();
    let configs = [
        ("base", SystemConfig::baseline_mcm()),
        (
            "L1.5-16RO",
            SystemConfig::mcm_with_l15(16, AllocFilter::RemoteOnly),
        ),
        ("+DS", SystemConfig::mcm_l15_ds()),
        ("opt(8+DS+FT)", SystemConfig::optimized_mcm()),
        ("6TB/s", SystemConfig::mcm_with_link(6144.0)),
        ("mono128", SystemConfig::largest_buildable_monolithic()),
        ("mono256", SystemConfig::hypothetical_monolithic_256()),
        ("mgpu-base", SystemConfig::multi_gpu_baseline()),
        ("mgpu-opt", SystemConfig::multi_gpu_optimized()),
    ];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut cats: Vec<Category> = Vec::new();
    let mut ring_base = 0u64;
    let mut ring_opt = 0u64;
    let scale = mcm_bench::harness::scale();
    let t0 = std::time::Instant::now();
    for w in &all {
        let spec = w.scaled(scale);
        let base = Simulator::run(&configs[0].1, &spec);
        cats.push(w.category);
        ring_base += base.inter_module_bytes;
        print!("{:14}", w.name);
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let r = if i == 0 {
                base.clone()
            } else {
                Simulator::run(cfg, &spec)
            };
            let s = r.speedup_over(&base);
            if i == 3 {
                ring_opt += r.inter_module_bytes;
            }
            speedups[i].push(s);
            print!(" {:5.2}", s);
        }
        println!("  [{:.0}s]", t0.elapsed().as_secs_f64());
    }
    println!(
        "\n{:14} {}",
        "GEOMEAN",
        configs
            .iter()
            .map(|c| format!("{:>9}", c.0))
            .collect::<String>()
    );
    for cat in [
        Category::MemoryIntensive,
        Category::ComputeIntensive,
        Category::LimitedParallelism,
    ] {
        print!("{:14}", cat.label());
        for col in &speedups {
            let v: Vec<f64> = col
                .iter()
                .zip(&cats)
                .filter(|(_, c)| **c == cat)
                .map(|(s, _)| *s)
                .collect();
            print!(" {:8.3}", geomean(&v));
        }
        println!();
    }
    print!("{:14}", "ALL");
    for col in &speedups {
        print!(" {:8.3}", geomean(col));
    }
    println!(
        "\nring reduction base/opt = {:.2}x",
        ring_base as f64 / ring_opt as f64
    );
}
