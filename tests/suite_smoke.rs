//! Smoke test: every workload in the 48-benchmark suite runs to
//! completion on the key machine configurations and produces a sane
//! report.

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::{suite, Category};

#[test]
fn all_48_workloads_run_on_baseline_and_optimized() {
    let baseline = {
        let mut c = SystemConfig::baseline_mcm();
        c.topology.sms_per_module = 16;
        c
    };
    let optimized = {
        let mut c = SystemConfig::optimized_mcm();
        c.topology.sms_per_module = 16;
        c
    };
    // Keep this affordable in debug builds: tiny streams, small grids.
    for w in suite::suite() {
        let mut spec = w.scaled(0.01);
        spec.ctas = spec.ctas.min(128);
        spec.kernel_iters = spec.kernel_iters.min(2);
        for cfg in [&baseline, &optimized] {
            let r = Simulator::run(cfg, &spec);
            assert!(
                r.instructions >= spec.approx_instructions(),
                "{} on {}: lost instructions",
                w.name,
                cfg.name
            );
            assert!(r.cycles.as_u64() > 0, "{}: zero cycles", w.name);
            assert!(
                r.mem_ops > 0,
                "{}: a GPU workload without memory operations",
                w.name
            );
            assert_eq!(r.mem_ops, r.reads + r.writes, "{}: op accounting", w.name);
            let frac = r.local_accesses + r.remote_accesses;
            assert!(frac > 0, "{}: no placement decisions", w.name);
            assert!(r.ipc() > 0.0, "{}: zero IPC", w.name);
        }
    }
}

#[test]
fn limited_parallelism_apps_do_not_scale_with_sms() {
    // The defining property of the category (§2.1, Fig. 2): growing the
    // machine from 64 to 256 SMs barely helps an app with too few CTAs,
    // while a high-parallelism app speeds up substantially.
    let small = SystemConfig::monolithic(64);
    let big = SystemConfig::monolithic(256);
    let high = suite::by_name("MiniAMR").unwrap().scaled(0.05);
    let low = suite::by_name("Crypt").unwrap().scaled(0.05);
    let high_gain = Simulator::run(&big, &high).speedup_over(&Simulator::run(&small, &high));
    let low_gain = Simulator::run(&big, &low).speedup_over(&Simulator::run(&small, &low));
    assert!(
        low_gain < 1.5,
        "a 48-CTA app cannot exploit 4x the SMs, yet gained {low_gain:.2}x"
    );
    assert!(
        high_gain > 1.8,
        "a 1024-CTA app should scale with SMs, gained only {high_gain:.2}x"
    );
    assert!(
        high_gain > low_gain * 1.3,
        "scaling must separate the categories ({high_gain:.2} vs {low_gain:.2})"
    );
}

#[test]
fn category_counts_match_paper() {
    let all = suite::suite();
    let count = |cat| all.iter().filter(|w| w.category == cat).count();
    assert_eq!(all.len(), 48);
    assert_eq!(count(Category::MemoryIntensive), 17);
    assert_eq!(count(Category::ComputeIntensive), 16);
    assert_eq!(count(Category::LimitedParallelism), 15);
}
