//! Cross-crate integration tests asserting the paper's qualitative
//! laws end-to-end: the orderings and monotonicities every figure
//! depends on. These use reduced machine sizes and scaled workloads so
//! the whole file runs in seconds.

use mcm::gpu::{RunReport, Simulator, SystemConfig};
use mcm::mem::cache::AllocFilter;
use mcm::mem::page::PlacementPolicy;
use mcm::sm::SchedulerPolicy;
use mcm::workloads::{suite, WorkloadSpec};

/// A quarter-size machine: 4 modules x 16 SMs with DRAM, L2 and link
/// bandwidth scaled by the same factor, so the NUMA balance (and hence
/// the optimizations' leverage) matches the full 256-SM machine.
fn mcm16(mut f: impl FnMut(&mut SystemConfig)) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.topology.sms_per_module = 16;
    cfg.topology.link_gbps /= 4.0;
    cfg.dram_total_gbps /= 4.0;
    cfg.caches.l2_bytes_total /= 4;
    f(&mut cfg);
    cfg
}

fn run(cfg: &SystemConfig, spec: &WorkloadSpec) -> RunReport {
    Simulator::run(cfg, spec)
}

fn workload(name: &str, scale: f64) -> WorkloadSpec {
    let mut spec = suite::by_name(name).expect("suite workload").scaled(scale);
    // Shrink the CTA grid to match the shrunken machine.
    spec.ctas /= 4;
    spec
}

#[test]
fn optimization_stack_improves_memory_intensive_workloads() {
    // Baseline -> +L1.5 -> +DS -> +FT on the paper's chosen 8 MB
    // rebalance must not regress and must end well ahead (§5's running
    // theme, Figs. 6 -> 9 -> 13). CFD slices a 25 MB footprint across
    // many CTAs — the partitionable shape the DS+FT pair was built for.
    let spec = workload("CFD", 0.2);
    let reb = |c: &mut SystemConfig| {
        c.caches =
            mcm::gpu::CacheHierarchy::rebalanced_from(4 << 20, 2 << 20, AllocFilter::RemoteOnly, 4)
    };
    let base = run(&mcm16(|_| {}), &spec);
    let l15 = run(&mcm16(reb), &spec);
    let ds = run(
        &mcm16(|c| {
            reb(c);
            c.scheduler = SchedulerPolicy::Distributed;
        }),
        &spec,
    );
    let ft = run(
        &mcm16(|c| {
            reb(c);
            c.scheduler = SchedulerPolicy::Distributed;
            c.placement = PlacementPolicy::FirstTouch;
        }),
        &spec,
    );
    // Per-workload L1.5-alone effects straddle ±5 % (the paper's Fig. 6
    // also shows sub-1.0 bars); the strong claims are on the combined
    // stack below.
    assert!(
        l15.speedup_over(&base) > 0.9,
        "the 8 MB remote-only L1.5 must not badly hurt CFD: {}",
        l15.speedup_over(&base)
    );
    assert!(
        ds.speedup_over(&base) > l15.speedup_over(&base) * 0.98,
        "DS must not regress the L1.5 configuration ({} vs {})",
        ds.speedup_over(&base),
        l15.speedup_over(&base)
    );
    assert!(
        ft.speedup_over(&base) > ds.speedup_over(&base),
        "FT on top of DS must help a partitionable workload ({} vs {})",
        ft.speedup_over(&base),
        ds.speedup_over(&base)
    );
    assert!(
        ft.speedup_over(&base) > 1.08,
        "full stack should give a solid speedup, got {}",
        ft.speedup_over(&base)
    );
}

#[test]
fn first_touch_hot_spots_shared_table_workloads() {
    // The flip side of Fig. 12/13's per-workload spread: first touch
    // concentrates a hot *shared* table on whichever module touches it
    // first, so every other module pays a remote round trip for it —
    // and that partition's DRAM absorbs everyone's misses. Kmeans is
    // the canonical shape; on the paper's rebalanced hierarchy FT must
    // raise its locality rate yet still lose cycles to plain
    // interleaving under DS (interleaving also spreads the table across
    // all four L2 partitions, which FT forfeits).
    let spec = workload("Kmeans", 0.2);
    let reb = |c: &mut SystemConfig| {
        c.caches =
            mcm::gpu::CacheHierarchy::rebalanced_from(4 << 20, 2 << 20, AllocFilter::RemoteOnly, 4)
    };
    let ds = run(
        &mcm16(|c| {
            reb(c);
            c.scheduler = SchedulerPolicy::Distributed;
        }),
        &spec,
    );
    let ft = run(
        &mcm16(|c| {
            reb(c);
            c.scheduler = SchedulerPolicy::Distributed;
            c.placement = PlacementPolicy::FirstTouch;
        }),
        &spec,
    );
    assert!(
        ft.locality_rate() > ds.locality_rate() + 0.2,
        "FT must still localize the toucher's own accesses ({:.3} vs {:.3})",
        ft.locality_rate(),
        ds.locality_rate()
    );
    assert!(
        ft.cycles >= ds.cycles,
        "hot-spotting a shared table should not beat interleaving \
         ({} vs {})",
        ft.cycles,
        ds.cycles
    );
}

#[test]
fn full_stack_cuts_inter_gpm_traffic_multiple_fold() {
    // The headline 5x inter-GPM bandwidth reduction (§5.4) — asserted
    // loosely (>2x) on one partitionable workload at reduced scale.
    let spec = workload("Stream", 0.2);
    let base = run(&mcm16(|_| {}), &spec);
    let opt = run(
        &mcm16(|c| {
            c.caches = mcm::gpu::CacheHierarchy::rebalanced_from(
                4 << 20,
                2 << 20,
                AllocFilter::RemoteOnly,
                4,
            );
            c.scheduler = SchedulerPolicy::Distributed;
            c.placement = PlacementPolicy::FirstTouch;
        }),
        &spec,
    );
    let reduction = base.inter_module_bytes as f64 / opt.inter_module_bytes.max(1) as f64;
    assert!(
        reduction > 2.0,
        "expected multi-fold traffic reduction, got {reduction:.2}x"
    );
}

#[test]
fn unbuildable_monolithic_dominates_same_resource_mcm() {
    let spec = workload("Lulesh3", 0.15);
    let mcm = run(&mcm16(|_| {}), &spec);
    let mut mono = SystemConfig::monolithic(64);
    mono.dram_total_gbps = 768.0;
    mono.caches.l2_bytes_total = 4 << 20;
    let mono = run(&mono, &spec);
    assert!(
        mono.cycles <= mcm.cycles,
        "equal-resource monolithic can never lose to the NUMA machine"
    );
}

#[test]
fn link_bandwidth_sweep_is_monotone() {
    // Fig. 4's x-axis: more link bandwidth never slows the machine, and
    // starving the links must eventually hurt a bandwidth-bound app.
    let spec = workload("Stream", 0.15);
    let mut last_cycles: Option<mcm::engine::Cycle> = None;
    for gbps in [96.0, 384.0, 1536.0, 6144.0] {
        let r = run(&mcm16(|c| c.topology.link_gbps = gbps), &spec);
        if let Some(prev) = last_cycles {
            // Allow a small tolerance: different bandwidths change event
            // interleavings and hence exact cache contents.
            assert!(
                r.cycles.as_u64() as f64 <= prev.as_u64() as f64 * 1.03,
                "raising links to {gbps} GB/s slowed the run ({} vs {prev})",
                r.cycles
            );
        }
        last_cycles = Some(r.cycles);
    }
    let starved = run(&mcm16(|c| c.topology.link_gbps = 96.0), &spec);
    let ample = run(&mcm16(|c| c.topology.link_gbps = 6144.0), &spec);
    assert!(
        starved.cycles.as_u64() as f64 > ample.cycles.as_u64() as f64 * 1.3,
        "a bandwidth-bound app must suffer on starved links"
    );
}

#[test]
fn remote_only_beats_cache_all_at_iso_capacity() {
    // §5.1.2's conclusion, for a workload whose remote reuse fits the
    // cache.
    let spec = workload("Kmeans", 0.2);
    let remote_only = run(
        &mcm16(|c| {
            c.caches = mcm::gpu::CacheHierarchy::rebalanced_from(
                4 << 20,
                2 << 20,
                AllocFilter::RemoteOnly,
                4,
            )
        }),
        &spec,
    );
    let cache_all = run(
        &mcm16(|c| {
            c.caches =
                mcm::gpu::CacheHierarchy::rebalanced_from(4 << 20, 2 << 20, AllocFilter::All, 4)
        }),
        &spec,
    );
    assert!(
        remote_only.cycles.as_u64() as f64 <= cache_all.cycles.as_u64() as f64 * 1.05,
        "remote-only should be at least competitive with cache-all \
         (remote-only {} vs all {})",
        remote_only.cycles,
        cache_all.cycles
    );
}

#[test]
fn first_touch_with_distributed_scheduling_localizes() {
    // §5.3: FT+DS turns a partitionable workload almost fully local;
    // FT under centralized scheduling localizes far less.
    let spec = workload("MiniAMR", 0.15);
    let ft_ds = run(
        &mcm16(|c| {
            c.placement = PlacementPolicy::FirstTouch;
            c.scheduler = SchedulerPolicy::Distributed;
        }),
        &spec,
    );
    let ft_central = run(&mcm16(|c| c.placement = PlacementPolicy::FirstTouch), &spec);
    assert!(
        ft_ds.locality_rate() > 0.8,
        "FT+DS locality too low: {}",
        ft_ds.locality_rate()
    );
    assert!(
        ft_ds.locality_rate() > ft_central.locality_rate() + 0.1,
        "DS must amplify FT's locality ({} vs {})",
        ft_ds.locality_rate(),
        ft_central.locality_rate()
    );
}

#[test]
fn cross_kernel_locality_persists_under_first_touch() {
    // §5.3 / Fig. 12: pages placed in kernel 0 stay local in later
    // kernels because CTA chunks are stable. With a single kernel there
    // is no reuse to exploit, so multi-kernel locality must be at least
    // as good.
    let mut spec = workload("CFD", 0.2);
    spec.kernel_iters = 4;
    let multi = run(
        &mcm16(|c| {
            c.placement = PlacementPolicy::FirstTouch;
            c.scheduler = SchedulerPolicy::Distributed;
        }),
        &spec,
    );
    assert!(
        multi.locality_rate() > 0.8,
        "cross-kernel FT locality too low: {}",
        multi.locality_rate()
    );
}

#[test]
fn multi_gpu_loses_to_mcm_on_communication_heavy_work() {
    // §6.1: the on-board interconnect's inferiority shows on workloads
    // with unavoidable cross-module traffic.
    let spec = workload("SSSP", 0.15);
    let mcm = run(
        &mcm16(|c| {
            c.caches = mcm::gpu::CacheHierarchy::rebalanced_from(
                4 << 20,
                2 << 20,
                AllocFilter::RemoteOnly,
                4,
            );
            c.scheduler = SchedulerPolicy::Distributed;
            c.placement = PlacementPolicy::FirstTouch;
        }),
        &spec,
    );
    let mut mgpu = SystemConfig::multi_gpu_baseline();
    mgpu.topology.sms_per_module = 32; // same total SMs as the test MCM
    mgpu.topology.link_gbps /= 4.0;
    mgpu.dram_total_gbps /= 4.0;
    mgpu.caches.l2_bytes_total /= 4;
    let mgpu = run(&mgpu, &spec);
    assert!(
        mcm.cycles < mgpu.cycles,
        "optimized MCM must beat the board-linked multi-GPU on shared-heavy work \
         ({} vs {})",
        mcm.cycles,
        mgpu.cycles
    );
}

#[test]
fn reports_are_bit_reproducible_across_runs() {
    let spec = workload("BFS", 0.1);
    let cfg = mcm16(|c| {
        c.placement = PlacementPolicy::FirstTouch;
        c.scheduler = SchedulerPolicy::Distributed;
        c.caches =
            mcm::gpu::CacheHierarchy::rebalanced_from(4 << 20, 2 << 20, AllocFilter::RemoteOnly, 4);
    });
    let a = run(&cfg, &spec);
    let b = run(&cfg, &spec);
    assert_eq!(a, b);
}

#[test]
fn energy_follows_traffic_tiers() {
    // Package-tier energy appears only on multi-module machines; board
    // tier only on the multi-GPU.
    use mcm::interconnect::energy::Tier;
    let spec = workload("Srad-v2", 0.1);
    let mono = run(&SystemConfig::monolithic(64), &spec);
    assert_eq!(mono.energy.bytes(Tier::Package), 0);
    assert_eq!(mono.energy.bytes(Tier::Board), 0);
    let mcm = run(&mcm16(|_| {}), &spec);
    assert!(mcm.energy.bytes(Tier::Package) > 0);
    assert_eq!(mcm.energy.bytes(Tier::Board), 0);
    let mut mgpu_cfg = SystemConfig::multi_gpu_baseline();
    mgpu_cfg.topology.sms_per_module = 32;
    mgpu_cfg.dram_total_gbps /= 4.0;
    // Use interleaved placement to force cross-GPU traffic.
    mgpu_cfg.placement = PlacementPolicy::Interleaved;
    let mgpu = run(&mgpu_cfg, &spec);
    assert_eq!(mgpu.energy.bytes(Tier::Package), 0);
    assert!(mgpu.energy.bytes(Tier::Board) > 0);
}
