//! Shared machinery for the figure/table harness binaries: scaled,
//! memoized simulation runs and plain-text table rendering.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::OnceLock;

use mcm_engine::rng::StableHasher;
use mcm_engine::stats::geomean;
use mcm_exec::pool::{panic_message, TaskFailure};
use mcm_fault::{FaultConfig, FaultPlan, NullFaultPlan, SeededFaultPlan};
use mcm_gpu::{RunReport, Simulator, SystemConfig};
use mcm_probe::{ChromeTraceProbe, MetricsProbe, NullProbe, Probe};
use mcm_store::Store;
use mcm_telemetry::{Class, Counter, Histogram};
use mcm_workloads::{Category, WorkloadSpec};

/// Parses `raw` (the value of environment variable `var`) or panics
/// naming both the variable and the offending value — a typo in a knob
/// must abort the run, not silently fall back to a default.
fn parse_checked<T: std::str::FromStr>(var: &str, raw: &str) -> T {
    raw.trim().parse().unwrap_or_else(|_| {
        panic!(
            "{var} must be a valid {}, got {raw:?}",
            std::any::type_name::<T>()
        )
    })
}

/// Parses the raw OS-level value of environment variable `var`;
/// `None` when `value` is `None` (variable unset). Split from
/// [`env_parsed`] so the non-Unicode path is testable without mutating
/// the process environment.
///
/// # Panics
///
/// Panics (naming the variable) when the value is set but is not valid
/// Unicode, or is Unicode but unparsable. `std::env::var(..).ok()`
/// would conflate "unset" with "set to non-Unicode bytes" and silently
/// fall back to the knob's default — the opposite of the loud-env
/// contract.
fn parse_env_value<T: std::str::FromStr>(var: &str, value: Option<&std::ffi::OsStr>) -> Option<T> {
    let raw = value?;
    let raw = raw.to_str().unwrap_or_else(|| {
        panic!("{var} is set to non-Unicode bytes ({raw:?}); refusing to guess a default")
    });
    Some(parse_checked(var, raw))
}

/// Reads and parses environment variable `var`; `None` when unset.
/// Public so the service binaries read their knobs with the same
/// loud-env contract as the harness.
///
/// # Panics
///
/// Panics (naming the variable and the value) when the value is set but
/// non-Unicode or unparsable.
pub fn env_parsed<T: std::str::FromStr>(var: &str) -> Option<T> {
    parse_env_value(var, std::env::var_os(var).as_deref())
}

/// The workload scale factor used by the harness: multiplies per-warp
/// instruction counts. Read from `MCM_SCALE` (default 0.5 — bandwidth
/// shapes are stable down to ~0.1, but cache-warm-up effects need the
/// longer streams; use 1.0 for full-length runs).
///
/// # Panics
///
/// Panics when `MCM_SCALE` is set but not a finite positive number.
pub fn scale() -> f64 {
    let s: f64 = env_parsed("MCM_SCALE").unwrap_or(0.5);
    assert!(
        s.is_finite() && s > 0.0,
        "MCM_SCALE must be finite and positive, got {s}"
    );
    s
}

/// The fault-injection seed, read from `MCM_FAULT_SEED` (default: the
/// [`FaultConfig`] default seed). A fixed seed makes every faulted run
/// byte-reproducible.
///
/// # Panics
///
/// Panics when `MCM_FAULT_SEED` is set but not a valid `u64`.
pub fn fault_seed() -> u64 {
    env_parsed("MCM_FAULT_SEED").unwrap_or_else(|| FaultConfig::default().seed)
}

/// The fault-injection rate, read from `MCM_FAULT_RATE` (default 0.0 =
/// no injection). Applied as the per-site probability for link errors,
/// DRAM throttle windows, and MSHR poisoning alike.
///
/// # Panics
///
/// Panics when `MCM_FAULT_RATE` is set but not a number in `[0, 1]`.
pub fn fault_rate() -> f64 {
    let r: f64 = env_parsed("MCM_FAULT_RATE").unwrap_or(0.0);
    assert!(
        r.is_finite() && (0.0..=1.0).contains(&r),
        "MCM_FAULT_RATE must be in [0, 1], got {r}"
    );
    r
}

/// The shard count for single-simulation parallel execution, read from
/// `MCM_SHARDS` (default 1 = the serial engine). Values above a
/// configuration's usable parallelism are clamped per machine by
/// [`mcm_gpu::effective_shards`], so one knob value works across a
/// whole sweep; results are bit-identical at every setting.
///
/// # Panics
///
/// Panics when `MCM_SHARDS` is set but not a positive integer.
pub fn shards() -> usize {
    let s: usize = env_parsed("MCM_SHARDS").unwrap_or(1);
    assert!(s > 0, "MCM_SHARDS must be positive, got {s}");
    s
}

/// A memoizing runner: each `(configuration, workload)` pair is
/// simulated once per process, so figures that share configurations
/// (e.g. every figure needs the baseline) don't re-run it.
///
/// The cache keys on the configuration's full
/// [`fingerprint`](SystemConfig::fingerprint) — not its display name —
/// so two configurations that share a name but differ in any tuned
/// parameter are simulated (and cached) separately.
///
/// Independent runs can execute in parallel: [`Memo::warm`] (and the
/// [`Memo::run_grid`] / [`Memo::run_suite_parallel`] wrappers) plan the
/// unique uncached pairs of a grid up front and dispatch them across
/// `MCM_JOBS` worker threads via [`mcm_exec`], merging results back in
/// grid order so every figure, table, and artifact is byte-identical
/// regardless of the job count.
///
/// With a persistent [`Store`] attached (`MCM_STORE=<dir>`, see
/// [`Memo::from_env`]), the cache additionally survives the process:
/// every fresh simulation is durably committed as it completes, and
/// later processes (or a restart after a crash) serve those pairs from
/// disk. The store key folds in everything that determines a result —
/// the configuration fingerprint, the *scaled* instruction count, and
/// the fault-injection knobs — so a knob change is a different key,
/// never a stale hit.
#[derive(Debug)]
pub struct Memo {
    scale: f64,
    cache: HashMap<(u64, String), RunReport>,
    store: Option<Store>,
    stats: MemoStats,
}

/// What one [`Memo`] instance did: per-instance mirrors of the global
/// `memo.*` telemetry counters, race-free for unit tests that run
/// alongside other memo-using tests in the same process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// [`Memo::run`] calls served from the cache.
    pub hits: u64,
    /// [`Memo::run`] calls that simulated.
    pub misses: u64,
    /// Pairs requested across all [`Memo::warm`] calls.
    pub warm_requested: u64,
    /// Pairs actually simulated by [`Memo::warm`] (the rest were
    /// duplicates, already cached, or served from the store).
    pub warm_planned: u64,
    /// Exact-duplicate `(fingerprint, workload)` pairs dropped within a
    /// single warm plan.
    pub warm_deduped: u64,
    /// Runs served from the persistent store instead of simulating.
    pub store_hits: u64,
}

/// Pre-registered global `memo.*` telemetry. Mostly deterministic: the
/// cache keys on content fingerprints and the call sequence of a
/// harness binary does not depend on `MCM_JOBS`/`MCM_SHARDS`. The
/// store-dependent counters are [`Class::PerConfig`] because their
/// values are a function of the `MCM_STORE` knob and the disk contents
/// it points at.
struct MemoTele {
    hits: Counter,
    misses: Counter,
    warm_requested: Counter,
    warm_planned: Counter,
    /// Exact-duplicate pairs dropped within one warm plan. PerConfig:
    /// with a store attached, a pair served from disk on its first
    /// occurrence turns later occurrences into cache hits instead of
    /// dedupes, so the count depends on what previous processes left
    /// behind.
    warm_deduped: Counter,
    /// Runs served from the persistent store. PerConfig: zero with
    /// `MCM_STORE` unset, a function of the knob and the disk with it.
    store_hits: Counter,
    dedupe: Histogram,
}

/// `memo.warm_dedupe_permille` bucket edges (fraction of a warm call's
/// requested pairs skipped as duplicates/cached, in permille).
const DEDUPE_BOUNDS: [u64; 5] = [0, 250, 500, 750, 1000];

fn memo_tele() -> &'static MemoTele {
    static TELE: OnceLock<MemoTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let reg = mcm_telemetry::global();
        MemoTele {
            hits: reg.counter("memo.hits", Class::Deterministic),
            misses: reg.counter("memo.misses", Class::Deterministic),
            warm_requested: reg.counter("memo.warm_requested", Class::Deterministic),
            warm_planned: reg.counter("memo.warm_planned", Class::Deterministic),
            warm_deduped: reg.counter("memo.warm_deduped", Class::PerConfig),
            store_hits: reg.counter("memo.store_hits", Class::PerConfig),
            dedupe: reg.histogram(
                "memo.warm_dedupe_permille",
                Class::Deterministic,
                &DEDUPE_BOUNDS,
            ),
        }
    })
}

/// The persistent-store fingerprint for one `(configuration, workload)`
/// pair at workload scale `scale`. Unlike [`Memo`]'s in-process cache
/// key, this must survive the process — so it folds in everything the
/// environment contributes to a result: the *scaled* per-warp
/// instruction count (capturing `MCM_SCALE`) and the fault-injection
/// knobs. A process running at different knob settings computes a
/// different key and never sees a stale record. Public so the sweep
/// service keys its in-flight dedupe registry exactly the way [`Memo`]
/// keys the store — same function, same bytes.
pub fn pair_fingerprint(scale: f64, cfg: &SystemConfig, spec: &WorkloadSpec) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(cfg.fingerprint());
    h.write_str(spec.name);
    h.write_u64(u64::from(spec.scaled(scale).insts_per_warp));
    h.write_u64(fault_rate().to_bits());
    h.write_u64(fault_seed());
    h.finish()
}

impl Memo {
    /// Creates a runner at the given workload scale, process-local only
    /// (no persistent store).
    pub fn new(scale: f64) -> Self {
        Memo {
            scale,
            cache: HashMap::new(),
            store: None,
            stats: MemoStats::default(),
        }
    }

    /// Creates a runner at the environment-selected scale. With
    /// `MCM_STORE=<dir>` set, attaches the persistent [`Store`] at that
    /// directory, so results survive (and are served across) process
    /// restarts.
    ///
    /// # Panics
    ///
    /// Panics when `MCM_STORE` is set but the directory cannot be
    /// opened at all (cannot be created or listed) — a mistyped knob
    /// must abort the run, not silently fall back to volatile caching.
    /// On-disk *corruption* is not an error: damaged records are
    /// quarantined as misses by the store's recovery scan.
    pub fn from_env() -> Self {
        let mut memo = Memo::new(scale());
        if let Some(dir) = std::env::var_os("MCM_STORE") {
            let dir = PathBuf::from(dir);
            let store = Store::open(&dir).unwrap_or_else(|e| {
                panic!(
                    "MCM_STORE: cannot open result store at {}: {e}",
                    dir.display()
                )
            });
            memo.store = Some(store);
        }
        memo
    }

    /// Creates a runner at the given scale backed by an explicit
    /// [`Store`] (tests attach temp-dir stores without touching the
    /// `MCM_STORE` environment variable, which would race across test
    /// threads).
    pub fn with_store(scale: f64, store: Store) -> Self {
        let mut memo = Memo::new(scale);
        memo.store = Some(store);
        memo
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// The workload scale in force.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    fn key(cfg: &SystemConfig, spec: &WorkloadSpec) -> (u64, String) {
        (cfg.fingerprint(), spec.name.to_string())
    }

    /// The persistent-store fingerprint for one pair; see
    /// [`pair_fingerprint`].
    fn store_fingerprint(&self, cfg: &SystemConfig, spec: &WorkloadSpec) -> u64 {
        pair_fingerprint(self.scale, cfg, spec)
    }

    /// Runs `spec` (scaled) on `cfg`, memoized — in-process first, then
    /// the persistent store (when attached), then a fresh simulation
    /// (which is durably committed to the store as it completes).
    ///
    /// Fresh (non-memoized) runs honour the observability environment
    /// variables: see [`run_instrumented`].
    pub fn run(&mut self, cfg: &SystemConfig, spec: &WorkloadSpec) -> RunReport {
        let key = Memo::key(cfg, spec);
        if let Some(r) = self.cache.get(&key) {
            self.stats.hits += 1;
            memo_tele().hits.inc();
            return r.clone();
        }
        if self.store.is_some() {
            let fp = self.store_fingerprint(cfg, spec);
            if let Some(r) = self.store.as_ref().and_then(|s| s.get(fp, spec.name)) {
                self.stats.store_hits += 1;
                memo_tele().store_hits.inc();
                self.cache.insert(key, r.clone());
                return r;
            }
        }
        self.stats.misses += 1;
        memo_tele().misses.inc();
        let report = run_instrumented(cfg, &spec.scaled(self.scale));
        if let Some(store) = &self.store {
            store.put(self.store_fingerprint(cfg, spec), spec.name, &report);
        }
        self.cache.insert(key, report.clone());
        report
    }

    /// Runs every workload in `suite` on `cfg`.
    pub fn run_suite(&mut self, cfg: &SystemConfig, suite: &[WorkloadSpec]) -> Vec<RunReport> {
        suite.iter().map(|w| self.run(cfg, w)).collect()
    }

    /// Simulates every uncached `(configuration, workload)` pair in
    /// `pairs` across `MCM_JOBS` worker threads (default: the machine's
    /// available parallelism) and memoizes the results. Subsequent
    /// [`Memo::run`] calls for those pairs are cache hits, so a figure
    /// can `warm` its whole grid first and keep its serial reporting
    /// loop untouched.
    ///
    /// Planning happens up front in grid order: duplicates and
    /// already-cached pairs are dropped, artifact stems are checked for
    /// collisions (see [`artifact_stem`]), and results are merged back
    /// in plan order — output never depends on thread scheduling.
    ///
    /// With `MCM_SUPERVISED=1` the grid runs under the supervised
    /// executor instead: a panicking pair is retried (`MCM_RETRIES`,
    /// default 1) and then quarantined — reported on stderr, left
    /// uncached — while every other pair completes. See
    /// [`Memo::warm_supervised_with_jobs`].
    ///
    /// # Panics
    ///
    /// Panics if two planned pairs would write the same artifact stem,
    /// or (unsupervised) if a worker task panics — the propagated panic
    /// names the `(configuration, workload)` pair and its grid index
    /// and carries the original message.
    pub fn warm(&mut self, pairs: &[(&SystemConfig, &WorkloadSpec)]) {
        if mcm_exec::supervised() {
            let failures =
                self.warm_supervised_with_jobs(mcm_exec::jobs(), mcm_exec::retries(), pairs);
            report_quarantined(&failures);
        } else {
            self.warm_with_jobs(mcm_exec::jobs(), pairs);
        }
    }

    /// Plans one warm call: drops pairs already in the in-process
    /// cache, dedupes *exact* `(fingerprint, workload)` duplicates
    /// (counted in `memo.warm_deduped`), serves pairs present in the
    /// persistent store straight into the cache, checks the survivors'
    /// artifact stems for collisions, and books the `memo.*`
    /// accounting. Returns the pairs that genuinely need simulating,
    /// in grid order, each with its precomputed store fingerprint.
    fn plan<'p>(
        &mut self,
        pairs: &[(&'p SystemConfig, &'p WorkloadSpec)],
    ) -> Vec<(&'p SystemConfig, WorkloadSpec, u64)> {
        let mut planned: Vec<(&SystemConfig, WorkloadSpec, u64)> = Vec::new();
        let mut seen: HashSet<(u64, String)> = HashSet::new();
        let mut stems: HashMap<String, (String, &str)> = HashMap::new();
        let mut deduped = 0u64;
        let mut store_hits = 0u64;
        for &(cfg, spec) in pairs {
            let key = Memo::key(cfg, spec);
            if self.cache.contains_key(&key) {
                continue;
            }
            // Exact-pair dedupe: the same (fingerprint, workload)
            // appearing twice in one grid plans once. This is decided
            // on the full content key, never on a name or a truncated
            // stem hash.
            if !seen.insert(key.clone()) {
                deduped += 1;
                continue;
            }
            let store_fp = self.store_fingerprint(cfg, spec);
            if let Some(r) = self.store.as_ref().and_then(|s| s.get(store_fp, spec.name)) {
                store_hits += 1;
                self.cache.insert(key, r);
                continue;
            }
            let stem = artifact_stem(cfg, spec);
            match stems.get(&stem) {
                // A *different* pair mapping to the same stem would
                // silently overwrite artifacts; fail loud instead.
                Some((c, w)) => panic!(
                    "artifact stem {stem:?} collides: ({c:?}, {w:?}) vs ({:?}, {:?})",
                    cfg.name, spec.name
                ),
                None => {
                    stems.insert(stem, (cfg.name.clone(), spec.name));
                }
            }
            planned.push((cfg, spec.scaled(self.scale), store_fp));
        }
        let tele = memo_tele();
        self.stats.warm_requested += pairs.len() as u64;
        self.stats.warm_planned += planned.len() as u64;
        self.stats.warm_deduped += deduped;
        self.stats.store_hits += store_hits;
        tele.warm_requested.add(pairs.len() as u64);
        tele.warm_planned.add(planned.len() as u64);
        tele.warm_deduped.add(deduped);
        tele.store_hits.add(store_hits);
        if !pairs.is_empty() {
            let skipped = (pairs.len() - planned.len()) as u64;
            tele.dedupe.observe(skipped * 1000 / pairs.len() as u64);
        }
        planned
    }

    /// [`Memo::warm`] with an explicit worker count (tests compare
    /// job counts in-process without touching the `MCM_JOBS`
    /// environment variable, which would race across test threads).
    pub fn warm_with_jobs(&mut self, jobs: usize, pairs: &[(&SystemConfig, &WorkloadSpec)]) {
        self.warm_with_jobs_runner(jobs, pairs, run_instrumented);
    }

    /// [`Memo::warm_with_jobs`] with an injectable simulation function
    /// (tests exercise the panic-enrichment and persistence plumbing
    /// with scripted faults, no environment required).
    fn warm_with_jobs_runner<G>(
        &mut self,
        jobs: usize,
        pairs: &[(&SystemConfig, &WorkloadSpec)],
        sim: G,
    ) where
        G: Fn(&SystemConfig, &WorkloadSpec) -> RunReport + Sync,
    {
        let planned = self.plan(pairs);
        let store = self.store.as_ref();
        let reports = mcm_exec::pool::run_grid(
            &planned,
            jobs,
            mcm_exec::DEFAULT_SEED,
            |_, (cfg, scaled, store_fp)| {
                // Attach the pair's identity to any panic before the
                // pool's own enrichment adds the grid index: a poisoned
                // sweep names ("config", "workload"), not just a slot.
                let report =
                    catch_unwind(AssertUnwindSafe(|| sim(cfg, scaled))).unwrap_or_else(|payload| {
                        resume_unwind(Box::new(format!(
                            "({:?}, {:?}): {}",
                            cfg.name,
                            scaled.name,
                            panic_message(payload.as_ref())
                        )))
                    });
                // Committed from the worker, not after the merge: a
                // crash mid-sweep keeps every already-finished result.
                if let Some(store) = store {
                    store.put(*store_fp, scaled.name, &report);
                }
                report
            },
        );
        for ((cfg, scaled, _), report) in planned.iter().zip(reports) {
            self.cache
                .insert((cfg.fingerprint(), scaled.name.to_string()), report);
        }
    }

    /// The supervised counterpart of [`Memo::warm`]: runs the planned
    /// grid under [`mcm_exec::pool::run_grid_supervised`], so a
    /// panicking pair is retried up to `retries` more times and then
    /// quarantined — named in the returned report — while every other
    /// pair completes (and persists, when a store is attached).
    ///
    /// The report is sorted by grid position and is identical at every
    /// `jobs` value. Quarantined pairs stay uncached: a later
    /// [`Memo::run`] on one will re-attempt it (and panic undisturbed
    /// if the fault persists).
    pub fn warm_supervised_with_jobs(
        &mut self,
        jobs: usize,
        retries: u32,
        pairs: &[(&SystemConfig, &WorkloadSpec)],
    ) -> Vec<PairFailure> {
        self.warm_supervised_runner(jobs, retries, pairs, |cfg, scaled| {
            run_instrumented(cfg, scaled)
        })
    }

    /// [`Memo::warm_supervised_with_jobs`] with an injectable
    /// simulation function (tests inject scripted faults env-free).
    fn warm_supervised_runner<G>(
        &mut self,
        jobs: usize,
        retries: u32,
        pairs: &[(&SystemConfig, &WorkloadSpec)],
        sim: G,
    ) -> Vec<PairFailure>
    where
        G: Fn(&SystemConfig, &WorkloadSpec) -> RunReport + Sync,
    {
        let planned = self.plan(pairs);
        let store = self.store.as_ref();
        let grid = mcm_exec::pool::run_grid_supervised(
            &planned,
            jobs,
            mcm_exec::DEFAULT_SEED,
            retries,
            |_, (cfg, scaled, store_fp)| {
                let report = sim(cfg, scaled);
                if let Some(store) = store {
                    store.put(*store_fp, scaled.name, &report);
                }
                report
            },
        );
        for ((cfg, scaled, _), report) in planned.iter().zip(grid.results) {
            if let Some(report) = report {
                self.cache
                    .insert((cfg.fingerprint(), scaled.name.to_string()), report);
            }
        }
        grid.failures
            .into_iter()
            .map(|failure| {
                let (cfg, scaled, _) = &planned[failure.index];
                PairFailure {
                    config: cfg.name.clone(),
                    workload: scaled.name.to_string(),
                    failure,
                }
            })
            .collect()
    }

    /// Runs every pair of `pairs` (scaled, memoized), executing the
    /// uncached ones in parallel across `MCM_JOBS` workers, and returns
    /// the reports in grid order.
    pub fn run_grid(&mut self, pairs: &[(&SystemConfig, &WorkloadSpec)]) -> Vec<RunReport> {
        self.run_grid_with_jobs(mcm_exec::jobs(), pairs)
    }

    /// [`Memo::run_grid`] with an explicit worker count.
    pub fn run_grid_with_jobs(
        &mut self,
        jobs: usize,
        pairs: &[(&SystemConfig, &WorkloadSpec)],
    ) -> Vec<RunReport> {
        self.warm_with_jobs(jobs, pairs);
        pairs
            .iter()
            .map(|(cfg, spec)| self.run(cfg, spec))
            .collect()
    }

    /// Runs every workload in `suite` on `cfg`, the uncached ones in
    /// parallel; results come back in suite order.
    pub fn run_suite_parallel(
        &mut self,
        cfg: &SystemConfig,
        suite: &[WorkloadSpec],
    ) -> Vec<RunReport> {
        let pairs: Vec<(&SystemConfig, &WorkloadSpec)> = suite.iter().map(|w| (cfg, w)).collect();
        self.run_grid(&pairs)
    }

    /// This instance's hit/miss/warm accounting.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// All reports produced so far, sorted by (configuration, workload)
    /// for deterministic output.
    pub fn reports(&self) -> Vec<&RunReport> {
        let mut all: Vec<&RunReport> = self.cache.values().collect();
        all.sort_by(|a, b| (&a.config, &a.workload).cmp(&(&b.config, &b.workload)));
        all
    }
}

/// One quarantined `(configuration, workload)` pair from a supervised
/// warm ([`Memo::warm_supervised_with_jobs`]): the pair's names plus
/// the underlying executor-level [`TaskFailure`] (grid index, attempt
/// count, last panic message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairFailure {
    /// The configuration's display name.
    pub config: String,
    /// The workload name.
    pub workload: String,
    /// The executor-level failure record.
    pub failure: TaskFailure,
}

impl std::fmt::Display for PairFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QUARANTINED ({:?}, {:?}) after {} attempt(s): {}",
            self.config, self.workload, self.failure.attempts, self.failure.message
        )
    }
}

/// Prints a supervised warm's quarantine report to stderr, one line
/// per poisoned pair, in grid order. No output when nothing failed.
pub fn report_quarantined(failures: &[PairFailure]) {
    for f in failures {
        eprintln!("mcm: exec: {f}");
    }
}

/// The time-series bucket width in cycles, read from
/// `MCM_METRICS_BUCKET` (default [`mcm_probe::metrics::DEFAULT_BUCKET`]).
///
/// # Panics
///
/// Panics when `MCM_METRICS_BUCKET` is set but not a positive integer.
pub fn metrics_bucket() -> u64 {
    let b = env_parsed("MCM_METRICS_BUCKET").unwrap_or(mcm_probe::metrics::DEFAULT_BUCKET);
    assert!(b > 0, "MCM_METRICS_BUCKET must be positive, got {b}");
    b
}

/// Collapses every run of non-alphanumeric characters into a single
/// `-` and trims the ends (config names contain `/`, `(`, `+`, spaces).
fn collapse(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.is_empty() && !out.ends_with('-') {
            out.push('-');
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// The low 32 bits of the stable FNV-1a hash of `name`, as 8 hex
/// digits.
fn short_hash(h: StableHasher) -> String {
    format!("{:08x}", h.finish() as u32)
}

/// Turns a configuration or workload name into a filename-safe stem:
/// runs of non-alphanumeric characters collapse to a single `-`, and
/// the stable hash of the *raw* name is appended so distinct names
/// never share a stem (`"4-GPM (FT)"` and `"4-GPM +FT"` used to both
/// sanitize to `4-GPM--FT-` and overwrite each other's artifacts).
pub fn sanitize(name: &str) -> String {
    let mut h = StableHasher::new();
    h.write_str(name);
    format!("{}-{}", collapse(name), short_hash(h))
}

/// The artifact-file stem for one `(configuration, workload)` run:
/// human-readable collapsed names plus a stable hash over the
/// configuration's full [`fingerprint`](SystemConfig::fingerprint) and
/// the workload name. Two runs share a stem only if they would simulate
/// identically, so parallel workers never race on an artifact file —
/// even for configs that share a display name but differ in a
/// parameter.
pub fn artifact_stem(cfg: &SystemConfig, spec: &WorkloadSpec) -> String {
    let mut h = StableHasher::new();
    h.write_u64(cfg.fingerprint());
    h.write_str(spec.name);
    format!(
        "{}__{}-{}",
        collapse(&cfg.name),
        collapse(spec.name),
        short_hash(h)
    )
}

/// Runs one (already scaled) workload on `cfg`, attaching observability
/// sinks selected by the environment:
///
/// - `MCM_TRACE=<dir>` — write a Chrome trace-event JSON per run to
///   `<dir>/<config>__<workload>.trace.json` (load in Perfetto).
/// - `MCM_METRICS=<dir>` — write a utilization time-series CSV per run
///   to `<dir>/<config>__<workload>.metrics.csv`; bucket width from
///   `MCM_METRICS_BUCKET` (cycles).
///
/// With neither variable set this is exactly [`Simulator::run`]: the
/// [`mcm_probe::NullProbe`] path monomorphizes to no instrumentation.
///
/// Fault injection is selected by `MCM_FAULT_RATE` (see
/// [`fault_rate`]): a positive rate runs under a
/// [`SeededFaultPlan`] seeded from `MCM_FAULT_SEED`; the default 0.0
/// keeps the zero-overhead [`NullFaultPlan`] path.
///
/// # Panics
///
/// Panics if an artifact directory cannot be created or written, or if
/// one of the environment knobs holds an invalid value.
pub fn run_instrumented(cfg: &SystemConfig, spec: &WorkloadSpec) -> RunReport {
    // The scripted worker fault (a no-op unless MCM_FAULT_TASK_PANIC
    // is set): the deterministic crash the supervised executor is
    // exercised against.
    mcm_fault::inject::scripted_task_panic(&cfg.name, spec.name);
    let rate = fault_rate();
    if rate > 0.0 {
        let mut plan = SeededFaultPlan::new(FaultConfig::with_rate(fault_seed(), rate));
        run_instrumented_faulted(cfg, spec, &mut plan)
    } else {
        run_instrumented_faulted(cfg, spec, &mut NullFaultPlan)
    }
}

/// Runs one (already scaled) workload on `cfg` under a caller-supplied
/// probe, with fault injection selected by the environment exactly as
/// in [`run_instrumented`]: a positive `MCM_FAULT_RATE` runs under a
/// [`SeededFaultPlan`] seeded from `MCM_FAULT_SEED`, otherwise the
/// zero-overhead [`NullFaultPlan`] path. For binaries (like `profile`)
/// that assemble their own sink stacks instead of using the
/// `MCM_TRACE`/`MCM_METRICS` plumbing.
///
/// # Panics
///
/// Panics if a fault environment knob holds an invalid value.
pub fn run_probed_env_faults<P: Probe + Send>(
    cfg: &SystemConfig,
    spec: &WorkloadSpec,
    probe: &mut P,
) -> RunReport {
    // Routed through the sharded entry point: an active probe always
    // runs serially, but the core layer then warns loudly (and counts)
    // when MCM_SHARDS>1 is being ignored instead of silently dropping
    // the knob.
    let rate = fault_rate();
    if rate > 0.0 {
        let mut plan = SeededFaultPlan::new(FaultConfig::with_rate(fault_seed(), rate));
        let (report, _) = Simulator::run_faulted_sharded(cfg, spec, probe, &mut plan, shards());
        report
    } else {
        let (report, _) =
            Simulator::run_faulted_sharded(cfg, spec, probe, &mut NullFaultPlan, shards());
        report
    }
}

/// [`run_instrumented`] under an explicit fault plan (the `resilience`
/// harness sweeps plans directly; everything else goes through the
/// environment-selected plan). Trace and metrics sinks attach exactly
/// as for `run_instrumented`, so fault windows show up in the
/// artifacts.
///
/// # Panics
///
/// Panics if an artifact directory cannot be created or written.
pub fn run_instrumented_faulted<F: FaultPlan + Clone + Send>(
    cfg: &SystemConfig,
    spec: &WorkloadSpec,
    plan: &mut F,
) -> RunReport {
    let stem = artifact_stem(cfg, spec);
    run_instrumented_faulted_stemmed(cfg, spec, plan, &stem)
}

/// [`run_instrumented_faulted`] writing artifacts under an explicit
/// `stem` instead of the default [`artifact_stem`]. Sweeps that run the
/// *same* `(configuration, workload)` pair under several fault
/// scenarios (the `resilience` harness) append a scenario tag so the
/// scenarios don't overwrite each other's trace/metrics files — which
/// also makes those writes safe to run in parallel.
///
/// The uninstrumented path (neither `MCM_TRACE` nor `MCM_METRICS` set)
/// honours `MCM_SHARDS` (see [`shards`]): the simulation itself is
/// sharded across cores, with a bit-identical report at every shard
/// count. Probe-attached runs stay on the serial engine so artifact
/// event order is trivially canonical.
///
/// # Panics
///
/// Panics if an artifact directory cannot be created or written.
pub fn run_instrumented_faulted_stemmed<F: FaultPlan + Clone + Send>(
    cfg: &SystemConfig,
    spec: &WorkloadSpec,
    plan: &mut F,
    stem: &str,
) -> RunReport {
    let trace_dir = std::env::var_os("MCM_TRACE").map(PathBuf::from);
    let metrics_dir = std::env::var_os("MCM_METRICS").map(PathBuf::from);
    if trace_dir.is_none() && metrics_dir.is_none() {
        let (report, _) = Simulator::run_faulted_sharded(cfg, spec, &mut NullProbe, plan, shards());
        return report;
    }
    let mut probe = (
        trace_dir.as_ref().map(|_| ChromeTraceProbe::new()),
        metrics_dir
            .as_ref()
            .map(|_| MetricsProbe::new(metrics_bucket(), cfg.topology.sms_per_module)),
    );
    // Routed through the sharded entry point even though an active
    // probe always runs serially: the core layer then warns loudly
    // (and counts) when MCM_SHARDS>1 is being ignored, instead of the
    // harness silently dropping the knob.
    let (report, _) = Simulator::run_faulted_sharded(cfg, spec, &mut probe, plan, shards());
    if let (Some(dir), Some(trace)) = (&trace_dir, &mut probe.0) {
        std::fs::create_dir_all(dir).expect("create MCM_TRACE directory");
        let path = dir.join(format!("{stem}.trace.json"));
        trace.save(&path).expect("write Chrome trace");
    }
    if let (Some(dir), Some(metrics)) = (&metrics_dir, &probe.1) {
        std::fs::create_dir_all(dir).expect("create MCM_METRICS directory");
        let path = dir.join(format!("{stem}.metrics.csv"));
        metrics.save(&path).expect("write metrics CSV");
    }
    report
}

/// RAII guard that writes a snapshot of the global telemetry registry
/// when dropped, if `MCM_TELEMETRY=<path>` is set (JSON by default,
/// CSV when the path ends in `.csv`). Harness binaries construct one
/// at the top of `main`, so every exit path that unwinds or returns
/// flushes telemetry; binaries that call `std::process::exit` must
/// drop it explicitly first (`Drop` does not run past `exit`).
#[derive(Debug)]
pub struct TelemetryGuard {
    path: Option<PathBuf>,
    label: String,
}

/// Creates the process's [`TelemetryGuard`], labeling the snapshot
/// with the binary's file stem.
pub fn telemetry_guard() -> TelemetryGuard {
    let label = std::env::args()
        .next()
        .and_then(|a| {
            PathBuf::from(a)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "mcm".to_string());
    TelemetryGuard {
        path: std::env::var_os("MCM_TELEMETRY").map(PathBuf::from),
        label,
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        let Some(path) = &self.path else { return };
        let snap = mcm_telemetry::global().snapshot();
        let result = if path.extension().is_some_and(|e| e == "csv") {
            match path.parent() {
                Some(dir) if !dir.as_os_str().is_empty() => {
                    std::fs::create_dir_all(dir).and_then(|()| std::fs::write(path, snap.to_csv()))
                }
                _ => std::fs::write(path, snap.to_csv()),
            }
        } else {
            snap.save_json(path, &self.label)
        };
        if let Err(e) = result {
            // A telemetry sink failure must not fail the run.
            eprintln!(
                "mcm: warning: could not write MCM_TELEMETRY snapshot to {}: {e}",
                path.display()
            );
        }
    }
}

/// Geometric-mean speedup of `cfg` over `baseline` for the workloads of
/// one `category` within `suite` (or all categories when `None`).
/// Uncached runs execute in parallel across `MCM_JOBS` workers.
///
/// # Panics
///
/// Panics, naming the category, when the filter selects zero workloads
/// — the geometric mean of an empty set has no value, and a figure
/// printing one would silently report garbage.
pub fn geomean_speedup(
    memo: &mut Memo,
    suite: &[WorkloadSpec],
    cfg: &SystemConfig,
    baseline: &SystemConfig,
    category: Option<Category>,
) -> f64 {
    let selected: Vec<&WorkloadSpec> = suite
        .iter()
        .filter(|w| category.is_none_or(|c| w.category == c))
        .collect();
    assert!(
        !selected.is_empty(),
        "no workloads in the {}-entry suite match category {:?}; \
         geomean speedup is undefined",
        suite.len(),
        category
    );
    let pairs: Vec<(&SystemConfig, &WorkloadSpec)> = selected
        .iter()
        .flat_map(|w| [(cfg, *w), (baseline, *w)])
        .collect();
    memo.warm(&pairs);
    let speedups: Vec<f64> = selected
        .iter()
        .map(|w| {
            let r = memo.run(cfg, w);
            let b = memo.run(baseline, w);
            r.speedup_over(&b)
        })
        .collect();
    geomean(&speedups)
}

/// A plain-text table with right-aligned numeric columns, rendered the
/// way the paper's figure data would appear in a results log.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns: first column left-aligned, the
    /// rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        // `saturating_sub` guards the degenerate zero-column table,
        // which used to underflow here and abort the whole report.
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a ratio as the percentage-speedup notation the paper uses
/// ("+22.8%" / "-4.7%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

/// Formats a value with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders `value` as a proportional bar of at most `width` cells
/// against `max` (the poor terminal's bar chart). Zero, negative, and
/// non-finite inputs (an all-zero or poisoned row) render as an empty
/// bar rather than a garbage cast.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    // `!(max > 0.0)` also catches NaN, which `max <= 0.0` lets through:
    // a NaN max used to survive to the division, cast to 0 cells, and
    // then clamp up to a one-cell bar — a silently fabricated datum.
    if !max.is_finite() || !value.is_finite() || max <= 0.0 || value <= 0.0 || width == 0 {
        return String::new();
    }
    let cells = ((value / max) * width as f64).round() as usize;
    "#".repeat(cells.clamp(1, width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_workloads::suite;

    #[test]
    fn env_values_parse_and_unset_is_none() {
        assert_eq!(parse_env_value::<u32>("MCM_X", None), None);
        let v = std::ffi::OsString::from(" 42 ");
        assert_eq!(parse_env_value::<u32>("MCM_X", Some(&v)), Some(42));
    }

    #[test]
    #[should_panic(expected = "MCM_X must be a valid")]
    fn unparsable_env_values_panic_loudly() {
        let v = std::ffi::OsString::from("not-a-number");
        let _ = parse_env_value::<u32>("MCM_X", Some(&v));
    }

    /// Regression: `std::env::var(..).ok()` conflated "unset" with
    /// "set to non-Unicode bytes", so a knob holding invalid UTF-8
    /// silently fell back to its default instead of aborting.
    #[test]
    #[cfg(unix)]
    #[should_panic(expected = "MCM_X is set to non-Unicode bytes")]
    fn non_unicode_env_values_panic_instead_of_defaulting() {
        use std::os::unix::ffi::OsStrExt;
        let v = std::ffi::OsStr::from_bytes(b"0.\xff5");
        let _ = parse_env_value::<f64>("MCM_X", Some(v));
    }

    #[test]
    fn memo_caches_runs() {
        let mut memo = Memo::new(0.01);
        let cfg = SystemConfig::baseline_mcm();
        let spec = suite::by_name("CFD").unwrap();
        let a = memo.run(&cfg, &spec);
        let b = memo.run(&cfg, &spec);
        assert_eq!(a, b);
        assert_eq!(memo.cache.len(), 1);
    }

    #[test]
    fn memo_separates_same_name_different_params() {
        // Regression: the cache used to key on `cfg.name` alone, so a
        // tweaked config sharing a preset's name returned the preset's
        // stale report.
        let mut memo = Memo::new(0.01);
        let a = SystemConfig::baseline_mcm();
        let mut b = SystemConfig::baseline_mcm();
        b.topology.link_gbps /= 4.0;
        assert_eq!(a.name, b.name);
        let spec = suite::by_name("CFD").unwrap();
        let ra = memo.run(&a, &spec);
        let rb = memo.run(&b, &spec);
        assert_eq!(
            memo.cache.len(),
            2,
            "distinct configs must cache separately"
        );
        assert_ne!(
            ra.cycles, rb.cycles,
            "quartering link bandwidth must change the simulated run"
        );
    }

    #[test]
    fn sanitize_distinguishes_colliding_names() {
        // Regression: both of these used to sanitize to `4-GPM--FT--`
        // (modulo trailing dashes) and overwrite each other's
        // artifacts.
        let a = sanitize("4-GPM (FT)");
        let b = sanitize("4-GPM +FT");
        assert_ne!(a, b);
        assert!(a.starts_with("4-GPM-FT-"), "collapsed stem: {a}");
        // Stems stay filename-safe.
        for s in [&a, &b] {
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
    }

    #[test]
    fn artifact_stems_separate_same_name_configs() {
        let a = SystemConfig::baseline_mcm();
        let mut b = SystemConfig::baseline_mcm();
        b.sm.mlp_per_warp += 1;
        let spec = suite::by_name("CFD").unwrap();
        assert_ne!(artifact_stem(&a, &spec), artifact_stem(&b, &spec));
        assert_eq!(artifact_stem(&a, &spec), artifact_stem(&a, &spec));
    }

    #[test]
    fn warm_plans_unique_pairs_and_fills_the_cache() {
        let mut memo = Memo::new(0.01);
        let cfg = SystemConfig::baseline_mcm();
        let opt = SystemConfig::optimized_mcm();
        let w1 = suite::by_name("CFD").unwrap();
        let w2 = suite::by_name("Stream").unwrap();
        // Duplicates in the grid plan once.
        memo.warm_with_jobs(2, &[(&cfg, &w1), (&cfg, &w1), (&opt, &w2)]);
        assert_eq!(memo.cache.len(), 2);
        // Warm again: everything is a cache hit, nothing re-plans.
        memo.warm_with_jobs(2, &[(&cfg, &w1), (&opt, &w2)]);
        assert_eq!(memo.cache.len(), 2);
    }

    #[test]
    fn memo_stats_track_hits_misses_and_dedupe() {
        let mut memo = Memo::new(0.01);
        let cfg = SystemConfig::baseline_mcm();
        let w1 = suite::by_name("CFD").unwrap();
        let w2 = suite::by_name("Stream").unwrap();
        assert_eq!(memo.stats(), MemoStats::default());
        memo.run(&cfg, &w1); // miss
        memo.run(&cfg, &w1); // hit
        memo.warm_with_jobs(1, &[(&cfg, &w1), (&cfg, &w2), (&cfg, &w2)]);
        memo.run(&cfg, &w2); // hit (warm filled it)
        let s = memo.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.warm_requested, 3);
        assert_eq!(s.warm_planned, 1, "one cached + one duplicate skipped");
        assert_eq!(s.warm_deduped, 1, "the repeated w2 is an exact dedupe");
        assert_eq!(s.store_hits, 0, "no store attached");
    }

    #[test]
    fn run_grid_matches_serial_runs_in_grid_order() {
        let cfg = SystemConfig::baseline_mcm();
        let opt = SystemConfig::optimized_mcm();
        let w1 = suite::by_name("CFD").unwrap();
        let w2 = suite::by_name("Stream").unwrap();
        let pairs = [(&cfg, &w1), (&cfg, &w2), (&opt, &w1), (&opt, &w2)];

        let mut serial = Memo::new(0.01);
        let expect: Vec<RunReport> = pairs.iter().map(|(c, w)| serial.run(c, w)).collect();

        let mut parallel = Memo::new(0.01);
        let got = parallel.run_grid_with_jobs(3, &pairs);
        assert_eq!(got, expect);
    }

    #[test]
    fn run_suite_parallel_matches_run_suite() {
        let cfg = SystemConfig::baseline_mcm();
        let subset: Vec<WorkloadSpec> = ["CFD", "Stream", "Hotspot"]
            .iter()
            .map(|n| suite::by_name(n).unwrap())
            .collect();
        let mut a = Memo::new(0.01);
        let mut b = Memo::new(0.01);
        let pairs: Vec<(&SystemConfig, &WorkloadSpec)> = subset.iter().map(|w| (&cfg, w)).collect();
        b.warm_with_jobs(4, &pairs);
        assert_eq!(a.run_suite(&cfg, &subset), b.run_suite(&cfg, &subset));
    }

    #[test]
    #[should_panic(expected = "match category")]
    fn geomean_speedup_names_the_empty_category() {
        // A suite with no limited-parallelism workloads must fail loud,
        // not feed an empty slice to `geomean`.
        let mut memo = Memo::new(0.01);
        let suite: Vec<WorkloadSpec> = vec![suite::by_name("CFD").unwrap()];
        let cfg = SystemConfig::optimized_mcm();
        let base = SystemConfig::baseline_mcm();
        geomean_speedup(
            &mut memo,
            &suite,
            &cfg,
            &base,
            Some(Category::LimitedParallelism),
        );
    }

    #[test]
    fn zero_column_table_renders_without_underflow() {
        // Regression: `2 * (cols - 1)` underflowed for an empty header.
        let t = TextTable::new(Vec::<String>::new());
        let s = t.render();
        assert!(s.contains('\n'));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer-name", "12.34"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12.34"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(100.0, 10.0, 10), "##########");
        assert_eq!(bar(0.01, 10.0, 10), "#");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(-1.0, 10.0, 10), "");
    }

    /// Regression: a NaN `max` (e.g. 0/0 from an all-zero row upstream)
    /// slipped past the `max <= 0.0` guard, the NaN quotient cast to 0
    /// cells, and the clamp then drew a one-cell bar out of nothing.
    /// Non-finite inputs must render empty, like the other degenerate
    /// rows.
    #[test]
    fn bar_rejects_non_finite_inputs() {
        assert_eq!(bar(1.0, f64::NAN, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
        assert_eq!(bar(1.0, f64::INFINITY, 10), "");
        assert_eq!(bar(f64::INFINITY, 10.0, 10), "");
        assert_eq!(bar(1.0, f64::NEG_INFINITY, 10), "");
        assert_eq!(bar(5.0, 10.0, 0), "");
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(1.228), "+22.8%");
        assert_eq!(pct(0.953), "-4.7%");
    }

    #[test]
    fn parse_checked_accepts_valid_values() {
        assert_eq!(parse_checked::<f64>("MCM_SCALE", "0.25"), 0.25);
        assert_eq!(parse_checked::<u64>("MCM_FAULT_SEED", " 42 "), 42);
    }

    #[test]
    #[should_panic(expected = "MCM_SCALE must be a valid")]
    fn parse_checked_names_the_variable_and_value() {
        parse_checked::<f64>("MCM_SCALE", "fast");
    }

    #[test]
    fn fault_knobs_default_sanely() {
        // The harness process does not set the fault variables, so the
        // defaults apply: no injection, reproducible seed.
        assert_eq!(fault_rate(), 0.0);
        assert_eq!(fault_seed(), FaultConfig::default().seed);
    }

    #[test]
    fn store_backed_memo_warm_starts_across_instances() {
        let dir = mcm_testkit::tempdir::TempDir::new("memo-store");
        let cfg = SystemConfig::baseline_mcm();
        let spec = suite::by_name("CFD").unwrap();
        // First process: simulates and persists.
        let mut cold = Memo::with_store(0.01, Store::open(dir.path()).unwrap());
        let r1 = cold.run(&cfg, &spec);
        assert_eq!(cold.stats().misses, 1);
        assert_eq!(cold.store().unwrap().stats().puts, 1);
        drop(cold);
        // Second "process": same knobs, fresh Memo — served from disk,
        // bit-exact, zero simulations.
        let mut warm = Memo::with_store(0.01, Store::open(dir.path()).unwrap());
        let r2 = warm.run(&cfg, &spec);
        assert_eq!(r1, r2);
        assert_eq!(warm.stats().misses, 0, "no simulation on the warm path");
        assert_eq!(warm.stats().store_hits, 1);
    }

    #[test]
    fn store_key_separates_scales() {
        // The same pair at a different MCM_SCALE must be a different
        // store key: a warm start must never serve a result computed
        // at another scale.
        let dir = mcm_testkit::tempdir::TempDir::new("memo-scale");
        let cfg = SystemConfig::baseline_mcm();
        let spec = suite::by_name("CFD").unwrap();
        let mut a = Memo::with_store(0.01, Store::open(dir.path()).unwrap());
        let ra = a.run(&cfg, &spec);
        drop(a);
        let mut b = Memo::with_store(0.02, Store::open(dir.path()).unwrap());
        let rb = b.run(&cfg, &spec);
        assert_eq!(b.stats().store_hits, 0, "different scale must miss");
        assert_eq!(b.stats().misses, 1);
        assert_ne!(ra.cycles, rb.cycles);
    }

    #[test]
    fn warm_persists_from_workers_and_warm_starts() {
        let dir = mcm_testkit::tempdir::TempDir::new("memo-warm-store");
        let cfg = SystemConfig::baseline_mcm();
        let opt = SystemConfig::optimized_mcm();
        let w1 = suite::by_name("CFD").unwrap();
        let w2 = suite::by_name("Stream").unwrap();
        let pairs = [(&cfg, &w1), (&opt, &w1), (&cfg, &w2), (&opt, &w2)];
        let mut cold = Memo::with_store(0.01, Store::open(dir.path()).unwrap());
        cold.warm_with_jobs(3, &pairs);
        assert_eq!(cold.store().unwrap().stats().puts, 4);
        let expect: Vec<RunReport> = pairs.iter().map(|(c, w)| cold.run(c, w)).collect();
        drop(cold);
        let mut warm = Memo::with_store(0.01, Store::open(dir.path()).unwrap());
        warm.warm_with_jobs(3, &pairs);
        assert_eq!(warm.stats().warm_planned, 0, "everything on disk");
        assert_eq!(warm.stats().store_hits, 4);
        let got: Vec<RunReport> = pairs.iter().map(|(c, w)| warm.run(c, w)).collect();
        assert_eq!(got, expect, "warm-started reports must be bit-exact");
    }

    #[test]
    fn supervised_warm_quarantines_named_pairs_identically_at_any_job_count() {
        let cfg = SystemConfig::baseline_mcm();
        let opt = SystemConfig::optimized_mcm();
        let w1 = suite::by_name("CFD").unwrap();
        let w2 = suite::by_name("Stream").unwrap();
        let pairs = [(&cfg, &w1), (&opt, &w1), (&cfg, &w2), (&opt, &w2)];
        let check = |jobs: usize| -> Vec<PairFailure> {
            let mut memo = Memo::new(0.01);
            memo.warm_supervised_runner(jobs, 1, &pairs, |cfg, scaled| {
                assert!(
                    !(cfg.name == opt.name && scaled.name == "CFD"),
                    "injected fault"
                );
                run_instrumented(cfg, scaled)
            })
        };
        let serial = check(1);
        let parallel = check(4);
        assert_eq!(serial, parallel, "report must not depend on job count");
        assert_eq!(serial.len(), 1);
        assert_eq!(serial[0].config, opt.name);
        assert_eq!(serial[0].workload, "CFD");
        assert_eq!(serial[0].failure.attempts, 2);
        assert!(serial[0].failure.message.contains("injected fault"));
        assert!(serial[0]
            .to_string()
            .starts_with(&format!("QUARANTINED ({:?}, \"CFD\")", opt.name)));
    }

    #[test]
    fn supervised_warm_completes_and_caches_healthy_pairs() {
        let cfg = SystemConfig::baseline_mcm();
        let w1 = suite::by_name("CFD").unwrap();
        let w2 = suite::by_name("Stream").unwrap();
        let pairs = [(&cfg, &w1), (&cfg, &w2)];
        let mut memo = Memo::new(0.01);
        let failures = memo.warm_supervised_runner(2, 0, &pairs, |cfg, scaled| {
            assert!(scaled.name != "Stream", "bad workload");
            run_instrumented(cfg, scaled)
        });
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].workload, "Stream");
        // The healthy pair is cached; the quarantined one is not and
        // re-attempts (successfully, without the injected fault) on use.
        assert_eq!(memo.stats().warm_planned, 2);
        memo.run(&cfg, &w1);
        assert_eq!(memo.stats().hits, 1);
        memo.run(&cfg, &w2);
        assert_eq!(memo.stats().misses, 1, "quarantined pair re-simulates");
    }

    #[test]
    fn unsupervised_warm_panics_name_the_pair() {
        let cfg = SystemConfig::baseline_mcm();
        let w1 = suite::by_name("CFD").unwrap();
        let mut memo = Memo::new(0.01);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            memo.warm_with_jobs_runner(1, &[(&cfg, &w1)], |_, _| -> RunReport {
                panic!("sim exploded")
            });
        }))
        .expect_err("warm must propagate the panic");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("grid worker panicked"), "{msg:?}");
        assert!(msg.contains(&format!("{:?}", cfg.name)), "{msg:?}");
        assert!(msg.contains("\"CFD\""), "{msg:?}");
        assert!(msg.contains("sim exploded"), "{msg:?}");
    }
}
