//! `mcm-serve`: the long-running sweep service in front of the result
//! store.
//!
//! Design-space exploration is query-heavy and highly repetitive: most
//! sweep requests overlap with requests already answered or currently
//! running. Forking a fresh harness process per query re-pays process
//! startup, store recovery, and — worst of all — can race a concurrent
//! query into simulating the same `(configuration, workload)` pair
//! twice. This crate turns the store into a *service* with one
//! invariant: **each unique pair is simulated once, ever.**
//!
//! * [`service::SweepService`] listens on localhost TCP and speaks a
//!   line-oriented JSON protocol ([`protocol`]) — hand-rolled on
//!   [`mcm_telemetry::json::Json`], hermetic like the rest of the
//!   workspace.
//! * A sweep request names a config grid and a workload selection. The
//!   service resolves every pair through the same fingerprinting the
//!   bench harness's `Memo` uses, answers cache/store **hits**
//!   immediately, **subscribes** duplicate in-flight pairs to the
//!   first requester's run (never resubmitting), and schedules true
//!   misses on an [`mcm_exec::service::ServicePool`].
//! * The pool is bounded (admission control: an oversized request is
//!   rejected whole, loudly) and fair (round-robin across client
//!   connections: a giant grid cannot starve a one-pair query).
//! * Results stream back per-pair as they finish and persist to the
//!   store as they complete, so a killed server warm-starts: restart
//!   it over the same `MCM_STORE` directory and the whole grid is
//!   hits.
//!
//! The [`Backend`] trait is the seam between the protocol machinery
//! and the simulator: production uses the bench harness's memoizing
//! backend (`mcm-bench`), tests use scripted backends. A backend
//! returns *rendered* report strings ([`protocol::render_report`] is
//! the canonical rendering) so the bytes a client receives are
//! identical regardless of which path — hit, run, or shared
//! subscription — produced them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod protocol;
pub mod service;

/// The resolved identity of one `(configuration, workload)` pair: the
/// persistent-store fingerprint plus the human names the client used.
/// The fingerprint is the dedupe and store key; the names ride along
/// for responses and error messages.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// The store fingerprint (folds config, workload, scale, and fault
    /// knobs — see `mcm_bench::harness::pair_fingerprint`).
    pub fingerprint: u64,
    /// The configuration name as requested.
    pub config: String,
    /// The workload name as requested.
    pub workload: String,
}

/// What the service needs from a simulator: resolve names to keys,
/// look results up, and produce them. Implementations must be safe to
/// call from many threads at once — `lookup` runs under the service's
/// dedupe registry lock and must be cheap; `run` executes on pool
/// workers and may take arbitrarily long.
pub trait Backend: Send + Sync {
    /// Resolves `(config, workload)` names to a [`PairKey`], or an
    /// error message naming what was unknown.
    ///
    /// # Errors
    ///
    /// A human-readable message when either name does not resolve; the
    /// service rejects the whole request with it.
    fn resolve(&self, config: &str, workload: &str) -> Result<PairKey, String>;

    /// The already-rendered report for `key`, if one exists (memory or
    /// persistent store). Must not simulate.
    fn lookup(&self, key: &PairKey) -> Option<String>;

    /// Simulates `key`'s pair, persists the result, and returns the
    /// rendered report. Called at most once per unique key per process
    /// lifetime — the service's dedupe registry guarantees it.
    fn run(&self, key: &PairKey) -> String;

    /// Every workload name this backend can run, in suite order; the
    /// service expands the `"*"` selection through it.
    fn all_workloads(&self) -> Vec<String>;
}
