//! Extension ablation: L1.5 allocation policy incl. set-dueling
//! adaptive admission (§5.1.2 extended). Honors `MCM_SCALE`.
fn main() {
    let _telemetry = mcm_bench::harness::telemetry_guard();
    let mut memo = mcm_bench::harness::Memo::from_env();
    println!("{}", mcm_bench::figures::ablation_alloc_policy(&mut memo));
}
