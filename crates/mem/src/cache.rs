//! Set-associative caches with LRU replacement, allocation filters, and
//! fill-pending (MSHR-style) coalescing.

use std::fmt;

use mcm_engine::stats::{Counter, Ratio};
use mcm_engine::{Cycle, Resource};

use crate::addr::{AccessKind, LineAddr, Locality};

/// How the cache handles stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Stores propagate downstream on every write; lines are never dirty.
    /// The paper's L1 and L1.5 are write-through to support the
    /// software-based coherence scheme (§5.4, footnote 4).
    WriteThrough,
    /// Stores are absorbed; dirty lines are written back on eviction.
    /// The paper's memory-side L2 is write-back (§5.4).
    WriteBack,
}

/// Which accesses are allowed to allocate lines — the mechanism behind
/// the GPM-side L1.5 cache's *remote-only* policy (§5.1.2: "the best
/// allocation policy for the L1.5 cache is to only cache remote
/// accesses").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocFilter {
    /// Any miss may allocate.
    All,
    /// Only accesses to remote DRAM partitions allocate; local accesses
    /// bypass the cache entirely (they are not even looked up, per
    /// §5.1.1: "all local memory accesses will bypass the L1.5 cache").
    RemoteOnly,
    /// Only accesses to the local DRAM partition allocate (used by the
    /// rebalanced L2 when an L1.5 is present).
    LocalOnly,
    /// Set-dueling between [`AllocFilter::RemoteOnly`] and
    /// [`AllocFilter::All`]: a sparse group of leader sets is pinned to
    /// each static policy, their miss streams drive a saturating
    /// selector, and all other sets follow the currently winning policy
    /// — the DIP mechanism applied to the admission question §5.1.2
    /// settles statically. An extension beyond the paper.
    Adaptive,
}

impl AllocFilter {
    /// Whether an access with the given locality participates in this
    /// cache at all, for the static policies.
    ///
    /// # Panics
    ///
    /// Panics for [`AllocFilter::Adaptive`] — admission then depends on
    /// the set and selector state, so it must be asked through
    /// [`SetAssocCache::access`].
    #[inline]
    pub const fn admits(self, locality: Locality) -> bool {
        match self {
            AllocFilter::All => true,
            AllocFilter::RemoteOnly => locality.is_remote(),
            AllocFilter::LocalOnly => !locality.is_remote(),
            AllocFilter::Adaptive => {
                panic!("adaptive admission is per-set; ask the cache")
            }
        }
    }
}

/// Distance between leader sets in the adaptive filter: one in
/// `LEADER_STRIDE` sets leads for remote-only, the next for
/// cache-all.
const LEADER_STRIDE: u64 = 32;
/// Saturation bound of the policy selector.
const PSEL_MAX: i32 = 512;

/// Static configuration of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Diagnostic name ("L1", "L1.5", "L2-MP0", ...).
    pub name: &'static str,
    /// Total capacity in bytes; zero disables the cache (every access
    /// misses and nothing allocates).
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Tag + data access latency paid by hits.
    pub latency: Cycle,
    /// Latency paid by misses before the request continues downstream.
    /// Usually equal to `latency`; large side caches whose tag probe
    /// overlaps downstream routing (the GPM-side L1.5) set it lower.
    pub tag_latency: Cycle,
    /// Aggregate bank bandwidth in bytes/cycle. Caches are banked to
    /// saturate DRAM (§4), so this is generous by default.
    pub bandwidth: f64,
    /// Store handling.
    pub write_policy: WritePolicy,
    /// Allocation filter.
    pub alloc_filter: AllocFilter,
}

impl CacheConfig {
    /// A conventionally configured cache of `size_bytes` with 128-byte
    /// lines, 16 ways, 20-cycle latency, ample bandwidth, write-back,
    /// and no allocation filter.
    pub fn new(name: &'static str, size_bytes: u64) -> Self {
        CacheConfig {
            name,
            size_bytes,
            line_bytes: crate::addr::LINE_BYTES,
            ways: 16,
            latency: Cycle::new(20),
            tag_latency: Cycle::new(20),
            bandwidth: 1024.0,
            write_policy: WritePolicy::WriteBack,
            alloc_filter: AllocFilter::All,
        }
    }

    /// Number of sets implied by the geometry (at least 1 for an enabled
    /// cache).
    pub fn sets(&self) -> u64 {
        if self.size_bytes == 0 {
            0
        } else {
            (self.size_bytes / (self.line_bytes * u64::from(self.ways))).max(1)
        }
    }
}

/// The result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present. `ready_at` accounts for the access latency
    /// and, for a line still being filled, the pending fill time — which
    /// is how concurrent misses to the same line coalesce (MSHR
    /// behaviour).
    Hit {
        /// When the data is available to the requester.
        ready_at: Cycle,
    },
    /// The line was absent. If `allocate` is true the caller must fetch
    /// the line downstream and then call [`SetAssocCache::fill`];
    /// otherwise the access bypasses this level.
    Miss {
        /// Whether this access should fill the cache on return.
        allocate: bool,
        /// Earliest time the downstream request can depart this level.
        ready_at: Cycle,
    },
    /// The access does not participate in this cache at all (allocation
    /// filter), costing no latency here.
    Bypass,
}

/// A line evicted by a fill; `dirty` lines owe a writeback downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Whether the line was modified and must be written back.
    pub dirty: bool,
}

/// Aggregated statistics for one cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Hit/total ratio over demand accesses (excludes bypasses).
    pub accesses: Ratio,
    /// Lines evicted to make room for fills.
    pub evictions: Counter,
    /// Dirty evictions (write-back traffic generated).
    pub writebacks: Counter,
    /// Lines filled.
    pub fills: Counter,
    /// Accesses that bypassed the cache due to the allocation filter.
    pub bypasses: Counter,
    /// Flush operations (kernel-boundary invalidations).
    pub flushes: Counter,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// When the in-flight fill for this line lands (MSHR coalescing:
    /// hits on a pending line wait until it is ready).
    ready: Cycle,
    last_use: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    ready: Cycle::ZERO,
    last_use: 0,
};

/// A set-associative, LRU cache with write-through/write-back policies,
/// allocation filtering, and MSHR-style fill-pending coalescing.
///
/// The cache is a *timing* model over real tag state: `access` both
/// mutates the tag arrays and returns when the data is available, using
/// a bank-bandwidth [`Resource`] plus the configured latency.
///
/// # Example
///
/// ```
/// use mcm_engine::Cycle;
/// use mcm_mem::addr::{AccessKind, LineAddr, Locality};
/// use mcm_mem::cache::{CacheConfig, CacheOutcome, SetAssocCache};
///
/// let mut l2 = SetAssocCache::new(CacheConfig::new("L2", 1 << 20));
/// let line = LineAddr::new(42);
/// let now = Cycle::ZERO;
///
/// // Cold miss: the caller fetches downstream, then fills.
/// let CacheOutcome::Miss { allocate: true, .. } =
///     l2.access(now, line, AccessKind::Read, Locality::Local)
/// else { panic!("expected a cold miss") };
/// l2.fill(line, Cycle::new(120), false);
///
/// // Second access hits.
/// let CacheOutcome::Hit { .. } =
///     l2.access(Cycle::new(200), line, AccessKind::Read, Locality::Local)
/// else { panic!("expected a hit") };
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Line>,
    n_sets: u64,
    ways: usize,
    ports: Resource,
    use_clock: u64,
    /// Set-dueling selector for [`AllocFilter::Adaptive`]: positive
    /// means cache-all is winning, negative remote-only.
    psel: i32,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds a cache from its configuration. A zero-sized configuration
    /// yields a disabled cache on which every access is a non-allocating
    /// miss.
    pub fn new(config: CacheConfig) -> Self {
        let n_sets = config.sets();
        let ways = if config.size_bytes == 0 {
            0
        } else {
            // For tiny caches the configured associativity may exceed
            // capacity; clamp so geometry stays consistent.
            (config.size_bytes / config.line_bytes)
                .min(u64::from(config.ways))
                .max(1) as usize
        };
        let ports = Resource::new(config.name, config.bandwidth);
        SetAssocCache {
            sets: vec![INVALID; (n_sets as usize) * ways],
            n_sets,
            ways,
            ports,
            use_clock: 0,
            psel: 0,
            config,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Whether the cache has zero capacity.
    pub fn is_disabled(&self) -> bool {
        self.config.size_bytes == 0
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// `true` when stores must propagate downstream on every write.
    pub fn is_write_through(&self) -> bool {
        self.config.write_policy == WritePolicy::WriteThrough
    }

    /// Hash the line index into a set rather than using the low bits
    /// directly: the machine interleaves lines across partitions by the
    /// same low bits (`line % modules`), so a modulo index would alias —
    /// each partition's cache would only ever populate 1/Nth of its
    /// sets. Real GPUs XOR-hash their index bits for the same reason.
    #[inline]
    fn set_of(&self, line: LineAddr) -> u64 {
        let mut z = line.index().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        z % self.n_sets
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let start = self.set_of(line) as usize * self.ways;
        start..start + self.ways
    }

    /// The admission policy in force for `line` under the adaptive
    /// filter, and whether this is a leader set whose outcome should
    /// train the selector.
    fn adaptive_policy(&self, line: LineAddr) -> (AllocFilter, Option<AllocFilter>) {
        let set = self.set_of(line);
        match set % LEADER_STRIDE {
            0 => (AllocFilter::RemoteOnly, Some(AllocFilter::RemoteOnly)),
            1 => (AllocFilter::All, Some(AllocFilter::All)),
            _ if self.psel >= 0 => (AllocFilter::All, None),
            _ => (AllocFilter::RemoteOnly, None),
        }
    }

    /// Trains the selector on a leader-set miss (a bypass of a local
    /// access counts as a miss the other policy might have avoided).
    fn train_psel(&mut self, leader: AllocFilter) {
        match leader {
            // The remote-only leader missed: evidence for cache-all.
            AllocFilter::RemoteOnly => self.psel = (self.psel + 1).min(PSEL_MAX),
            // The cache-all leader missed: evidence for remote-only.
            AllocFilter::All => self.psel = (self.psel - 1).max(-PSEL_MAX),
            _ => {}
        }
    }

    /// Performs a demand access at `now`.
    ///
    /// Accesses rejected by the allocation filter return
    /// [`CacheOutcome::Bypass`] without touching tag state or consuming
    /// bank bandwidth.
    #[inline]
    pub fn access(
        &mut self,
        now: Cycle,
        line: LineAddr,
        kind: AccessKind,
        locality: Locality,
    ) -> CacheOutcome {
        let (effective, leader) = if self.config.alloc_filter == AllocFilter::Adaptive {
            self.adaptive_policy(line)
        } else {
            (self.config.alloc_filter, None)
        };
        if !effective.admits(locality) {
            self.stats.bypasses.inc();
            if let Some(l) = leader {
                // A bypassed access is a guaranteed miss under this
                // leader's policy.
                self.train_psel(l);
            }
            return CacheOutcome::Bypass;
        }
        if self.is_disabled() {
            self.stats.accesses.record(false);
            return CacheOutcome::Miss {
                allocate: false,
                ready_at: now,
            };
        }
        let port_done = self.ports.service(now, self.config.line_bytes);
        let hit_ready = port_done.max(now + self.config.latency);
        let miss_ready = port_done.max(now + self.config.tag_latency);
        self.use_clock += 1;
        let clock = self.use_clock;
        let tag = line.index();
        let write_back = self.config.write_policy == WritePolicy::WriteBack;
        let range = self.set_range(line);
        for way in &mut self.sets[range] {
            if way.valid && way.tag == tag {
                way.last_use = clock;
                if kind.is_write() && write_back {
                    way.dirty = true;
                }
                self.stats.accesses.record(true);
                return CacheOutcome::Hit {
                    ready_at: hit_ready.max(way.ready),
                };
            }
        }
        self.stats.accesses.record(false);
        if let Some(l) = leader {
            self.train_psel(l);
        }
        // Write misses allocate only under write-back (fetch-on-write);
        // write-through caches use write-around for stores.
        let allocate = !kind.is_write() || write_back;
        CacheOutcome::Miss {
            allocate,
            ready_at: miss_ready,
        }
    }

    /// Like [`SetAssocCache::access`], additionally reporting the
    /// hit/miss decision to `probe` under this cache's configured name
    /// and the caller-chosen `unit` index (SM for private caches,
    /// module for shared ones).
    ///
    /// Bypasses and disabled-cache accesses never touch the tag array,
    /// carry no hit-rate signal, and are not reported. When `P` is the
    /// no-op probe this compiles down to a plain `access` call.
    pub fn access_probed<P: mcm_probe::Probe>(
        &mut self,
        now: Cycle,
        line: LineAddr,
        kind: AccessKind,
        locality: Locality,
        unit: u32,
        probe: &mut P,
    ) -> CacheOutcome {
        let outcome = self.access(now, line, kind, locality);
        if P::ACTIVE && !self.is_disabled() {
            match outcome {
                CacheOutcome::Hit { .. } => probe.cache_access(self.config.name, unit, now, true),
                CacheOutcome::Miss { .. } => probe.cache_access(self.config.name, unit, now, false),
                CacheOutcome::Bypass => {}
            }
        }
        outcome
    }

    /// Installs `line`, which becomes available at `ready`; returns the
    /// eviction performed to make room, if any.
    ///
    /// `dirty` marks the line modified on arrival (a write-back cache
    /// filling for a store).
    ///
    /// Filling a disabled cache is a no-op returning `None`.
    pub fn fill(&mut self, line: LineAddr, ready: Cycle, dirty: bool) -> Option<Eviction> {
        if self.is_disabled() {
            return None;
        }
        self.use_clock += 1;
        let clock = self.use_clock;
        let tag = line.index();
        let base = self.set_of(line) as usize * self.ways;
        // Already present (e.g. racing fills): refresh. The line's data
        // is usable as soon as the *first* fill lands — a second
        // in-flight fill must not push availability back out, so keep
        // the earlier ready time.
        if let Some(way) = self.sets[base..base + self.ways]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.ready = way.ready.min(ready);
            way.dirty |= dirty;
            way.last_use = clock;
            return None;
        }
        self.stats.fills.inc();
        let set = &mut self.sets[base..base + self.ways];
        let victim = match set.iter_mut().find(|w| !w.valid) {
            Some(w) => w,
            None => set
                .iter_mut()
                .min_by_key(|w| w.last_use)
                .expect("cache sets are never zero-way"),
        };
        let evicted = if victim.valid {
            self.stats.evictions.inc();
            if victim.dirty {
                self.stats.writebacks.inc();
            }
            Some(Eviction {
                line: LineAddr::new(victim.tag),
                dirty: victim.dirty,
            })
        } else {
            None
        };
        *victim = Line {
            tag,
            valid: true,
            dirty,
            ready,
            last_use: clock,
        };
        evicted
    }

    /// Whether `line` is currently resident (testing/diagnostics; does
    /// not update LRU or stats).
    pub fn contains(&self, line: LineAddr) -> bool {
        if self.is_disabled() {
            return false;
        }
        let tag = line.index();
        self.sets[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Number of currently valid lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }

    /// Invalidates the entire cache (the software-coherence kernel
    /// boundary flush of §5.1.1), returning the number of dirty lines
    /// discarded — which the caller turns into write-back traffic for
    /// write-back caches.
    pub fn flush(&mut self) -> u64 {
        if self.is_disabled() {
            return 0;
        }
        self.stats.flushes.inc();
        let mut dirty = 0;
        for way in &mut self.sets {
            if way.valid && way.dirty {
                dirty += 1;
            }
            *way = INVALID;
        }
        dirty
    }

    /// Bytes of traffic one line transfer represents at this level.
    pub fn line_bytes(&self) -> u64 {
        self.config.line_bytes
    }
}

impl fmt::Display for SetAssocCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} KiB, {}-way, {} sets, hits {}",
            self.config.name,
            self.config.size_bytes / 1024,
            self.ways,
            self.n_sets,
            self.stats.accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(ways: u32, sets: u64) -> SetAssocCache {
        let mut cfg = CacheConfig::new("t", ways as u64 * sets * 128);
        cfg.ways = ways;
        cfg.latency = Cycle::new(4);
        cfg.tag_latency = Cycle::new(4);
        SetAssocCache::new(cfg)
    }

    fn read(c: &mut SetAssocCache, at: u64, line: u64) -> CacheOutcome {
        c.access(
            Cycle::new(at),
            LineAddr::new(line),
            AccessKind::Read,
            Locality::Local,
        )
    }

    #[test]
    fn probed_access_reports_hits_and_misses_not_bypasses() {
        #[derive(Default)]
        struct Log(Vec<(&'static str, u32, bool)>);
        impl mcm_probe::Probe for Log {
            fn cache_access(&mut self, cache: &'static str, unit: u32, _now: Cycle, hit: bool) {
                self.0.push((cache, unit, hit));
            }
        }
        let mut log = Log::default();
        let mut c = small(4, 16);
        let line = LineAddr::new(7);
        c.access_probed(
            Cycle::ZERO,
            line,
            AccessKind::Read,
            Locality::Local,
            3,
            &mut log,
        );
        c.fill(line, Cycle::ZERO, false);
        c.access_probed(
            Cycle::new(10),
            line,
            AccessKind::Read,
            Locality::Local,
            3,
            &mut log,
        );
        assert_eq!(log.0, vec![("t", 3, false), ("t", 3, true)]);

        // A filter-rejected access never touches the tags and stays
        // invisible to the probe.
        let mut cfg = CacheConfig::new("ro", 4 * 16 * 128);
        cfg.alloc_filter = AllocFilter::RemoteOnly;
        let mut ro = SetAssocCache::new(cfg);
        let out = ro.access_probed(
            Cycle::ZERO,
            line,
            AccessKind::Read,
            Locality::Local,
            0,
            &mut log,
        );
        assert!(matches!(out, CacheOutcome::Bypass));
        assert_eq!(log.0.len(), 2);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(4, 16);
        match read(&mut c, 0, 7) {
            CacheOutcome::Miss { allocate: true, .. } => {}
            other => panic!("expected allocating miss, got {other:?}"),
        }
        c.fill(LineAddr::new(7), Cycle::new(100), false);
        match read(&mut c, 200, 7) {
            CacheOutcome::Hit { ready_at } => assert_eq!(ready_at, Cycle::new(204)),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().accesses.hits(), 1);
        assert_eq!(c.stats().accesses.total(), 2);
    }

    #[test]
    fn pending_fill_coalesces() {
        let mut c = small(4, 16);
        read(&mut c, 0, 9);
        c.fill(LineAddr::new(9), Cycle::new(500), false);
        // A hit at t=10 on the pending line waits for the fill.
        match read(&mut c, 10, 9) {
            CacheOutcome::Hit { ready_at } => assert_eq!(ready_at, Cycle::new(500)),
            other => panic!("expected pending hit, got {other:?}"),
        }
        // After the fill lands, latency dominates.
        match read(&mut c, 600, 9) {
            CacheOutcome::Hit { ready_at } => assert_eq!(ready_at, Cycle::new(604)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways.
        let mut c = small(2, 1);
        c.fill(LineAddr::new(1), Cycle::ZERO, false);
        c.fill(LineAddr::new(2), Cycle::ZERO, false);
        read(&mut c, 10, 1); // 1 is now MRU
        let ev = c.fill(LineAddr::new(3), Cycle::ZERO, false).unwrap();
        assert_eq!(ev.line, LineAddr::new(2));
        assert!(c.contains(LineAddr::new(1)));
        assert!(c.contains(LineAddr::new(3)));
        assert!(!c.contains(LineAddr::new(2)));
    }

    #[test]
    fn writeback_cache_marks_dirty_and_writes_back() {
        let mut c = small(1, 1);
        c.fill(LineAddr::new(5), Cycle::ZERO, false);
        c.access(
            Cycle::new(1),
            LineAddr::new(5),
            AccessKind::Write,
            Locality::Local,
        );
        let ev = c.fill(LineAddr::new(6), Cycle::ZERO, false).unwrap();
        assert!(ev.dirty, "written line must be evicted dirty");
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn write_through_never_dirties_and_write_misses_do_not_allocate() {
        let mut cfg = CacheConfig::new("wt", 16 * 128);
        cfg.write_policy = WritePolicy::WriteThrough;
        cfg.ways = 1;
        let mut c = SetAssocCache::new(cfg);
        // Write miss: no allocation requested.
        match c.access(
            Cycle::ZERO,
            LineAddr::new(1),
            AccessKind::Write,
            Locality::Local,
        ) {
            CacheOutcome::Miss { allocate, .. } => assert!(!allocate),
            other => panic!("expected miss, got {other:?}"),
        }
        // Write hit: line stays clean.
        c.fill(LineAddr::new(2), Cycle::ZERO, false);
        c.access(
            Cycle::ZERO,
            LineAddr::new(2),
            AccessKind::Write,
            Locality::Local,
        );
        assert_eq!(c.flush(), 0, "write-through cache has no dirty lines");
    }

    #[test]
    fn remote_only_filter_bypasses_local() {
        let mut cfg = CacheConfig::new("l15", 16 * 128);
        cfg.alloc_filter = AllocFilter::RemoteOnly;
        let mut c = SetAssocCache::new(cfg);
        assert_eq!(
            c.access(
                Cycle::ZERO,
                LineAddr::new(1),
                AccessKind::Read,
                Locality::Local
            ),
            CacheOutcome::Bypass
        );
        assert_eq!(c.stats().bypasses.get(), 1);
        assert_eq!(c.stats().accesses.total(), 0);
        // Remote accesses participate normally.
        match c.access(
            Cycle::ZERO,
            LineAddr::new(1),
            AccessKind::Read,
            Locality::Remote,
        ) {
            CacheOutcome::Miss { allocate: true, .. } => {}
            other => panic!("expected allocating miss, got {other:?}"),
        }
    }

    #[test]
    fn disabled_cache_misses_everything() {
        let mut c = SetAssocCache::new(CacheConfig::new("off", 0));
        assert!(c.is_disabled());
        match read(&mut c, 0, 3) {
            CacheOutcome::Miss {
                allocate: false,
                ready_at,
            } => assert_eq!(ready_at, Cycle::ZERO),
            other => panic!("expected non-allocating miss, got {other:?}"),
        }
        assert_eq!(c.fill(LineAddr::new(3), Cycle::ZERO, false), None);
        assert!(!c.contains(LineAddr::new(3)));
    }

    #[test]
    fn flush_invalidates_and_counts_dirty() {
        let mut c = small(4, 4);
        c.fill(LineAddr::new(1), Cycle::ZERO, true);
        c.fill(LineAddr::new(2), Cycle::ZERO, false);
        assert_eq!(c.resident_lines(), 2);
        assert_eq!(c.flush(), 1);
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.contains(LineAddr::new(1)));
        assert_eq!(c.stats().flushes.get(), 1);
    }

    #[test]
    fn duplicate_fill_refreshes_not_duplicates() {
        let mut c = small(2, 1);
        c.fill(LineAddr::new(1), Cycle::new(10), false);
        c.fill(LineAddr::new(1), Cycle::new(5), true);
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.stats().fills.get(), 1);
        // Dirty bit sticks from the second fill.
        let ev1 = c.fill(LineAddr::new(2), Cycle::ZERO, false);
        assert!(ev1.is_none(), "second way was free");
        let ev2 = c.fill(LineAddr::new(3), Cycle::ZERO, false).unwrap();
        assert_eq!(ev2.line, LineAddr::new(1));
        assert!(ev2.dirty);
    }

    #[test]
    fn racing_fills_keep_the_earlier_ready_time() {
        // Two in-flight fills for one line resolve with different data-
        // ready times (e.g. an L1.5 fill racing a second miss's fill).
        // The line is usable the moment the *earlier* data lands; a
        // later-resolving duplicate must not push availability back.
        // Regression: `fill` used to take `way.ready.max(ready)`,
        // delaying already-delivered data.
        for order in [[100u64, 50], [50, 100]] {
            let mut c = small(2, 1);
            c.fill(LineAddr::new(7), Cycle::new(order[0]), false);
            c.fill(LineAddr::new(7), Cycle::new(order[1]), false);
            match read(&mut c, 0, 7) {
                CacheOutcome::Hit { ready_at } => assert_eq!(
                    ready_at,
                    Cycle::new(50),
                    "fill order {order:?} must expose the earlier ready time"
                ),
                other => panic!("expected a hit, got {other:?}"),
            }
        }
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = small(4, 8); // 32 lines
        for i in 0..1000 {
            c.fill(LineAddr::new(i), Cycle::ZERO, false);
        }
        assert!(c.resident_lines() <= 32);
    }

    #[test]
    fn bank_bandwidth_throttles() {
        let mut cfg = CacheConfig::new("slow", 1 << 20);
        cfg.bandwidth = 1.0; // 1 byte/cycle: each 128 B access takes 128 cycles
        cfg.latency = Cycle::new(1);
        let mut c = SetAssocCache::new(cfg);
        c.fill(LineAddr::new(1), Cycle::ZERO, false);
        let first = match read(&mut c, 0, 1) {
            CacheOutcome::Hit { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        let second = match read(&mut c, 0, 1) {
            CacheOutcome::Hit { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        assert_eq!(first, Cycle::new(128));
        assert_eq!(second, Cycle::new(256));
    }

    #[test]
    fn adaptive_filter_leader_sets_duel() {
        // Enough sets that both leader kinds exist (stride 32).
        let mut cfg = CacheConfig::new("adp", 64 * 16 * 128); // 64 sets x 16 ways
        cfg.alloc_filter = AllocFilter::Adaptive;
        let mut c = SetAssocCache::new(cfg);
        // A purely LOCAL miss stream: remote-only leaders bypass (their
        // misses train towards cache-all), cache-all leaders miss cold
        // then hit on reuse. After training, follower sets should admit
        // local lines (cache-all behaviour wins for local-heavy reuse).
        for round in 0..40 {
            for i in 0..2048u64 {
                let out = c.access(
                    Cycle::new(round * 10_000 + i),
                    LineAddr::new(i % 256),
                    AccessKind::Read,
                    Locality::Local,
                );
                if let CacheOutcome::Miss { allocate: true, .. } = out {
                    c.fill(
                        LineAddr::new(i % 256),
                        Cycle::new(round * 10_000 + i),
                        false,
                    );
                }
            }
        }
        // Follower sets admitted local lines: overall hit rate is high.
        assert!(
            c.stats().accesses.rate() > 0.5,
            "adaptive filter failed to learn cache-all for local reuse: {}",
            c.stats().accesses
        );
    }

    #[test]
    fn adaptive_filter_runs_with_remote_streams_too() {
        let mut cfg = CacheConfig::new("adp", 64 * 16 * 128);
        cfg.alloc_filter = AllocFilter::Adaptive;
        let mut c = SetAssocCache::new(cfg);
        for i in 0..4096u64 {
            let loc = if i % 2 == 0 {
                Locality::Remote
            } else {
                Locality::Local
            };
            if let CacheOutcome::Miss { allocate: true, .. } =
                c.access(Cycle::new(i), LineAddr::new(i % 512), AccessKind::Read, loc)
            {
                c.fill(LineAddr::new(i % 512), Cycle::new(i), false);
            }
        }
        // Sanity: it ran, admitted remote traffic, and kept accounting.
        assert!(c.stats().accesses.total() > 0);
        assert!(c.resident_lines() > 0);
    }

    #[test]
    #[should_panic(expected = "adaptive admission is per-set")]
    fn adaptive_admits_must_go_through_the_cache() {
        let _ = AllocFilter::Adaptive.admits(Locality::Local);
    }

    #[test]
    fn tiny_cache_clamps_ways() {
        // 2 lines of capacity but 16 configured ways.
        let c = SetAssocCache::new(CacheConfig::new("tiny", 256));
        assert!(!c.is_disabled());
        assert_eq!(c.config().sets(), 1);
    }
}
