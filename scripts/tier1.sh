#!/usr/bin/env bash
# Tier-1 verification gate: the canonical "is the tree healthy" check.
# Everything here must pass before a change lands. Fully offline — the
# workspace has no external dependencies, so `--offline` is a
# guarantee, not an inconvenience.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy --workspace --all-targets --offline -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --workspace --release --offline =="
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline =="
cargo test --workspace -q --offline

echo "tier-1: all green"
