//! Failure-injection and corner-case integration tests: the simulator
//! must stay sound (complete, conserve instructions, keep invariants)
//! under degraded or degenerate machine configurations.

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::{suite, WorkloadSpec};

/// Asserts the run executed every static instruction, allowing for
/// bounded inflation from MSHR-stall replays (real SMs replay on
/// structural hazards too).
fn assert_instructions(report: &mcm::gpu::RunReport, spec: &WorkloadSpec) {
    let budget = spec.approx_instructions();
    assert!(
        report.instructions >= budget,
        "lost instructions: {} < {budget}",
        report.instructions
    );
    assert!(
        report.instructions <= budget * 2,
        "replay explosion: {} for a budget of {budget}",
        report.instructions
    );
}

fn small(name: &str) -> WorkloadSpec {
    let mut spec = suite::by_name(name).expect("suite workload").scaled(0.05);
    spec.ctas = spec.ctas.min(128);
    spec.kernel_iters = 2;
    spec
}

fn shrunken(mut f: impl FnMut(&mut SystemConfig)) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.topology.sms_per_module = 8;
    f(&mut cfg);
    cfg
}

#[test]
fn crawling_links_still_complete() {
    // 2 GB/s links (1 GB/s per direction): brutally degraded but legal.
    let spec = small("Lulesh1");
    let cfg = shrunken(|c| c.topology.link_gbps = 2.0);
    let r = Simulator::run(&cfg, &spec);
    assert_instructions(&r, &spec);
    let healthy = Simulator::run(&shrunken(|_| {}), &spec);
    assert!(r.cycles > healthy.cycles, "crawling links must cost time");
}

#[test]
fn extreme_hop_latency_still_completes() {
    let spec = small("BFS");
    let cfg = shrunken(|c| c.topology.hop_cycles = 5_000);
    let r = Simulator::run(&cfg, &spec);
    assert_instructions(&r, &spec);
}

#[test]
fn vestigial_l2_spills_to_dram_but_completes() {
    let spec = small("Stream");
    let cfg = shrunken(|c| c.caches.l2_bytes_total = 4 * 32 * 1024);
    let r = Simulator::run(&cfg, &spec);
    assert_instructions(&r, &spec);
    assert!(r.dram_bytes > 0);
}

#[test]
fn single_module_machine_degenerates_to_monolithic() {
    let spec = small("CFD");
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.topology.modules = 1;
    cfg.topology.sms_per_module = 32;
    let r = Simulator::run(&cfg, &spec);
    assert_eq!(r.remote_accesses, 0);
    assert_eq!(r.inter_module_bytes, 0);
    assert_instructions(&r, &spec);
}

#[test]
fn one_entry_mshr_serializes_but_completes() {
    let spec = small("SSSP");
    let cfg = shrunken(|c| c.sm.mshr_entries = 1);
    let r = Simulator::run(&cfg, &spec);
    // Replays may re-issue instructions; never fewer than the budget.
    assert!(r.instructions >= spec.approx_instructions());
    let healthy = Simulator::run(&shrunken(|_| {}), &spec);
    assert!(
        r.cycles >= healthy.cycles,
        "a one-entry MSHR cannot be faster than 64 entries"
    );
}

#[test]
fn single_warp_per_sm_occupancy() {
    let spec = small("MST");
    let cfg = shrunken(|c| c.sm.max_warps = spec.warps_per_cta);
    let r = Simulator::run(&cfg, &spec);
    assert_instructions(&r, &spec);
}

#[test]
fn more_ctas_than_total_occupancy_completes_in_waves() {
    let mut spec = small("Srad-v2");
    spec.ctas = 2048; // far exceeds 32 SMs x 16 CTA slots
    spec.insts_per_warp = 8;
    let cfg = shrunken(|_| {});
    let r = Simulator::run(&cfg, &spec);
    assert_instructions(&r, &spec);
}

#[test]
fn pure_read_and_pure_write_workloads() {
    let mut reads = small("Stream");
    reads.write_frac = 0.0;
    let mut writes = small("Stream");
    writes.write_frac = 1.0;
    let cfg = shrunken(|_| {});
    let r = Simulator::run(&cfg, &reads);
    assert_eq!(r.writes, 0);
    assert!(r.reads > 0);
    let w = Simulator::run(&cfg, &writes);
    assert_eq!(w.reads, 0);
    assert!(w.writes > 0);
}

#[test]
fn invalid_configurations_are_rejected() {
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.dram_total_gbps = -1.0;
    assert!(cfg.validate().is_err());

    let mut cfg = SystemConfig::baseline_mcm();
    cfg.topology.modules = 0;
    assert!(cfg.validate().is_err());

    let mut spec = suite::by_name("CFD").unwrap();
    spec.mem_ratio = 2.0;
    assert!(spec.validate().is_err());
}

#[test]
#[should_panic(expected = "invalid system configuration")]
fn running_an_invalid_config_panics_cleanly() {
    let mut cfg = SystemConfig::baseline_mcm();
    cfg.caches.l2_bytes_total = 0;
    let spec = small("CFD");
    let _ = Simulator::run(&cfg, &spec);
}
