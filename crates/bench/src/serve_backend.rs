//! The production [`Backend`] for `mcm-serve`: paper configurations by
//! short name, the full 48-workload suite, and store keying that is
//! bit-for-bit the keying [`Memo`](crate::harness::Memo) uses — so a
//! served result, a warm restart, and a direct harness run all read and
//! write the same record.
//!
//! Reports are rendered to canonical JSON
//! ([`mcm_serve::protocol::render_report`]) exactly once per pair and
//! cached rendered, so every delivery path — store hit, fresh run, or
//! shared in-flight subscription — returns identical bytes.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Mutex;

use mcm_gpu::SystemConfig;
use mcm_serve::protocol::render_report;
use mcm_serve::{Backend, PairKey};
use mcm_store::Store;
use mcm_workloads::{suite, WorkloadSpec};

use crate::harness::{pair_fingerprint, run_instrumented, scale};

/// The configurations a sweep request can name, keyed by short name.
/// Sorted (BTreeMap) so error messages and listings are deterministic.
pub fn preset_table() -> BTreeMap<&'static str, SystemConfig> {
    BTreeMap::from([
        ("baseline", SystemConfig::baseline_mcm()),
        ("l15-ds", SystemConfig::mcm_l15_ds()),
        ("mcm-2", SystemConfig::mcm_n_gpms(2)),
        ("mcm-8", SystemConfig::mcm_n_gpms(8)),
        ("mono-128", SystemConfig::largest_buildable_monolithic()),
        ("mono-256", SystemConfig::hypothetical_monolithic_256()),
        ("multi-gpu", SystemConfig::multi_gpu_baseline()),
        ("opt-fc", SystemConfig::optimized_mcm_fully_connected()),
        ("optimized", SystemConfig::optimized_mcm()),
    ])
}

/// [`Backend`] over the bench harness: resolves preset and Table 4
/// workload names, memoizes through the persistent [`Store`], and
/// simulates misses with [`run_instrumented`].
pub struct MemoBackend {
    scale: f64,
    presets: BTreeMap<&'static str, SystemConfig>,
    workloads: Vec<WorkloadSpec>,
    store: Option<Store>,
    /// Rendered-report cache, keyed by pair fingerprint.
    rendered: Mutex<HashMap<u64, String>>,
}

impl std::fmt::Debug for MemoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoBackend")
            .field("scale", &self.scale)
            .field("presets", &self.presets.len())
            .field("workloads", &self.workloads.len())
            .field("store", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl MemoBackend {
    /// A backend at `scale`, optionally over a persistent store.
    pub fn new(scale: f64, store: Option<Store>) -> Self {
        MemoBackend {
            scale,
            presets: preset_table(),
            workloads: suite::suite(),
            store,
            rendered: Mutex::new(HashMap::new()),
        }
    }

    /// Environment-configured backend: scale from `MCM_SCALE`, store
    /// from `MCM_STORE` — the same knobs, with the same semantics, as
    /// [`Memo::from_env`](crate::harness::Memo::from_env).
    ///
    /// # Panics
    ///
    /// Panics when `MCM_STORE` is set but the directory cannot be
    /// opened (mistyped knobs abort; see `Memo::from_env`).
    pub fn from_env() -> Self {
        let store = std::env::var_os("MCM_STORE").map(|dir| {
            let dir = PathBuf::from(dir);
            Store::open(&dir).unwrap_or_else(|e| {
                panic!(
                    "MCM_STORE: cannot open result store at {}: {e}",
                    dir.display()
                )
            })
        });
        MemoBackend::new(scale(), store)
    }

    /// The preset names this backend resolves, sorted.
    pub fn preset_names(&self) -> Vec<String> {
        self.presets.keys().map(|k| (*k).to_string()).collect()
    }

    fn spec(&self, workload: &str) -> Option<&WorkloadSpec> {
        self.workloads.iter().find(|w| w.name == workload)
    }

    fn rendered_get(&self, fingerprint: u64) -> Option<String> {
        self.rendered
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&fingerprint)
            .cloned()
    }

    fn rendered_put(&self, fingerprint: u64, rendered: String) -> String {
        self.rendered
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(fingerprint)
            .or_insert(rendered)
            .clone()
    }
}

impl Backend for MemoBackend {
    fn resolve(&self, config: &str, workload: &str) -> Result<PairKey, String> {
        let Some(cfg) = self.presets.get(config) else {
            let known = self.preset_names().join(", ");
            return Err(format!("unknown config \"{config}\" (known: {known})"));
        };
        let Some(spec) = self.spec(workload) else {
            return Err(format!(
                "unknown workload \"{workload}\" (48 Table 4 names, or \"*\")"
            ));
        };
        Ok(PairKey {
            fingerprint: pair_fingerprint(self.scale, cfg, spec),
            config: config.to_string(),
            workload: workload.to_string(),
        })
    }

    fn lookup(&self, key: &PairKey) -> Option<String> {
        if let Some(r) = self.rendered_get(key.fingerprint) {
            return Some(r);
        }
        let report = self
            .store
            .as_ref()
            .and_then(|s| s.get(key.fingerprint, &key.workload))?;
        Some(self.rendered_put(key.fingerprint, render_report(&report)))
    }

    fn run(&self, key: &PairKey) -> String {
        let cfg = self
            .presets
            .get(key.config.as_str())
            .expect("resolve() vetted the config name");
        let spec = self
            .spec(&key.workload)
            .expect("resolve() vetted the workload name");
        let report = run_instrumented(cfg, &spec.scaled(self.scale));
        if let Some(store) = &self.store {
            store.put(key.fingerprint, spec.name, &report);
        }
        self.rendered_put(key.fingerprint, render_report(&report))
    }

    fn all_workloads(&self) -> Vec<String> {
        self.workloads.iter().map(|w| w.name.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Memo;

    #[test]
    fn resolve_rejects_unknown_names_with_suggestions() {
        let backend = MemoBackend::new(0.1, None);
        let err = backend.resolve("nope", "Stream").unwrap_err();
        assert!(err.contains("unknown config") && err.contains("baseline"));
        let err = backend.resolve("baseline", "nope").unwrap_err();
        assert!(err.contains("unknown workload"));
    }

    #[test]
    fn fingerprints_match_the_memo_store_keying() {
        // The whole warm-start story rests on this: a pair served today
        // must be the record a direct harness run wrote yesterday.
        let backend = MemoBackend::new(0.25, None);
        let key = backend.resolve("baseline", "Stream").unwrap();
        let cfg = SystemConfig::baseline_mcm();
        let spec = suite::by_name("Stream").unwrap();
        assert_eq!(key.fingerprint, pair_fingerprint(0.25, &cfg, &spec));
    }

    #[test]
    fn run_renders_exactly_what_a_direct_memo_run_produces() {
        let scale = 0.05;
        let backend = MemoBackend::new(scale, None);
        let key = backend.resolve("baseline", "Stream").unwrap();
        let served = backend.run(&key);
        let direct = Memo::new(scale).run(
            &SystemConfig::baseline_mcm(),
            &suite::by_name("Stream").unwrap(),
        );
        assert_eq!(served, render_report(&direct), "byte-identical reports");
        // And the second read is a rendered-cache hit with the same
        // bytes.
        assert_eq!(backend.lookup(&key).as_deref(), Some(served.as_str()));
    }
}
