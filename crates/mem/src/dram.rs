//! DRAM partition model: banked channels behind a fixed access latency.
//!
//! Each GPM owns one local DRAM partition (Fig. 3). A partition exposes
//! `channels` independently contended channels; lines are fine-grain
//! interleaved across them so a well-spread access stream can reach the
//! partition's full bandwidth, while camping on one channel saturates at
//! `bw / channels` — the behaviour §5.3 is careful to preserve ("we will
//! still interleave addresses at a fine granularity across the memory
//! channels of each memory partition").

use mcm_engine::stats::Counter;
use mcm_engine::{Cycle, Resource};

use crate::addr::{AccessKind, LineAddr, LINE_BYTES};

/// Static configuration of one DRAM partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Aggregate partition bandwidth in GB/s (= bytes/cycle at 1 GHz).
    pub bandwidth_gbps: f64,
    /// Number of independently contended channels.
    pub channels: u32,
    /// Fixed access latency (paper Table 3: 100 ns).
    pub latency: Cycle,
}

impl DramConfig {
    /// A partition with the paper's baseline parameters scaled to the
    /// given bandwidth: 8 channels and 100 ns latency.
    pub fn with_bandwidth(bandwidth_gbps: f64) -> Self {
        DramConfig {
            bandwidth_gbps,
            channels: 8,
            latency: Cycle::from_ns(100),
        }
    }
}

/// One DRAM partition: per-channel bandwidth servers plus fixed latency.
///
/// # Example
///
/// ```
/// use mcm_engine::Cycle;
/// use mcm_mem::addr::{AccessKind, LineAddr};
/// use mcm_mem::dram::{DramConfig, DramPartition};
///
/// let mut mp = DramPartition::new(DramConfig::with_bandwidth(768.0));
/// let done = mp.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Read);
/// // 128 B over one 96 B/cycle channel (~2 cycles) + 100 ns latency.
/// assert_eq!(done, Cycle::new(102));
/// ```
#[derive(Debug, Clone)]
pub struct DramPartition {
    config: DramConfig,
    channels: Vec<Resource>,
    reads: Counter,
    writes: Counter,
}

impl DramPartition {
    /// Builds a partition from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or the bandwidth is not positive
    /// (propagated from [`Resource::new`]).
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM partition needs channels");
        let per_channel = config.bandwidth_gbps / f64::from(config.channels);
        let channels = (0..config.channels)
            .map(|_| Resource::new("dram-channel", per_channel))
            .collect();
        DramPartition {
            config,
            channels,
            reads: Counter::new(),
            writes: Counter::new(),
        }
    }

    /// The partition's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Performs a full-line access beginning at `now`; returns when the
    /// data is available (reads) or accepted (writes).
    ///
    /// The channel is chosen by hashing the line index (not its low
    /// bits): the machine already interleaves lines across partitions by
    /// low bits, so a modulo channel index would alias and strand most
    /// of the partition's channels.
    #[inline]
    pub fn access(&mut self, now: Cycle, line: LineAddr, kind: AccessKind) -> Cycle {
        // Unit stretch is an exact IEEE identity, so this delegation
        // does not perturb the unthrottled timing.
        self.access_stretched(now, line, kind, 1.0)
    }

    /// Like [`DramPartition::access`] with the channel occupancy
    /// multiplied by `stretch` — how the fault layer models a thermally
    /// throttled stack (`stretch > 1.0` halves/quarters the effective
    /// bandwidth without touching the configured one).
    pub fn access_stretched(
        &mut self,
        now: Cycle,
        line: LineAddr,
        kind: AccessKind,
        stretch: f64,
    ) -> Cycle {
        let mut z = line.index().wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z ^= z >> 32;
        let chan = (z % self.channels.len() as u64) as usize;
        let served = self.channels[chan].service_stretched(now, LINE_BYTES, stretch);
        match kind {
            AccessKind::Read => self.reads.inc(),
            AccessKind::Write => self.writes.inc(),
        }
        served + self.config.latency
    }

    /// Like [`DramPartition::access`], additionally reporting the
    /// line's worth of DRAM traffic on `partition` to `probe`.
    pub fn access_probed<P: mcm_probe::Probe>(
        &mut self,
        now: Cycle,
        line: LineAddr,
        kind: AccessKind,
        partition: u32,
        probe: &mut P,
    ) -> Cycle {
        let done = self.access(now, line, kind);
        if P::ACTIVE {
            probe.dram_access(partition, now, LINE_BYTES);
        }
        done
    }

    /// Like [`DramPartition::access_probed`], additionally consulting
    /// `plan` for a thermal-throttle stretch at `now`. Throttled
    /// accesses are reported to `probe` as
    /// [`mcm_probe::FaultEvent::DramThrottle`].
    ///
    /// With an inactive plan this is exactly `access_probed`.
    pub fn access_faulted<P: mcm_probe::Probe, F: mcm_fault::FaultPlan>(
        &mut self,
        now: Cycle,
        line: LineAddr,
        kind: AccessKind,
        partition: u32,
        probe: &mut P,
        plan: &mut F,
    ) -> Cycle {
        if !F::ACTIVE {
            return self.access_probed(now, line, kind, partition, probe);
        }
        let stretch = plan.dram_stretch(partition, now);
        if P::ACTIVE {
            if stretch > 1.0 {
                probe.fault(
                    now,
                    mcm_probe::FaultEvent::DramThrottle {
                        module: partition,
                        stretch,
                    },
                );
            }
            probe.dram_access(partition, now, LINE_BYTES);
        }
        self.access_stretched(now, line, kind, stretch)
    }

    /// Total bytes moved in or out of the partition.
    pub fn total_bytes(&self) -> u64 {
        self.channels.iter().map(Resource::total_bytes).sum()
    }

    /// Read accesses served.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Write accesses served.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Achieved bandwidth in GB/s over `elapsed`.
    pub fn achieved_gbps(&self, elapsed: Cycle) -> f64 {
        self.channels.iter().map(|c| c.achieved_gbps(elapsed)).sum()
    }

    /// Peak utilization across channels over `elapsed` — reveals channel
    /// camping that aggregate numbers hide.
    pub fn peak_channel_utilization(&self, elapsed: Cycle) -> f64 {
        self.channels
            .iter()
            .map(|c| c.utilization(elapsed))
            .fold(0.0, f64::max)
    }

    /// Per-channel next-free cycles (diagnostics).
    #[doc(hidden)]
    pub fn debug_channel_next_free(&self) -> Vec<u64> {
        self.channels
            .iter()
            .map(|c| c.next_free().as_u64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition(bw: f64, channels: u32) -> DramPartition {
        DramPartition::new(DramConfig {
            bandwidth_gbps: bw,
            channels,
            latency: Cycle::from_ns(100),
        })
    }

    #[test]
    fn single_access_pays_latency_plus_transfer() {
        let mut mp = partition(128.0, 1);
        // 128 B at 128 B/cycle = 1 cycle + 100 cycles latency.
        assert_eq!(
            mp.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Read),
            Cycle::new(101)
        );
        assert_eq!(mp.reads(), 1);
        assert_eq!(mp.writes(), 0);
    }

    #[test]
    fn spread_lines_use_all_channels() {
        let mut mp = partition(256.0, 4);
        // A large population of lines must exercise every channel (the
        // hash spreads them), so aggregate throughput approaches the
        // partition's full bandwidth.
        let mut horizon = Cycle::ZERO;
        for i in 0..4096u64 {
            horizon = horizon.max(mp.access(Cycle::ZERO, LineAddr::new(i), AccessKind::Read));
        }
        let busy = horizon - mp.config().latency;
        // 4096 lines * 128 B at 256 B/cycle = 2048 cycles if perfectly
        // spread; allow modest hash imbalance.
        assert!(
            busy.as_u64() < 2048 * 12 / 10,
            "channel spread too uneven: {busy}"
        );
    }

    #[test]
    fn channel_camping_serializes() {
        let mut mp = partition(256.0, 4);
        // Repeated accesses to the same line hit the same channel and
        // serialize behind each other.
        let a = mp.access(Cycle::ZERO, LineAddr::new(7), AccessKind::Read);
        let b = mp.access(Cycle::ZERO, LineAddr::new(7), AccessKind::Read);
        assert!(b > a);
        assert!(mp.peak_channel_utilization(b) > 0.0);
    }

    #[test]
    fn interleave_aliased_lines_still_spread() {
        // Lines congruent mod 4 (what one partition of a 4-module
        // machine receives under fine interleave) must still use all
        // channels thanks to the hashed channel index.
        let mut mp = partition(256.0, 8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u64 {
            let before = mp.debug_channel_next_free();
            mp.access(
                Cycle::new(1_000_000),
                LineAddr::new(i * 4),
                AccessKind::Read,
            );
            let after = mp.debug_channel_next_free();
            for (c, (b, a)) in before.iter().zip(after.iter()).enumerate() {
                if a != b {
                    seen.insert(c);
                }
            }
        }
        assert_eq!(seen.len(), 8, "only channels {seen:?} used");
    }

    #[test]
    fn bandwidth_accounting() {
        let mut mp = partition(768.0, 8);
        for i in 0..64 {
            mp.access(Cycle::ZERO, LineAddr::new(i), AccessKind::Write);
        }
        assert_eq!(mp.total_bytes(), 64 * LINE_BYTES);
        assert_eq!(mp.writes(), 64);
        let elapsed = Cycle::new(64);
        assert!(mp.achieved_gbps(elapsed) > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs channels")]
    fn zero_channels_panics() {
        partition(100.0, 0);
    }

    #[test]
    fn stretched_access_slows_the_channel() {
        let mut plain = partition(128.0, 1);
        let mut hot = partition(128.0, 1);
        let a = plain.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Read);
        let b = hot.access_stretched(Cycle::ZERO, LineAddr::new(0), AccessKind::Read, 4.0);
        // 1 cycle of service becomes 4 under a ×4 stretch.
        assert_eq!(b - a, Cycle::new(3));
        assert_eq!(hot.total_bytes(), plain.total_bytes());
    }

    #[test]
    fn faulted_access_with_null_plan_matches_probed() {
        let mut a = partition(768.0, 8);
        let mut b = partition(768.0, 8);
        for i in 0..32u64 {
            let x = a.access_probed(
                Cycle::new(i),
                LineAddr::new(i * 3),
                AccessKind::Read,
                0,
                &mut mcm_probe::NullProbe,
            );
            let y = b.access_faulted(
                Cycle::new(i),
                LineAddr::new(i * 3),
                AccessKind::Read,
                0,
                &mut mcm_probe::NullProbe,
                &mut mcm_fault::NullFaultPlan,
            );
            assert_eq!(x, y);
        }
    }

    #[test]
    fn probed_access_reports_line_traffic() {
        #[derive(Default)]
        struct Log(Vec<(u32, u64)>);
        impl mcm_probe::Probe for Log {
            fn dram_access(&mut self, partition: u32, _now: Cycle, bytes: u64) {
                self.0.push((partition, bytes));
            }
        }
        let mut log = Log::default();
        let mut mp = partition(128.0, 1);
        let done = mp.access_probed(Cycle::ZERO, LineAddr::new(0), AccessKind::Read, 2, &mut log);
        assert_eq!(done, Cycle::new(101));
        assert_eq!(log.0, vec![(2, LINE_BYTES)]);
    }
}
