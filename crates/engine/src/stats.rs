//! Statistics primitives shared by every simulator component.
//!
//! These are intentionally tiny: a saturating [`Counter`], a hit/miss
//! [`Ratio`], a power-of-two bucketed [`Histogram`] for latencies, and a
//! running [`Mean`]. Components expose their internals through these
//! types so run reports can aggregate uniformly.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use mcm_engine::stats::Counter;
///
/// let mut c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A numerator/denominator pair for hit rates and similar fractions.
///
/// # Example
///
/// ```
/// use mcm_engine::stats::Ratio;
///
/// let mut hits = Ratio::new();
/// hits.record(true);
/// hits.record(true);
/// hits.record(false);
/// assert!((hits.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio (rate reported as 0).
    pub const fn new() -> Self {
        Ratio { hits: 0, total: 0 }
    }

    /// Reconstructs a ratio from a previously observed numerator and
    /// denominator — the decode half of report (de)serialization, so a
    /// persisted ratio round-trips bit-exact.
    ///
    /// # Panics
    ///
    /// Panics when `hits > total`: no observation sequence can produce
    /// that state, so a decoder handing it in is reading garbage.
    pub fn from_parts(hits: u64, total: u64) -> Self {
        assert!(
            hits <= total,
            "Ratio::from_parts: hits ({hits}) exceeds total ({total})"
        );
        Ratio { hits, total }
    }

    /// Records one observation; `hit` increments the numerator.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub const fn hits(self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub const fn total(self) -> u64 {
        self.total
    }

    /// Misses (denominator minus numerator).
    pub const fn misses(self) -> u64 {
        self.total - self.hits
    }

    /// The fraction of observations that hit, or `0.0` when empty.
    pub fn rate(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }

    /// Resets both counters.
    pub fn reset(&mut self) {
        *self = Ratio::new();
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.1}%)",
            self.hits,
            self.total,
            self.rate() * 100.0
        )
    }
}

/// A histogram with power-of-two buckets, suited to latency
/// distributions spanning several orders of magnitude.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 additionally
/// holds zero.
///
/// # Example
///
/// ```
/// use mcm_engine::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 100, 100, 5000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 5000);
/// assert!((h.mean() - 1300.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all samples, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen, or 0 when empty.
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// An approximate quantile (0.0 ..= 1.0): the lower bound of the
    /// bucket containing that rank. Exact enough for latency reporting.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A running arithmetic mean over `f64` samples.
///
/// # Example
///
/// ```
/// use mcm_engine::stats::Mean;
///
/// let mut m = Mean::new();
/// m.record(1.0);
/// m.record(3.0);
/// assert!((m.get() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Mean {
    sum: f64,
    n: u64,
}

impl Mean {
    /// Creates an empty mean (reported as 0).
    pub const fn new() -> Self {
        Mean { sum: 0.0, n: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }

    /// The mean of all samples, or `0.0` when empty.
    pub fn get(self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub const fn count(self) -> u64 {
        self.n
    }
}

/// Row-oriented report serialization: a type that can present itself
/// as one row of a named-column table.
///
/// This is the workspace's replacement for external serialization
/// derives — run reports and other plain-data results implement it
/// once and every harness (CSV dumps, text tables) consumes the same
/// column contract. The CSV rendering itself comes for free through
/// the blanket [`ToCsv`] impl.
///
/// # Example
///
/// ```
/// use mcm_engine::stats::{Tabular, ToCsv};
///
/// struct Row { name: &'static str, cycles: u64 }
/// impl Tabular for Row {
///     const COLUMNS: &'static [&'static str] = &["name", "cycles"];
///     fn cells(&self) -> Vec<String> {
///         vec![self.name.to_string(), self.cycles.to_string()]
///     }
/// }
///
/// assert_eq!(Row::csv_header(), "name,cycles");
/// assert_eq!(Row { name: "a,b", cycles: 7 }.to_csv_row(), "\"a,b\",7");
/// ```
pub trait Tabular {
    /// Column names, in emission order.
    const COLUMNS: &'static [&'static str];

    /// The cells of one row; must match [`Tabular::COLUMNS`] in length.
    fn cells(&self) -> Vec<String>;
}

/// CSV rendering for any [`Tabular`] type (RFC-4180-style quoting).
pub trait ToCsv: Tabular {
    /// The comma-joined column names.
    fn csv_header() -> String {
        Self::COLUMNS.join(",")
    }

    /// This row as one CSV line, with cells quoted only when needed.
    fn to_csv_row(&self) -> String {
        let cells = self.cells();
        assert_eq!(
            cells.len(),
            Self::COLUMNS.len(),
            "Tabular::cells must match COLUMNS"
        );
        cells
            .iter()
            .map(|c| csv_escape(c))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl<T: Tabular> ToCsv for T {}

/// Quotes a CSV cell when it contains a comma, quote, or newline;
/// embedded quotes are doubled per RFC 4180.
pub fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Renders a whole result set as CSV: header plus one line per row.
pub fn to_csv<'a, T, I>(rows: I) -> String
where
    T: Tabular + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = T::csv_header();
    out.push('\n');
    for row in rows {
        out.push_str(&row.to_csv_row());
        out.push('\n');
    }
    out
}

/// Geometric mean of a slice of positive values — the aggregation the
/// paper uses for cross-workload speedups ("GeoMean" in Figs. 6, 9, 13).
///
/// # Panics
///
/// Panics on an empty slice — a geomean over zero members has no value,
/// and silently printing `0.00x` for one (the old behaviour) disguises
/// a harness bug as a catastrophic slowdown. Callers aggregating a
/// filtered subset should check the filter, not the result. Also panics
/// if any value is not strictly positive (a speedup of zero or a
/// negative speedup indicates a harness bug).
///
/// # Example
///
/// ```
/// use mcm_engine::stats::geomean;
///
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    assert!(
        !values.is_empty(),
        "geomean of an empty set has no value; the caller's filter \
         selected zero members"
    );
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_rates_and_merge() {
        let mut a = Ratio::new();
        assert_eq!(a.rate(), 0.0);
        a.record(true);
        a.record(false);
        let mut b = Ratio::new();
        b.record(true);
        b.record(true);
        a.merge(b);
        assert_eq!(a.hits(), 3);
        assert_eq!(a.total(), 4);
        assert_eq!(a.misses(), 1);
        assert!((a.rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<_> = h.iter().collect();
        // 0 and 1 share bucket 0; 2 and 3 are in [2,4); 1024 in [1024,2048).
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q100 = h.quantile(1.0);
        assert!(q50 <= q90 && q90 <= q100);
        assert!(q100 <= h.max());
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert!((a.mean() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn mean_tracks() {
        let mut m = Mean::new();
        assert_eq!(m.get(), 0.0);
        for v in [2.0, 4.0, 6.0] {
            m.record(v);
        }
        assert_eq!(m.count(), 3);
        assert!((m.get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    /// Regression: an empty category must fail loudly, not report a
    /// phantom 0.00x speedup.
    #[test]
    #[should_panic(expected = "empty set has no value")]
    fn geomean_rejects_the_empty_set() {
        geomean(&[]);
    }

    struct Row(&'static str, u64);

    impl Tabular for Row {
        const COLUMNS: &'static [&'static str] = &["name", "value"];

        fn cells(&self) -> Vec<String> {
            vec![self.0.to_string(), self.1.to_string()]
        }
    }

    #[test]
    fn csv_escape_quotes_only_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn tabular_to_csv_round() {
        assert_eq!(Row::csv_header(), "name,value");
        assert_eq!(Row("a", 1).to_csv_row(), "a,1");
        let rendered = to_csv(&[Row("a", 1), Row("b,c", 2)]);
        assert_eq!(rendered, "name,value\na,1\n\"b,c\",2\n");
    }

    struct Ragged;

    impl Tabular for Ragged {
        const COLUMNS: &'static [&'static str] = &["one", "two"];

        fn cells(&self) -> Vec<String> {
            vec!["only".to_string()]
        }
    }

    #[test]
    #[should_panic(expected = "match COLUMNS")]
    fn ragged_rows_are_rejected() {
        let _ = Ragged.to_csv_row();
    }
}
