//! A counting global allocator for allocation-freedom assertions.
//!
//! Wraps [`std::alloc::System`] and counts every allocation,
//! reallocation and deallocation with relaxed atomics. Install it as
//! the `#[global_allocator]` of a test binary, snapshot the counters
//! around the code under test, and assert the delta — the simulator is
//! deterministic, so a steady-state-allocation regression shows up as
//! an exact, reproducible counter diff rather than a flaky timing
//! signal.
//!
//! ```
//! use mcm_testkit::alloc::CountingAllocator;
//!
//! // In a test binary: #[global_allocator]
//! // static ALLOC: CountingAllocator = CountingAllocator::new();
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//! let before = ALLOC.allocations();
//! // ... hot code under test ...
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts calls and bytes.
///
/// The counters are monotone: deallocations increment their own
/// counter rather than decrementing the allocation count, so a
/// "no allocations in this window" assertion cannot be masked by a
/// matching free.
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    reallocations: AtomicU64,
    deallocations: AtomicU64,
    bytes_allocated: AtomicU64,
}

impl CountingAllocator {
    /// A fresh allocator with zeroed counters (`const`, so it can
    /// initialize a `static`).
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
            reallocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Allocation calls so far (`alloc` + `alloc_zeroed`).
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Reallocation calls so far. A growth-triggered `realloc` counts
    /// here, not under [`CountingAllocator::allocations`].
    pub fn reallocations(&self) -> u64 {
        self.reallocations.load(Ordering::Relaxed)
    }

    /// Deallocation calls so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }

    /// Bytes requested across allocations and reallocations.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Allocation-event count: allocations + reallocations. The number
    /// an allocation-free hot loop must hold constant.
    pub fn alloc_events(&self) -> u64 {
        self.allocations() + self.reallocations()
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: defers entirely to `System`; the counter updates have no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.reallocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (the test binary
    // shares it with the whole suite); exercise the trait directly.
    #[test]
    fn counters_track_the_call_mix() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            let grown = Layout::from_size_align(128, 8).unwrap();
            a.dealloc(p, grown);
            let z = a.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(*z, 0);
            a.dealloc(z, layout);
        }
        assert_eq!(a.allocations(), 2);
        assert_eq!(a.reallocations(), 1);
        assert_eq!(a.deallocations(), 2);
        assert_eq!(a.alloc_events(), 3);
        assert_eq!(a.bytes_allocated(), 64 + 128 + 64);
    }
}
