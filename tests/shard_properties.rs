//! Property tests for the sharded engine's conservation laws, under
//! the workspace's seeded, shrinking property runner (`mcm-testkit`).
//!
//! The conservative-window protocol promises, for ANY (workload,
//! scale, machine, shard count):
//!
//! * **Epoch conservation** — every cross-shard message sent in epoch
//!   `k` is received exactly once, in a strictly later epoch
//!   (`sent == received` is surfaced as `ShardRunStats::messages`
//!   with zero `late_deliveries`; the strictly-later-epoch half is a
//!   `debug_assert` at the delivery site, live in these test builds).
//! * **Mailbox drainage** — nothing is left in flight at run end
//!   (`residual_messages == 0`).
//! * **Work conservation** — instruction and DRAM traffic counts match
//!   the serial engine exactly. (Asserted as full report equality,
//!   which subsumes both.)
//!
//! Failures shrink toward a minimal (workload, scale, shards, machine)
//! tuple and print an `MCM_PROP_SEED` that replays the exact case.

use mcm::gpu::{effective_shards, Simulator, SystemConfig};
use mcm::workloads::suite;
use mcm_testkit::gen::{u64s, u8s, usizes};
use mcm_testkit::runner::check;

/// The machine variants with distinct global decision points: draw
/// cursors, stealing, first-touch claims, fabric shapes, module
/// counts.
fn machine(variant: u8) -> SystemConfig {
    match variant {
        0 => SystemConfig::baseline_mcm(),
        1 => SystemConfig::optimized_mcm(),
        2 => SystemConfig::optimized_mcm_dynamic(4),
        3 => SystemConfig::optimized_mcm_fully_connected(),
        4 => SystemConfig::multi_gpu_baseline(),
        _ => SystemConfig::mcm_l15_ds(),
    }
}

#[test]
fn sharded_runs_conserve_messages_and_work() {
    let all = suite::suite();
    let n = all.len();
    let gen = (
        usizes(0..n), // workload index
        u64s(5..25),  // scale in thousandths (0.005..0.025)
        usizes(2..9), // requested shard count
        u8s(0..6),    // machine variant
    );
    check(
        "sharded_runs_conserve_messages_and_work",
        &gen,
        |&(idx, milli, shards, variant)| {
            let spec = all[idx].scaled(milli as f64 / 1000.0);
            let cfg = machine(variant);
            let serial = Simulator::run(&cfg, &spec);
            let (sharded, stats) = Simulator::run_sharded_stats(&cfg, &spec, shards);
            assert_eq!(
                serial, sharded,
                "{} on {} at {shards} shards: sharded run diverged",
                spec.name, cfg.name
            );
            assert_eq!(
                stats.shards,
                effective_shards(&cfg, shards),
                "stats must report the clamped shard count"
            );
            assert_eq!(
                stats.late_deliveries, 0,
                "a message arrived inside its own send window"
            );
            assert_eq!(
                stats.residual_messages, 0,
                "mailboxes must be empty when the run ends"
            );
            if stats.shards == 1 {
                assert_eq!(stats.messages, 0, "the serial path exchanges nothing");
            }
        },
    );
}

#[test]
fn shard_counts_agree_with_each_other() {
    // Pairwise invariance, generated rather than enumerated: two
    // *different* shard counts of the same run must agree bit-for-bit
    // (serial equality is checked by the sibling property; this one
    // would still catch a bug that perturbs every sharded run the same
    // way relative to serial but differently across counts).
    let all = suite::suite();
    let n = all.len();
    let gen = (usizes(0..n), u64s(5..20), usizes(1..5), usizes(1..5));
    check(
        "shard_counts_agree_with_each_other",
        &gen,
        |&(idx, milli, a, b)| {
            let spec = all[idx].scaled(milli as f64 / 1000.0);
            let cfg = SystemConfig::optimized_mcm();
            assert_eq!(
                Simulator::run_sharded(&cfg, &spec, a),
                Simulator::run_sharded(&cfg, &spec, b),
                "{}: {a} vs {b} shards disagree",
                spec.name
            );
        },
    );
}
