//! Property-based tests for SM occupancy and CTA scheduling
//! invariants, running on the in-repo `mcm-testkit` harness.

use mcm_sm::scheduler::{owning_gpm, CtaPool, SchedulerPolicy};
use mcm_sm::{SmConfig, SmCore};
use mcm_testkit::prelude::*;

/// Every CTA is handed out exactly once, regardless of policy or the
/// order GPMs pull in.
#[test]
fn pool_hands_out_each_cta_once() {
    check(
        "pool_hands_out_each_cta_once",
        &(
            u32s(0..512),
            u32s(1..9),
            bools(),
            vecs(usizes(0..9), 0..2048),
        ),
        |&(total, gpms, distributed, ref pull_order)| {
            let policy = if distributed {
                SchedulerPolicy::Distributed
            } else {
                SchedulerPolicy::Centralized
            };
            let mut pool = CtaPool::new(policy, total, gpms);
            let mut seen = std::collections::HashSet::new();
            for &g in pull_order {
                if let Some(c) = pool.next_cta(g % gpms as usize) {
                    assert!(c < total);
                    assert!(seen.insert(c), "CTA {c} handed out twice");
                }
            }
            // Drain completely round-robin.
            loop {
                let mut any = false;
                for g in 0..gpms as usize {
                    if let Some(c) = pool.next_cta(g) {
                        assert!(seen.insert(c));
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            assert_eq!(seen.len() as u32, total);
            assert!(pool.is_exhausted());
        },
    );
}

/// Distributed chunks tile the CTA space exactly and differ in size
/// by at most one.
#[test]
fn distributed_chunks_tile() {
    check(
        "distributed_chunks_tile",
        &(u32s(0..4096), u32s(1..9)),
        |&(total, gpms)| {
            let pool = CtaPool::new(SchedulerPolicy::Distributed, total, gpms);
            let mut covered = 0u32;
            let mut sizes = Vec::new();
            for g in 0..gpms as usize {
                let (start, end) = pool.chunk(g);
                assert_eq!(start, covered);
                covered = end;
                sizes.push(end - start);
            }
            assert_eq!(covered, total);
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        },
    );
}

/// `owning_gpm` agrees with the chunk layout for every CTA.
#[test]
fn owning_gpm_consistent() {
    check(
        "owning_gpm_consistent",
        &(u32s(1..2048), u32s(1..9), u32s(0..2048)),
        |&(total, gpms, cta)| {
            let cta = cta % total;
            let pool = CtaPool::new(SchedulerPolicy::Distributed, total, gpms);
            let g = owning_gpm(cta, total, gpms);
            let (start, end) = pool.chunk(g);
            assert!((start..end).contains(&cta));
        },
    );
}

/// SM occupancy never exceeds the configured warp limit under any
/// admit/retire sequence.
#[test]
fn occupancy_never_exceeds_limit() {
    check(
        "occupancy_never_exceeds_limit",
        &(u32s(1..128), vecs((bools(), u32s(1..16)), 0..256)),
        |&(max_warps, ref ops)| {
            let mut sm = SmCore::new(SmConfig {
                max_warps,
                issue_ipc: 2.0,
                mshr_entries: 8,
                mlp_per_warp: 4,
            });
            let mut resident: Vec<u32> = Vec::new();
            for &(admit, warps) in ops {
                if admit {
                    if sm.try_admit(warps) {
                        resident.push(warps);
                    }
                } else if let Some(w) = resident.pop() {
                    sm.retire_warps(w);
                }
                assert!(sm.resident_warps() <= max_warps);
                assert_eq!(sm.resident_warps(), resident.iter().sum::<u32>());
            }
        },
    );
}

/// Issue completions are monotone for nondecreasing request times
/// and total instructions are conserved.
#[test]
fn issue_accounting() {
    check(
        "issue_accounting",
        &vecs(u32s(1..1000), 1..64),
        |bursts: &Vec<u32>| {
            let mut sm = SmCore::new(SmConfig::pascal_like());
            sm.try_admit(1);
            let mut last = mcm_engine::Cycle::ZERO;
            for &b in bursts {
                let done = sm.issue(mcm_engine::Cycle::ZERO, b);
                assert!(done >= last);
                last = done;
            }
            assert_eq!(
                sm.instructions(),
                bursts.iter().map(|&b| u64::from(b)).sum::<u64>()
            );
        },
    );
}
