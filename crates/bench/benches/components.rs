//! Criterion microbenchmarks for the simulator's hot components: these
//! bound how fast whole-system runs can go and guard against
//! performance regressions in the substrate crates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcm_engine::rng::Xoshiro256;
use mcm_engine::{Cycle, EventQueue, Resource};
use mcm_interconnect::ring::{NodeId, RingNetwork};
use mcm_mem::addr::{AccessKind, LineAddr, Locality};
use mcm_mem::cache::{CacheConfig, CacheOutcome, SetAssocCache};
use mcm_mem::dram::{DramConfig, DramPartition};
use mcm_workloads::{suite, WarpStream};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.bench_function("access_hit", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::new("b", 4 << 20));
        for i in 0..1024 {
            cache.fill(LineAddr::new(i), Cycle::ZERO, false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(cache.access(
                Cycle::new(i),
                LineAddr::new(i),
                AccessKind::Read,
                Locality::Local,
            ))
        });
    });
    group.bench_function("miss_fill_evict", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::new("b", 1 << 20));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if let CacheOutcome::Miss { allocate: true, .. } = cache.access(
                Cycle::new(i),
                LineAddr::new(i),
                AccessKind::Read,
                Locality::Local,
            ) {
                black_box(cache.fill(LineAddr::new(i), Cycle::new(i), false));
            }
        });
    });
    group.finish();
}

fn bench_interconnect(c: &mut Criterion) {
    let mut group = c.benchmark_group("interconnect");
    group.bench_function("ring_transfer_2hop", |b| {
        let mut ring = RingNetwork::new(4, 768.0, Cycle::new(32));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(ring.transfer(Cycle::new(t), NodeId(0), NodeId(2), 128))
        });
    });
    group.bench_function("dram_access", |b| {
        let mut dram = DramPartition::new(DramConfig::with_bandwidth(768.0));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(dram.access(Cycle::new(t), LineAddr::new(t * 7), AccessKind::Read))
        });
    });
    group.bench_function("resource_service", |b| {
        let mut r = Resource::new("b", 768.0);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(r.service(Cycle::new(t), 128))
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(4096);
        // Keep a standing population of 1024 events.
        for i in 0..1024u64 {
            q.push(Cycle::new(i), i);
        }
        let mut t = 1024u64;
        b.iter(|| {
            let (at, ev) = q.pop().expect("queue never drains");
            t += 1;
            q.push(at + Cycle::new(t % 251 + 1), ev);
            black_box(ev)
        });
    });
    group.bench_function("rng_next_u64", |b| {
        let mut rng = Xoshiro256::new(7);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.bench_function("warp_stream_ops", |b| {
        let spec = suite::by_name("CoMD").expect("suite workload");
        let mut stream = WarpStream::new(&spec, 0, 0, 0);
        b.iter(|| match stream.next() {
            Some(op) => black_box(op),
            None => {
                stream = WarpStream::new(&spec, 0, 0, 0);
                black_box(stream.next().expect("fresh stream"))
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_interconnect,
    bench_engine,
    bench_workloads
);
criterion_main!(benches);
