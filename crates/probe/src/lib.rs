//! Zero-overhead instrumentation for the MCM-GPU simulator.
//!
//! The simulator's run loop and every contended component accept a
//! generic [`Probe`] parameter. A probe is a passive observer: hooks
//! fire at interesting moments (a request enters a hierarchy stage, a
//! warp changes state, bytes cross a link) and the probe may record
//! them, but it can never influence timing — instrumented and
//! uninstrumented runs are cycle-identical by construction.
//!
//! The default [`NullProbe`] implements every hook as an empty inlined
//! default method, so the monomorphized uninstrumented simulator
//! contains no probe code at all: observability is free when off.
//!
//! Three concrete sinks ship here, all hermetic (hand-rolled JSON, no
//! external crates):
//!
//! * [`ChromeTraceProbe`](chrome::ChromeTraceProbe) — Chrome
//!   trace-event JSON of per-request lifecycles and warp phases,
//!   viewable in Perfetto (<https://ui.perfetto.dev>).
//! * [`MetricsProbe`](metrics::MetricsProbe) — fixed-bucket time
//!   series (link bytes, DRAM bandwidth, MSHR occupancy, cache hit
//!   rates, per-GPM warp-state breakdown) exported as tidy CSV through
//!   the workspace's `Tabular`/`ToCsv` machinery.
//! * [`StallProfile`](stall::StallProfile) — attributes every
//!   warp-cycle to issue/compute/local-mem/remote-mem/MSHR-full/drain,
//!   the measured analogue of the paper's Fig. 16 decomposition.
//!
//! # Example
//!
//! ```
//! use mcm_engine::Cycle;
//! use mcm_probe::{NullProbe, Probe, WarpPhase};
//!
//! // A custom probe: count warp state transitions.
//! #[derive(Default)]
//! struct Transitions(u64);
//! impl Probe for Transitions {
//!     fn warp_phase(&mut self, _w: u32, _sm: u32, _now: Cycle, _p: WarpPhase) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let mut t = Transitions::default();
//! t.warp_phase(0, 0, Cycle::ZERO, WarpPhase::Compute);
//! assert_eq!(t.0, 1);
//! assert!(!<NullProbe as Probe>::ACTIVE);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod stall;

pub use chrome::ChromeTraceProbe;
pub use metrics::MetricsProbe;
pub use stall::StallProfile;

use mcm_engine::Cycle;

/// What a warp is doing, as attributed by the run loop — the vocabulary
/// of the paper's Fig. 16 speedup decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WarpPhase {
    /// Scheduled and issuing instructions (front-end time).
    Issue,
    /// Executing a compute burst.
    Compute,
    /// Waiting on a load homed in the local DRAM partition.
    LocalMem,
    /// Waiting on a load homed in a remote partition (crossed the ring).
    RemoteMem,
    /// Stalled replaying a load because the SM's MSHR table is full.
    MshrFull,
    /// Out of instructions, draining in-flight loads before retiring.
    Drain,
}

impl WarpPhase {
    /// Every phase, in display order.
    pub const ALL: [WarpPhase; 6] = [
        WarpPhase::Issue,
        WarpPhase::Compute,
        WarpPhase::LocalMem,
        WarpPhase::RemoteMem,
        WarpPhase::MshrFull,
        WarpPhase::Drain,
    ];

    /// The memory-wait phase for a load of the given locality.
    #[inline]
    pub const fn mem(remote: bool) -> WarpPhase {
        if remote {
            WarpPhase::RemoteMem
        } else {
            WarpPhase::LocalMem
        }
    }

    /// Short lowercase label ("compute", "remote-mem", ...).
    pub const fn label(self) -> &'static str {
        match self {
            WarpPhase::Issue => "issue",
            WarpPhase::Compute => "compute",
            WarpPhase::LocalMem => "local-mem",
            WarpPhase::RemoteMem => "remote-mem",
            WarpPhase::MshrFull => "mshr-full",
            WarpPhase::Drain => "drain",
        }
    }
}

impl std::fmt::Display for WarpPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The hierarchy stage an in-flight memory request has entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqStage {
    /// Probing the GPM-side L1.5 and crossing the module crossbar.
    Access,
    /// Riding the inter-module network toward the home module; `at` is
    /// the node the message currently sits at.
    ToHome {
        /// Current node.
        at: u8,
    },
    /// Accessing the home module's L2/DRAM.
    Mem,
    /// Riding the network back to the requester; `at` is the node the
    /// response currently sits at.
    ToRequester {
        /// Current node.
        at: u8,
    },
}

impl ReqStage {
    /// Short label for trace rendering.
    pub fn label(self) -> String {
        match self {
            ReqStage::Access => "l1.5+xbar".to_string(),
            ReqStage::ToHome { at } => format!("ring>@{at}"),
            ReqStage::Mem => "mem".to_string(),
            ReqStage::ToRequester { at } => format!("ring<@{at}"),
        }
    }
}

/// Identifies one unidirectional inter-module link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkId {
    /// Ring segment carrying node `i` → node `i + 1`.
    RingCw(u8),
    /// Ring segment carrying node `i + 1` → node `i`.
    RingCcw(u8),
    /// Direct link of a fully connected fabric.
    Mesh {
        /// Source node.
        from: u8,
        /// Destination node.
        to: u8,
    },
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkId::RingCw(i) => write!(f, "cw{i}"),
            LinkId::RingCcw(i) => write!(f, "ccw{i}"),
            LinkId::Mesh { from, to } => write!(f, "mesh{from}-{to}"),
        }
    }
}

/// One injected fault, as reported to probes by the fault layer so
/// sinks can render fault windows alongside ordinary traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A transfer on `link` failed CRC and is retransmitting (0-based
    /// `attempt` that failed).
    LinkRetry {
        /// The affected link.
        link: LinkId,
        /// The attempt that took the error.
        attempt: u32,
    },
    /// DRAM partition `module` served an access under thermal throttle.
    DramThrottle {
        /// The throttled partition.
        module: u32,
        /// Service-time stretch applied (`> 1.0`).
        stretch: f64,
    },
    /// Request `request`'s fill arrived poisoned and replays once.
    MshrPoison {
        /// The run-unique request id.
        request: u64,
    },
    /// Module `module`'s SM pool is offline for `kernel`; its pending
    /// CTAs were restolen to the survivors.
    ModuleDisabled {
        /// The disabled module.
        module: u32,
        /// The kernel during which it is offline.
        kernel: u32,
    },
}

impl FaultEvent {
    /// Short kind label ("link-retry", "dram-throttle", ...), used as a
    /// metric name and trace category.
    pub const fn label(self) -> &'static str {
        match self {
            FaultEvent::LinkRetry { .. } => "link-retry",
            FaultEvent::DramThrottle { .. } => "dram-throttle",
            FaultEvent::MshrPoison { .. } => "mshr-poison",
            FaultEvent::ModuleDisabled { .. } => "module-disabled",
        }
    }
}

/// Static facts about a memory request, captured at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMeta {
    /// Issuing SM (global index).
    pub sm: u32,
    /// Issuing module.
    pub module: u8,
    /// Home module of the line.
    pub home: u8,
    /// Whether the line is homed in a remote partition.
    pub remote: bool,
    /// Load (`true`) or store (`false`).
    pub is_read: bool,
}

/// A passive observer of simulator internals.
///
/// Every hook has an empty default body, so a probe implements only
/// what it cares about and everything else disappears at
/// monomorphization. Hooks receive the *event time* at which the
/// observation was made; warp-side hooks may carry warp-internal
/// timestamps that run slightly ahead of (or occasionally behind) the
/// global event clock — sinks clamp per-entity time to be monotone.
///
/// Probes must never feed information back into the simulation: the
/// golden determinism suite pins instrumented and uninstrumented runs
/// to identical cycle counts.
pub trait Probe {
    /// Whether this probe records anything. The run loop may skip
    /// argument preparation for inactive probes; hook bodies of
    /// inactive probes must be no-ops.
    const ACTIVE: bool = true;

    /// A kernel launch begins (all CTAs of iteration `kernel` become
    /// schedulable).
    fn kernel_begin(&mut self, kernel: u32, now: Cycle) {
        let _ = (kernel, now);
    }

    /// The launch fully drained; caches are about to be flushed.
    fn kernel_end(&mut self, kernel: u32, now: Cycle) {
        let _ = (kernel, now);
    }

    /// A warp was admitted to SM `sm` in runtime slot `warp`.
    fn warp_spawn(&mut self, warp: u32, sm: u32, now: Cycle) {
        let _ = (warp, sm, now);
    }

    /// Warp `warp` enters `phase` at `now`; time since its previous
    /// transition belongs to the previous phase.
    fn warp_phase(&mut self, warp: u32, sm: u32, now: Cycle, phase: WarpPhase) {
        let _ = (warp, sm, now, phase);
    }

    /// Warp `warp` retired (its slot may be reused for a later warp).
    fn warp_retire(&mut self, warp: u32, sm: u32, now: Cycle) {
        let _ = (warp, sm, now);
    }

    /// A memory request entered the system. `id` is unique within one
    /// run (never reused, unlike internal request slots).
    fn request_issued(&mut self, id: u64, now: Cycle, meta: RequestMeta) {
        let _ = (id, now, meta);
    }

    /// Request `id` entered a hierarchy stage.
    fn request_stage(&mut self, id: u64, now: Cycle, stage: ReqStage) {
        let _ = (id, now, stage);
    }

    /// Request `id` completed (data delivered or store absorbed).
    fn request_retired(&mut self, id: u64, now: Cycle) {
        let _ = (id, now);
    }

    /// A cache level was probed. `cache` is the level's static name
    /// ("L1", "L1.5", "L2"); `unit` is the SM index for the L1 and the
    /// module index otherwise. Bypassing accesses are not reported.
    fn cache_access(&mut self, cache: &'static str, unit: u32, now: Cycle, hit: bool) {
        let _ = (cache, unit, now, hit);
    }

    /// SM `sm`'s MSHR occupancy changed (entry reserved or released).
    fn mshr_occupancy(&mut self, sm: u32, now: Cycle, outstanding: u32, capacity: u32) {
        let _ = (sm, now, outstanding, capacity);
    }

    /// `bytes` were accepted by inter-module link `link` at `now`,
    /// arriving at the far side at `arrival`.
    fn link_transfer(&mut self, link: LinkId, now: Cycle, bytes: u64, arrival: Cycle) {
        let _ = (link, now, bytes, arrival);
    }

    /// `bytes` crossed module `module`'s crossbar.
    fn xbar_transfer(&mut self, module: u32, now: Cycle, bytes: u64) {
        let _ = (module, now, bytes);
    }

    /// `bytes` moved in or out of DRAM partition `partition`.
    fn dram_access(&mut self, partition: u32, now: Cycle, bytes: u64) {
        let _ = (partition, now, bytes);
    }

    /// Event-queue depth observed after popping the event at `now`.
    fn queue_depth(&mut self, now: Cycle, depth: usize) {
        let _ = (now, depth);
    }

    /// The fault layer injected `event` at `now`. Only fires when a
    /// fault plan is active; fault-free runs never call it.
    fn fault(&mut self, now: Cycle, event: FaultEvent) {
        let _ = (now, event);
    }
}

/// The do-nothing probe: every hook is an inlined empty default, so a
/// simulator monomorphized over `NullProbe` carries no instrumentation
/// code at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ACTIVE: bool = false;
}

/// Two probes side by side: every hook forwards to both. Nest tuples to
/// combine more than two.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;

    fn kernel_begin(&mut self, kernel: u32, now: Cycle) {
        self.0.kernel_begin(kernel, now);
        self.1.kernel_begin(kernel, now);
    }

    fn kernel_end(&mut self, kernel: u32, now: Cycle) {
        self.0.kernel_end(kernel, now);
        self.1.kernel_end(kernel, now);
    }

    fn warp_spawn(&mut self, warp: u32, sm: u32, now: Cycle) {
        self.0.warp_spawn(warp, sm, now);
        self.1.warp_spawn(warp, sm, now);
    }

    fn warp_phase(&mut self, warp: u32, sm: u32, now: Cycle, phase: WarpPhase) {
        self.0.warp_phase(warp, sm, now, phase);
        self.1.warp_phase(warp, sm, now, phase);
    }

    fn warp_retire(&mut self, warp: u32, sm: u32, now: Cycle) {
        self.0.warp_retire(warp, sm, now);
        self.1.warp_retire(warp, sm, now);
    }

    fn request_issued(&mut self, id: u64, now: Cycle, meta: RequestMeta) {
        self.0.request_issued(id, now, meta);
        self.1.request_issued(id, now, meta);
    }

    fn request_stage(&mut self, id: u64, now: Cycle, stage: ReqStage) {
        self.0.request_stage(id, now, stage);
        self.1.request_stage(id, now, stage);
    }

    fn request_retired(&mut self, id: u64, now: Cycle) {
        self.0.request_retired(id, now);
        self.1.request_retired(id, now);
    }

    fn cache_access(&mut self, cache: &'static str, unit: u32, now: Cycle, hit: bool) {
        self.0.cache_access(cache, unit, now, hit);
        self.1.cache_access(cache, unit, now, hit);
    }

    fn mshr_occupancy(&mut self, sm: u32, now: Cycle, outstanding: u32, capacity: u32) {
        self.0.mshr_occupancy(sm, now, outstanding, capacity);
        self.1.mshr_occupancy(sm, now, outstanding, capacity);
    }

    fn link_transfer(&mut self, link: LinkId, now: Cycle, bytes: u64, arrival: Cycle) {
        self.0.link_transfer(link, now, bytes, arrival);
        self.1.link_transfer(link, now, bytes, arrival);
    }

    fn xbar_transfer(&mut self, module: u32, now: Cycle, bytes: u64) {
        self.0.xbar_transfer(module, now, bytes);
        self.1.xbar_transfer(module, now, bytes);
    }

    fn dram_access(&mut self, partition: u32, now: Cycle, bytes: u64) {
        self.0.dram_access(partition, now, bytes);
        self.1.dram_access(partition, now, bytes);
    }

    fn queue_depth(&mut self, now: Cycle, depth: usize) {
        self.0.queue_depth(now, depth);
        self.1.queue_depth(now, depth);
    }

    fn fault(&mut self, now: Cycle, event: FaultEvent) {
        self.0.fault(now, event);
        self.1.fault(now, event);
    }
}

/// A probe behind a mutable reference: every hook forwards to the
/// referent. This lets a run loop *own* its probe generically (`P:
/// Probe`) while the caller keeps the concrete sink — instantiate the
/// loop with `P = &mut ConcreteSink`.
impl<P: Probe> Probe for &mut P {
    const ACTIVE: bool = P::ACTIVE;

    fn kernel_begin(&mut self, kernel: u32, now: Cycle) {
        (**self).kernel_begin(kernel, now);
    }

    fn kernel_end(&mut self, kernel: u32, now: Cycle) {
        (**self).kernel_end(kernel, now);
    }

    fn warp_spawn(&mut self, warp: u32, sm: u32, now: Cycle) {
        (**self).warp_spawn(warp, sm, now);
    }

    fn warp_phase(&mut self, warp: u32, sm: u32, now: Cycle, phase: WarpPhase) {
        (**self).warp_phase(warp, sm, now, phase);
    }

    fn warp_retire(&mut self, warp: u32, sm: u32, now: Cycle) {
        (**self).warp_retire(warp, sm, now);
    }

    fn request_issued(&mut self, id: u64, now: Cycle, meta: RequestMeta) {
        (**self).request_issued(id, now, meta);
    }

    fn request_stage(&mut self, id: u64, now: Cycle, stage: ReqStage) {
        (**self).request_stage(id, now, stage);
    }

    fn request_retired(&mut self, id: u64, now: Cycle) {
        (**self).request_retired(id, now);
    }

    fn cache_access(&mut self, cache: &'static str, unit: u32, now: Cycle, hit: bool) {
        (**self).cache_access(cache, unit, now, hit);
    }

    fn mshr_occupancy(&mut self, sm: u32, now: Cycle, outstanding: u32, capacity: u32) {
        (**self).mshr_occupancy(sm, now, outstanding, capacity);
    }

    fn link_transfer(&mut self, link: LinkId, now: Cycle, bytes: u64, arrival: Cycle) {
        (**self).link_transfer(link, now, bytes, arrival);
    }

    fn xbar_transfer(&mut self, module: u32, now: Cycle, bytes: u64) {
        (**self).xbar_transfer(module, now, bytes);
    }

    fn dram_access(&mut self, partition: u32, now: Cycle, bytes: u64) {
        (**self).dram_access(partition, now, bytes);
    }

    fn queue_depth(&mut self, now: Cycle, depth: usize) {
        (**self).queue_depth(now, depth);
    }

    fn fault(&mut self, now: Cycle, event: FaultEvent) {
        (**self).fault(now, event);
    }
}

/// An optional probe: `None` behaves like [`NullProbe`] (but is only
/// known inactive at run time, so prefer `NullProbe` when the choice is
/// static).
impl<P: Probe> Probe for Option<P> {
    const ACTIVE: bool = P::ACTIVE;

    fn kernel_begin(&mut self, kernel: u32, now: Cycle) {
        if let Some(p) = self {
            p.kernel_begin(kernel, now);
        }
    }

    fn kernel_end(&mut self, kernel: u32, now: Cycle) {
        if let Some(p) = self {
            p.kernel_end(kernel, now);
        }
    }

    fn warp_spawn(&mut self, warp: u32, sm: u32, now: Cycle) {
        if let Some(p) = self {
            p.warp_spawn(warp, sm, now);
        }
    }

    fn warp_phase(&mut self, warp: u32, sm: u32, now: Cycle, phase: WarpPhase) {
        if let Some(p) = self {
            p.warp_phase(warp, sm, now, phase);
        }
    }

    fn warp_retire(&mut self, warp: u32, sm: u32, now: Cycle) {
        if let Some(p) = self {
            p.warp_retire(warp, sm, now);
        }
    }

    fn request_issued(&mut self, id: u64, now: Cycle, meta: RequestMeta) {
        if let Some(p) = self {
            p.request_issued(id, now, meta);
        }
    }

    fn request_stage(&mut self, id: u64, now: Cycle, stage: ReqStage) {
        if let Some(p) = self {
            p.request_stage(id, now, stage);
        }
    }

    fn request_retired(&mut self, id: u64, now: Cycle) {
        if let Some(p) = self {
            p.request_retired(id, now);
        }
    }

    fn cache_access(&mut self, cache: &'static str, unit: u32, now: Cycle, hit: bool) {
        if let Some(p) = self {
            p.cache_access(cache, unit, now, hit);
        }
    }

    fn mshr_occupancy(&mut self, sm: u32, now: Cycle, outstanding: u32, capacity: u32) {
        if let Some(p) = self {
            p.mshr_occupancy(sm, now, outstanding, capacity);
        }
    }

    fn link_transfer(&mut self, link: LinkId, now: Cycle, bytes: u64, arrival: Cycle) {
        if let Some(p) = self {
            p.link_transfer(link, now, bytes, arrival);
        }
    }

    fn xbar_transfer(&mut self, module: u32, now: Cycle, bytes: u64) {
        if let Some(p) = self {
            p.xbar_transfer(module, now, bytes);
        }
    }

    fn dram_access(&mut self, partition: u32, now: Cycle, bytes: u64) {
        if let Some(p) = self {
            p.dram_access(partition, now, bytes);
        }
    }

    fn queue_depth(&mut self, now: Cycle, depth: usize) {
        if let Some(p) = self {
            p.queue_depth(now, depth);
        }
    }

    fn fault(&mut self, now: Cycle, event: FaultEvent) {
        if let Some(p) = self {
            p.fault(now, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reads `P::ACTIVE` through a generic fn so the assertions below
    /// exercise the same const the instrumentation sites see.
    fn active<P: Probe>() -> bool {
        P::ACTIVE
    }

    #[derive(Default)]
    struct CountAll(u64);

    impl Probe for CountAll {
        fn warp_phase(&mut self, _w: u32, _sm: u32, _now: Cycle, _p: WarpPhase) {
            self.0 += 1;
        }

        fn dram_access(&mut self, _p: u32, _now: Cycle, _b: u64) {
            self.0 += 1;
        }
    }

    #[test]
    fn null_probe_is_inactive_and_inert() {
        assert!(!active::<NullProbe>());
        let mut p = NullProbe;
        p.warp_phase(0, 0, Cycle::ZERO, WarpPhase::Drain);
        p.queue_depth(Cycle::new(5), 3);
    }

    #[test]
    fn pair_forwards_to_both() {
        let mut pair = (CountAll::default(), CountAll::default());
        assert!(active::<(CountAll, CountAll)>());
        pair.warp_phase(1, 0, Cycle::ZERO, WarpPhase::Compute);
        pair.dram_access(0, Cycle::ZERO, 128);
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);
        // A pair with a NullProbe half stays active.
        assert!(active::<(CountAll, NullProbe)>());
        assert!(!active::<(NullProbe, NullProbe)>());
    }

    #[test]
    fn mut_ref_forwards_and_mirrors_active() {
        let mut sink = CountAll::default();
        {
            let fwd: &mut CountAll = &mut sink;
            assert!(active::<&mut CountAll>());
            fwd.warp_phase(0, 0, Cycle::ZERO, WarpPhase::Compute);
            fwd.dram_access(0, Cycle::ZERO, 64);
        }
        assert_eq!(sink.0, 2);
        assert!(!active::<&mut NullProbe>());
    }

    #[test]
    fn option_forwards_when_some() {
        let mut p: Option<CountAll> = Some(CountAll::default());
        p.warp_phase(0, 0, Cycle::ZERO, WarpPhase::Issue);
        assert_eq!(p.as_ref().unwrap().0, 1);
        let mut none: Option<CountAll> = None;
        none.warp_phase(0, 0, Cycle::ZERO, WarpPhase::Issue);
    }

    #[test]
    fn phase_labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in WarpPhase::ALL {
            assert!(seen.insert(p.label()));
        }
        assert_eq!(WarpPhase::mem(true), WarpPhase::RemoteMem);
        assert_eq!(WarpPhase::mem(false), WarpPhase::LocalMem);
    }

    #[test]
    fn vocab_displays() {
        assert_eq!(LinkId::RingCw(2).to_string(), "cw2");
        assert_eq!(LinkId::RingCcw(0).to_string(), "ccw0");
        assert_eq!(LinkId::Mesh { from: 1, to: 3 }.to_string(), "mesh1-3");
        assert_eq!(ReqStage::ToHome { at: 2 }.label(), "ring>@2");
        assert_eq!(WarpPhase::RemoteMem.to_string(), "remote-mem");
        assert_eq!(FaultEvent::MshrPoison { request: 1 }.label(), "mshr-poison");
    }

    #[derive(Default)]
    struct CountFaults(u64);

    impl Probe for CountFaults {
        fn fault(&mut self, _now: Cycle, _event: FaultEvent) {
            self.0 += 1;
        }
    }

    #[test]
    fn fault_hook_forwards_through_combinators() {
        let ev = FaultEvent::LinkRetry {
            link: LinkId::RingCw(0),
            attempt: 1,
        };
        let mut pair = (CountFaults::default(), Some(CountFaults::default()));
        pair.fault(Cycle::new(10), ev);
        assert_eq!(pair.0 .0, 1);
        assert_eq!(pair.1.as_ref().unwrap().0, 1);
        let mut none: Option<CountFaults> = None;
        none.fault(Cycle::ZERO, ev);
        NullProbe.fault(Cycle::ZERO, ev);
    }
}
