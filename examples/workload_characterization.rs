//! Workload characterization: run the full 48-benchmark suite on the
//! baseline MCM-GPU and print the memory-system profile of every
//! workload — the kind of table §4 of the paper summarizes.
//!
//! ```text
//! cargo run --release --example workload_characterization [scale]
//! ```
//!
//! `scale` (default 0.1) shrinks instruction counts; the profile shape
//! is stable under scaling.

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::{suite, Category};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.1);
    let cfg = SystemConfig::baseline_mcm();

    println!(
        "{:14} {:>13} {:>8} {:>7} {:>6} {:>6} {:>9} {:>9} {:>8}",
        "workload",
        "category",
        "foot MB",
        "IPC",
        "L1%",
        "L2%",
        "ring TB/s",
        "DRAM TB/s",
        "mem/inst"
    );
    let mut per_cat: Vec<(Category, Vec<f64>)> =
        Category::ALL.iter().map(|&c| (c, Vec::new())).collect();
    for w in suite::suite() {
        let spec = w.scaled(scale);
        let r = Simulator::run(&cfg, &spec);
        println!(
            "{:14} {:>13} {:>8} {:>7.1} {:>6.1} {:>6.1} {:>9.2} {:>9.2} {:>8.2}",
            w.name,
            w.category.label(),
            w.footprint_bytes >> 20,
            r.ipc(),
            r.l1.rate() * 100.0,
            r.l2.rate() * 100.0,
            r.inter_module_tbps(),
            r.dram_tbps(),
            r.mem_ops as f64 / r.instructions as f64,
        );
        for (c, v) in &mut per_cat {
            if *c == w.category {
                v.push(r.ipc());
            }
        }
    }
    println!();
    for (c, v) in per_cat {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:>13}: {} workloads, mean baseline IPC {:.1}",
            c.label(),
            v.len(),
            mean
        );
    }
}
