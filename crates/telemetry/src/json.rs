//! Hand-rolled JSON: a writer for snapshot sinks and a minimal reader.
//!
//! The workspace is hermetic (no serde), so this module carries both
//! directions of the `BENCH_*.json` / telemetry-snapshot formats:
//!
//! * writer helpers ([`push_escaped`], [`push_f64`]) that the snapshot
//!   and bench sinks compose into documents, and
//! * [`Json`], a full (if small) recursive-descent value parser — the
//!   in-repo JSON reader that the bench comparator and the
//!   well-formedness tests load snapshots back through.
//!
//! Numbers parse as `f64`; that is exact for every integer the sinks
//! emit (counters stay far below 2^53) and sufficient for wall-clock
//! ratios. The writer refuses non-finite floats — a NaN in a snapshot
//! is always a harness bug, never data.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted JSON string, escaping the
/// characters RFC 8259 requires (quote, backslash, control characters).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number. Integers render without a
/// fraction; everything else renders with enough digits to round-trip.
///
/// # Panics
///
/// Panics on NaN or infinity — those must never reach a snapshot.
pub fn push_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "non-finite value {v} has no JSON encoding");
    if v == v.trunc() && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:?}");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs on `f64` fidelity).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` gives deterministic iteration; duplicate
    /// keys keep the last value, as browsers do.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (one value plus whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error, or trailing garbage after the value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v == v.trunc() && *v < 9e15 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    let v: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !v.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Json::Num(v))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        // Surrogates are not paired; the sinks never
                        // emit them, so a lone surrogate maps to the
                        // replacement character rather than an error.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":"x"}],"c":{"d":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("1e999").is_err(), "infinite literal rejected");
    }

    #[test]
    fn writer_output_round_trips() {
        let mut buf = String::new();
        buf.push('{');
        push_escaped(&mut buf, "name\twith\nspecials\"");
        buf.push(':');
        push_f64(&mut buf, 1.25);
        buf.push(',');
        push_escaped(&mut buf, "n");
        buf.push(':');
        push_f64(&mut buf, 123456789.0);
        buf.push('}');
        let v = Json::parse(&buf).unwrap();
        assert_eq!(
            v.get("name\twith\nspecials\"").unwrap().as_f64(),
            Some(1.25)
        );
        assert_eq!(v.get("n").unwrap().as_u64(), Some(123456789));
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut buf = String::new();
        push_f64(&mut buf, 3.0);
        assert_eq!(buf, "3");
    }

    #[test]
    #[should_panic(expected = "no JSON encoding")]
    fn writer_rejects_nan() {
        let mut buf = String::new();
        push_f64(&mut buf, f64::NAN);
    }

    #[test]
    fn as_u64_rejects_negatives_and_fractions() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
