//! The chunked work-stealing queue over grid indices.
//!
//! Construction partitions `0..len` into contiguous chunks and deals
//! them round-robin across per-worker deques. An owner pops chunks from
//! the *front* of its deque (keeping its work contiguous and
//! cache-friendly in the planned grid order); a starving worker steals
//! a whole chunk from the *back* of a victim's deque, so owner and
//! thief contend on opposite ends.
//!
//! The structural invariant — every index leaves the queue exactly once
//! — holds under any interleaving because a chunk exists in exactly one
//! place at a time (one deque, or one worker's hands) and indices never
//! re-enter. The companion property suite drives randomized worker
//! counts and steal orders against it.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

use mcm_engine::rng::Xoshiro256;

/// How many chunks each worker's deque starts with (before clamping to
/// at least one item per chunk). More chunks = finer steal granularity
/// at slightly more locking.
const CHUNKS_PER_WORKER: usize = 4;

/// The chunk size [`GridQueue::new_balanced`] picks for a grid of `len`
/// items across `workers` workers.
pub fn default_chunk(len: usize, workers: usize) -> usize {
    (len / (workers.max(1) * CHUNKS_PER_WORKER)).max(1)
}

/// A chunked work-stealing queue over the grid indices `0..len`.
#[derive(Debug)]
pub struct GridQueue {
    decks: Vec<Mutex<VecDeque<Range<usize>>>>,
    len: usize,
}

/// One worker's private draining state: the chunk currently in its
/// hands plus its seeded steal-order RNG.
#[derive(Debug)]
pub struct WorkerState {
    current: Option<Range<usize>>,
    rng: Xoshiro256,
    stats: WorkerStats,
}

/// What one worker did while draining the queue. Accumulated locally
/// (no atomics on the hot path) and flushed to telemetry by the pool
/// when the worker retires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Grid items this worker produced.
    pub tasks: u64,
    /// Chunks stolen from another worker's deque.
    pub steals: u64,
    /// Full victim scans that found every deque empty.
    pub steal_failures: u64,
}

impl WorkerState {
    /// Creates the state for `worker` under the pool seed. Different
    /// workers get decorrelated steal orders from the same seed.
    pub fn seeded(seed: u64, worker: usize) -> Self {
        WorkerState {
            current: None,
            rng: Xoshiro256::seeded(&[seed, worker as u64]),
            stats: WorkerStats::default(),
        }
    }

    /// This worker's accumulated drain statistics.
    pub fn stats(&self) -> WorkerStats {
        self.stats
    }
}

impl GridQueue {
    /// Builds a queue over `0..len` for `workers` workers with the
    /// given chunk size (clamped to at least 1). Chunks are dealt
    /// round-robin, so worker `w` starts out owning chunks
    /// `w, w + workers, w + 2*workers, ...`.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(len: usize, workers: usize, chunk: usize) -> Self {
        assert!(workers > 0, "a grid queue needs at least one worker");
        let chunk = chunk.max(1);
        let mut decks: Vec<VecDeque<Range<usize>>> = vec![VecDeque::new(); workers];
        let mut start = 0usize;
        let mut i = 0usize;
        while start < len {
            let end = (start + chunk).min(len);
            decks[i % workers].push_back(start..end);
            start = end;
            i += 1;
        }
        GridQueue {
            decks: decks.into_iter().map(Mutex::new).collect(),
            len,
        }
    }

    /// [`GridQueue::new`] with the [`default_chunk`] size.
    pub fn new_balanced(len: usize, workers: usize) -> Self {
        GridQueue::new(len, workers, default_chunk(len, workers))
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.decks.len()
    }

    /// Total grid length the queue was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue was built over an empty grid.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Takes the front chunk of `worker`'s own deque.
    pub fn pop_chunk(&self, worker: usize) -> Option<Range<usize>> {
        self.decks[worker].lock().expect("queue lock").pop_front()
    }

    /// Steals the back chunk of `victim`'s deque.
    pub fn steal_chunk(&self, victim: usize) -> Option<Range<usize>> {
        self.decks[victim].lock().expect("queue lock").pop_back()
    }

    /// Produces `worker`'s next grid index: drains the chunk in hand,
    /// then its own deque, then steals from the other workers in a
    /// seeded-random rotation. `None` means every deque looked empty —
    /// any chunk still unprocessed is in another worker's hands and
    /// will be finished by that worker, so returning is always safe.
    pub fn next_item(&self, worker: usize, state: &mut WorkerState) -> Option<usize> {
        loop {
            if let Some(range) = &mut state.current {
                if range.start < range.end {
                    let item = range.start;
                    range.start += 1;
                    state.stats.tasks += 1;
                    return Some(item);
                }
                state.current = None;
            }
            if let Some(chunk) = self.pop_chunk(worker) {
                state.current = Some(chunk);
                continue;
            }
            let n = self.decks.len();
            let offset = state.rng.next_range(n as u64) as usize;
            let stolen = (0..n)
                .map(|k| (offset + k) % n)
                .filter(|&v| v != worker)
                .find_map(|v| self.steal_chunk(v));
            match stolen {
                Some(chunk) => {
                    state.stats.steals += 1;
                    state.current = Some(chunk);
                }
                None => {
                    state.stats.steal_failures += 1;
                    return None;
                }
            }
        }
    }

    /// Current depth (in chunks) of each worker's deque. At
    /// construction time this is the deal's high-water mark — chunks
    /// only ever leave a deque.
    pub fn deck_depths(&self) -> Vec<usize> {
        self.decks
            .iter()
            .map(|d| d.lock().expect("queue lock").len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deals_chunks_round_robin() {
        let q = GridQueue::new(10, 2, 3);
        // Chunks 0..3, 3..6, 6..9, 9..10 dealt alternately.
        assert_eq!(q.pop_chunk(0), Some(0..3));
        assert_eq!(q.pop_chunk(0), Some(6..9));
        assert_eq!(q.pop_chunk(0), None);
        assert_eq!(q.pop_chunk(1), Some(3..6));
        assert_eq!(q.pop_chunk(1), Some(9..10));
        assert_eq!(q.pop_chunk(1), None);
    }

    #[test]
    fn steal_takes_the_back() {
        let q = GridQueue::new(10, 2, 3);
        // Worker 0 owns 0..3 (front) and 6..9 (back).
        assert_eq!(q.steal_chunk(0), Some(6..9));
        assert_eq!(q.pop_chunk(0), Some(0..3));
    }

    #[test]
    fn single_worker_drains_in_grid_order() {
        let q = GridQueue::new(7, 1, 2);
        let mut state = WorkerState::seeded(1, 0);
        let mut seen = Vec::new();
        while let Some(i) = q.next_item(0, &mut state) {
            seen.push(i);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn empty_grid_yields_nothing() {
        let q = GridQueue::new_balanced(0, 3);
        assert!(q.is_empty());
        let mut state = WorkerState::seeded(1, 0);
        assert_eq!(q.next_item(0, &mut state), None);
    }

    #[test]
    fn default_chunk_never_zero() {
        assert_eq!(default_chunk(0, 4), 1);
        assert_eq!(default_chunk(3, 4), 1);
        assert!(default_chunk(1000, 4) >= 1);
    }
}
