//! The on-package ring network connecting GPMs (§3.2: GPM-Xbars
//! "collectively provide a modular on-package ring or mesh interconnect
//! network").

use mcm_engine::Cycle;

use crate::energy::Tier;
use crate::link::Link;

/// Identifies a node (GPM or GPU) on an interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u8);

impl NodeId {
    /// The node index as a `usize` for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Direction of travel around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingDir {
    /// From node `i` to node `i + 1` (mod n).
    Clockwise,
    /// From node `i` to node `i - 1` (mod n).
    CounterClockwise,
}

/// A bidirectional ring of `n` nodes built from `2n` unidirectional
/// link segments (clockwise and counter-clockwise), each with the
/// configured per-link bandwidth and per-hop latency.
///
/// A transfer from node `a` to node `b` takes the shorter direction
/// (equidistant ties spread by node parity), serializing on *every*
/// segment it crosses
/// and paying the hop latency per segment — so multi-hop remote traffic
/// consumes proportionally more ring bandwidth, exactly the effect that
/// makes locality worth engineering for.
///
/// # Example
///
/// ```
/// use mcm_engine::Cycle;
/// use mcm_interconnect::ring::{NodeId, RingNetwork};
///
/// let mut ring = RingNetwork::new(4, 768.0, Cycle::new(32));
/// assert_eq!(ring.hops(NodeId(0), NodeId(1)), 1);
/// assert_eq!(ring.hops(NodeId(0), NodeId(2)), 2); // opposite corner
/// assert_eq!(ring.hops(NodeId(0), NodeId(3)), 1); // counter-clockwise
/// let done = ring.transfer(Cycle::ZERO, NodeId(0), NodeId(2), 128);
/// assert!(done >= Cycle::new(64)); // two hops
/// ```
#[derive(Debug, Clone)]
pub struct RingNetwork {
    nodes: u8,
    /// `cw[i]` carries traffic from node i to node (i+1) % n.
    cw: Vec<Link>,
    /// `ccw[i]` carries traffic from node (i+1) % n to node i.
    ccw: Vec<Link>,
    hop_latency: Cycle,
}

impl RingNetwork {
    /// Builds an on-package (package-tier) ring of `nodes` nodes with
    /// `link_gbps` per segment per direction and `hop_latency` per hop.
    ///
    /// A 1-node ring is legal and carries no traffic (a monolithic GPU).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u8, link_gbps: f64, hop_latency: Cycle) -> Self {
        RingNetwork::with_tier(nodes, link_gbps, hop_latency, Tier::Package)
    }

    /// Like [`RingNetwork::new`] but on an explicit energy tier — the
    /// multi-GPU comparison of §6 connects GPUs with board-tier links.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn with_tier(nodes: u8, link_gbps: f64, hop_latency: Cycle, tier: Tier) -> Self {
        assert!(nodes > 0, "ring needs at least one node");
        let segs = if nodes > 1 { usize::from(nodes) } else { 0 };
        let cw = (0..segs)
            .map(|_| Link::new("ring-cw", link_gbps, hop_latency, tier))
            .collect();
        let ccw = (0..segs)
            .map(|_| Link::new("ring-ccw", link_gbps, hop_latency, tier))
            .collect();
        RingNetwork {
            nodes,
            cw,
            ccw,
            hop_latency,
        }
    }

    /// The energy tier of the ring's links (all segments share it).
    pub fn tier(&self) -> Tier {
        self.cw.first().map_or(Tier::Package, Link::tier)
    }

    /// Number of nodes on the ring.
    pub fn nodes(&self) -> u8 {
        self.nodes
    }

    /// Per-hop latency.
    pub fn hop_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// Minimum hop count between two nodes.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let n = u32::from(self.nodes);
        let a = u32::from(from.0) % n;
        let b = u32::from(to.0) % n;
        let cw = (b + n - a) % n;
        cw.min(n - cw)
    }

    /// Computes the shortest route from `from` to `to`: the direction to
    /// travel and the hop count. Equidistant routes are tie-broken by
    /// the parity of the *source* node: even sources go clockwise, odd
    /// ones counter-clockwise. On a 4-ring this splits opposite-corner
    /// traffic (requests one way, the symmetric responses the other)
    /// exactly in half per direction; a naive always-clockwise
    /// tie-break concentrates every 2-hop transfer on one direction and
    /// strands nearly half the ring's capacity.
    pub fn route(&self, from: NodeId, to: NodeId) -> (RingDir, u32) {
        let n = u32::from(self.nodes);
        let a = u32::from(from.0) % n;
        let b = u32::from(to.0) % n;
        let cw = (b + n - a) % n;
        let ccw = n - cw;
        if cw == 0 {
            (RingDir::Clockwise, 0)
        } else if cw < ccw || (cw == ccw && a % 2 == 0) {
            (RingDir::Clockwise, cw)
        } else {
            (RingDir::CounterClockwise, ccw)
        }
    }

    /// Moves `bytes` one hop from `node` in direction `dir`, starting at
    /// `now`; returns `(next_node, arrival_time)`.
    ///
    /// This is the primitive an event-driven caller should use: issuing
    /// each hop at its own (globally ordered) event time keeps every
    /// segment's next-free-time queue causally consistent. The
    /// whole-path [`RingNetwork::transfer`] convenience chains hops
    /// inside one call and is only appropriate for standalone use.
    ///
    /// # Panics
    ///
    /// Panics on a single-node ring (no segments to hop).
    #[inline]
    pub fn hop(&mut self, now: Cycle, node: NodeId, dir: RingDir, bytes: u64) -> (NodeId, Cycle) {
        self.hop_probed(now, node, dir, bytes, &mut mcm_probe::NullProbe)
    }

    /// Like [`RingNetwork::hop`], additionally reporting the segment
    /// crossed ([`mcm_probe::LinkId::RingCw`] carrying node `i` to
    /// `i + 1`, [`mcm_probe::LinkId::RingCcw`] the reverse) to `probe`.
    ///
    /// # Panics
    ///
    /// Panics on a single-node ring (no segments to hop).
    pub fn hop_probed<P: mcm_probe::Probe>(
        &mut self,
        now: Cycle,
        node: NodeId,
        dir: RingDir,
        bytes: u64,
        probe: &mut P,
    ) -> (NodeId, Cycle) {
        let n = u32::from(self.nodes);
        assert!(n > 1, "cannot hop on a single-node ring");
        let a = u32::from(node.0) % n;
        match dir {
            RingDir::Clockwise => {
                let id = mcm_probe::LinkId::RingCw(a as u8);
                let t = self.cw[a as usize].transfer_probed(now, bytes, id, probe);
                (NodeId(((a + 1) % n) as u8), t)
            }
            RingDir::CounterClockwise => {
                let prev = (a + n - 1) % n;
                let id = mcm_probe::LinkId::RingCcw(prev as u8);
                let t = self.ccw[prev as usize].transfer_probed(now, bytes, id, probe);
                (NodeId(prev as u8), t)
            }
        }
    }

    /// Like [`RingNetwork::hop_probed`], additionally consulting `plan`
    /// for transient link errors (see
    /// [`Link::transfer_faulted`](crate::link::Link::transfer_faulted)).
    ///
    /// # Panics
    ///
    /// Panics on a single-node ring (no segments to hop).
    pub fn hop_faulted<P: mcm_probe::Probe, F: mcm_fault::FaultPlan>(
        &mut self,
        now: Cycle,
        node: NodeId,
        dir: RingDir,
        bytes: u64,
        probe: &mut P,
        plan: &mut F,
    ) -> (NodeId, Cycle) {
        let n = u32::from(self.nodes);
        assert!(n > 1, "cannot hop on a single-node ring");
        let a = u32::from(node.0) % n;
        match dir {
            RingDir::Clockwise => {
                let id = mcm_probe::LinkId::RingCw(a as u8);
                let t = self.cw[a as usize].transfer_faulted(now, bytes, id, probe, plan);
                (NodeId(((a + 1) % n) as u8), t)
            }
            RingDir::CounterClockwise => {
                let prev = (a + n - 1) % n;
                let id = mcm_probe::LinkId::RingCcw(prev as u8);
                let t = self.ccw[prev as usize].transfer_faulted(now, bytes, id, probe, plan);
                (NodeId(prev as u8), t)
            }
        }
    }

    /// Sends `bytes` from `from` to `to` starting at `now`, traversing
    /// the shorter direction; returns arrival time. A self-transfer
    /// costs nothing and arrives immediately.
    ///
    /// Convenience for standalone use and tests; inside an event-driven
    /// simulation prefer one [`RingNetwork::hop`] per event (see its
    /// documentation for why).
    pub fn transfer(&mut self, now: Cycle, from: NodeId, to: NodeId, bytes: u64) -> Cycle {
        let (dir, hops) = self.route(from, to);
        let mut t = now;
        let mut node = from;
        for _ in 0..hops {
            let (next, done) = self.hop(t, node, dir, bytes);
            node = next;
            t = done;
        }
        t
    }

    /// Takes over from `other` (a same-shaped replica) the segments
    /// whose charging node belongs to shard `shard` of `shards` (node
    /// `i` is owned by shard `i % shards`). A clockwise hop at node `i`
    /// charges `cw[i]`; a counter-clockwise hop at node `i + 1` charges
    /// `ccw[i]` — so each segment is charged by exactly one node, and a
    /// sharded run where each node's hops are processed by its owner
    /// touches disjoint segment sets. The merge simply swaps the owned
    /// segments in (the local copies are pristine).
    ///
    /// # Panics
    ///
    /// Panics if the rings differ in size.
    pub fn absorb_owned(&mut self, other: &mut RingNetwork, shards: usize, shard: usize) {
        assert_eq!(self.nodes, other.nodes, "absorbing a different ring");
        let n = usize::from(self.nodes);
        for i in 0..self.cw.len() {
            if i % shards == shard {
                std::mem::swap(&mut self.cw[i], &mut other.cw[i]);
            }
            if (i + 1) % n % shards == shard {
                std::mem::swap(&mut self.ccw[i], &mut other.ccw[i]);
            }
        }
    }

    /// Total bytes carried across all segments (multi-hop transfers
    /// count once per segment crossed).
    pub fn total_segment_bytes(&self) -> u64 {
        self.cw
            .iter()
            .chain(self.ccw.iter())
            .map(Link::total_bytes)
            .sum()
    }

    /// Aggregate achieved ring bandwidth over `elapsed`, in GB/s,
    /// summed over all segments. This is the quantity Figs. 7/10/14
    /// plot as "Inter-GPM BW".
    pub fn achieved_gbps(&self, elapsed: Cycle) -> f64 {
        self.cw
            .iter()
            .chain(self.ccw.iter())
            .map(|l| l.achieved_gbps(elapsed))
            .sum()
    }

    /// The most-utilized segment's utilization over `elapsed` — the
    /// ring's bottleneck.
    pub fn peak_utilization(&self, elapsed: Cycle) -> f64 {
        self.cw
            .iter()
            .chain(self.ccw.iter())
            .map(|l| l.utilization(elapsed))
            .fold(0.0, f64::max)
    }

    /// Total energy dissipated on ring segments, in joules.
    pub fn joules(&self) -> f64 {
        self.cw
            .iter()
            .chain(self.ccw.iter())
            .map(Link::joules)
            .sum()
    }

    /// Per-segment `(cw, ccw)` next-free cycles (diagnostics).
    #[doc(hidden)]
    pub fn debug_segment_next_free(&self) -> Vec<(u64, u64)> {
        self.cw
            .iter()
            .zip(&self.ccw)
            .map(|(a, b)| (a.debug_next_free().as_u64(), b.debug_next_free().as_u64()))
            .collect()
    }

    /// Per-segment `(cw_bytes, ccw_bytes)` totals (diagnostics).
    #[doc(hidden)]
    pub fn debug_segment_bytes(&self) -> Vec<(u64, u64)> {
        self.cw
            .iter()
            .zip(&self.ccw)
            .map(|(a, b)| (a.total_bytes(), b.total_bytes()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counts_on_a_four_ring() {
        let ring = RingNetwork::new(4, 768.0, Cycle::new(32));
        assert_eq!(ring.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(ring.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(ring.hops(NodeId(0), NodeId(2)), 2);
        assert_eq!(ring.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(ring.hops(NodeId(3), NodeId(1)), 2);
        assert_eq!(ring.hops(NodeId(2), NodeId(3)), 1);
    }

    #[test]
    fn self_transfer_is_free() {
        let mut ring = RingNetwork::new(4, 768.0, Cycle::new(32));
        assert_eq!(
            ring.transfer(Cycle::new(5), NodeId(2), NodeId(2), 1 << 20),
            Cycle::new(5)
        );
        assert_eq!(ring.total_segment_bytes(), 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut ring = RingNetwork::new(4, 1_000_000.0, Cycle::new(32));
        let one = ring.transfer(Cycle::ZERO, NodeId(0), NodeId(1), 128);
        let two = ring.transfer(Cycle::ZERO, NodeId(0), NodeId(2), 128);
        assert_eq!(one, Cycle::new(33)); // serialization rounds to 1
        assert_eq!(two, Cycle::new(66));
    }

    #[test]
    fn multi_hop_charges_every_segment() {
        let mut ring = RingNetwork::new(4, 768.0, Cycle::new(32));
        ring.transfer(Cycle::ZERO, NodeId(0), NodeId(2), 128);
        assert_eq!(ring.total_segment_bytes(), 256);
    }

    #[test]
    fn counter_clockwise_route_is_taken_when_shorter() {
        let mut ring = RingNetwork::new(4, 768.0, Cycle::new(32));
        // 0 -> 3 is one hop counter-clockwise, three clockwise.
        let t = ring.transfer(Cycle::ZERO, NodeId(0), NodeId(3), 768);
        assert_eq!(t, Cycle::new(33));
        // Reverse direction uses the other physical links.
        let t2 = ring.transfer(Cycle::ZERO, NodeId(3), NodeId(0), 768);
        assert_eq!(t2, Cycle::new(33), "no contention with opposite direction");
    }

    #[test]
    fn contention_on_shared_segment() {
        let mut ring = RingNetwork::new(4, 128.0, Cycle::new(0));
        // Both 0->1 and 0->1 share segment cw[0].
        let a = ring.transfer(Cycle::ZERO, NodeId(0), NodeId(1), 1280); // 10 cycles
        let b = ring.transfer(Cycle::ZERO, NodeId(0), NodeId(1), 1280);
        assert_eq!(a, Cycle::new(10));
        assert_eq!(b, Cycle::new(20));
        assert!(ring.peak_utilization(b) > 0.9);
    }

    #[test]
    fn single_node_ring_is_inert() {
        let mut ring = RingNetwork::new(1, 768.0, Cycle::new(32));
        assert_eq!(ring.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(
            ring.transfer(Cycle::ZERO, NodeId(0), NodeId(0), 128),
            Cycle::ZERO
        );
        assert_eq!(ring.achieved_gbps(Cycle::new(100)), 0.0);
    }

    #[test]
    fn two_node_ring_uses_distinct_directions() {
        let mut ring = RingNetwork::new(2, 100.0, Cycle::new(1));
        let a = ring.transfer(Cycle::ZERO, NodeId(0), NodeId(1), 1000);
        let b = ring.transfer(Cycle::ZERO, NodeId(1), NodeId(0), 1000);
        // Each direction has its own link: no mutual contention.
        assert_eq!(a, b);
    }

    #[test]
    fn energy_accounts_per_segment() {
        let mut ring = RingNetwork::new(4, 768.0, Cycle::ZERO);
        ring.transfer(Cycle::ZERO, NodeId(0), NodeId(2), 1000);
        let expect = crate::energy::Tier::Package.joules_for_bytes(2000);
        assert!((ring.joules() - expect).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        RingNetwork::new(0, 768.0, Cycle::ZERO);
    }

    #[test]
    fn probed_hops_name_the_segments() {
        #[derive(Default)]
        struct Log(Vec<String>);
        impl mcm_probe::Probe for Log {
            fn link_transfer(
                &mut self,
                link: mcm_probe::LinkId,
                _now: Cycle,
                _bytes: u64,
                _arrival: Cycle,
            ) {
                self.0.push(link.to_string());
            }
        }
        let mut log = Log::default();
        let mut ring = RingNetwork::new(4, 768.0, Cycle::new(32));
        ring.hop_probed(Cycle::ZERO, NodeId(0), RingDir::Clockwise, 128, &mut log);
        // Counter-clockwise from node 0 crosses the segment owned by
        // node 3 (ccw[3] carries traffic from node 0 to node 3).
        ring.hop_probed(
            Cycle::ZERO,
            NodeId(0),
            RingDir::CounterClockwise,
            128,
            &mut log,
        );
        assert_eq!(log.0, vec!["cw0", "ccw3"]);
    }
}
