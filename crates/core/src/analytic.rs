//! Calibrated first-order analytical performance model: the
//! microsecond-scale fast path for design-space exploration.
//!
//! [`crate::analysis`] answers one question (link sizing) from one
//! equation. This module grows that back-of-the-envelope reasoning into
//! a full [`AnalyticModel`] that predicts IPC, per-level hit rates, and
//! inter-GPM traffic for any `(SystemConfig, WorkloadSpec)` pair using
//! only closed-form locality/bandwidth/queueing terms:
//!
//! * **supply per partition** — `b / (1 - h)` post-L2 bandwidth, the
//!   §3.3.1 argument, generalized to estimated (not assumed) hit rates;
//! * **remote fraction** — per access region under the configuration's
//!   page placement and CTA scheduler (interleaved ≈ `(n-1)/n`,
//!   first-touch + chunked scheduling localizes own-slice and neighbor
//!   traffic, shared/cold traffic is irreducibly `(n-1)/n` remote);
//! * **L1.5 / DS filtering** — a capacity-fit estimate of how much
//!   remote traffic the GPM-side cache absorbs under its allocation
//!   filter (§5.1);
//! * **DRAM and link saturation** — throughput ceilings from total DRAM
//!   bandwidth and aggregate ring/fully-connected segment capacity;
//! * **latency / queueing** — a Little's-law bound from in-flight miss
//!   capacity over the utilization-inflated average miss latency;
//! * **scheduler locality bonus** — distributed-family schedulers keep
//!   adjacent CTAs on one GPM, which first-touch placement converts
//!   into locality (§5.2 + §5.3 compounding).
//!
//! The raw terms get the *shape* of the design space right; a
//! [`Calibration`] fitted once per workload category against a handful
//! of event-simulator anchor runs fixes the absolute level. Scoring a
//! point after calibration is pure arithmetic — microseconds, no
//! simulation — which turns 10^4–10^6-point grids from impossible into
//! routine (see `mcm_bench::planner`). `tests/analysis_vs_simulation.rs`
//! pins the per-category error envelope across the full 48-workload
//! suite.

use std::sync::OnceLock;

use mcm_engine::rng::Xoshiro256;
use mcm_mem::addr::LINE_BYTES;
use mcm_mem::cache::AllocFilter;
use mcm_mem::page::PlacementPolicy;
use mcm_sm::SchedulerPolicy;
use mcm_telemetry::{Class, Counter};
use mcm_workloads::descriptor::ModelDescriptor;
use mcm_workloads::spec::{Category, WorkloadSpec};
use mcm_workloads::suite;

use crate::config::SystemConfig;
use crate::report::RunReport;
use crate::system::{
    L15_LATENCY, L15_TAG_LATENCY, L1_LATENCY, L2_LATENCY, REQUEST_BYTES, XBAR_LATENCY,
};

/// Pre-registered global `analytic.*` telemetry owned by the model
/// itself; the planner layers (`mcm_bench::planner`) register the
/// pruning/confirmation counters of the same scope.
struct AnalyticTele {
    scored: Counter,
    calibrations: Counter,
}

fn tele() -> &'static AnalyticTele {
    static TELE: OnceLock<AnalyticTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let reg = mcm_telemetry::global();
        AnalyticTele {
            scored: reg.counter("analytic.scored", Class::Deterministic),
            calibrations: reg.counter("analytic.calibrations", Class::Deterministic),
        }
    })
}

/// What the model predicts for one `(configuration, workload)` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Warp instructions per cycle, whole machine.
    pub ipc: f64,
    /// L1 hit ratio across all SMs.
    pub l1_hit_rate: f64,
    /// L1.5 hit ratio over its lookups (0 when the level is disabled
    /// or sees no eligible traffic, matching the simulator's empty
    /// ratio).
    pub l15_hit_rate: f64,
    /// Memory-side L2 hit ratio.
    pub l2_hit_rate: f64,
    /// Average inter-GPM bandwidth in TB/s (counted once per ring
    /// segment, as [`RunReport::inter_module_tbps`] counts it).
    pub inter_gpm_tbps: f64,
    /// Average DRAM bandwidth in TB/s.
    pub dram_tbps: f64,
    /// Which first-order term clamped the IPC.
    pub bound: Bound,
}

/// The throughput ceiling that determined a [`Prediction::ipc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// SM issue slots (compute-bound, or too few warps for the SMs).
    Issue,
    /// Total DRAM bandwidth.
    Dram,
    /// Aggregate inter-GPM link capacity.
    Link,
    /// In-flight miss capacity over average miss latency.
    Latency,
}

/// Per-category multiplicative corrections fitted against the event
/// simulator. Identity coefficients (all 1.0) leave the raw first-order
/// terms untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Scales the raw IPC bound.
    pub ipc_gain: f64,
    /// Scales the raw L1 hit estimate.
    pub l1_gain: f64,
    /// Scales the raw L1.5 hit estimate.
    pub l15_gain: f64,
    /// Scales the raw L2 hit estimate.
    pub l2_gain: f64,
    /// Scales the raw inter-GPM traffic estimate.
    pub traffic_gain: f64,
}

impl Coefficients {
    /// The do-nothing correction.
    pub const fn identity() -> Self {
        Coefficients {
            ipc_gain: 1.0,
            l1_gain: 1.0,
            l15_gain: 1.0,
            l2_gain: 1.0,
            traffic_gain: 1.0,
        }
    }
}

impl Default for Coefficients {
    fn default() -> Self {
        Coefficients::identity()
    }
}

/// What one simulator run measured, reduced to the quantities the model
/// predicts — the unit of calibration evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Measured IPC.
    pub ipc: f64,
    /// Measured L1 hit ratio.
    pub l1: f64,
    /// Measured L1.5 hit ratio (0 when the level was disabled).
    pub l15: f64,
    /// Measured L2 hit ratio.
    pub l2: f64,
    /// Measured inter-GPM bandwidth in TB/s.
    pub inter_gpm_tbps: f64,
}

impl Observation {
    /// Reduces a full [`RunReport`] to calibration evidence.
    pub fn from_report(report: &RunReport) -> Self {
        Observation {
            ipc: report.ipc(),
            l1: report.l1.rate(),
            l15: report.l15.rate(),
            l2: report.l2.rate(),
            inter_gpm_tbps: report.inter_module_tbps(),
        }
    }
}

fn cat_index(cat: Category) -> usize {
    match cat {
        Category::MemoryIntensive => 0,
        Category::ComputeIntensive => 1,
        Category::LimitedParallelism => 2,
    }
}

/// Ratio gains are clamped to this band: an anchor so far off the raw
/// model that it demands a >32x correction is evidence of a broken
/// anchor, and letting it through would poison every prediction in its
/// category.
const GAIN_BAND: (f64, f64) = (1.0 / 32.0, 32.0);

/// A fitted set of per-category [`Coefficients`].
///
/// Fitting is *pure*: given the same anchor observations it always
/// produces bit-identical coefficients, so a calibration is as
/// reproducible as the simulator runs behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    coeffs: [Coefficients; 3],
}

impl Calibration {
    /// The identity calibration (raw first-order terms pass through).
    pub const fn identity() -> Self {
        Calibration {
            coeffs: [Coefficients::identity(); 3],
        }
    }

    /// The fitted coefficients for one category.
    pub fn coefficients(&self, cat: Category) -> &Coefficients {
        &self.coeffs[cat_index(cat)]
    }

    /// The anchor grid for a seeded calibration: one seeded workload
    /// per category crossed with three configurations spanning the
    /// design axes the model must rank (starved links, ample links,
    /// the full optimization stack). Deterministic in `seed`.
    pub fn anchor_pairs(seed: u64) -> Vec<(SystemConfig, WorkloadSpec)> {
        let mut rng = Xoshiro256::new(seed ^ 0xA17A_11C5_EED5_EEDE);
        let all = suite::suite();
        let mut picks: Vec<WorkloadSpec> = Vec::with_capacity(Category::ALL.len());
        for cat in Category::ALL {
            let of_cat: Vec<&WorkloadSpec> = all.iter().filter(|w| w.category == cat).collect();
            assert!(!of_cat.is_empty(), "suite has no {cat} workloads");
            picks.push(of_cat[rng.next_range(of_cat.len() as u64) as usize].clone());
        }
        let configs = [
            SystemConfig::mcm_with_link(768.0),
            SystemConfig::baseline_mcm(),
            SystemConfig::optimized_mcm(),
        ];
        configs
            .iter()
            .flat_map(|c| picks.iter().map(move |w| (c.clone(), w.clone())))
            .collect()
    }

    /// Fits per-category coefficients from anchor observations: each
    /// gain is the geometric mean of `observed / raw-predicted` over
    /// that category's anchors (clamped to a sane band). Categories
    /// with no anchors keep identity coefficients.
    pub fn fit(anchors: &[(SystemConfig, WorkloadSpec, Observation)]) -> Self {
        let raw = AnalyticModel::uncalibrated();
        // Per category: sum of log-ratios and count, per quantity.
        let mut logs = [[0.0f64; 5]; 3];
        let mut counts = [[0u32; 5]; 3];
        for (cfg, spec, obs) in anchors {
            let p = raw.predict(cfg, spec);
            let i = cat_index(spec.category);
            let pairs = [
                (obs.ipc, p.ipc),
                (obs.l1, p.l1_hit_rate),
                (obs.l15, p.l15_hit_rate),
                (obs.l2, p.l2_hit_rate),
                (obs.inter_gpm_tbps, p.inter_gpm_tbps),
            ];
            for (q, (observed, predicted)) in pairs.iter().enumerate() {
                // A quantity absent on both sides (no L1.5, no remote
                // traffic) carries no calibration signal.
                if *observed <= 1e-12 && *predicted <= 1e-12 {
                    continue;
                }
                let ratio =
                    ((observed + 1e-9) / (predicted + 1e-9)).clamp(GAIN_BAND.0, GAIN_BAND.1);
                logs[i][q] += ratio.ln();
                counts[i][q] += 1;
            }
        }
        let mut coeffs = [Coefficients::identity(); 3];
        for i in 0..3 {
            let gain = |q: usize| -> f64 {
                if counts[i][q] == 0 {
                    1.0
                } else {
                    (logs[i][q] / f64::from(counts[i][q])).exp()
                }
            };
            coeffs[i] = Coefficients {
                ipc_gain: gain(0),
                l1_gain: gain(1),
                l15_gain: gain(2),
                l2_gain: gain(3),
                traffic_gain: gain(4),
            };
        }
        tele().calibrations.inc();
        Calibration { coeffs }
    }

    /// Seeded end-to-end calibration: picks [`Calibration::anchor_pairs`]
    /// for `seed`, scales each anchor workload by `scale`, obtains one
    /// [`Observation`] per pair from `run` (the event simulator, a
    /// memoized sweep runner, a store-backed service — anything that
    /// measures), and fits. The runner receives the *already scaled*
    /// spec and must simulate it exactly as given, so the raw model and
    /// the measurement see the same instruction horizon. Same seed,
    /// scale, and runner behaviour → bit-identical coefficients.
    pub fn fit_with<F>(seed: u64, scale: f64, mut run: F) -> Self
    where
        F: FnMut(&SystemConfig, &WorkloadSpec) -> Observation,
    {
        let anchors: Vec<(SystemConfig, WorkloadSpec, Observation)> =
            Calibration::anchor_pairs(seed)
                .into_iter()
                .map(|(cfg, spec)| {
                    let spec = spec.scaled(scale);
                    let obs = run(&cfg, &spec);
                    (cfg, spec, obs)
                })
                .collect();
        Calibration::fit(&anchors)
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::identity()
    }
}

/// The calibrated analytical fast path: closed-form predictions for any
/// `(SystemConfig, WorkloadSpec)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticModel {
    calibration: Calibration,
}

/// Smooth capacity-fit estimate: the probability a region of
/// `pressure` lines competing for `capacity` lines is resident —
/// `capacity / (capacity + pressure)`, monotone in both arguments and
/// strictly inside `[0, 1)`.
fn fit(capacity: f64, pressure: f64) -> f64 {
    let p = pressure.max(1.0);
    capacity / (capacity + p)
}

/// Average shortest-path segment count between distinct nodes on a
/// bidirectional ring of `n` nodes (1.0 for n <= 2, 4/3 for n = 4).
fn ring_hops(n: u32) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let total: u64 = (1..u64::from(n)).map(|k| k.min(u64::from(n) - k)).sum();
    total as f64 / f64::from(n - 1)
}

impl AnalyticModel {
    /// A model with identity calibration: raw first-order terms only.
    pub const fn uncalibrated() -> Self {
        AnalyticModel {
            calibration: Calibration::identity(),
        }
    }

    /// A model applying the given fitted calibration.
    pub const fn with_calibration(calibration: Calibration) -> Self {
        AnalyticModel { calibration }
    }

    /// The calibration in force.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Predicts one point. Pure arithmetic — microseconds per call.
    pub fn predict(&self, cfg: &SystemConfig, spec: &WorkloadSpec) -> Prediction {
        self.predict_descriptor(cfg, &spec.descriptor())
    }

    /// Predicts one point from a precomputed descriptor — the hot path
    /// for planners scoring one workload against thousands of
    /// configurations.
    pub fn predict_descriptor(&self, cfg: &SystemConfig, d: &ModelDescriptor) -> Prediction {
        tele().scored.inc();
        let c = self.calibration.coefficients(d.category);

        let n = f64::from(cfg.topology.modules);
        let modules = u32::from(cfg.topology.modules);
        let total_sms = f64::from(cfg.topology.sms_per_module) * n;
        let lines = |bytes: u64| (bytes / LINE_BYTES).max(1) as f64;

        // --- occupancy -------------------------------------------------
        let warps_per_sm = (d.total_warps / total_sms).min(f64::from(cfg.sm.max_warps));
        let active_sms = total_sms.min(d.total_warps);
        let resident_ctas_per_sm = (warps_per_sm / d.warps_per_cta).max(1.0);

        // --- cache warm-up horizon ------------------------------------
        // Private caches flush at kernel boundaries (software
        // coherence), so temporal reuse only materializes once a launch
        // has touched its window more often than its size: at tiny
        // `MCM_SCALE` horizons even a cache-friendly window stays cold.
        let accesses_per_cta = d.insts_per_warp * d.warps_per_cta * d.mem_per_inst * d.txns_per_mem;
        let warm = |region_lines: f64, region_accesses: f64| -> f64 {
            let density = region_accesses / region_lines.max(1.0);
            density / (1.0 + density)
        };
        let reuse_warm = warm(
            d.reuse_window_lines,
            accesses_per_cta * d.mix.own_reuse.max(1e-12),
        );
        let shared_warm = warm(
            d.shared_region_lines,
            accesses_per_cta * d.ctas * d.mix.shared.max(1e-12),
        );

        // --- L1 --------------------------------------------------------
        let c1 = lines(cfg.caches.l1_bytes_per_sm);
        let l1_pressure = resident_ctas_per_sm * d.reuse_window_lines;
        let h1_reuse = fit(c1, l1_pressure) * reuse_warm;
        let h1_shared = fit(c1, d.shared_region_lines) * shared_warm;
        // Per-region miss contributions (fractions of all accesses).
        let miss_own_stream = d.mix.own_stream;
        let miss_own_reuse = d.mix.own_reuse * (1.0 - h1_reuse);
        let miss_neighbor = d.mix.neighbor * (1.0 - 0.5 * h1_reuse);
        let miss_shared = d.mix.shared * (1.0 - h1_shared);
        let miss_cold = d.mix.cold;
        let m1 = (miss_own_stream + miss_own_reuse + miss_neighbor + miss_shared + miss_cold)
            .clamp(0.02, 1.0);
        let h1 = 1.0 - m1;

        // --- locality under placement + scheduler ---------------------
        let uniform_local = 1.0 / n;
        let chunked = !matches!(cfg.scheduler, SchedulerPolicy::Centralized);
        let (own_local, neighbor_local) = match cfg.placement {
            PlacementPolicy::Interleaved | PlacementPolicy::PageRoundRobin => {
                (uniform_local, uniform_local)
            }
            PlacementPolicy::FirstTouch => {
                // Pages home where first touched, so a CTA's own slice
                // is local to whichever GPM ran it. The scheduler
                // locality bonus: contiguous chunks also keep the
                // adjacent CTA's slice on the same GPM, minus the CTAs
                // sitting on chunk boundaries.
                let boundary = (n / d.ctas.max(n)).min(1.0);
                if chunked {
                    (1.0, 1.0 - boundary * (1.0 - uniform_local))
                } else {
                    // A centralized scheduler still localizes the
                    // touching kernel, but later launches re-draw CTAs
                    // anywhere, so cross-kernel reuse decays to uniform.
                    let iters = f64::from(d.kernel_iters.max(1));
                    let own = (1.0 + uniform_local * (iters - 1.0)) / iters;
                    (own, uniform_local)
                }
            }
        };
        // Shared/cold pages land on whichever GPM faulted them first —
        // uniformly spread, so (n-1)/n of their accesses stay remote
        // under every placement policy.
        let local_misses = (miss_own_stream + miss_own_reuse) * own_local
            + miss_neighbor * neighbor_local
            + (miss_shared + miss_cold) * uniform_local;
        let remote_misses = (m1 - local_misses).max(0.0);

        // --- L1.5 / DS filtering (§5.1) -------------------------------
        let has_l15 = cfg.caches.l15_bytes_total > 0;
        let h15 = if has_l15 && remote_misses > 1e-12 {
            let (remote_eligible, capacity_share) = match cfg.caches.l15_filter {
                AllocFilter::RemoteOnly | AllocFilter::Adaptive => (1.0, 1.0),
                // An unfiltered L1.5 splits its capacity between local
                // and remote streams in proportion to their demand.
                AllocFilter::All => (1.0, (remote_misses / m1).max(0.05)),
                AllocFilter::LocalOnly => (0.0, 1.0),
            };
            if remote_eligible == 0.0 {
                0.0
            } else {
                let c15 = lines(cfg.caches.l15_bytes_total / u64::from(modules)) * capacity_share;
                let l15_pressure = (d.ctas / n) * d.reuse_window_lines;
                // Stores never fill (write-through, write-around).
                let fill = 1.0 - 0.5 * d.write_frac;
                let r_reuse =
                    miss_own_reuse * (1.0 - own_local) + miss_neighbor * (1.0 - neighbor_local);
                let r_shared = miss_shared * (1.0 - uniform_local);
                let r_cold = miss_cold * (1.0 - uniform_local);
                let hits = r_reuse * fit(c15, l15_pressure) * reuse_warm
                    + r_shared * fit(c15, d.shared_region_lines) * shared_warm
                    + r_cold
                        * fit(c15, d.footprint_lines)
                        * warm(d.footprint_lines, accesses_per_cta * d.ctas);
                ((hits / remote_misses) * fill).clamp(0.0, 0.98)
            }
        } else {
            0.0
        };

        // --- L2 --------------------------------------------------------
        let c2 = lines(cfg.caches.l2_bytes_total / u64::from(modules));
        let post_l15_remote = remote_misses * (1.0 - h15);
        let m15 = (local_misses + post_l15_remote).max(1e-12);
        let s_reuse = (miss_own_reuse + miss_neighbor) * (m15 / m1);
        let s_shared = miss_shared * (m15 / m1);
        let s_cold = miss_cold * (m15 / m1);
        let s_stream = miss_own_stream * (m15 / m1);
        let h2_raw = (s_reuse * fit(c2, d.ctas * d.reuse_window_lines / n) * reuse_warm
            + s_shared * fit(c2, d.shared_region_lines / n) * shared_warm
            + s_cold * fit(c2, d.footprint_lines / n)
            + s_stream * 0.25 * fit(c2, d.footprint_lines / n))
            / m15;
        let h2 = h2_raw.clamp(0.0, 0.98);

        // --- traffic per warp instruction -----------------------------
        let txn_rate = d.mem_per_inst * d.txns_per_mem;
        let hops = match cfg.topology.network {
            mcm_interconnect::mesh::NetworkKind::Ring => ring_hops(modules),
            mcm_interconnect::mesh::NetworkKind::FullyConnected => {
                if modules <= 1 {
                    0.0
                } else {
                    1.0
                }
            }
        };
        let remote_per_inst = txn_rate * post_l15_remote;
        let bytes_per_remote = (REQUEST_BYTES + LINE_BYTES) as f64 * hops;
        let inter_bytes_per_inst = remote_per_inst * bytes_per_remote;
        // Write-back L2: dirty lines come back out of DRAM roughly in
        // proportion to the store share.
        let dram_bytes_per_inst =
            txn_rate * m15 * (1.0 - h2) * LINE_BYTES as f64 * (1.0 + d.write_frac);

        // --- throughput ceilings (warp instructions / cycle) ----------
        // At the 1 GHz core clock, GB/s and bytes/cycle coincide.
        let issue_bound =
            active_sms * cfg.sm.issue_ipc / d.issue_slots_per_inst / (1.0 + 0.5 * d.imbalance);
        let dram_capacity = cfg.dram_total_gbps;
        let dram_bound = if dram_bytes_per_inst > 1e-12 {
            dram_capacity / dram_bytes_per_inst
        } else {
            f64::INFINITY
        };
        // Aggregate usable fabric capacity. Both topologies are built
        // iso-wiring from the same per-ring-link budget (the ring has
        // `2n` unidirectional segments at `link/2`; the fully connected
        // fabric splits each node's identical escape bandwidth across
        // its `n-1` direct links), so both aggregate to `n * link` —
        // except the degenerate 2-node ring: every route there is an
        // equidistant tie, the router's source-parity tie-break pins
        // each node to a single direction, and the reverse segments sit
        // idle, halving the usable capacity.
        let link_capacity = match cfg.topology.network {
            mcm_interconnect::mesh::NetworkKind::Ring if modules == 2 => cfg.topology.link_gbps,
            _ => n * cfg.topology.link_gbps,
        };
        let link_bound = if inter_bytes_per_inst > 1e-12 {
            link_capacity / inter_bytes_per_inst
        } else {
            f64::INFINITY
        };

        // Queueing inflation: utilizations evaluated at the bandwidth
        // ceilings *excluding* the resource being inflated, so raising
        // a link's capacity can never lower the predicted IPC.
        let util = |demand_ipc: f64, bytes_per_inst: f64, capacity: f64| -> f64 {
            if capacity <= 0.0 || !demand_ipc.is_finite() {
                return 0.0;
            }
            (demand_ipc * bytes_per_inst / capacity).clamp(0.0, 0.95)
        };
        let u_dram = util(
            issue_bound.min(dram_bound),
            dram_bytes_per_inst,
            dram_capacity,
        );
        let u_link = util(
            issue_bound.min(link_bound),
            inter_bytes_per_inst,
            link_capacity,
        );

        let dram_cycles = cfg.dram_latency().as_u64() as f64 / (1.0 - 0.9 * u_dram);
        let hop_cycles = hops * cfg.topology.hop_cycles as f64 / (1.0 - 0.9 * u_link);
        let l2_leg = L2_LATENCY as f64 + (1.0 - h2) * dram_cycles;
        let local_lat = XBAR_LATENCY as f64 + l2_leg;
        let l15_leg = if has_l15 {
            L15_TAG_LATENCY as f64 + h15 * L15_LATENCY as f64
        } else {
            0.0
        };
        let remote_lat = l15_leg + 2.0 * hop_cycles + (1.0 - h15) * l2_leg;
        let local_share = if m1 > 1e-12 { local_misses / m1 } else { 1.0 };
        let miss_lat =
            L1_LATENCY as f64 + local_share * local_lat + (1.0 - local_share) * remote_lat;
        let outstanding_per_sm = (cfg.sm.mshr_entries as f64)
            .min(warps_per_sm.max(1.0) * f64::from(cfg.sm.mlp_per_warp));
        let misses_per_inst = txn_rate * m1;
        let latency_bound = if misses_per_inst > 1e-12 {
            active_sms * outstanding_per_sm / (miss_lat * misses_per_inst)
        } else {
            f64::INFINITY
        };

        let (mut ipc_raw, mut bound) = (issue_bound, Bound::Issue);
        for (b, kind) in [
            (dram_bound, Bound::Dram),
            (link_bound, Bound::Link),
            (latency_bound, Bound::Latency),
        ] {
            if b < ipc_raw {
                ipc_raw = b;
                bound = kind;
            }
        }

        // --- calibrated assembly --------------------------------------
        let ipc = (ipc_raw * c.ipc_gain).max(1e-6);
        let l1_hit_rate = (h1 * c.l1_gain).clamp(0.0, 1.0);
        let l15_hit_rate = (h15 * c.l15_gain).clamp(0.0, 1.0);
        let l2_hit_rate = (h2 * c.l2_gain).clamp(0.0, 1.0);
        let inter_gpm_tbps = inter_bytes_per_inst * ipc / 1000.0 * c.traffic_gain;
        let dram_tbps = dram_bytes_per_inst * ipc / 1000.0;
        Prediction {
            ipc,
            l1_hit_rate,
            l15_hit_rate,
            l2_hit_rate,
            inter_gpm_tbps,
            dram_tbps,
            bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        suite::by_name("Stream").unwrap().scaled(0.1)
    }

    #[test]
    fn predictions_are_finite_and_in_range() {
        let model = AnalyticModel::uncalibrated();
        for cfg in [
            SystemConfig::baseline_mcm(),
            SystemConfig::optimized_mcm(),
            SystemConfig::monolithic(64),
            SystemConfig::hypothetical_monolithic_256(),
            SystemConfig::mcm_with_link(192.0),
            SystemConfig::optimized_mcm_fully_connected(),
        ] {
            for w in suite::suite() {
                let p = model.predict(&cfg, &w.scaled(0.05));
                assert!(
                    p.ipc.is_finite() && p.ipc > 0.0,
                    "{} on {}",
                    w.name,
                    cfg.name
                );
                for h in [p.l1_hit_rate, p.l15_hit_rate, p.l2_hit_rate] {
                    assert!((0.0..=1.0).contains(&h), "{} on {}: {h}", w.name, cfg.name);
                }
                assert!(p.inter_gpm_tbps.is_finite() && p.inter_gpm_tbps >= 0.0);
                assert!(p.dram_tbps.is_finite() && p.dram_tbps >= 0.0);
            }
        }
    }

    #[test]
    fn monolithic_has_no_inter_gpm_traffic() {
        let model = AnalyticModel::uncalibrated();
        let p = model.predict(&SystemConfig::monolithic(64), &spec());
        assert_eq!(p.inter_gpm_tbps, 0.0);
        assert_eq!(p.l15_hit_rate, 0.0);
    }

    #[test]
    fn ipc_is_monotone_in_link_bandwidth() {
        let model = AnalyticModel::uncalibrated();
        let mut last = 0.0;
        for link in [48.0, 192.0, 384.0, 768.0, 1536.0, 3072.0, 6144.0] {
            let p = model.predict(&SystemConfig::mcm_with_link(link), &spec());
            assert!(
                p.ipc >= last - 1e-9,
                "IPC fell from {last} to {} at {link} GB/s",
                p.ipc
            );
            last = p.ipc;
        }
    }

    #[test]
    fn starved_links_bind_and_throttle() {
        let model = AnalyticModel::uncalibrated();
        let starved = model.predict(&SystemConfig::mcm_with_link(48.0), &spec());
        let ample = model.predict(&SystemConfig::mcm_with_link(3072.0), &spec());
        assert_eq!(starved.bound, Bound::Link);
        assert!(ample.ipc > starved.ipc * 2.0);
    }

    #[test]
    fn first_touch_with_distributed_scheduling_cuts_remote_traffic() {
        let model = AnalyticModel::uncalibrated();
        let base = model.predict(&SystemConfig::baseline_mcm(), &spec());
        let opt = model.predict(&SystemConfig::optimized_mcm(), &spec());
        assert!(
            opt.inter_gpm_tbps < base.inter_gpm_tbps,
            "optimized {} vs baseline {}",
            opt.inter_gpm_tbps,
            base.inter_gpm_tbps
        );
    }

    #[test]
    fn remote_traffic_grows_with_gpm_count_at_fixed_totals() {
        let model = AnalyticModel::uncalibrated();
        let w = spec();
        let mut last = 0.0;
        for gpms in [2u32, 4, 8, 16] {
            let cfg = SystemConfig::mcm_n_gpms(gpms as u8);
            let p = model.predict(&cfg, &w);
            let per_inst = p.inter_gpm_tbps / p.ipc;
            assert!(per_inst >= last - 1e-12, "traffic/inst fell at {gpms} GPMs");
            last = per_inst;
        }
    }

    #[test]
    fn calibration_fit_is_pure() {
        let anchors: Vec<(SystemConfig, WorkloadSpec, Observation)> = Calibration::anchor_pairs(7)
            .into_iter()
            .map(|(cfg, spec)| {
                let fake = Observation {
                    ipc: 10.0 + cfg.fingerprint() as f64 % 7.0,
                    l1: 0.4,
                    l15: 0.2,
                    l2: 0.3,
                    inter_gpm_tbps: 1.0,
                };
                (cfg, spec, fake)
            })
            .collect();
        assert_eq!(Calibration::fit(&anchors), Calibration::fit(&anchors));
    }

    #[test]
    fn anchor_pairs_are_seed_deterministic_and_cover_categories() {
        let a = Calibration::anchor_pairs(42);
        let b = Calibration::anchor_pairs(42);
        assert_eq!(a.len(), b.len());
        for ((ca, wa), (cb, wb)) in a.iter().zip(&b) {
            assert_eq!(ca.fingerprint(), cb.fingerprint());
            assert_eq!(wa.name, wb.name);
        }
        for cat in Category::ALL {
            assert!(a.iter().any(|(_, w)| w.category == cat), "no {cat} anchor");
        }
        // Different seeds may pick different workloads (not asserted —
        // a seed collision is legal), but must still cover every
        // category.
        for cat in Category::ALL {
            assert!(Calibration::anchor_pairs(1729)
                .iter()
                .any(|(_, w)| w.category == cat));
        }
    }

    #[test]
    fn ring_hop_averages_match_hand_counts() {
        assert_eq!(ring_hops(1), 0.0);
        assert_eq!(ring_hops(2), 1.0);
        assert!((ring_hops(4) - 4.0 / 3.0).abs() < 1e-12);
    }
}
