//! Property-based tests for the workload generator.

use mcm_mem::addr::LINES_PER_PAGE;
use mcm_workloads::spec::{LocalityProfile, WorkloadSpec};
use mcm_workloads::stream::{cta_insts, WarpOp, WarpStream};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = LocalityProfile> {
    (
        0.0f64..=1.0,
        1u32..20_000,
        0.0f64..0.4,
        0.0f64..0.4,
        0.0f64..0.5,
        0.0f64..0.2,
    )
        .prop_map(
            |(streaming, window, neighbor, shared, region, cold)| LocalityProfile {
                streaming,
                reuse_window_lines: window,
                neighbor_frac: neighbor,
                shared_frac: shared,
                shared_region_frac: region,
                cold_shared_frac: cold,
                divergence: None,
            },
        )
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u32..64,          // ctas
        1u32..8,           // warps per cta
        1u32..600,         // insts
        0.01f64..=1.0,     // mem ratio
        0.0f64..=1.0,      // write frac
        1u32..4,           // iters
        20u64..28,         // footprint = 2^n bytes (1 MiB .. 128 MiB)
        arb_profile(),
        any::<u64>(),      // seed
        0.0f64..=1.0,      // imbalance
    )
        .prop_map(
            |(ctas, warps, insts, mem, wfrac, iters, fp, locality, seed, imbalance)| {
                WorkloadSpec {
                    name: "prop",
                    category: mcm_workloads::Category::MemoryIntensive,
                    footprint_bytes: 1u64 << fp,
                    ctas,
                    warps_per_cta: warps,
                    insts_per_warp: insts,
                    mem_ratio: mem,
                    write_frac: wfrac,
                    kernel_iters: iters,
                    locality,
                    imbalance,
                    seed,
                }
            },
        )
}

proptest! {
    /// Every generated spec validates, and its streams (a) emit exactly
    /// the per-CTA instruction budget, (b) stay inside the footprint,
    /// and (c) are reproducible.
    #[test]
    fn stream_invariants(spec in arb_spec()) {
        prop_assume!(spec.validate().is_ok());
        let cta = spec.ctas / 2;
        let warp = spec.warps_per_cta - 1;
        let ops: Vec<WarpOp> = WarpStream::new(&spec, 0, cta, warp).collect();
        let ops2: Vec<WarpOp> = WarpStream::new(&spec, 0, cta, warp).collect();
        prop_assert_eq!(&ops, &ops2);

        let total: u64 = ops
            .iter()
            .map(|op| match op {
                WarpOp::Compute(n) => u64::from(*n),
                WarpOp::Access { .. } => 1,
            })
            .sum();
        prop_assert_eq!(total, u64::from(cta_insts(&spec, cta)));

        let max_line = spec.footprint_lines();
        for op in &ops {
            if let WarpOp::Access { addr, .. } = op {
                prop_assert!(addr.line().index() < max_line);
            }
        }
    }

    /// Compute bursts are always nonzero (a zero burst would deadlock an
    /// SM's issue accounting).
    #[test]
    fn compute_bursts_nonzero(spec in arb_spec()) {
        prop_assume!(spec.validate().is_ok());
        for op in WarpStream::new(&spec, 0, 0, 0) {
            if let WarpOp::Compute(n) = op {
                prop_assert!(n > 0);
            }
        }
    }

    /// Imbalance never shrinks a CTA's work below the base budget, and
    /// is bounded by the configured factor.
    #[test]
    fn imbalance_bounds(spec in arb_spec(), cta in 0u32..64) {
        prop_assume!(spec.validate().is_ok());
        let cta = cta % spec.ctas;
        let n = cta_insts(&spec, cta);
        prop_assert!(n >= spec.insts_per_warp);
        let ceil = (f64::from(spec.insts_per_warp) * (1.0 + spec.imbalance)).round() as u32 + 1;
        prop_assert!(n <= ceil);
    }

    /// Cross-kernel page stability: with purely private access patterns
    /// the pages a CTA touches in kernel 0 overlap heavily with kernel 1.
    #[test]
    fn cross_kernel_page_overlap(seed in any::<u64>()) {
        let mut spec = WorkloadSpec::template("xk");
        spec.seed = seed;
        spec.insts_per_warp = 2000;
        spec.locality.shared_frac = 0.0;
        spec.locality.neighbor_frac = 0.0;
        let pages = |k: u32| -> std::collections::HashSet<u64> {
            WarpStream::new(&spec, k, 3, 0)
                .filter_map(|op| match op {
                    WarpOp::Access { addr, .. } => Some(addr.line().index() / LINES_PER_PAGE),
                    _ => None,
                })
                .collect()
        };
        let a = pages(0);
        let b = pages(1);
        prop_assume!(!a.is_empty());
        let overlap = a.intersection(&b).count() as f64 / a.len() as f64;
        prop_assert!(overlap > 0.5, "overlap {overlap}");
    }
}
