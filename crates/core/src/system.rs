//! The assembled machine: SMs, cache hierarchy, crossbars, ring, page
//! map and DRAM partitions, exposed as *stage primitives* that the
//! event loop in [`crate::Simulator`] drives.
//!
//! One [`McmSystem`] is built fresh per run from a
//! [`SystemConfig`](crate::SystemConfig). Modules are GPMs (or discrete
//! GPUs in the §6 comparison); each owns its SMs and L1s, an optional
//! GPM-side L1.5, a crossbar, a memory-side L2 slice and a DRAM
//! partition. The on-package ring connects modules.
//!
//! ## Why stages instead of one `read()` call
//!
//! Every contended component is a next-free-time bandwidth
//! [`Resource`](mcm_engine::Resource), and that model is only correct
//! when requests arrive in nondecreasing time order. A memory access
//! traverses several components at increasing timestamps, so each
//! traversal must be its own simulation event — otherwise one access's
//! *future* arrival (e.g. a ring response after DRAM queuing) would be
//! submitted before another access's *earlier* arrival and would block
//! it, creating a feedback loop of phantom queuing. The stage methods
//! here each touch only components whose arrival times are within a
//! fixed latency of the call time; the event loop orders the stages
//! globally.

use mcm_engine::stats::{Counter, Ratio};
use mcm_engine::Cycle;
use mcm_interconnect::energy::EnergyLedger;
use mcm_interconnect::mesh::Fabric;
use mcm_interconnect::ring::{NodeId, RingDir};
use mcm_interconnect::xbar::Crossbar;
use mcm_mem::addr::{AccessKind, LineAddr, Locality, PartitionId, LINE_BYTES};
use mcm_mem::cache::{AllocFilter, CacheConfig, CacheOutcome, SetAssocCache, WritePolicy};
use mcm_mem::dram::{DramConfig, DramPartition};
use mcm_mem::mshr::Mshr;
use mcm_mem::page::PageMap;
use mcm_probe::{NullProbe, Probe};
use mcm_sm::SmCore;

use crate::config::SystemConfig;

/// Control-message size for a remote read request (the data returns in
/// a full line; the request itself is a small packet).
pub(crate) const REQUEST_BYTES: u64 = 32;

/// L1 tag+data latency in cycles.
pub(crate) const L1_LATENCY: u64 = 24;
/// GPM-side L1.5 hit latency in cycles (larger, farther array).
pub(crate) const L15_LATENCY: u64 = 40;
/// GPM-side L1.5 miss penalty: the tag probe largely overlaps the
/// crossbar routing of the downstream request, so a miss costs far less
/// than a hit's data-array access.
pub(crate) const L15_TAG_LATENCY: u64 = 12;
/// Memory-side L2 latency in cycles.
pub(crate) const L2_LATENCY: u64 = 48;
/// Crossbar traversal latency in cycles.
pub(crate) const XBAR_LATENCY: u64 = 4;
/// Per-SM L1 bandwidth in bytes/cycle (one line per cycle).
const L1_BANDWIDTH: f64 = 128.0;
/// Per-module L1.5 aggregate bank bandwidth in bytes/cycle.
const L15_BANDWIDTH: f64 = 2048.0;
/// L2 bank bandwidth per GB/s of the partition's DRAM bandwidth
/// ("banked such that they can provide the necessary parallelism to
/// saturate DRAM bandwidth", §4): a 768 GB/s partition gets ~2 KB/cycle
/// of L2 bandwidth, a monolithic 3 TB/s machine proportionally more.
const L2_BANDWIDTH_PER_DRAM_GBPS: f64 = 2.67;
/// On-die fabric bandwidth per SM in bytes/cycle; a module's crossbar
/// scales with its SM count, as monolithic dies scale their fabric
/// (effectively never the bottleneck, matching §4's assumption).
const XBAR_BANDWIDTH_PER_SM: f64 = 64.0;

/// What the L1.5 stage decided for an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L15Outcome {
    /// The access does not touch the L1.5 (level disabled, or filtered
    /// out by the remote-only policy).
    NotPresent,
    /// Hit: the data is available at `ready_at`; no downstream travel.
    Hit {
        /// When the data is available.
        ready_at: Cycle,
    },
    /// Miss: continue downstream at `ready_at`; `fill` says whether the
    /// response should be installed here on its way back.
    Miss {
        /// When the downstream request may depart.
        ready_at: Cycle,
        /// Whether to fill this L1.5 with the response.
        fill: bool,
    },
}

/// The machine state for one run.
#[derive(Debug)]
pub struct McmSystem {
    modules: usize,
    sms_per_module: u32,
    sms: Vec<SmCore>,
    l1s: Vec<SetAssocCache>,
    mshrs: Vec<Mshr>,
    l15s: Vec<SetAssocCache>,
    xbars: Vec<Crossbar>,
    l2s: Vec<SetAssocCache>,
    drams: Vec<DramPartition>,
    ring: Fabric,
    page_map: PageMap,
    reads: Counter,
    writes: Counter,
    local_accesses: Counter,
    remote_accesses: Counter,
}

impl McmSystem {
    /// Builds an idle machine from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (call
    /// [`SystemConfig::validate`] first for a graceful error).
    pub fn new(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let modules = usize::from(cfg.topology.modules);
        let total_sms = cfg.topology.total_sms() as usize;

        let l1_cfg = CacheConfig {
            name: "L1",
            size_bytes: cfg.caches.l1_bytes_per_sm,
            line_bytes: LINE_BYTES,
            ways: 4,
            latency: Cycle::new(L1_LATENCY),
            tag_latency: Cycle::new(L1_LATENCY),
            bandwidth: L1_BANDWIDTH,
            write_policy: WritePolicy::WriteThrough,
            alloc_filter: AllocFilter::All,
        };
        let l15_cfg = CacheConfig {
            name: "L1.5",
            size_bytes: cfg.caches.l15_bytes_total / modules as u64,
            line_bytes: LINE_BYTES,
            ways: 16,
            latency: Cycle::new(L15_LATENCY),
            tag_latency: Cycle::new(L15_TAG_LATENCY),
            bandwidth: L15_BANDWIDTH,
            write_policy: WritePolicy::WriteThrough,
            alloc_filter: cfg.caches.l15_filter,
        };
        let l2_cfg = CacheConfig {
            name: "L2",
            size_bytes: cfg.caches.l2_bytes_total / modules as u64,
            line_bytes: LINE_BYTES,
            ways: 16,
            latency: Cycle::new(L2_LATENCY),
            tag_latency: Cycle::new(L2_LATENCY),
            bandwidth: (cfg.dram_gbps_per_module() * L2_BANDWIDTH_PER_DRAM_GBPS).max(1024.0),
            write_policy: WritePolicy::WriteBack,
            alloc_filter: AllocFilter::All,
        };
        let per_module_dram = cfg.dram_gbps_per_module();
        let dram_cfg = DramConfig {
            bandwidth_gbps: per_module_dram,
            // Keep per-channel bandwidth roughly constant (~96 GB/s) so
            // bigger partitions get more channels, as real stacks do.
            channels: ((per_module_dram / 96.0).round() as u32).max(4),
            latency: cfg.dram_latency(),
        };

        McmSystem {
            modules,
            sms_per_module: cfg.topology.sms_per_module,
            sms: (0..total_sms).map(|_| SmCore::new(cfg.sm)).collect(),
            l1s: (0..total_sms)
                .map(|_| SetAssocCache::new(l1_cfg.clone()))
                .collect(),
            mshrs: (0..total_sms)
                .map(|_| Mshr::new(cfg.sm.mshr_entries))
                .collect(),
            l15s: (0..modules)
                .map(|_| SetAssocCache::new(l15_cfg.clone()))
                .collect(),
            xbars: (0..modules)
                .map(|_| {
                    Crossbar::new(
                        "gpm-xbar",
                        XBAR_BANDWIDTH_PER_SM * f64::from(cfg.topology.sms_per_module),
                        Cycle::new(XBAR_LATENCY),
                    )
                })
                .collect(),
            l2s: (0..modules)
                .map(|_| SetAssocCache::new(l2_cfg.clone()))
                .collect(),
            drams: (0..modules).map(|_| DramPartition::new(dram_cfg)).collect(),
            // `link_gbps` is the bidirectional capacity of one
            // GPM-to-GPM link (the paper's "768 GB/s per link");
            // Fabric splits it per direction / per mesh link.
            ring: Fabric::new(
                cfg.topology.network,
                cfg.topology.modules,
                cfg.topology.link_gbps,
                Cycle::new(cfg.topology.hop_cycles),
                cfg.topology.link_tier,
            ),
            page_map: PageMap::with_page_lines(
                cfg.placement,
                cfg.topology.modules,
                (cfg.ft_page_bytes / LINE_BYTES).max(1),
            ),
            reads: Counter::new(),
            writes: Counter::new(),
            local_accesses: Counter::new(),
            remote_accesses: Counter::new(),
        }
    }

    /// Number of modules.
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// The module owning global SM index `sm`.
    #[inline]
    pub fn module_of(&self, sm: usize) -> usize {
        sm / self.sms_per_module as usize
    }

    /// Total SM count.
    pub fn total_sms(&self) -> usize {
        self.sms.len()
    }

    /// Immutable access to an SM (occupancy queries).
    pub fn sm(&self, sm: usize) -> &SmCore {
        &self.sms[sm]
    }

    /// Mutable access to an SM (the run loop admits and retires CTAs).
    pub fn sm_mut(&mut self, sm: usize) -> &mut SmCore {
        &mut self.sms[sm]
    }

    /// Mutable access to an SM's MSHR.
    pub fn mshr_mut(&mut self, sm: usize) -> &mut Mshr {
        &mut self.mshrs[sm]
    }

    /// Issues a compute burst of `insts` instructions on `sm`.
    pub fn compute(&mut self, now: Cycle, sm: usize, insts: u32) -> Cycle {
        self.sms[sm].issue(now, insts)
    }

    /// Resolves the home partition of `line` for a requester on
    /// `module`, updating first-touch state and locality statistics.
    pub fn home_of(&mut self, line: LineAddr, module: usize) -> (usize, Locality) {
        let home = self
            .page_map
            .partition_for(line, PartitionId(module as u8))
            .as_usize();
        (home, self.note_locality(home, module))
    }

    /// Classifies and counts an access from `module` homed at `home` —
    /// the statistics half of [`McmSystem::home_of`], for callers that
    /// resolved the placement elsewhere (a sharded run's replica cache).
    pub(crate) fn note_locality(&mut self, home: usize, module: usize) -> Locality {
        if home == module {
            self.local_accesses.inc();
            Locality::Local
        } else {
            self.remote_accesses.inc();
            Locality::Remote
        }
    }

    // ------------------------------------------------------------------
    // Stage primitives, in path order. Each touches only components at
    // a bounded time offset from `now`; the event loop globally orders
    // the stage calls.
    // ------------------------------------------------------------------

    /// Stage 0 (warp side): issues the memory instruction and probes the
    /// L1. Returns `(issued, outcome)`: `issued` is when the instruction
    /// has left the SM's issue stage (a store lets its warp continue
    /// then), `outcome` the L1 decision.
    pub fn l1_access(
        &mut self,
        now: Cycle,
        sm: usize,
        line: LineAddr,
        kind: AccessKind,
    ) -> (Cycle, CacheOutcome) {
        self.l1_access_probed(now, sm, line, kind, &mut NullProbe)
    }

    /// [`McmSystem::l1_access`] reporting the L1 hit/miss to `probe`
    /// (unit = global SM index).
    pub fn l1_access_probed<P: Probe>(
        &mut self,
        now: Cycle,
        sm: usize,
        line: LineAddr,
        kind: AccessKind,
        probe: &mut P,
    ) -> (Cycle, CacheOutcome) {
        match kind {
            AccessKind::Read => self.reads.inc(),
            AccessKind::Write => self.writes.inc(),
        }
        let t0 = self.sms[sm].issue_mem_op(now);
        (
            t0,
            self.l1s[sm].access_probed(t0, line, kind, Locality::Local, sm as u32, probe),
        )
    }

    /// Installs a returned line into an SM's L1, available at `ready`.
    pub fn l1_fill(&mut self, sm: usize, line: LineAddr, ready: Cycle) {
        self.l1s[sm].fill(line, ready, false);
    }

    /// Stage 1 (module side): probes the GPM-side L1.5.
    pub fn l15_access(
        &mut self,
        now: Cycle,
        module: usize,
        line: LineAddr,
        kind: AccessKind,
        locality: Locality,
    ) -> L15Outcome {
        self.l15_access_probed(now, module, line, kind, locality, &mut NullProbe)
    }

    /// [`McmSystem::l15_access`] reporting the L1.5 hit/miss to `probe`
    /// (unit = module index; filtered and disabled accesses are
    /// invisible).
    pub fn l15_access_probed<P: Probe>(
        &mut self,
        now: Cycle,
        module: usize,
        line: LineAddr,
        kind: AccessKind,
        locality: Locality,
        probe: &mut P,
    ) -> L15Outcome {
        if self.l15s[module].is_disabled() {
            return L15Outcome::NotPresent;
        }
        match self.l15s[module].access_probed(now, line, kind, locality, module as u32, probe) {
            CacheOutcome::Bypass => L15Outcome::NotPresent,
            CacheOutcome::Hit { ready_at } => L15Outcome::Hit { ready_at },
            CacheOutcome::Miss { allocate, ready_at } => L15Outcome::Miss {
                ready_at,
                // Stores never fill (the L1.5 is write-through,
                // write-around).
                fill: allocate && !kind.is_write(),
            },
        }
    }

    /// Installs a returned line into a module's L1.5, available at
    /// `ready`.
    pub fn l15_fill(&mut self, module: usize, line: LineAddr, ready: Cycle) {
        self.l15s[module].fill(line, ready, false);
    }

    /// Stage 2: crosses the module's crossbar toward the memory side;
    /// returns when the message leaves the module's fabric.
    pub fn fabric_out(&mut self, now: Cycle, module: usize) -> Cycle {
        self.fabric_out_probed(now, module, &mut NullProbe)
    }

    /// [`McmSystem::fabric_out`] reporting the crossbar traffic to
    /// `probe`.
    pub fn fabric_out_probed<P: Probe>(
        &mut self,
        now: Cycle,
        module: usize,
        probe: &mut P,
    ) -> Cycle {
        self.xbars[module].transfer_probed(now, LINE_BYTES, module as u32, probe)
    }

    /// The shortest ring route between two modules.
    pub fn ring_route(&self, from: usize, to: usize) -> (RingDir, u32) {
        self.ring.route(NodeId(from as u8), NodeId(to as u8))
    }

    /// One network hop from `node` toward `to` (direction `dir` on a
    /// ring; direct on a fully connected fabric), carrying `bytes`;
    /// returns `(next_node, arrival)`. Issue exactly one hop per
    /// simulation event so link queues stay causally ordered.
    pub fn ring_hop(
        &mut self,
        now: Cycle,
        node: usize,
        to: usize,
        dir: RingDir,
        bytes: u64,
    ) -> (usize, Cycle) {
        self.ring_hop_probed(now, node, to, dir, bytes, &mut NullProbe)
    }

    /// [`McmSystem::ring_hop`] reporting the traversed link's identity
    /// and bytes to `probe`.
    pub fn ring_hop_probed<P: Probe>(
        &mut self,
        now: Cycle,
        node: usize,
        to: usize,
        dir: RingDir,
        bytes: u64,
        probe: &mut P,
    ) -> (usize, Cycle) {
        self.ring_hop_faulted(
            now,
            node,
            to,
            dir,
            bytes,
            probe,
            &mut mcm_fault::NullFaultPlan,
        )
    }

    /// [`McmSystem::ring_hop_probed`] additionally consulting `plan`
    /// for transient link errors (CRC retransmit with backoff). With an
    /// inactive plan this is exactly `ring_hop_probed`.
    #[allow(clippy::too_many_arguments)]
    pub fn ring_hop_faulted<P: Probe, F: mcm_fault::FaultPlan>(
        &mut self,
        now: Cycle,
        node: usize,
        to: usize,
        dir: RingDir,
        bytes: u64,
        probe: &mut P,
        plan: &mut F,
    ) -> (usize, Cycle) {
        let (next, t) = self.ring.hop_faulted(
            now,
            NodeId(node as u8),
            NodeId(to as u8),
            dir,
            bytes,
            probe,
            plan,
        );
        (next.as_usize(), t)
    }

    /// Stage 3 (read): accesses the home memory partition — L2, then
    /// DRAM on a miss — and returns when the line is available at the
    /// home module.
    pub fn mem_read(
        &mut self,
        now: Cycle,
        home: usize,
        line: LineAddr,
        locality: Locality,
    ) -> Cycle {
        self.mem_read_probed(now, home, line, locality, &mut NullProbe)
    }

    /// [`McmSystem::mem_read`] reporting the L2 hit/miss and any DRAM
    /// traffic (demand fill and dirty writeback) to `probe`.
    pub fn mem_read_probed<P: Probe>(
        &mut self,
        now: Cycle,
        home: usize,
        line: LineAddr,
        locality: Locality,
        probe: &mut P,
    ) -> Cycle {
        self.mem_read_faulted(
            now,
            home,
            line,
            locality,
            probe,
            &mut mcm_fault::NullFaultPlan,
        )
    }

    /// [`McmSystem::mem_read_probed`] additionally consulting `plan`
    /// for DRAM thermal-throttle windows. With an inactive plan this is
    /// exactly `mem_read_probed`.
    pub fn mem_read_faulted<P: Probe, F: mcm_fault::FaultPlan>(
        &mut self,
        now: Cycle,
        home: usize,
        line: LineAddr,
        locality: Locality,
        probe: &mut P,
        plan: &mut F,
    ) -> Cycle {
        let unit = home as u32;
        match self.l2s[home].access_probed(now, line, AccessKind::Read, locality, unit, probe) {
            CacheOutcome::Hit { ready_at } => ready_at,
            CacheOutcome::Miss { allocate, ready_at } => {
                let r = self.drams[home].access_faulted(
                    ready_at,
                    line,
                    AccessKind::Read,
                    unit,
                    probe,
                    plan,
                );
                if allocate {
                    if let Some(ev) = self.l2s[home].fill(line, r, false) {
                        if ev.dirty {
                            // The victim's writeback departs when the miss
                            // is handled (`ready_at`), not when the fill
                            // lands: stamping it at the fill time would
                            // submit a future arrival to the DRAM queue
                            // and ratchet its next-free time.
                            self.drams[home].access_faulted(
                                ready_at,
                                ev.line,
                                AccessKind::Write,
                                unit,
                                probe,
                                plan,
                            );
                        }
                    }
                }
                r
            }
            CacheOutcome::Bypass => unreachable!("L2 has no allocation filter"),
        }
    }

    /// Stage 3 (write): absorbs a store into the home memory partition.
    /// The write-back L2 takes it (allocating without fetch on a miss,
    /// as coalesced full-line stores do); dirty evictions spill to DRAM.
    pub fn mem_write(&mut self, now: Cycle, home: usize, line: LineAddr, locality: Locality) {
        self.mem_write_probed(now, home, line, locality, &mut NullProbe);
    }

    /// [`McmSystem::mem_write`] reporting the L2 hit/miss and any DRAM
    /// traffic to `probe`.
    pub fn mem_write_probed<P: Probe>(
        &mut self,
        now: Cycle,
        home: usize,
        line: LineAddr,
        locality: Locality,
        probe: &mut P,
    ) {
        self.mem_write_faulted(
            now,
            home,
            line,
            locality,
            probe,
            &mut mcm_fault::NullFaultPlan,
        );
    }

    /// [`McmSystem::mem_write_probed`] additionally consulting `plan`
    /// for DRAM thermal-throttle windows. With an inactive plan this is
    /// exactly `mem_write_probed`.
    pub fn mem_write_faulted<P: Probe, F: mcm_fault::FaultPlan>(
        &mut self,
        now: Cycle,
        home: usize,
        line: LineAddr,
        locality: Locality,
        probe: &mut P,
        plan: &mut F,
    ) {
        let unit = home as u32;
        match self.l2s[home].access_probed(now, line, AccessKind::Write, locality, unit, probe) {
            CacheOutcome::Hit { .. } => {}
            CacheOutcome::Miss { allocate, ready_at } => {
                if allocate {
                    if let Some(ev) = self.l2s[home].fill(line, ready_at, true) {
                        if ev.dirty {
                            self.drams[home].access_faulted(
                                ready_at,
                                ev.line,
                                AccessKind::Write,
                                unit,
                                probe,
                                plan,
                            );
                        }
                    }
                } else {
                    self.drams[home].access_faulted(
                        ready_at,
                        line,
                        AccessKind::Write,
                        unit,
                        probe,
                        plan,
                    );
                }
            }
            CacheOutcome::Bypass => unreachable!("L2 has no allocation filter"),
        }
    }

    /// Flushes all private (L1) and GPM-side (L1.5) caches — the
    /// software-coherence action at every kernel boundary (§5.1.1).
    /// Write-through policies mean no writeback traffic results.
    pub fn flush_private_caches(&mut self) {
        for l1 in &mut self.l1s {
            l1.flush();
        }
        for l15 in &mut self.l15s {
            if !l15.is_disabled() {
                l15.flush();
            }
        }
        for mshr in &mut self.mshrs {
            mshr.clear();
        }
    }

    // ------------------------------------------------------------------
    // Statistics for report building.
    // ------------------------------------------------------------------

    /// Total warp instructions issued across all SMs.
    pub fn instructions(&self) -> u64 {
        self.sms.iter().map(SmCore::instructions).sum()
    }

    /// Loads issued.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Stores issued.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Accesses homed locally.
    pub fn local_accesses(&self) -> u64 {
        self.local_accesses.get()
    }

    /// Accesses homed remotely.
    pub fn remote_accesses(&self) -> u64 {
        self.remote_accesses.get()
    }

    /// Merged L1 hit ratio.
    pub fn l1_ratio(&self) -> Ratio {
        let mut r = Ratio::new();
        for l1 in &self.l1s {
            r.merge(l1.stats().accesses);
        }
        r
    }

    /// Merged L1.5 hit ratio (empty when the level is disabled).
    pub fn l15_ratio(&self) -> Ratio {
        let mut r = Ratio::new();
        for l15 in &self.l15s {
            if !l15.is_disabled() {
                r.merge(l15.stats().accesses);
            }
        }
        r
    }

    /// Merged L2 hit ratio.
    pub fn l2_ratio(&self) -> Ratio {
        let mut r = Ratio::new();
        for l2 in &self.l2s {
            r.merge(l2.stats().accesses);
        }
        r
    }

    /// Bytes carried by inter-module ring segments.
    pub fn inter_module_bytes(&self) -> u64 {
        self.ring.total_bytes()
    }

    /// Bytes moved in or out of DRAM arrays.
    pub fn dram_bytes(&self) -> u64 {
        self.drams.iter().map(DramPartition::total_bytes).sum()
    }

    /// Builds the data-movement energy ledger from accumulated traffic.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        let chip: u64 = self.xbars.iter().map(Crossbar::total_bytes).sum();
        ledger.record(mcm_interconnect::energy::Tier::Chip, chip);
        ledger.record(self.ring.tier(), self.ring.total_bytes());
        ledger.record_dram(self.dram_bytes());
        ledger
    }

    /// Per-module statistics for the run report.
    pub fn module_stats(&self) -> Vec<crate::report::ModuleStats> {
        (0..self.modules)
            .map(|m| {
                let per = self.sms_per_module as usize;
                let instructions = self.sms[m * per..(m + 1) * per]
                    .iter()
                    .map(SmCore::instructions)
                    .sum();
                crate::report::ModuleStats {
                    instructions,
                    dram_bytes: self.drams[m].total_bytes(),
                    l2: self.l2s[m].stats().accesses,
                    l15: if self.l15s[m].is_disabled() {
                        mcm_engine::stats::Ratio::new()
                    } else {
                        self.l15s[m].stats().accesses
                    },
                }
            })
            .collect()
    }

    /// The page map (placement diagnostics).
    pub fn page_map(&self) -> &PageMap {
        &self.page_map
    }

    /// Replaces the page map — the merge step of a sharded first-touch
    /// run, whose authoritative map lives behind a team-shared lock.
    pub(crate) fn install_page_map(&mut self, map: PageMap) {
        self.page_map = map;
    }

    /// Folds `n` placement lookups into the page map's counter (see
    /// [`PageMap::add_lookups`]).
    pub(crate) fn add_page_lookups(&mut self, n: u64) {
        self.page_map.add_lookups(n);
    }

    /// Absorbs from `other` every component owned by shard `shard` of a
    /// `shards`-way team (module `m` — its SMs, L1s, MSHRs, L1.5,
    /// crossbar, L2, DRAM partition, and charged fabric links — belongs
    /// to shard `m % shards`), plus `other`'s whole-run counters.
    ///
    /// The owned components are *swapped* in: in a sharded run each
    /// shard only ever touches the components it owns, so the absorbing
    /// machine's copies of foreign components are pristine and the
    /// shard's copies of everything it doesn't own are too. Counters
    /// (reads, writes, locality) accumulate wherever the issuing SM
    /// lives and are summed.
    ///
    /// # Panics
    ///
    /// Panics if the machines differ in shape.
    pub(crate) fn absorb_owned(&mut self, other: &mut McmSystem, shards: usize, shard: usize) {
        assert_eq!(self.modules, other.modules, "absorbing a different machine");
        assert_eq!(self.sms.len(), other.sms.len());
        let per = self.sms_per_module as usize;
        for m in 0..self.modules {
            if m % shards != shard {
                continue;
            }
            for sm in m * per..(m + 1) * per {
                std::mem::swap(&mut self.sms[sm], &mut other.sms[sm]);
                std::mem::swap(&mut self.l1s[sm], &mut other.l1s[sm]);
                std::mem::swap(&mut self.mshrs[sm], &mut other.mshrs[sm]);
            }
            std::mem::swap(&mut self.l15s[m], &mut other.l15s[m]);
            std::mem::swap(&mut self.xbars[m], &mut other.xbars[m]);
            std::mem::swap(&mut self.l2s[m], &mut other.l2s[m]);
            std::mem::swap(&mut self.drams[m], &mut other.drams[m]);
        }
        self.ring.absorb_owned(&mut other.ring, shards, shard);
        self.reads.add(other.reads.get());
        self.writes.add(other.writes.get());
        self.local_accesses.add(other.local_accesses.get());
        self.remote_accesses.add(other.remote_accesses.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use mcm_mem::page::PlacementPolicy;

    fn tiny_mcm() -> SystemConfig {
        let mut cfg = SystemConfig::baseline_mcm();
        cfg.topology.sms_per_module = 2; // 8 SMs total: fast tests
        cfg
    }

    #[test]
    fn module_mapping() {
        let sys = McmSystem::new(&tiny_mcm());
        assert_eq!(sys.total_sms(), 8);
        assert_eq!(sys.module_of(0), 0);
        assert_eq!(sys.module_of(1), 0);
        assert_eq!(sys.module_of(2), 1);
        assert_eq!(sys.module_of(7), 3);
    }

    #[test]
    fn l1_miss_then_fill_then_hit() {
        let mut sys = McmSystem::new(&tiny_mcm());
        let line = LineAddr::new(123);
        match sys.l1_access(Cycle::ZERO, 0, line, AccessKind::Read) {
            (issued, CacheOutcome::Miss { allocate: true, .. }) => {
                assert!(issued >= Cycle::ZERO);
            }
            (_, other) => panic!("expected cold miss, got {other:?}"),
        }
        sys.l1_fill(0, line, Cycle::new(300));
        match sys.l1_access(Cycle::new(400), 0, line, AccessKind::Read) {
            (_, CacheOutcome::Hit { ready_at }) => {
                assert!(ready_at - Cycle::new(400) <= Cycle::new(L1_LATENCY + 2));
            }
            (_, other) => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(sys.reads(), 2);
    }

    #[test]
    fn interleaved_home_is_line_modulo() {
        let mut sys = McmSystem::new(&tiny_mcm());
        assert_eq!(sys.home_of(LineAddr::new(0), 0), (0, Locality::Local));
        assert_eq!(sys.home_of(LineAddr::new(1), 0), (1, Locality::Remote));
        assert_eq!(sys.home_of(LineAddr::new(6), 2), (2, Locality::Local));
        assert_eq!(sys.local_accesses(), 2);
        assert_eq!(sys.remote_accesses(), 1);
    }

    #[test]
    fn first_touch_homes_on_requester() {
        let mut cfg = tiny_mcm();
        cfg.placement = PlacementPolicy::FirstTouch;
        let mut sys = McmSystem::new(&cfg);
        assert_eq!(sys.home_of(LineAddr::new(5), 3), (3, Locality::Local));
        // Another module touching the same page still goes to 3.
        assert_eq!(sys.home_of(LineAddr::new(6), 1), (3, Locality::Remote));
    }

    #[test]
    fn fabric_out_is_xbar_only() {
        let mut sys = McmSystem::new(&tiny_mcm());
        let t = sys.fabric_out(Cycle::ZERO, 2);
        assert_eq!(t, Cycle::new(XBAR_LATENCY + 1));
        assert_eq!(sys.inter_module_bytes(), 0);
    }

    #[test]
    fn ring_hops_route_and_charge() {
        let mut sys = McmSystem::new(&tiny_mcm());
        // 0 -> 1: one clockwise hop.
        let (dir, hops) = sys.ring_route(0, 1);
        assert_eq!(hops, 1);
        let (next, t) = sys.ring_hop(Cycle::ZERO, 0, 1, dir, REQUEST_BYTES);
        assert_eq!(next, 1);
        assert!(t >= Cycle::new(32));
        assert_eq!(sys.inter_module_bytes(), REQUEST_BYTES);
        // Response hop 1 -> 0 carries the full line.
        let (dir_back, hops_back) = sys.ring_route(1, 0);
        assert_eq!(hops_back, 1);
        let (back, t2) = sys.ring_hop(t, 1, 0, dir_back, LINE_BYTES);
        assert_eq!(back, 0);
        assert!(t2 >= t + Cycle::new(32));
        assert_eq!(sys.inter_module_bytes(), REQUEST_BYTES + LINE_BYTES);
    }

    #[test]
    fn mem_read_pays_dram_on_miss_and_l2_on_hit() {
        let mut sys = McmSystem::new(&tiny_mcm());
        let line = LineAddr::new(40);
        let miss = sys.mem_read(Cycle::ZERO, 0, line, Locality::Local);
        assert!(miss >= Cycle::from_ns(100) + Cycle::new(L2_LATENCY));
        let hit = sys.mem_read(Cycle::new(1000), 0, line, Locality::Local);
        assert!(hit - Cycle::new(1000) <= Cycle::new(L2_LATENCY + 2));
        assert_eq!(sys.l2_ratio().hits(), 1);
    }

    #[test]
    fn mem_write_spills_through_tiny_l2() {
        let mut cfg = tiny_mcm();
        cfg.caches.l2_bytes_total = 4 * 32 * 1024;
        let mut sys = McmSystem::new(&cfg);
        for i in 0..4096 {
            sys.mem_write(Cycle::new(i), 0, LineAddr::new(i * 4), Locality::Local);
        }
        assert!(sys.dram_bytes() > 0, "dirty evictions must reach DRAM");
    }

    #[test]
    fn l15_remote_only_filters_local() {
        let mut cfg = tiny_mcm();
        cfg.caches.l15_bytes_total = 8 << 20;
        let mut sys = McmSystem::new(&cfg);
        let line = LineAddr::new(77);
        assert_eq!(
            sys.l15_access(Cycle::ZERO, 0, line, AccessKind::Read, Locality::Local),
            L15Outcome::NotPresent
        );
        match sys.l15_access(Cycle::ZERO, 0, line, AccessKind::Read, Locality::Remote) {
            L15Outcome::Miss { fill: true, .. } => {}
            other => panic!("expected filling miss, got {other:?}"),
        }
        sys.l15_fill(0, line, Cycle::new(500));
        match sys.l15_access(Cycle::new(600), 0, line, AccessKind::Read, Locality::Remote) {
            L15Outcome::Hit { .. } => {}
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(sys.l15_ratio().hits(), 1);
    }

    #[test]
    fn l15_disabled_is_not_present() {
        let mut sys = McmSystem::new(&tiny_mcm());
        assert_eq!(
            sys.l15_access(
                Cycle::ZERO,
                0,
                LineAddr::new(1),
                AccessKind::Read,
                Locality::Remote
            ),
            L15Outcome::NotPresent
        );
        assert_eq!(sys.l15_ratio().total(), 0);
    }

    #[test]
    fn l15_write_never_fills() {
        let mut cfg = tiny_mcm();
        cfg.caches.l15_bytes_total = 8 << 20;
        let mut sys = McmSystem::new(&cfg);
        match sys.l15_access(
            Cycle::ZERO,
            0,
            LineAddr::new(9),
            AccessKind::Write,
            Locality::Remote,
        ) {
            L15Outcome::Miss { fill, .. } => assert!(!fill),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn flush_invalidates_l1_and_l15() {
        let mut cfg = tiny_mcm();
        cfg.caches.l15_bytes_total = 8 << 20;
        let mut sys = McmSystem::new(&cfg);
        let line = LineAddr::new(3);
        sys.l1_fill(0, line, Cycle::ZERO);
        sys.l15_fill(0, line, Cycle::ZERO);
        sys.flush_private_caches();
        match sys.l1_access(Cycle::new(10), 0, line, AccessKind::Read) {
            (_, CacheOutcome::Miss { .. }) => {}
            (_, other) => panic!("L1 must miss after flush, got {other:?}"),
        }
        match sys.l15_access(Cycle::new(10), 0, line, AccessKind::Read, Locality::Remote) {
            L15Outcome::Miss { .. } => {}
            other => panic!("L1.5 must miss after flush, got {other:?}"),
        }
    }

    #[test]
    fn energy_ledger_reflects_traffic() {
        let mut sys = McmSystem::new(&tiny_mcm());
        sys.fabric_out(Cycle::ZERO, 0);
        let (dir, _) = sys.ring_route(0, 1);
        sys.ring_hop(Cycle::ZERO, 0, 1, dir, REQUEST_BYTES);
        sys.mem_read(Cycle::ZERO, 1, LineAddr::new(1), Locality::Remote);
        let ledger = sys.energy_ledger();
        assert!(ledger.bytes(mcm_interconnect::energy::Tier::Package) > 0);
        assert!(ledger.bytes(mcm_interconnect::energy::Tier::Chip) > 0);
        assert!(ledger.dram_joules() > 0.0);
    }
}
