//! The reproduction scorecard: evaluates every headline claim of the
//! paper against this model and prints pass/fail per claim.
//!
//! "Pass" means the claim's *shape* holds — correct direction and a
//! magnitude inside a generous band around the paper's number — which is
//! the right bar for a rebuilt substrate with synthetic workloads (see
//! EXPERIMENTS.md). Exits nonzero if any claim fails, so this can act
//! as a regression gate.
//!
//! ```text
//! MCM_SCALE=0.5 cargo run --release -p mcm-bench --bin scorecard
//! ```

use mcm_bench::harness::{geomean_speedup, Memo};
use mcm_gpu::SystemConfig;
use mcm_workloads::suite;

struct Claim {
    what: &'static str,
    paper: f64,
    measured: f64,
    /// Accepted band around the paper value, as (lo, hi) multipliers on
    /// the *gain* (measured-1 vs paper-1) or absolute ratio bounds.
    lo: f64,
    hi: f64,
}

impl Claim {
    fn passes(&self) -> bool {
        self.measured >= self.lo && self.measured <= self.hi
    }
}

fn main() {
    let telemetry = mcm_bench::harness::telemetry_guard();
    let mut memo = Memo::from_env();
    let all = suite::suite();
    eprintln!(
        "running the scorecard at MCM_SCALE={} (several minutes on one core)...",
        memo.scale()
    );

    let baseline = SystemConfig::baseline_mcm();
    let optimized = SystemConfig::optimized_mcm();
    let mono128 = SystemConfig::largest_buildable_monolithic();
    let mono256 = SystemConfig::hypothetical_monolithic_256();
    let mgpu_base = SystemConfig::multi_gpu_baseline();
    let mgpu_opt = SystemConfig::multi_gpu_optimized();

    // Warm the whole 6-config x 48-workload grid across MCM_JOBS
    // workers; every claim below then reads from the memo cache.
    let configs = [
        &baseline, &optimized, &mono128, &mono256, &mgpu_base, &mgpu_opt,
    ];
    let pairs: Vec<_> = configs
        .iter()
        .flat_map(|&c| all.iter().map(move |w| (c, w)))
        .collect();
    memo.warm(&pairs);

    let opt_vs_base = geomean_speedup(&mut memo, &all, &optimized, &baseline, None);
    let opt_vs_mono128 = geomean_speedup(&mut memo, &all, &optimized, &mono128, None);
    let opt_vs_mono256 = geomean_speedup(&mut memo, &all, &optimized, &mono256, None);
    let opt_vs_mgpu = geomean_speedup(&mut memo, &all, &optimized, &mgpu_base, None);
    let mgpu_opt_gain = geomean_speedup(&mut memo, &all, &mgpu_opt, &mgpu_base, None);

    let base_bytes: u64 = all
        .iter()
        .map(|w| memo.run(&baseline, w).inter_module_bytes)
        .sum();
    let opt_bytes: u64 = all
        .iter()
        .map(|w| memo.run(&optimized, w).inter_module_bytes)
        .sum();
    let reduction = base_bytes as f64 / opt_bytes.max(1) as f64;

    let claims = [
        Claim {
            what: "optimized MCM-GPU over baseline MCM-GPU (paper +22.8%)",
            paper: 1.228,
            measured: opt_vs_base,
            lo: 1.05,
            hi: 1.60,
        },
        Claim {
            what: "inter-GPM traffic reduction, optimized vs baseline (paper 5x)",
            paper: 5.0,
            measured: reduction,
            lo: 2.5,
            hi: 10.0,
        },
        Claim {
            what: "optimized MCM-GPU over 128-SM monolithic (paper +45.5%)",
            paper: 1.455,
            measured: opt_vs_mono128,
            lo: 1.15,
            hi: 1.90,
        },
        Claim {
            what: "optimized MCM-GPU vs unbuildable 256-SM monolithic (paper within 10%)",
            paper: 0.90,
            measured: opt_vs_mono256,
            lo: 0.70,
            hi: 1.02,
        },
        Claim {
            what: "optimized MCM-GPU over baseline multi-GPU (paper +51.9%)",
            paper: 1.519,
            measured: opt_vs_mgpu,
            lo: 1.15,
            hi: 2.30,
        },
        Claim {
            what: "optimized multi-GPU over baseline multi-GPU (paper +25.1%)",
            paper: 1.251,
            measured: mgpu_opt_gain,
            lo: 1.02,
            hi: 1.60,
        },
    ];

    println!(
        "MCM-GPU reproduction scorecard (MCM_SCALE={})\n",
        memo.scale()
    );
    let mut failed = 0;
    for c in &claims {
        let mark = if c.passes() { "PASS" } else { "FAIL" };
        if !c.passes() {
            failed += 1;
        }
        println!(
            "[{mark}] {:<72} paper {:>5.2}  measured {:>5.2}  accepted [{:.2}, {:.2}]",
            c.what, c.paper, c.measured, c.lo, c.hi
        );
    }
    println!(
        "\n{} of {} headline claims reproduced within band",
        claims.len() - failed,
        claims.len()
    );
    // An explicit drop: process::exit skips destructors, and the
    // failing path must still flush the MCM_TELEMETRY snapshot.
    drop(telemetry);
    if failed > 0 {
        std::process::exit(1);
    }
}
