//! Miss-status holding registers for split-transaction memory requests.
//!
//! Each SM's load/store unit owns an [`Mshr`]. When a load misses the
//! L1, the MSHR decides whether a fill for that line is already in
//! flight (the new load *coalesces* onto it and waits for the same
//! response), whether a new entry can be reserved (the load issues a
//! fresh request downstream), or whether the table is full (the warp
//! must stall and replay — the classic bound on a GPU's memory-level
//! parallelism).
//!
//! The table maps lines to caller-chosen request identifiers, so the
//! simulation loop that owns the in-flight request objects can attach
//! coalesced waiters to them.

use std::collections::HashMap;

use mcm_engine::stats::Counter;

use crate::addr::LineAddr;

/// The decision for a load miss presented to the MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrLookup {
    /// A fill for this line is in flight under the returned request id;
    /// attach to it instead of issuing a duplicate.
    InFlight(u64),
    /// A free entry exists; call [`Mshr::reserve`] and issue downstream.
    CanIssue,
    /// All entries are busy; the warp must stall until some entry
    /// releases.
    Full,
}

/// A bounded table of in-flight line fills.
///
/// # Example
///
/// ```
/// use mcm_mem::addr::LineAddr;
/// use mcm_mem::mshr::{Mshr, MshrLookup};
///
/// let mut mshr = Mshr::new(2);
/// let line = LineAddr::new(9);
/// assert_eq!(mshr.lookup(line), MshrLookup::CanIssue);
/// mshr.reserve(line, 42);
/// // A second miss on the same line coalesces onto request 42.
/// assert_eq!(mshr.lookup(line), MshrLookup::InFlight(42));
/// mshr.release(line);
/// assert_eq!(mshr.lookup(line), MshrLookup::CanIssue);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    pending: HashMap<LineAddr, u64>,
    coalesced: Counter,
    issued: Counter,
    stalls: Counter,
}

impl Mshr {
    /// Creates an MSHR with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        Mshr {
            capacity,
            pending: HashMap::with_capacity(capacity),
            coalesced: Counter::new(),
            issued: Counter::new(),
            stalls: Counter::new(),
        }
    }

    /// Classifies a miss on `line` and updates statistics.
    #[inline]
    pub fn lookup(&mut self, line: LineAddr) -> MshrLookup {
        if let Some(&req) = self.pending.get(&line) {
            self.coalesced.inc();
            return MshrLookup::InFlight(req);
        }
        if self.pending.len() >= self.capacity {
            self.stalls.inc();
            return MshrLookup::Full;
        }
        self.issued.inc();
        MshrLookup::CanIssue
    }

    /// Reserves an entry binding `line` to the caller's request id.
    /// Call after [`MshrLookup::CanIssue`].
    ///
    /// # Panics
    ///
    /// Panics if the table is full or the line already has an entry —
    /// both indicate the caller skipped `lookup`.
    #[inline]
    pub fn reserve(&mut self, line: LineAddr, request: u64) {
        assert!(self.pending.len() < self.capacity, "MSHR overfilled");
        let prev = self.pending.insert(line, request);
        assert!(prev.is_none(), "line {line} already in flight");
    }

    /// Releases the entry for `line` when its fill completes; returns
    /// the request id it was bound to, if any.
    #[inline]
    pub fn release(&mut self, line: LineAddr) -> Option<u64> {
        self.pending.remove(&line)
    }

    /// Like [`Mshr::reserve`], additionally reporting the table's new
    /// occupancy for `sm` to `probe`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Mshr::reserve`].
    pub fn reserve_probed<P: mcm_probe::Probe>(
        &mut self,
        line: LineAddr,
        request: u64,
        sm: u32,
        now: mcm_engine::Cycle,
        probe: &mut P,
    ) {
        self.reserve(line, request);
        if P::ACTIVE {
            probe.mshr_occupancy(sm, now, self.pending.len() as u32, self.capacity as u32);
        }
    }

    /// Like [`Mshr::release`], additionally reporting the table's new
    /// occupancy for `sm` to `probe` when an entry was actually freed.
    pub fn release_probed<P: mcm_probe::Probe>(
        &mut self,
        line: LineAddr,
        sm: u32,
        now: mcm_engine::Cycle,
        probe: &mut P,
    ) -> Option<u64> {
        let released = self.release(line);
        if P::ACTIVE && released.is_some() {
            probe.mshr_occupancy(sm, now, self.pending.len() as u32, self.capacity as u32);
        }
        released
    }

    /// Whether at least one entry is free.
    pub fn has_free_entry(&self) -> bool {
        self.pending.len() < self.capacity
    }

    /// Fills currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Misses merged into an in-flight fill.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.get()
    }

    /// Misses that issued a new downstream request.
    pub fn issued(&self) -> u64 {
        self.issued.get()
    }

    /// Misses that found the table full.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// Clears all entries (end-of-kernel quiesce).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_same_line() {
        let mut m = Mshr::new(4);
        assert_eq!(m.lookup(LineAddr::new(1)), MshrLookup::CanIssue);
        m.reserve(LineAddr::new(1), 7);
        for _ in 0..3 {
            assert_eq!(m.lookup(LineAddr::new(1)), MshrLookup::InFlight(7));
        }
        assert_eq!(m.coalesced(), 3);
        assert_eq!(m.issued(), 1);
        assert_eq!(m.outstanding(), 1);
    }

    #[test]
    fn full_table_stalls_and_release_frees() {
        let mut m = Mshr::new(2);
        m.lookup(LineAddr::new(1));
        m.reserve(LineAddr::new(1), 0);
        m.lookup(LineAddr::new(2));
        m.reserve(LineAddr::new(2), 1);
        assert!(!m.has_free_entry());
        assert_eq!(m.lookup(LineAddr::new(3)), MshrLookup::Full);
        assert_eq!(m.stalls(), 1);
        assert_eq!(m.release(LineAddr::new(1)), Some(0));
        assert!(m.has_free_entry());
        assert_eq!(m.lookup(LineAddr::new(3)), MshrLookup::CanIssue);
    }

    #[test]
    fn release_unknown_line_is_none() {
        let mut m = Mshr::new(2);
        assert_eq!(m.release(LineAddr::new(5)), None);
    }

    #[test]
    fn clear_resets() {
        let mut m = Mshr::new(2);
        m.lookup(LineAddr::new(1));
        m.reserve(LineAddr::new(1), 0);
        m.clear();
        assert_eq!(m.outstanding(), 0);
        assert!(m.has_free_entry());
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_reserve_panics() {
        let mut m = Mshr::new(2);
        m.reserve(LineAddr::new(1), 0);
        m.reserve(LineAddr::new(1), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        Mshr::new(0);
    }

    #[test]
    fn probed_reserve_and_release_report_occupancy() {
        use mcm_engine::Cycle;

        #[derive(Default)]
        struct Log(Vec<(u32, u32, u32)>);
        impl mcm_probe::Probe for Log {
            fn mshr_occupancy(&mut self, sm: u32, _now: Cycle, outstanding: u32, capacity: u32) {
                self.0.push((sm, outstanding, capacity));
            }
        }
        let mut log = Log::default();
        let mut m = Mshr::new(2);
        m.reserve_probed(LineAddr::new(1), 0, 5, Cycle::ZERO, &mut log);
        m.reserve_probed(LineAddr::new(2), 1, 5, Cycle::new(3), &mut log);
        assert_eq!(
            m.release_probed(LineAddr::new(1), 5, Cycle::new(9), &mut log),
            Some(0)
        );
        // Releasing a line with no entry reports nothing.
        assert_eq!(
            m.release_probed(LineAddr::new(7), 5, Cycle::new(10), &mut log),
            None
        );
        assert_eq!(log.0, vec![(5, 1, 2), (5, 2, 2), (5, 1, 2)]);
    }
}
