//! Regenerates Fig. 16 (optimization breakdown) of the paper. Honors `MCM_SCALE` (default 0.5).
fn main() {
    let _telemetry = mcm_bench::harness::telemetry_guard();
    let mut memo = mcm_bench::harness::Memo::from_env();
    println!("{}", mcm_bench::figures::fig16(&mut memo));
}
