//! The §3.3.1 analytical link-sizing model must agree qualitatively
//! with what the simulator measures: link settings the analysis calls
//! sufficient shouldn't throttle the machine, and settings it calls
//! throttling should.

use mcm::gpu::analysis::{LinkSizing, LinkVerdict};
use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::suite;

#[test]
fn paper_example_constants() {
    let sizing = LinkSizing::paper_example();
    assert_eq!(sizing.gpms, 4);
    assert_eq!(sizing.dram_gbps_per_gpm, 768.0);
    // The paper's "2b supplied from each L2 partition".
    assert_eq!(sizing.supply_per_partition_gbps(), 2.0 * 768.0);
}

#[test]
fn analysis_verdicts_match_simulated_sensitivity() {
    // A bandwidth-hungry workload on a quarter-size machine (bandwidth
    // scaled with it). The analysis with the machine's parameters and
    // its own measured L2 hit rate should order the link settings the
    // same way the simulation does.
    let mut spec = suite::by_name("Stream").unwrap().scaled(0.15);
    spec.ctas /= 4;
    let machine = |link: f64| {
        let mut cfg = SystemConfig::mcm_with_link(link);
        cfg.topology.sms_per_module = 16;
        cfg.dram_total_gbps /= 4.0;
        cfg.caches.l2_bytes_total /= 4;
        cfg
    };

    // Measure the baseline hit rate once for the analysis input.
    let probe = Simulator::run(&machine(1536.0), &spec);
    let sizing = LinkSizing {
        gpms: 4,
        dram_gbps_per_gpm: 768.0 / 4.0,
        l2_hit_rate: probe.l2.rate().min(0.9),
    };

    let ample = Simulator::run(&machine(1536.0), &spec);
    let starved_link = 48.0;
    let starved = Simulator::run(&machine(starved_link), &spec);

    // The analysis must call 1536 GB/s sufficient and 48 GB/s
    // throttling for this machine.
    assert!(matches!(
        sizing.verdict(1536.0),
        LinkVerdict::Sufficient { .. }
    ));
    let predicted_fraction = match sizing.verdict(starved_link) {
        LinkVerdict::Throttles {
            achievable_dram_fraction,
        } => achievable_dram_fraction,
        LinkVerdict::Sufficient { .. } => panic!("48 GB/s links cannot be sufficient"),
    };

    // And the simulation must agree: the starved machine is much
    // slower, in the same ballpark the analysis predicts (loose factor
    // 3 band — the analysis ignores locality and request overheads).
    let slowdown = starved.cycles.as_u64() as f64 / ample.cycles.as_u64() as f64;
    assert!(
        slowdown > 1.5,
        "analysis predicted throttling but the simulation barely slowed ({slowdown:.2}x)"
    );
    let predicted_slowdown = 1.0 / predicted_fraction;
    assert!(
        slowdown < predicted_slowdown * 3.0 && slowdown > predicted_slowdown / 3.0,
        "simulated slowdown {slowdown:.2}x too far from analytic {predicted_slowdown:.2}x"
    );
}

#[test]
fn sufficient_links_leave_no_performance_on_the_table() {
    // §3.3.1: "link bandwidth settings greater than [the requirement]
    // are not expected to yield any additional performance."
    let mut spec = suite::by_name("MiniAMR").unwrap().scaled(0.1);
    spec.ctas /= 4;
    let machine = |link: f64| {
        let mut cfg = SystemConfig::mcm_with_link(link);
        cfg.topology.sms_per_module = 16;
        cfg.dram_total_gbps /= 4.0;
        cfg.caches.l2_bytes_total /= 4;
        cfg
    };
    let probe = Simulator::run(&machine(1536.0), &spec);
    let sizing = LinkSizing {
        gpms: 4,
        dram_gbps_per_gpm: 768.0 / 4.0,
        l2_hit_rate: probe.l2.rate().min(0.9),
    };
    // The back-of-envelope requirement ignores ring multi-hop
    // traversal (~1.33x on 4 nodes), request-packet overhead (+25%),
    // and per-segment load imbalance, so the simulated knee sits a
    // factor ~2 above it (the paper's own Fig. 4 likewise shows
    // residual gains past its §3.3.1 estimate). Past twice the
    // requirement, returns must diminish sharply.
    let required = sizing.required_link_gbps();
    let at_2x = Simulator::run(&machine(required * 2.0), &spec);
    let at_4x = Simulator::run(&machine(required * 4.0), &spec);
    let gain = at_2x.cycles.as_u64() as f64 / at_4x.cycles.as_u64() as f64;
    assert!(
        gain < 1.10,
        "doubling links past 2x the analytic requirement bought \
         {gain:.2}x — the analysis promised diminishing returns"
    );
}
