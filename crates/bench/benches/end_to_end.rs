//! End-to-end simulator throughput: whole runs of scaled-down workloads
//! on the key machine configurations. Criterion reports time per run;
//! divide the workload's instruction count by it for simulated
//! instructions per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mcm_gpu::{Simulator, SystemConfig};
use mcm_workloads::suite;

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let configs = [
        ("baseline_mcm", SystemConfig::baseline_mcm()),
        ("optimized_mcm", SystemConfig::optimized_mcm()),
        ("monolithic_256", SystemConfig::hypothetical_monolithic_256()),
        ("multi_gpu", SystemConfig::multi_gpu_baseline()),
    ];
    for (name, cfg) in &configs {
        let spec = suite::by_name("CFD").expect("suite workload").scaled(0.02);
        group.bench_with_input(BenchmarkId::new("CFD_2pct", name), cfg, |b, cfg| {
            b.iter(|| black_box(Simulator::run(cfg, &spec)));
        });
    }
    // One memory-intensive and one limited-parallelism workload on the
    // baseline, to expose per-category simulation cost.
    for wname in ["Stream", "DWT"] {
        let spec = suite::by_name(wname).expect("suite workload").scaled(0.02);
        group.bench_with_input(
            BenchmarkId::new("baseline", wname),
            &SystemConfig::baseline_mcm(),
            |b, cfg| {
                b.iter(|| black_box(Simulator::run(cfg, &spec)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_full_runs);
criterion_main!(benches);
