//! Smoke tests: every figure-harness binary runs to completion at a
//! tiny `MCM_SCALE`. These catch panics, broken CLI plumbing, and
//! accidental scale-insensitivity (a bin that ignores `MCM_SCALE`
//! makes this suite hang) without asserting anything about the
//! numbers themselves.
//!
//! Each binary runs in its own scratch directory so bins that write
//! `results/` (e.g. `reproduce`) never clobber the repo's checked-in
//! outputs.

use std::path::PathBuf;
use std::process::Command;

/// Tiny scale: big enough that every workload still has work to do,
/// small enough that the full sweep of a bin finishes in seconds.
const SMOKE_SCALE: &str = "0.01";

fn scratch_dir(bin: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcm-bin-smoke-{}-{bin}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_bin(bin: &str, exe: &str) {
    let dir = scratch_dir(bin);
    let out = Command::new(exe)
        .current_dir(&dir)
        .env("MCM_SCALE", SMOKE_SCALE)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    // `scorecard` exits 1 when a paper claim misses its acceptance
    // band — expected at smoke scale, where some effects don't have
    // enough work to amortize. Completing with a verdict is a pass
    // here; only crashes (panic = 101, signals = no code) fail.
    let ok = match out.status.code() {
        Some(0) => true,
        Some(1) => bin == "scorecard",
        _ => false,
    };
    assert!(
        ok,
        "{bin} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

macro_rules! bin_smoke {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                run_bin(stringify!($name), env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
            }
        )*
    };
}

bin_smoke!(
    ablation_alloc_policy,
    ablation_gpm_count,
    ablation_page_size,
    ablation_scheduler,
    ablation_topology,
    efficiency,
    fig02_scaling,
    fig04_link_sensitivity,
    fig06_l15_cache,
    fig07_l15_bandwidth,
    fig09_distributed_sched,
    fig10_ds_bandwidth,
    fig13_first_touch,
    fig14_ft_bandwidth,
    fig15_scurve,
    fig16_breakdown,
    fig17_multi_gpu,
    reproduce,
    scorecard,
    tables,
);
