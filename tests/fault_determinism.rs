//! Fault-layer soundness: the inactive plan is bit-exact against the
//! plain simulator, seeded schedules are reproducible, and degraded
//! machines finish every instruction — faults cost cycles, never
//! correctness.

use mcm::fault::{DeadModule, FaultConfig, NullFaultPlan, SeededFaultPlan};
use mcm::gpu::{RunReport, Simulator, SystemConfig};
use mcm::probe::NullProbe;
use mcm::workloads::{suite, WorkloadSpec};

/// The golden-determinism trio: one workload per category.
const TRIO: [&str; 3] = ["Stream", "Hotspot", "DWT"];

fn golden_spec(name: &str) -> WorkloadSpec {
    suite::by_name(name).expect("suite workload").scaled(0.02)
}

fn faulted(cfg: &SystemConfig, spec: &WorkloadSpec, config: FaultConfig) -> RunReport {
    let mut plan = SeededFaultPlan::new(config);
    Simulator::run_faulted(cfg, spec, &mut NullProbe, &mut plan)
}

/// Asserts the run executed every static instruction, within the
/// existing MSHR-replay inflation bound.
fn assert_instructions(report: &RunReport, spec: &WorkloadSpec) {
    let budget = spec.approx_instructions();
    assert!(
        report.instructions >= budget,
        "{}: lost instructions: {} < {budget}",
        report.workload,
        report.instructions
    );
    assert!(
        report.instructions <= budget * 2,
        "{}: replay explosion: {} for a budget of {budget}",
        report.workload,
        report.instructions
    );
}

/// The inactive plan monomorphizes to the plain simulator: every golden
/// configuration reproduces its exact report, field for field.
#[test]
fn null_plan_reproduces_golden_runs_exactly() {
    for cfg in [SystemConfig::baseline_mcm(), SystemConfig::optimized_mcm()] {
        for name in TRIO {
            let spec = golden_spec(name);
            let plain = Simulator::run(&cfg, &spec);
            let nulled = Simulator::run_faulted(&cfg, &spec, &mut NullProbe, &mut NullFaultPlan);
            assert_eq!(plain, nulled, "{name} on {}", cfg.name);
        }
    }
}

/// An *active* seeded plan with all rates at zero takes the faulted
/// code paths yet must still match the plain run bit-exactly.
#[test]
fn zero_rate_plan_reproduces_golden_runs_exactly() {
    let cfg = SystemConfig::optimized_mcm();
    for name in TRIO {
        let spec = golden_spec(name);
        let plain = Simulator::run(&cfg, &spec);
        let zeroed = faulted(&cfg, &spec, FaultConfig::with_rate(0xDEAD_BEEF, 0.0));
        assert_eq!(plain, zeroed, "{name}");
    }
}

/// The same seed and rate yield identical degraded runs; a different
/// seed is allowed to (and here does) diverge on at least one workload.
#[test]
fn seeded_schedules_are_reproducible() {
    let cfg = SystemConfig::optimized_mcm();
    let mut any_divergence = false;
    for name in TRIO {
        let spec = golden_spec(name);
        let a = faulted(&cfg, &spec, FaultConfig::with_rate(7, 0.01));
        let b = faulted(&cfg, &spec, FaultConfig::with_rate(7, 0.01));
        assert_eq!(a, b, "{name}: same seed must reproduce bit-exactly");
        let c = faulted(&cfg, &spec, FaultConfig::with_rate(8, 0.01));
        any_divergence |= c != a;
    }
    assert!(
        any_divergence,
        "changing the seed changed nothing — the schedule ignores it"
    );
}

/// Transient faults keep the instruction count exact (retries and
/// replays happen below the warp), and on the memory-intensive
/// representative — where link and DRAM service time dominate — they
/// cost cycles. (Cycle monotonicity is *not* asserted for every
/// workload: fault delays perturb warp timing and thereby first-touch
/// placement, and on latency-tolerant workloads that placement luck
/// can outweigh the fault cost.)
#[test]
fn transient_faults_slow_but_conserve_instructions() {
    let cfg = SystemConfig::optimized_mcm();
    for name in TRIO {
        let spec = golden_spec(name);
        let healthy = Simulator::run(&cfg, &spec);
        let noisy = faulted(&cfg, &spec, FaultConfig::with_rate(7, 0.05));
        assert_eq!(
            noisy.instructions, healthy.instructions,
            "{name}: transient faults must not change instruction counts"
        );
        if name == "Stream" {
            assert!(
                noisy.cycles > healthy.cycles,
                "Stream: a 5% fault rate must cost a bandwidth-bound \
                 workload cycles ({} vs {})",
                noisy.cycles,
                healthy.cycles
            );
        }
    }
}

/// Hard single-GPM loss on the optimized (DS + FT) machine: every
/// workload completes with conserved instructions and strictly higher
/// cycles — the surviving modules absorb the dead module's CTAs and
/// its share of SM throughput and first-touch DRAM is gone.
#[test]
fn single_gpm_loss_degrades_gracefully() {
    let cfg = SystemConfig::optimized_mcm();
    for name in TRIO {
        let spec = golden_spec(name);
        let healthy = Simulator::run(&cfg, &spec);
        let lossy = FaultConfig {
            dead_module: Some(DeadModule {
                module: 1,
                from_kernel: 0,
            }),
            ..FaultConfig::default()
        };
        let degraded = faulted(&cfg, &spec, lossy);
        assert_instructions(&degraded, &spec);
        assert!(
            degraded.cycles > healthy.cycles,
            "{name}: losing a GPM must cost cycles ({} vs {})",
            degraded.cycles,
            healthy.cycles
        );
    }
}

/// Sharded execution composes with fault injection: the same seeded
/// plan yields bit-identical reports whether the simulation runs
/// serially or split across shards. Exercised for a zero-rate plan, a
/// noisy transient plan, and in `sharded_gpm_loss_resteals_across_
/// shard_boundaries` below for hard module loss.
#[test]
fn sharded_faulted_runs_match_serial_bit_for_bit() {
    let cfg = SystemConfig::optimized_mcm();
    for name in TRIO {
        let spec = golden_spec(name);
        for rate in [0.0, 0.05] {
            let serial = faulted(&cfg, &spec, FaultConfig::with_rate(7, rate));
            for shards in [2, 4] {
                let mut plan = SeededFaultPlan::new(FaultConfig::with_rate(7, rate));
                let (sharded, stats) =
                    Simulator::run_faulted_sharded(&cfg, &spec, &mut NullProbe, &mut plan, shards);
                assert_eq!(
                    serial, sharded,
                    "{name} at rate {rate} diverged at {shards} shard(s)"
                );
                assert_eq!(stats.shards, shards);
                assert_eq!(stats.residual_messages, 0);
            }
        }
    }
}

/// Hard GPM loss under sharding: the dead module's CTAs restealed onto
/// survivors owned by *other shards* must land identically to the
/// serial engine — the resteal decision is a global one, taken at a
/// kernel boundary where all shards are in lockstep. `from_kernel: 1`
/// makes the loss happen mid-run, so shard ownership is already warm.
#[test]
fn sharded_gpm_loss_resteals_across_shard_boundaries() {
    let cfg = SystemConfig::optimized_mcm();
    for module in [0, 1] {
        let lossy = FaultConfig {
            dead_module: Some(DeadModule {
                module,
                from_kernel: 1,
            }),
            ..FaultConfig::default()
        };
        let mut spec = golden_spec("Stream");
        spec.kernel_iters = spec.kernel_iters.max(3);
        let serial = faulted(&cfg, &spec, lossy);
        assert_instructions(&serial, &spec);
        for shards in [2, 4] {
            let mut plan = SeededFaultPlan::new(lossy);
            let (sharded, _) =
                Simulator::run_faulted_sharded(&cfg, &spec, &mut NullProbe, &mut plan, shards);
            assert_eq!(
                serial, sharded,
                "dead module {module} diverged at {shards} shard(s)"
            );
        }
    }
}

/// A GPM dying *between* kernels: kernel 0 runs healthy, later kernels
/// run degraded, and the whole run still conserves instructions.
#[test]
fn mid_run_gpm_loss_completes() {
    let cfg = SystemConfig::optimized_mcm();
    let mut spec = golden_spec("Stream");
    spec.kernel_iters = spec.kernel_iters.max(3);
    let lossy = FaultConfig {
        dead_module: Some(DeadModule {
            module: 2,
            from_kernel: 1,
        }),
        ..FaultConfig::default()
    };
    let degraded = faulted(&cfg, &spec, lossy);
    assert_instructions(&degraded, &spec);
}
