//! Point-to-point links: bandwidth, hop latency, and energy tier.

use mcm_engine::{Cycle, Resource};

use crate::energy::Tier;

/// A unidirectional point-to-point link.
///
/// A transfer of `bytes` arriving at `now` serializes on the link's
/// bandwidth (queuing behind earlier transfers) and then pays the hop
/// latency — the paper's 32-cycle inter-GPM hop (§3.2) covers traversal
/// to the die edge, SerDes, and the wire.
///
/// # Example
///
/// ```
/// use mcm_engine::Cycle;
/// use mcm_interconnect::energy::Tier;
/// use mcm_interconnect::link::Link;
///
/// // One 768 GB/s GRS link with a 32-cycle hop latency.
/// let mut link = Link::new("gpm0->gpm1", 768.0, Cycle::new(32), Tier::Package);
/// let done = link.transfer(Cycle::ZERO, 128);
/// assert_eq!(done, Cycle::new(33)); // ceil(128/768) + 32
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth: Resource,
    hop_latency: Cycle,
    tier: Tier,
}

impl Link {
    /// Creates a link with `gbps` bandwidth (GB/s = bytes/cycle at
    /// 1 GHz), `hop_latency` per traversal, on energy `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive (propagated from
    /// [`Resource::new`]).
    pub fn new(name: &'static str, gbps: f64, hop_latency: Cycle, tier: Tier) -> Self {
        Link {
            bandwidth: Resource::from_gbps(name, gbps),
            hop_latency,
            tier,
        }
    }

    /// Sends `bytes` over the link starting at `now`; returns arrival
    /// time at the far side.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.bandwidth.service(now, bytes) + self.hop_latency
    }

    /// Like [`Link::transfer`], additionally reporting the transfer to
    /// `probe` under the caller-chosen link identity `id` with its
    /// computed arrival time.
    pub fn transfer_probed<P: mcm_probe::Probe>(
        &mut self,
        now: Cycle,
        bytes: u64,
        id: mcm_probe::LinkId,
        probe: &mut P,
    ) -> Cycle {
        let arrival = self.transfer(now, bytes);
        if P::ACTIVE {
            probe.link_transfer(id, now, bytes, arrival);
        }
        arrival
    }

    /// Total bytes that have crossed the link.
    pub fn total_bytes(&self) -> u64 {
        self.bandwidth.total_bytes()
    }

    /// Achieved throughput over `elapsed`, in GB/s.
    pub fn achieved_gbps(&self, elapsed: Cycle) -> f64 {
        self.bandwidth.achieved_gbps(elapsed)
    }

    /// Fraction of `elapsed` the link spent busy.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        self.bandwidth.utilization(elapsed)
    }

    /// The link's configured bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth.bytes_per_cycle()
    }

    /// Per-traversal latency.
    pub fn hop_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// The energy tier traffic on this link is accounted to.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Energy spent on this link so far, in joules.
    pub fn joules(&self) -> f64 {
        self.tier.joules_for_bytes(self.total_bytes())
    }

    /// The link's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.bandwidth.name()
    }

    /// The cycle at which the link next becomes free (diagnostics).
    #[doc(hidden)]
    pub fn debug_next_free(&self) -> Cycle {
        self.bandwidth.next_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_pays_serialization_plus_hop() {
        let mut l = Link::new("t", 128.0, Cycle::new(32), Tier::Package);
        // 256 B at 128 B/cycle = 2 cycles + 32 = 34.
        assert_eq!(l.transfer(Cycle::ZERO, 256), Cycle::new(34));
    }

    #[test]
    fn overlapping_transfers_queue() {
        let mut l = Link::new("t", 64.0, Cycle::new(10), Tier::Package);
        let a = l.transfer(Cycle::ZERO, 640); // serializes 10 cycles
        let b = l.transfer(Cycle::ZERO, 640); // queues 10 more
        assert_eq!(a, Cycle::new(20));
        assert_eq!(b, Cycle::new(30));
        assert_eq!(l.total_bytes(), 1280);
    }

    #[test]
    fn energy_matches_tier() {
        let mut l = Link::new("t", 1000.0, Cycle::ZERO, Tier::Board);
        l.transfer(Cycle::ZERO, 1000);
        let expect = Tier::Board.joules_for_bytes(1000);
        assert!((l.joules() - expect).abs() < 1e-15);
    }

    #[test]
    fn probed_transfer_reports_identity_and_arrival() {
        #[derive(Default)]
        struct Log(Vec<(mcm_probe::LinkId, u64, u64)>);
        impl mcm_probe::Probe for Log {
            fn link_transfer(
                &mut self,
                link: mcm_probe::LinkId,
                _now: Cycle,
                bytes: u64,
                arrival: Cycle,
            ) {
                self.0.push((link, bytes, arrival.as_u64()));
            }
        }
        let mut log = Log::default();
        let mut l = Link::new("t", 128.0, Cycle::new(32), Tier::Package);
        let t = l.transfer_probed(Cycle::ZERO, 256, mcm_probe::LinkId::RingCw(1), &mut log);
        assert_eq!(t, Cycle::new(34));
        assert_eq!(log.0, vec![(mcm_probe::LinkId::RingCw(1), 256, 34)]);
    }

    #[test]
    fn utilization_reflects_load() {
        let mut l = Link::new("t", 100.0, Cycle::ZERO, Tier::Package);
        l.transfer(Cycle::ZERO, 500); // busy 5 cycles
        assert!((l.utilization(Cycle::new(10)) - 0.5).abs() < 1e-9);
        assert!((l.achieved_gbps(Cycle::new(10)) - 50.0).abs() < 1e-9);
    }
}
