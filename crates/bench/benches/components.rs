//! Microbenchmarks for the simulator's hot components: these bound how
//! fast whole-system runs can go and guard against performance
//! regressions in the substrate crates. Runs on the in-repo
//! `mcm-testkit` wall-clock runner (`cargo bench -p mcm-bench`).

use mcm_testkit::bench::{black_box, Group};

use mcm_engine::rng::Xoshiro256;
use mcm_engine::{Cycle, EventQueue, Resource};
use mcm_interconnect::ring::{NodeId, RingNetwork};
use mcm_mem::addr::{AccessKind, LineAddr, Locality};
use mcm_mem::cache::{CacheConfig, CacheOutcome, SetAssocCache};
use mcm_mem::dram::{DramConfig, DramPartition};
use mcm_workloads::{suite, WarpStream};

fn bench_cache() {
    let mut group = Group::new("cache");
    {
        let mut cache = SetAssocCache::new(CacheConfig::new("b", 4 << 20));
        for i in 0..1024 {
            cache.fill(LineAddr::new(i), Cycle::ZERO, false);
        }
        let mut i = 0u64;
        group.bench("access_hit", || {
            i = (i + 1) % 1024;
            black_box(cache.access(
                Cycle::new(i),
                LineAddr::new(i),
                AccessKind::Read,
                Locality::Local,
            ))
        });
    }
    {
        let mut cache = SetAssocCache::new(CacheConfig::new("b", 1 << 20));
        let mut i = 0u64;
        group.bench("miss_fill_evict", || {
            i += 1;
            if let CacheOutcome::Miss { allocate: true, .. } = cache.access(
                Cycle::new(i),
                LineAddr::new(i),
                AccessKind::Read,
                Locality::Local,
            ) {
                black_box(cache.fill(LineAddr::new(i), Cycle::new(i), false));
            }
        });
    }
    group.finish();
}

fn bench_interconnect() {
    let mut group = Group::new("interconnect");
    {
        let mut ring = RingNetwork::new(4, 768.0, Cycle::new(32));
        let mut t = 0u64;
        group.bench("ring_transfer_2hop", || {
            t += 1;
            black_box(ring.transfer(Cycle::new(t), NodeId(0), NodeId(2), 128))
        });
    }
    {
        let mut dram = DramPartition::new(DramConfig::with_bandwidth(768.0));
        let mut t = 0u64;
        group.bench("dram_access", || {
            t += 1;
            black_box(dram.access(Cycle::new(t), LineAddr::new(t * 7), AccessKind::Read))
        });
    }
    {
        let mut r = Resource::new("b", 768.0);
        let mut t = 0u64;
        group.bench("resource_service", || {
            t += 1;
            black_box(r.service(Cycle::new(t), 128))
        });
    }
    group.finish();
}

fn bench_engine() {
    let mut group = Group::new("engine");
    {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(4096);
        // Keep a standing population of 1024 events.
        for i in 0..1024u64 {
            q.push(Cycle::new(i), i, i);
        }
        let mut t = 1024u64;
        group.bench("event_queue_push_pop", || {
            let (at, ev) = q.pop().expect("queue never drains");
            t += 1;
            q.push(at + Cycle::new(t % 251 + 1), ev, ev);
            black_box(ev)
        });
    }
    {
        let mut rng = Xoshiro256::new(7);
        group.bench("rng_next_u64", || black_box(rng.next_u64()));
    }
    group.finish();
}

fn bench_workloads() {
    let mut group = Group::new("workloads");
    let spec = suite::by_name("CoMD").expect("suite workload");
    let mut stream = WarpStream::new(&spec, 0, 0, 0);
    group.bench("warp_stream_ops", || match stream.next() {
        Some(op) => black_box(op),
        None => {
            stream = WarpStream::new(&spec, 0, 0, 0);
            black_box(stream.next().expect("fresh stream"))
        }
    });
    group.finish();
}

fn main() {
    bench_cache();
    bench_interconnect();
    bench_engine();
    bench_workloads();
}
