//! The bounded scoped thread pool and the grid-order merge.

use std::sync::OnceLock;
use std::time::Instant;

use mcm_telemetry::{global, Class, Counter, Gauge, Histogram};

use crate::queue::{GridQueue, WorkerState};

/// Pre-registered executor telemetry handles. Resolved once per
/// process so the per-grid cost is a handful of relaxed atomic adds;
/// results are never affected (telemetry is strictly out-of-band).
struct ExecTele {
    grids: Counter,
    tasks: Counter,
    pools: Counter,
    workers: Counter,
    queue_depth_hw: Gauge,
    steals: Counter,
    steal_failures: Counter,
    busy_ns: Counter,
    idle_ns: Counter,
    task_ns: Histogram,
}

/// `exec.task_ns` bucket upper edges: 1us .. 1s in decades.
const TASK_NS_BOUNDS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

fn tele() -> &'static ExecTele {
    static TELE: OnceLock<ExecTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let reg = global();
        ExecTele {
            grids: reg.counter("exec.grids", Class::Deterministic),
            tasks: reg.counter("exec.tasks", Class::Deterministic),
            pools: reg.counter("exec.pools", Class::PerConfig),
            workers: reg.counter("exec.workers_spawned", Class::PerConfig),
            queue_depth_hw: reg.gauge("exec.queue_depth_hw", Class::PerConfig),
            steals: reg.counter("exec.steals", Class::Volatile),
            steal_failures: reg.counter("exec.steal_failures", Class::Volatile),
            busy_ns: reg.counter("exec.busy_ns", Class::Volatile),
            idle_ns: reg.counter("exec.idle_ns", Class::Volatile),
            task_ns: reg.histogram("exec.task_ns", Class::Volatile, &TASK_NS_BOUNDS),
        }
    })
}

/// Runs `f` once per grid item across at most `jobs` worker threads and
/// returns the results **in grid order** — element `i` of the returned
/// vector is `f(i, &items[i])` no matter which worker computed it or
/// when. `jobs <= 1` (or a grid of at most one item) runs serially in
/// the caller's thread with no pool at all, so `MCM_JOBS=1` is
/// bit-identical to the pre-parallel code path by construction.
///
/// `seed` drives steal-victim selection only; see [`crate::DEFAULT_SEED`].
///
/// # Panics
///
/// Panics if a worker closure panics (the panic is propagated), or if
/// the merge finds a dropped or duplicated grid index — the queue makes
/// that impossible, and the assert keeps it that way.
pub fn run_grid<T, R, F>(items: &[T], jobs: usize, seed: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let t = tele();
    t.grids.inc();
    t.tasks.add(items.len() as u64);
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    t.pools.inc();
    t.workers.add(jobs as u64);
    let queue = GridQueue::new_balanced(items.len(), jobs);
    let initial_depth = queue.deck_depths().into_iter().max().unwrap_or(0);
    t.queue_depth_hw.record_max(initial_depth as u64);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move || {
                    let spawned = Instant::now();
                    let mut busy_ns = 0u64;
                    let mut state = WorkerState::seeded(seed, w);
                    let mut out = Vec::new();
                    while let Some(i) = queue.next_item(w, &mut state) {
                        let began = Instant::now();
                        out.push((i, f(i, &items[i])));
                        let took = began.elapsed().as_nanos() as u64;
                        busy_ns += took;
                        t.task_ns.observe(took);
                    }
                    let stats = state.stats();
                    t.steals.add(stats.steals);
                    t.steal_failures.add(stats.steal_failures);
                    t.busy_ns.add(busy_ns);
                    t.idle_ns
                        .add((spawned.elapsed().as_nanos() as u64).saturating_sub(busy_ns));
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    });
    merge_grid(buckets, items.len())
}

/// Merges per-worker `(index, result)` buckets into grid order,
/// asserting every index appears exactly once.
fn merge_grid<R>(buckets: Vec<Vec<(usize, R)>>, len: usize) -> Vec<R> {
    let mut merged: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    merged.sort_by_key(|&(i, _)| i);
    assert_eq!(
        merged.len(),
        len,
        "executor completed {} of {len} grid items — dropped or duplicated work",
        merged.len()
    );
    for (pos, &(i, _)) in merged.iter().enumerate() {
        assert_eq!(
            pos, i,
            "grid index {i} appears out of place (duplicate or gap)"
        );
    }
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_grid_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 3, 8] {
            let out = run_grid(&items, jobs, crate::DEFAULT_SEED, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let serial = run_grid(&items, 1, 7, |_, &x| x.wrapping_mul(0x9E37_79B9));
        let parallel = run_grid(&items, 8, 7, |_, &x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_grids() {
        let none: Vec<u32> = Vec::new();
        assert!(run_grid(&none, 8, 1, |_, &x| x).is_empty());
        assert_eq!(run_grid(&[9u32], 8, 1, |_, &x| x + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "grid worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = run_grid(&items, 4, 1, |_, &x| {
            assert!(x != 13, "unlucky");
            x
        });
    }

    #[test]
    fn merge_rejects_duplicates() {
        let r =
            std::panic::catch_unwind(|| merge_grid(vec![vec![(0, 1u32), (1, 2)], vec![(1, 2)]], 2));
        assert!(r.is_err());
    }

    #[test]
    fn telemetry_counts_every_grid_item() {
        let reg = mcm_telemetry::global();
        let tasks = reg.counter("exec.tasks", mcm_telemetry::Class::Deterministic);
        let grids = reg.counter("exec.grids", mcm_telemetry::Class::Deterministic);
        let (t0, g0) = (tasks.get(), grids.get());
        let items: Vec<u64> = (0..40).collect();
        let _ = run_grid(&items, 4, 1, |_, &x| x);
        let _ = run_grid(&items, 1, 1, |_, &x| x);
        // Other tests share the global registry, so assert lower bounds.
        assert!(tasks.get() - t0 >= 80, "both paths count tasks");
        assert!(grids.get() - g0 >= 2);
    }

    #[test]
    fn merge_rejects_gaps() {
        let r = std::panic::catch_unwind(|| merge_grid(vec![vec![(0, 1u32), (2, 3)]], 3));
        assert!(r.is_err());
    }
}
