//! A minimal hand-rolled JSON writer — just enough to emit Chrome
//! trace-event files without external crates.
//!
//! Only the constructs the trace sink needs exist: string escaping per
//! RFC 8259 and a tiny object builder that writes into a growing
//! buffer. Numbers are written as integers (trace timestamps are whole
//! cycles), which sidesteps float-formatting portability questions.

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted JSON string, escaping the
/// characters RFC 8259 requires (quote, backslash, and control
/// characters).
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds one JSON object by appending `"key":value` pairs to a buffer.
///
/// # Example
///
/// ```
/// use mcm_probe::json::Obj;
///
/// let mut buf = String::new();
/// Obj::open(&mut buf)
///     .str("ph", "X")
///     .num("ts", 12)
///     .close();
/// assert_eq!(buf, r#"{"ph":"X","ts":12}"#);
/// ```
#[derive(Debug)]
pub struct Obj<'a> {
    buf: &'a mut String,
    first: bool,
}

impl<'a> Obj<'a> {
    /// Starts an object (writes the opening brace).
    pub fn open(buf: &'a mut String) -> Self {
        buf.push('{');
        Obj { buf, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(self.buf, key);
        self.buf.push(':');
    }

    /// Appends a string-valued field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        push_str_escaped(self.buf, value);
        self
    }

    /// Appends an unsigned-integer-valued field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Finishes the object (writes the closing brace).
    pub fn close(self) {
        self.buf.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_str_escaped(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escaped("plain"), "\"plain\"");
        assert_eq!(escaped("a\"b"), "\"a\\\"b\"");
        assert_eq!(escaped("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(escaped("nl\ntab\t"), "\"nl\\ntab\\t\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
        assert_eq!(escaped("unicode ✓"), "\"unicode ✓\"");
    }

    #[test]
    fn object_builds_in_order() {
        let mut buf = String::new();
        Obj::open(&mut buf)
            .str("name", "req 1")
            .num("id", 7)
            .num("ts", 0)
            .close();
        assert_eq!(buf, r#"{"name":"req 1","id":7,"ts":0}"#);
    }

    #[test]
    fn empty_object() {
        let mut buf = String::new();
        Obj::open(&mut buf).close();
        assert_eq!(buf, "{}");
    }
}
