//! The bounded scoped thread pool and the grid-order merge.

use crate::queue::{GridQueue, WorkerState};

/// Runs `f` once per grid item across at most `jobs` worker threads and
/// returns the results **in grid order** — element `i` of the returned
/// vector is `f(i, &items[i])` no matter which worker computed it or
/// when. `jobs <= 1` (or a grid of at most one item) runs serially in
/// the caller's thread with no pool at all, so `MCM_JOBS=1` is
/// bit-identical to the pre-parallel code path by construction.
///
/// `seed` drives steal-victim selection only; see [`crate::DEFAULT_SEED`].
///
/// # Panics
///
/// Panics if a worker closure panics (the panic is propagated), or if
/// the merge finds a dropped or duplicated grid index — the queue makes
/// that impossible, and the assert keeps it that way.
pub fn run_grid<T, R, F>(items: &[T], jobs: usize, seed: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let queue = GridQueue::new_balanced(items.len(), jobs);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move || {
                    let mut state = WorkerState::seeded(seed, w);
                    let mut out = Vec::new();
                    while let Some(i) = queue.next_item(w, &mut state) {
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    });
    merge_grid(buckets, items.len())
}

/// Merges per-worker `(index, result)` buckets into grid order,
/// asserting every index appears exactly once.
fn merge_grid<R>(buckets: Vec<Vec<(usize, R)>>, len: usize) -> Vec<R> {
    let mut merged: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    merged.sort_by_key(|&(i, _)| i);
    assert_eq!(
        merged.len(),
        len,
        "executor completed {} of {len} grid items — dropped or duplicated work",
        merged.len()
    );
    for (pos, &(i, _)) in merged.iter().enumerate() {
        assert_eq!(
            pos, i,
            "grid index {i} appears out of place (duplicate or gap)"
        );
    }
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_grid_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 3, 8] {
            let out = run_grid(&items, jobs, crate::DEFAULT_SEED, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let serial = run_grid(&items, 1, 7, |_, &x| x.wrapping_mul(0x9E37_79B9));
        let parallel = run_grid(&items, 8, 7, |_, &x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_grids() {
        let none: Vec<u32> = Vec::new();
        assert!(run_grid(&none, 8, 1, |_, &x| x).is_empty());
        assert_eq!(run_grid(&[9u32], 8, 1, |_, &x| x + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "grid worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = run_grid(&items, 4, 1, |_, &x| {
            assert!(x != 13, "unlucky");
            x
        });
    }

    #[test]
    fn merge_rejects_duplicates() {
        let r =
            std::panic::catch_unwind(|| merge_grid(vec![vec![(0, 1u32), (1, 2)], vec![(1, 2)]], 2));
        assert!(r.is_err());
    }

    #[test]
    fn merge_rejects_gaps() {
        let r = std::panic::catch_unwind(|| merge_grid(vec![vec![(0, 1u32), (2, 3)]], 3));
        assert!(r.is_err());
    }
}
