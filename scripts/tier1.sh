#!/usr/bin/env bash
# Tier-1 verification gate: the canonical "is the tree healthy" check.
# Everything here must pass before a change lands. Fully offline — the
# workspace has no external dependencies, so `--offline` is a
# guarantee, not an inconvenience.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy --workspace --all-targets --offline -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --workspace --release --offline =="
cargo build --workspace --release --offline

# MCM_JOBS=1 / MCM_SHARDS=1 pin the golden-comparison runs to the
# serial execution path: identical output is *guaranteed* by
# construction there, so a golden diff can only mean simulated
# behaviour changed — never thread scheduling. The parallel sweep
# path's equivalence is under test in
# crates/bench/tests/parallel_determinism.rs, and the sharded single-
# simulation path's in tests/shard_determinism.rs — both run as part
# of this same workspace pass.
echo "== cargo test --workspace -q --offline (MCM_JOBS=1, MCM_SHARDS=1) =="
MCM_JOBS=1 MCM_SHARDS=1 cargo test --workspace -q --offline

# One smoke pass of every harness binary through the parallel executor
# AND the sharded engine, so both MCM_JOBS>1 and MCM_SHARDS>1 paths
# stay in the canonical gate end to end.
echo "== bin_smoke under MCM_JOBS=4, MCM_SHARDS=2 =="
MCM_JOBS=4 MCM_SHARDS=2 cargo test -p mcm-bench -q --offline --test bin_smoke

# Perf smoke: the engine-overhaul guarantees stay in the gate. The
# counting-allocator test asserts the run loop makes literally zero
# allocator calls in steady-state kernels — serial AND per shard under
# sharded execution (deterministic, so a regression fails exactly, not
# statistically); the bench targets run once at tiny scale so a future
# change cannot silently break them.
echo "== perf smoke: hot-loop allocation freedom =="
cargo test -p mcm-gpu -q --offline --test hot_loop_alloc
echo "== perf smoke: engine + hotpath benches (tiny MCM_SCALE) =="
cargo bench -p mcm-engine -q --offline --bench queue
MCM_SCALE=0.01 cargo bench -p mcm-bench -q --offline --bench hotpath

# Telemetry is strictly out-of-band: a release harness run must print
# byte-identical stdout and leave a well-formed snapshot behind with
# MCM_TELEMETRY set, vs nothing different with it unset. Uses the
# release binary built above; fig09 exercises the memo cache, the
# sweep executor, and (via MCM_SHARDS) the sharded engine.
echo "== telemetry on/off byte-identity (release fig09, tiny scale) =="
TELEMETRY_TMP="$(mktemp -d -t mcm-telemetry.XXXXXX)"
trap 'rm -rf "$TELEMETRY_TMP"' EXIT
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 \
  target/release/fig09_distributed_sched >"$TELEMETRY_TMP/off.txt"
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 \
  MCM_TELEMETRY="$TELEMETRY_TMP/telemetry.json" \
  target/release/fig09_distributed_sched >"$TELEMETRY_TMP/on.txt"
diff "$TELEMETRY_TMP/off.txt" "$TELEMETRY_TMP/on.txt" \
  || { echo "tier-1: MCM_TELEMETRY changed harness stdout" >&2; exit 1; }
test -s "$TELEMETRY_TMP/telemetry.json" \
  || { echo "tier-1: MCM_TELEMETRY wrote no snapshot" >&2; exit 1; }

# Crash-recovery smoke for the persistent result store, end to end in
# a subprocess: (1) a run with MCM_STORE_CRASH_AFTER writes a torn
# record and aborts mid-sweep; (2) the rerun must break the dead
# owner's lock, quarantine the torn tail, re-simulate only the lost
# pair, and print stdout byte-identical to the storeless reference;
# (3) a third run is fully warm-started from disk and must again be
# byte-identical. off.txt from the telemetry step above is the
# reference — the store must never change simulated results.
echo "== store crash-recovery smoke (torn write, abort, rerun) =="
STORE_DIR="$TELEMETRY_TMP/store"
set +e
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 \
  MCM_STORE="$STORE_DIR" MCM_STORE_CRASH_AFTER=2 \
  target/release/fig09_distributed_sched \
  >"$TELEMETRY_TMP/crashed.txt" 2>"$TELEMETRY_TMP/crashed.err"
CRASH_RC=$?
set -e
if [[ $CRASH_RC -eq 0 ]]; then
  echo "tier-1: MCM_STORE_CRASH_AFTER did not crash the sweep" >&2
  exit 1
fi
grep -q "MCM_STORE_CRASH_AFTER tripped" "$TELEMETRY_TMP/crashed.err" \
  || { echo "tier-1: crashed run did not announce the scripted crash" >&2; exit 1; }
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 MCM_STORE="$STORE_DIR" \
  target/release/fig09_distributed_sched >"$TELEMETRY_TMP/recovered.txt"
diff "$TELEMETRY_TMP/off.txt" "$TELEMETRY_TMP/recovered.txt" \
  || { echo "tier-1: store recovery changed harness stdout" >&2; exit 1; }
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 MCM_STORE="$STORE_DIR" \
  target/release/fig09_distributed_sched >"$TELEMETRY_TMP/warm.txt"
diff "$TELEMETRY_TMP/off.txt" "$TELEMETRY_TMP/warm.txt" \
  || { echo "tier-1: warm-started run changed harness stdout" >&2; exit 1; }

# Lock contention: with a *live* process (this shell) holding LOCK, a
# second opener must degrade to read-only and still print identical
# results — never corrupt the directory, never deadlock, never panic.
echo "== store lock-contention smoke (live holder, read-only run) =="
echo "$$" >"$STORE_DIR/LOCK"
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 MCM_STORE="$STORE_DIR" \
  target/release/fig09_distributed_sched >"$TELEMETRY_TMP/readonly.txt" \
  2>"$TELEMETRY_TMP/readonly.err"
diff "$TELEMETRY_TMP/off.txt" "$TELEMETRY_TMP/readonly.txt" \
  || { echo "tier-1: read-only store run changed harness stdout" >&2; exit 1; }
grep -q "read-only" "$TELEMETRY_TMP/readonly.err" \
  || { echo "tier-1: contended open did not announce read-only mode" >&2; exit 1; }
rm -f "$STORE_DIR/LOCK"

# Supervised self-healing: a scripted worker panic on one workload,
# with an attempt budget of 1 and one retry, must heal in place — the
# sweep completes with byte-identical stdout and a retry notice on
# stderr. This is the executor's whole contract in one subprocess run.
echo "== supervised self-healing smoke (scripted panic + retry) =="
MCM_SCALE=0.01 MCM_JOBS=4 MCM_SHARDS=1 \
  MCM_SUPERVISED=1 MCM_RETRIES=1 \
  MCM_FAULT_TASK_PANIC=CFD MCM_FAULT_TASK_PANIC_ATTEMPTS=1 \
  target/release/fig09_distributed_sched \
  >"$TELEMETRY_TMP/healed.txt" 2>"$TELEMETRY_TMP/healed.err"
diff "$TELEMETRY_TMP/off.txt" "$TELEMETRY_TMP/healed.txt" \
  || { echo "tier-1: supervised retry changed harness stdout" >&2; exit 1; }
grep -q "retrying" "$TELEMETRY_TMP/healed.err" \
  || { echo "tier-1: supervised run did not report the retry" >&2; exit 1; }

# Sweep-service smoke: a cold server run (misses + an in-flight
# duplicate via sweep2's concurrent twin connection) and a warm run
# over the same store (all hits) must print byte-identical pair
# reports; the cold server simulates each unique pair exactly once
# (runs=2: NN-Conv misses in the first sweep, Stream in sweep2 —
# NN-Conv is already in flight or stored by then), the warm server
# simulates nothing (runs=0). Afterwards: no LOCK left behind and the
# port closed.
echo "== sweep service smoke (serve + scripted client, cold vs warm) =="
SERVE_STORE="$TELEMETRY_TMP/serve-store"
SERVE_SCRIPT='ping; sweep baseline:NN-Conv; sweep2 baseline:NN-Conv,Stream; stats; shutdown'
serve_round() { # $1: output tag
  MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 \
    MCM_STORE="$SERVE_STORE" MCM_SERVE_ADDR=127.0.0.1:0 MCM_SERVE_WORKERS=2 \
    target/release/serve >"$TELEMETRY_TMP/serve-$1.log" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$TELEMETRY_TMP/serve-$1.log" 2>/dev/null && break
    sleep 0.1
  done
  SERVE_ADDR="$(sed -n 's/^mcm-serve: listening on //p' "$TELEMETRY_TMP/serve-$1.log")"
  test -n "$SERVE_ADDR" \
    || { echo "tier-1: serve ($1) printed no address" >&2; exit 1; }
  MCM_SERVE_ADDR="$SERVE_ADDR" MCM_SERVE_SCRIPT="$SERVE_SCRIPT" \
    target/release/serve_client >"$TELEMETRY_TMP/serve-client-$1.txt"
  wait "$SERVE_PID" \
    || { echo "tier-1: serve ($1) exited non-zero" >&2; exit 1; }
  SERVE_PORT="${SERVE_ADDR##*:}"
}
serve_round cold
grep -q '^runs=2$' "$TELEMETRY_TMP/serve-client-cold.txt" \
  || { echo "tier-1: cold serve did not run each unique pair exactly once" >&2; exit 1; }
serve_round warm
grep -q '^runs=0$' "$TELEMETRY_TMP/serve-client-warm.txt" \
  || { echo "tier-1: warm serve re-simulated stored pairs" >&2; exit 1; }
# Pair report bytes must not depend on cold vs warm (only the runs=
# stats line may differ).
diff <(grep -v '^runs=' "$TELEMETRY_TMP/serve-client-cold.txt") \
     <(grep -v '^runs=' "$TELEMETRY_TMP/serve-client-warm.txt") \
  || { echo "tier-1: served bytes differ between cold and warm servers" >&2; exit 1; }
test ! -e "$SERVE_STORE/LOCK" \
  || { echo "tier-1: serve left a stale store LOCK behind" >&2; exit 1; }
if (exec 3<>"/dev/tcp/127.0.0.1/$SERVE_PORT") 2>/dev/null; then
  exec 3>&- 3<&-
  echo "tier-1: serve port $SERVE_PORT still open after shutdown" >&2
  exit 1
fi

# Analytic exploration smoke: the planner scores the default grid with
# the calibrated model, prunes to the predicted Pareto frontier (plus
# the safety band), and confirms survivors with full simulation. A
# cold run populates MCM_STORE; a warm rerun in a fresh process must
# print byte-identical output (the confirmed frontier must not depend
# on cache state), and the bin exits 1 on any envelope violation.
echo "== analytic explore smoke (cold vs warm through MCM_STORE) =="
EXPLORE_STORE="$TELEMETRY_TMP/explore-store"
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 MCM_STORE="$EXPLORE_STORE" \
  target/release/explore >"$TELEMETRY_TMP/explore-cold.txt"
MCM_SCALE=0.01 MCM_JOBS=1 MCM_SHARDS=1 MCM_STORE="$EXPLORE_STORE" \
  target/release/explore >"$TELEMETRY_TMP/explore-warm.txt"
diff "$TELEMETRY_TMP/explore-cold.txt" "$TELEMETRY_TMP/explore-warm.txt" \
  || { echo "tier-1: explore frontier differs cold vs warm" >&2; exit 1; }
grep -q "envelope violations: 0" "$TELEMETRY_TMP/explore-cold.txt" \
  || { echo "tier-1: explore reported envelope violations" >&2; exit 1; }

# The pinned perf-trajectory suite at smoke scale: the BENCH snapshot
# must build, parse, and self-compare with zero diff (hermetic, offline).
echo "== scripts/perf.sh --smoke =="
scripts/perf.sh --smoke

echo "tier-1: all green"
