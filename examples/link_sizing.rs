//! Sizing the on-package links before building anything: the §3.3.1
//! back-of-the-envelope analysis as a tool, cross-checked against
//! simulation.
//!
//! ```text
//! cargo run --release --example link_sizing [l2_hit_rate]
//! ```

use mcm::gpu::analysis::{LinkSizing, LinkVerdict};
use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::suite;

fn main() {
    let hit_rate: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("hit rate must be a number"))
        .unwrap_or(0.5);

    let sizing = LinkSizing {
        gpms: 4,
        dram_gbps_per_gpm: 768.0,
        l2_hit_rate: hit_rate,
    };
    println!(
        "machine: 4 GPMs x 768 GB/s DRAM, assumed L2 hit rate {:.0}%",
        hit_rate * 100.0
    );
    println!(
        "each partition supplies {:.0} GB/s post-L2; {:.0}% of it crosses the package",
        sizing.supply_per_partition_gbps(),
        sizing.remote_fraction() * 100.0
    );
    println!(
        "analytic per-link requirement: {:.0} GB/s (bidirectional)\n",
        sizing.required_link_gbps()
    );

    println!("{:>12} {:>28}", "link GB/s", "verdict");
    for link in [384.0, 768.0, 1536.0, 3072.0, 6144.0] {
        let verdict = match sizing.verdict(link) {
            LinkVerdict::Sufficient { headroom } => {
                format!("sufficient ({headroom:.1}x headroom)")
            }
            LinkVerdict::Throttles {
                achievable_dram_fraction,
            } => format!(
                "throttles to {:.0}% of DRAM",
                achievable_dram_fraction * 100.0
            ),
        };
        println!("{link:>12.0} {verdict:>28}");
    }

    // Cross-check one point in simulation.
    println!("\nsimulation cross-check (Stream, scaled):");
    let spec = suite::by_name("Stream").unwrap().scaled(0.1);
    let ample = Simulator::run(&SystemConfig::mcm_with_link(6144.0), &spec);
    for link in [384.0, 768.0, 1536.0] {
        let r = Simulator::run(&SystemConfig::mcm_with_link(link), &spec);
        println!(
            "  {link:>5.0} GB/s links: {:.2}x slower than 6 TB/s, \
             DRAM runs at {:.2} TB/s",
            r.cycles.as_u64() as f64 / ample.cycles.as_u64() as f64,
            r.dram_tbps()
        );
    }
}
