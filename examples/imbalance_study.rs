//! Load imbalance and the dynamic scheduler: reproduce §5.4's
//! observation that "workloads ... where different CTAs perform unequal
//! amounts of work ... leads to workload imbalance due to the
//! coarse-grained distributed scheduling", then apply the dynamic
//! (work-stealing) scheduler the paper leaves to future work.
//!
//! ```text
//! cargo run --release --example imbalance_study [imbalance 0..1]
//! ```

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::suite;

fn main() {
    let imbalance: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("imbalance must be a number"))
        .unwrap_or(0.8);

    let mut spec = suite::by_name("Lulesh1").unwrap().scaled(0.15);
    spec.imbalance = imbalance;
    println!(
        "workload: {} with a {:.0}% work gradient across its CTA space\n",
        spec.name,
        imbalance * 100.0
    );

    let baseline = Simulator::run(&SystemConfig::baseline_mcm(), &spec);
    let configs = [
        SystemConfig::baseline_mcm(),
        SystemConfig::optimized_mcm(),
        SystemConfig::optimized_mcm_chunked(8),
        SystemConfig::optimized_mcm_dynamic(8),
    ];

    println!(
        "{:55} {:>9} {:>11} {:>22}",
        "configuration", "speedup", "imbalance", "per-GPM instructions"
    );
    for cfg in &configs {
        let r = Simulator::run(cfg, &spec);
        let per_gpm: Vec<String> = r
            .modules
            .iter()
            .map(|m| format!("{:>5.1}M", m.instructions as f64 / 1e6))
            .collect();
        println!(
            "{:55} {:>9.2} {:>10.2}x {:>22}",
            r.config,
            r.speedup_over(&baseline),
            r.module_imbalance(),
            per_gpm.join(" ")
        );
    }
    println!(
        "\nimbalance = busiest GPM's instructions / mean (1.00 is perfect). \
         The centralized baseline balances naturally but pays full NUMA \
         cost; equal chunks inherit the gradient; stealing flattens it \
         while keeping locality."
    );
}
