//! Single-run hot-path benchmark: the per-run wall clock that the
//! engine overhaul (calendar queue, zero-alloc loop, inlined request
//! advancement) targets. Times whole `Simulator::run` calls for the
//! golden-determinism workloads on both reference machines, plus an
//! instrumented run to expose the probe layer's cost on the same path.
//!
//! Honors `MCM_SCALE` (default 0.02, the golden-test scale) so
//! `scripts/tier1.sh` can smoke it quickly while a manual
//! `MCM_SCALE=0.1 cargo bench -p mcm-bench --bench hotpath` measures a
//! heavier point. Runs on the in-repo `mcm-testkit` wall-clock runner.

use mcm_probe::NullProbe;
use mcm_testkit::bench::{black_box, Group};

use mcm_gpu::{Simulator, SystemConfig};
use mcm_workloads::suite;

fn scale() -> f64 {
    match std::env::var("MCM_SCALE") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("MCM_SCALE must be a number, got {s:?}")),
        Err(_) => 0.02,
    }
}

fn main() {
    let scale = scale();
    let mut group = Group::new("hotpath");
    group.sample_size(10);

    let baseline = SystemConfig::baseline_mcm();
    let optimized = SystemConfig::optimized_mcm();
    for wname in ["Stream", "Hotspot", "DWT"] {
        let spec = suite::by_name(wname).expect("suite workload").scaled(scale);
        group.bench(&format!("baseline/{wname}"), || {
            black_box(Simulator::run(&baseline, &spec))
        });
        group.bench(&format!("optimized/{wname}"), || {
            black_box(Simulator::run(&optimized, &spec))
        });
    }

    // The same run through `run_probed` with the no-op probe must cost
    // the same (ACTIVE = false monomorphizes every hook away); a gap
    // here means the zero-overhead contract broke.
    let spec = suite::by_name("Stream")
        .expect("suite workload")
        .scaled(scale);
    group.bench("baseline/Stream_null_probed", || {
        black_box(Simulator::run_probed(&baseline, &spec, &mut NullProbe))
    });

    group.finish();
}
