//! NUMA page placement: mapping addresses to DRAM partitions.
//!
//! The baseline MCM-GPU interleaves addresses across all partitions at
//! cache-line granularity "for maximum resource utilization" (§3.2); the
//! optimized design maps each 64 KiB page to the partition local to the
//! GPM that touched it first (§5.3, Fig. 11). A page-granular
//! round-robin policy is included as the straw-man §6.1 mentions
//! ("round-robin page allocation results in very low and inconsistent
//! performance").

use std::collections::HashMap;

use mcm_engine::stats::Counter;

use crate::addr::{LineAddr, PartitionId, LINES_PER_PAGE};

/// The placement policy in force for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Fine-grain line interleaving across all partitions (baseline,
    /// §3.2).
    Interleaved,
    /// First touch: a page is mapped to the partition of the GPM that
    /// first references it, and stays there for the lifetime of the run
    /// — including across kernel launches (§5.3).
    FirstTouch,
    /// Page-granular round-robin in page-index order; the poorly
    /// performing alternative noted in §6.1.
    PageRoundRobin,
}

/// The page-table abstraction the memory system consults on every
/// access.
///
/// For [`PlacementPolicy::Interleaved`] no state is kept; for the
/// page-granular policies a map from [`PageId`] to [`PartitionId`] is
/// built as pages are touched.
///
/// # Example
///
/// First touch pins pages to their first requester:
///
/// ```
/// use mcm_mem::addr::{LineAddr, PartitionId};
/// use mcm_mem::page::{PageMap, PlacementPolicy};
///
/// let mut map = PageMap::new(PlacementPolicy::FirstTouch, 4);
/// let line = LineAddr::new(0);
/// assert_eq!(map.partition_for(line, PartitionId(2)), PartitionId(2));
/// // A later touch from another GPM does not remap the page.
/// assert_eq!(map.partition_for(line, PartitionId(0)), PartitionId(2));
/// ```
#[derive(Debug, Clone)]
pub struct PageMap {
    policy: PlacementPolicy,
    partitions: u8,
    page_lines: u64,
    table: HashMap<u64, PartitionId>,
    first_touches: Counter,
    lookups: Counter,
}

impl PageMap {
    /// Creates a page map over `partitions` DRAM partitions at the
    /// default 64 KiB page granularity.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(policy: PlacementPolicy, partitions: u8) -> Self {
        PageMap::with_page_lines(policy, partitions, LINES_PER_PAGE)
    }

    /// Like [`PageMap::new`] with an explicit page size in cache lines
    /// — the placement-granularity lever (small pages adapt better to
    /// fragmented sharing; large pages cut table pressure and favour
    /// dense private data).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` or `page_lines` is zero.
    pub fn with_page_lines(policy: PlacementPolicy, partitions: u8, page_lines: u64) -> Self {
        assert!(partitions > 0, "page map needs at least one partition");
        assert!(page_lines > 0, "pages must hold at least one line");
        PageMap {
            policy,
            partitions,
            page_lines,
            table: HashMap::new(),
            first_touches: Counter::new(),
            lookups: Counter::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The placement granularity in cache lines.
    pub fn page_lines(&self) -> u64 {
        self.page_lines
    }

    /// Resolves the DRAM partition holding `line`, given that the access
    /// originates from the GPM whose local partition is `requester`.
    pub fn partition_for(&mut self, line: LineAddr, requester: PartitionId) -> PartitionId {
        self.lookups.inc();
        match self.policy {
            PlacementPolicy::Interleaved => {
                PartitionId((line.index() % u64::from(self.partitions)) as u8)
            }
            PlacementPolicy::PageRoundRobin => {
                PartitionId(((line.index() / self.page_lines) % u64::from(self.partitions)) as u8)
            }
            PlacementPolicy::FirstTouch => {
                let page = line.index() / self.page_lines;
                if let Some(&mp) = self.table.get(&page) {
                    mp
                } else {
                    self.first_touches.inc();
                    self.table.insert(page, requester);
                    requester
                }
            }
        }
    }

    /// Number of pages placed by first touch so far.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Total placement lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Folds in `n` lookups performed against a replica of this map —
    /// sharded simulations resolve placements through per-shard caches
    /// and reconcile the counts at merge time.
    pub fn add_lookups(&mut self, n: u64) {
        self.lookups.add(n);
    }

    /// How many pages landed on each partition (first-touch and
    /// round-robin policies; empty for interleaved).
    pub fn pages_per_partition(&self) -> Vec<(PartitionId, u64)> {
        let mut counts = vec![0u64; usize::from(self.partitions)];
        for &mp in self.table.values() {
            counts[mp.as_usize()] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, n)| (PartitionId(i as u8), n))
            .collect()
    }

    /// Clears the page table (a fresh memory allocation), keeping the
    /// policy. Note that §5.3's cross-kernel locality depends on *not*
    /// calling this between kernel launches of the same application.
    pub fn clear(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageId;

    #[test]
    fn interleaved_is_line_granular() {
        let mut map = PageMap::new(PlacementPolicy::Interleaved, 4);
        let assignments: Vec<u8> = (0..8)
            .map(|i| map.partition_for(LineAddr::new(i), PartitionId(0)).0)
            .collect();
        assert_eq!(assignments, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(map.mapped_pages(), 0, "interleaved keeps no table");
    }

    #[test]
    fn round_robin_is_page_granular() {
        let mut map = PageMap::new(PlacementPolicy::PageRoundRobin, 4);
        // All lines of page 0 land on partition 0.
        for i in 0..LINES_PER_PAGE {
            assert_eq!(
                map.partition_for(LineAddr::new(i), PartitionId(3)),
                PartitionId(0)
            );
        }
        // Page 5 lands on partition 1.
        assert_eq!(
            map.partition_for(PageId::new(5).first_line(), PartitionId(3)),
            PartitionId(1)
        );
    }

    #[test]
    fn first_touch_is_sticky_per_page() {
        let mut map = PageMap::new(PlacementPolicy::FirstTouch, 4);
        let page0_line = LineAddr::new(3);
        let page1_line = PageId::new(1).first_line();
        assert_eq!(
            map.partition_for(page0_line, PartitionId(1)),
            PartitionId(1)
        );
        assert_eq!(
            map.partition_for(page1_line, PartitionId(2)),
            PartitionId(2)
        );
        // Every other line of page 0 follows the first touch, from any
        // requester.
        for i in 0..LINES_PER_PAGE {
            assert_eq!(
                map.partition_for(LineAddr::new(i), PartitionId(3)),
                PartitionId(1)
            );
        }
        assert_eq!(map.mapped_pages(), 2);
        let per = map.pages_per_partition();
        assert_eq!(per[1].1, 1);
        assert_eq!(per[2].1, 1);
    }

    #[test]
    fn first_touch_survives_until_cleared() {
        let mut map = PageMap::new(PlacementPolicy::FirstTouch, 2);
        let line = LineAddr::new(0);
        map.partition_for(line, PartitionId(1));
        // "Kernel boundary": the mapping persists.
        assert_eq!(map.partition_for(line, PartitionId(0)), PartitionId(1));
        map.clear();
        // A fresh allocation can land elsewhere.
        assert_eq!(map.partition_for(line, PartitionId(0)), PartitionId(0));
    }

    #[test]
    fn lookups_are_counted() {
        let mut map = PageMap::new(PlacementPolicy::Interleaved, 4);
        for i in 0..10 {
            map.partition_for(LineAddr::new(i), PartitionId(0));
        }
        assert_eq!(map.lookups(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        PageMap::new(PlacementPolicy::Interleaved, 0);
    }
}
