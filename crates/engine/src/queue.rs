//! A deterministic event calendar.
//!
//! The queue is a *bucketed calendar*: events scheduled within the near
//! future land in a ring of per-cycle FIFO buckets (popping is a bitmap
//! scan plus a linked-list head removal, both allocation-free in steady
//! state), while far-future events wait in a small sorted overflow heap
//! and migrate into the ring as the window advances. The pop order —
//! nondecreasing time, FIFO among equal times — is identical to the
//! naive sorted implementation; see the `EventQueue` docs for why the
//! tie-break survives bucketing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Width of the near-future window, in cycles. Power of two so the
/// bucket index is a mask. One bucket per cycle: every bucket holds
/// events of exactly one timestamp, so bucket order *is* time order
/// and appending preserves the FIFO tie-break.
const WINDOW: usize = 1024;
/// Bucket-index mask (`at & MASK` is `at % WINDOW`).
const MASK: u64 = WINDOW as u64 - 1;
/// Words in the occupancy bitmap.
const BITMAP_WORDS: usize = WINDOW / 64;
/// Null link in the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// One far-future entry: ordered by time, then insertion sequence
/// (FIFO among simultaneous events).
struct Overflow<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Overflow<E> {}

impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq)
        // comes out first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One pooled node of a bucket's FIFO list. Freed nodes keep their slot
/// (`event` becomes `None`) and are recycled through a freelist, so
/// steady-state push/pop cycles never touch the allocator.
struct Node<E> {
    next: u32,
    event: Option<E>,
}

/// A time-ordered queue of simulation events.
///
/// Events popped from the queue come out in nondecreasing timestamp
/// order; events scheduled for the *same* cycle come out in the order
/// they were pushed. That FIFO tie-break is what makes multi-component
/// simulations reproducible: two runs with the same inputs interleave
/// their events identically.
///
/// # Why the FIFO tie-break survives bucketing
///
/// The near-future window covers `[now, now + WINDOW)` where `now` is
/// the last popped timestamp. Each cycle in the window maps to its own
/// bucket, so a bucket only ever holds events of one timestamp and
/// appending to its list preserves push order. Far-future events sit in
/// a heap ordered by `(time, push sequence)` and migrate into buckets
/// *inside `pop`*, the moment the window advances over their timestamp
/// — before control ever returns to a caller. Any later direct push to
/// that same cycle therefore appends *after* every already-migrated
/// (older) entry, so the global FIFO order among equal timestamps is
/// exactly the push order, bucketed or not.
///
/// # Example
///
/// ```
/// use mcm_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "late");
/// q.push(Cycle::new(1), "early");
/// q.push(Cycle::new(5), "late-second");
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Head node index per bucket (`NIL` when empty).
    heads: Box<[u32; WINDOW]>,
    /// Tail node index per bucket, for O(1) FIFO append.
    tails: Box<[u32; WINDOW]>,
    /// One bit per bucket: set iff the bucket is nonempty. Popping
    /// scans this, 64 buckets per word.
    occupied: [u64; BITMAP_WORDS],
    /// Node pool backing every bucket list.
    nodes: Vec<Node<E>>,
    /// Freelist head into `nodes`.
    free: u32,
    /// Far-future events (at ≥ window end), ordered by (time, seq).
    overflow: BinaryHeap<Overflow<E>>,
    /// Events currently in buckets (as opposed to the overflow heap).
    in_buckets: usize,
    /// Total pending events.
    len: usize,
    next_seq: u64,
    last_popped: Cycle,
    /// Lower bound on the earliest bucketed timestamp (always at least
    /// `last_popped`); the bitmap scan starts here.
    scan: Cycle,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("in_buckets", &self.in_buckets)
            .field("last_popped", &self.last_popped)
            .finish_non_exhaustive()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heads: Box::new([NIL; WINDOW]),
            tails: Box::new([NIL; WINDOW]),
            occupied: [0; BITMAP_WORDS],
            nodes: Vec::new(),
            free: NIL,
            overflow: BinaryHeap::new(),
            in_buckets: 0,
            len: 0,
            next_seq: 0,
            last_popped: Cycle::ZERO,
            scan: Cycle::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = EventQueue::new();
        q.nodes.reserve(capacity);
        q
    }

    /// End of the near-future window (exclusive): events at or past it
    /// go to the overflow heap.
    #[inline]
    fn window_end(&self) -> u64 {
        self.last_popped.as_u64().saturating_add(WINDOW as u64)
    }

    /// Appends `event` to the FIFO list of the bucket for time `at`
    /// (which must lie inside the near-future window).
    #[inline]
    fn bucket_append(&mut self, at: Cycle, event: E) {
        debug_assert!(at >= self.last_popped && at.as_u64() < self.window_end());
        let b = (at.as_u64() & MASK) as usize;
        let idx = if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.next = NIL;
            node.event = Some(event);
            idx
        } else {
            self.nodes.push(Node {
                next: NIL,
                event: Some(event),
            });
            (self.nodes.len() - 1) as u32
        };
        if self.tails[b] == NIL {
            self.heads[b] = idx;
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            self.nodes[self.tails[b] as usize].next = idx;
        }
        self.tails[b] = idx;
        self.in_buckets += 1;
        if at < self.scan {
            self.scan = at;
        }
    }

    /// The earliest bucketed timestamp. Requires `in_buckets > 0`.
    ///
    /// Scans the occupancy bitmap forward from `scan`; because every
    /// bucketed timestamp lies in `[scan, scan + WINDOW)`, the ring
    /// offset from `scan`'s bucket recovers the absolute time.
    fn earliest_bucket_time(&self) -> Cycle {
        debug_assert!(self.in_buckets > 0);
        let start = self.scan.as_u64();
        let i0 = (start & MASK) as usize;
        let mut word = i0 / 64;
        let mut mask = !0u64 << (i0 % 64);
        for _ in 0..=BITMAP_WORDS {
            let bits = self.occupied[word] & mask;
            if bits != 0 {
                let b = word * 64 + bits.trailing_zeros() as usize;
                let delta = (b.wrapping_sub(i0) as u64) & MASK;
                return Cycle::new(start + delta);
            }
            word = (word + 1) % BITMAP_WORDS;
            mask = !0;
        }
        unreachable!("in_buckets > 0 but no occupied bucket found");
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a
    /// simulation logic error; it is tolerated in release builds (the
    /// event is clamped to fire "now") but trips a debug assertion.
    pub fn push(&mut self, at: Cycle, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at} which is before current time {}",
            self.last_popped
        );
        // Release builds honour the documented "fires now" contract:
        // without the clamp a stale timestamp would pop out of order
        // and regress `now()`.
        let at = at.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        if at.as_u64() < self.window_end() {
            self.bucket_append(at, event);
        } else {
            self.overflow.push(Overflow { at, seq, event });
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.len == 0 {
            return None;
        }
        // Bucketed events always precede overflow ones: buckets hold
        // times below the window end, the overflow at or above it.
        let at = if self.in_buckets > 0 {
            self.earliest_bucket_time()
        } else {
            self.overflow.peek().expect("len > 0 with empty buckets").at
        };
        self.last_popped = at;
        self.scan = at;
        // The window just advanced: migrate every overflow entry it now
        // covers, in (time, seq) order, so later direct pushes to those
        // cycles append behind their older overflow peers.
        let wend = self.window_end();
        while let Some(head) = self.overflow.peek() {
            if head.at.as_u64() >= wend {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            self.bucket_append(entry.at, entry.event);
        }
        // `at`'s bucket is nonempty now: either it supplied `at`, or the
        // first migrated entry (the overflow minimum) carried time `at`.
        let b = (at.as_u64() & MASK) as usize;
        let idx = self.heads[b];
        debug_assert_ne!(idx, NIL);
        let node = &mut self.nodes[idx as usize];
        let event = node.event.take().expect("bucketed node holds an event");
        self.heads[b] = node.next;
        node.next = self.free;
        self.free = idx;
        if self.heads[b] == NIL {
            self.tails[b] = NIL;
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.in_buckets -= 1;
        self.len -= 1;
        Some((at, event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.in_buckets > 0 {
            Some(self.earliest_bucket_time())
        } else {
            self.overflow.peek().map(|e| e.at)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The timestamp of the most recently popped event — the simulation's
    /// notion of "now".
    pub fn now(&self) -> Cycle {
        self.last_popped
    }

    /// Drops all pending events, keeping the current time.
    pub fn clear(&mut self) {
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.occupied = [0; BITMAP_WORDS];
        self.nodes.clear();
        self.free = NIL;
        self.overflow.clear();
        self.in_buckets = 0;
        self.len = 0;
        self.scan = self.last_popped;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 3, 1, 100] {
            q.push(Cycle::new(t), t);
        }
        let mut out = Vec::new();
        while let Some((at, ev)) = q.pop() {
            assert_eq!(at.as_u64(), ev);
            out.push(ev);
        }
        assert_eq!(out, vec![1, 3, 3, 7, 9, 100]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.push(Cycle::new(10), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(10));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(2), 'a');
        q.push(Cycle::new(1), 'b');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // The pool survives a clear and keeps working.
        q.push(Cycle::new(3), 'c');
        assert_eq!(q.pop(), Some((Cycle::new(3), 'c')));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 1u64);
        q.push(Cycle::new(5), 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Cycle::new(3), 3);
        q.push(Cycle::new(4), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn far_future_events_cross_the_window() {
        // Events far beyond the near-future window take the overflow
        // path and must still pop in (time, push-order).
        let w = WINDOW as u64;
        let mut q = EventQueue::new();
        q.push(Cycle::new(5 * w), 50u64);
        q.push(Cycle::new(2), 2);
        q.push(Cycle::new(5 * w), 51);
        q.push(Cycle::new(3 * w + 7), 30);
        assert_eq!(q.pop(), Some((Cycle::new(2), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(3 * w + 7), 30)));
        // A direct push at the same cycle as migrated overflow entries
        // must come out after them (it was pushed later).
        q.push(Cycle::new(5 * w), 52);
        assert_eq!(q.pop(), Some((Cycle::new(5 * w), 50)));
        assert_eq!(q.pop(), Some((Cycle::new(5 * w), 51)));
        assert_eq!(q.pop(), Some((Cycle::new(5 * w), 52)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_bucket_different_epochs_do_not_mix() {
        // Times t and t + WINDOW share a bucket index; the window
        // machinery must keep their epochs ordered.
        let w = WINDOW as u64;
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 1u64);
        q.push(Cycle::new(10 + w), 2);
        q.push(Cycle::new(10 + 2 * w), 3);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(10 + w), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(10 + 2 * w), 3)));
    }

    #[test]
    fn matches_a_reference_sorted_queue() {
        // Drive calendar and reference implementations with the same
        // deterministic push/pop script and demand identical outputs.
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::new(0xCAFE);
        let mut cal = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (at, seq)
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for step in 0..20_000u64 {
            if !rng.next_u64().is_multiple_of(3) || reference.is_empty() {
                // Mix of near, boundary, and far-future offsets.
                let off = match rng.next_u64() % 10 {
                    0..=5 => rng.next_u64() % 64,
                    6..=7 => WINDOW as u64 - 2 + rng.next_u64() % 4,
                    _ => rng.next_u64() % (4 * WINDOW as u64),
                };
                cal.push(Cycle::new(now + off), step);
                reference.push((now + off, seq));
                seq += 1;
            } else {
                let (at, ev) = cal.pop().expect("reference nonempty");
                popped.push((at.as_u64(), ev));
                let min = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, s))| (t, s))
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let (t, _) = reference.remove(min);
                expected.push(t);
                now = t;
            }
        }
        while let Some((at, ev)) = cal.pop() {
            popped.push((at.as_u64(), ev));
            let min = reference
                .iter()
                .enumerate()
                .min_by_key(|(_, &(t, s))| (t, s))
                .map(|(i, _)| i)
                .expect("nonempty");
            let (t, _) = reference.remove(min);
            expected.push(t);
        }
        assert!(reference.is_empty());
        assert_eq!(popped.len(), expected.len());
        for (i, ((at, _), want)) in popped.iter().zip(&expected).enumerate() {
            assert_eq!(at, want, "pop {i} time mismatch");
        }
        // FIFO among equal times: the event payloads (push step ids)
        // must be ascending within every run of equal timestamps.
        for pair in popped.windows(2) {
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "FIFO violated at t={}", pair[0].0);
            }
        }
    }

    #[test]
    fn steady_state_recycles_nodes() {
        let mut q = EventQueue::with_capacity(8);
        for round in 0..1000u64 {
            q.push(Cycle::new(round + 1), round);
            q.push(Cycle::new(round + 2), round);
            q.pop();
            q.pop();
        }
        assert!(q.is_empty());
        // Two live events at a time: the pool never needed more nodes.
        assert!(q.nodes.len() <= 2, "pool grew to {}", q.nodes.len());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before current time")]
    fn past_push_trips_debug_assertion() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), ());
        q.pop();
        q.push(Cycle::new(5), ());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_push_clamps_to_now_in_release() {
        // Satellite regression: a stale timestamp must not pop
        // out-of-order or regress `now()`.
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 0u64);
        q.pop();
        q.push(Cycle::new(5), 1); // in the past: fires "now" (t=10)
        q.push(Cycle::new(10), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.now(), Cycle::new(10));
        assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
        assert_eq!(q.now(), Cycle::new(10));
    }

    #[test]
    fn pop_monotonicity_holds_across_window_sizes() {
        // Regression for the push-clamp bug: times handed out by `pop`
        // never decrease, whatever the push pattern.
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::new(0xBEEF);
        let mut q = EventQueue::new();
        let mut now = Cycle::ZERO;
        let mut last = Cycle::ZERO;
        for i in 0..5000u64 {
            let off = rng.next_u64() % (2 * WINDOW as u64);
            q.push(Cycle::new(now.as_u64() + off), i);
            if i % 2 == 1 {
                let (at, _) = q.pop().expect("pushed more than popped");
                assert!(at >= last, "pop regressed: {at} after {last}");
                last = at;
                now = at;
            }
        }
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
    }
}
