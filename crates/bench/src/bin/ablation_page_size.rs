//! Extension ablation: first-touch placement granularity. Honors
//! `MCM_SCALE`.
fn main() {
    let _telemetry = mcm_bench::harness::telemetry_guard();
    let mut memo = mcm_bench::harness::Memo::from_env();
    println!("{}", mcm_bench::figures::ablation_page_size(&mut memo));
}
