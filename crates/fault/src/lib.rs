//! Deterministic runtime fault injection for the MCM-GPU simulator.
//!
//! The simulator threads a generic [`FaultPlan`] through the same
//! contended components that carry a `Probe`: inter-module links, DRAM
//! partitions, the MSHR fill path, and the CTA scheduler. Unlike a
//! probe, a fault plan *does* influence timing — that is its job — so
//! the disabled case must vanish completely. [`NullFaultPlan`] declares
//! `ACTIVE = false` and every call site guards on the const, so a
//! simulator monomorphized over `NullFaultPlan` compiles to exactly the
//! fault-free code and reproduces every golden cycle count bit-exactly.
//!
//! [`SeededFaultPlan`] compiles a [`FaultConfig`] into concrete events.
//! Every decision is a pure function of `(seed, salt, site, counter)`
//! hashed through [`mcm_engine::rng::Xoshiro256`], so the schedule is
//! independent of event interleaving and identical across runs with the
//! same seed — the degradation curves it produces are byte-reproducible.
//!
//! The fault taxonomy (see DESIGN.md § Resilience):
//!
//! * **Transient link errors** — a transfer is accepted by the link's
//!   bandwidth queue but fails CRC on arrival; the sender retransmits
//!   after a capped exponential backoff. Models GRS bit-error bursts.
//! * **DRAM thermal throttle** — a partition's service time is
//!   stretched for a window of cycles, modeling a thermally throttled
//!   memory stack under one GPM.
//! * **Hard GPM degradation** — a module's SM pool goes offline from a
//!   given kernel on; the scheduler resteals its pending CTAs to the
//!   survivors while first-touch pages stay put, exposing the true NUMA
//!   penalty of failover.
//! * **MSHR poisoning** — a fill is delivered corrupted and the request
//!   replays once from the top of the hierarchy (bounded replay).
//!
//! # Example
//!
//! ```
//! use mcm_fault::{FaultConfig, FaultPlan, NullFaultPlan, SeededFaultPlan};
//! use mcm_probe::LinkId;
//!
//! assert!(!<NullFaultPlan as FaultPlan>::ACTIVE);
//!
//! let mut plan = SeededFaultPlan::new(FaultConfig::with_rate(7, 0.5));
//! // Decisions are deterministic: the same site and attempt sequence
//! // always yields the same error pattern.
//! let a: Vec<bool> = (0..8).map(|i| plan.link_error(LinkId::RingCw(0), i)).collect();
//! let mut again = SeededFaultPlan::new(FaultConfig::with_rate(7, 0.5));
//! let b: Vec<bool> = (0..8).map(|i| again.link_error(LinkId::RingCw(0), i)).collect();
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod inject;

use std::collections::HashMap;
use std::sync::OnceLock;

use mcm_engine::rng::Xoshiro256;
use mcm_engine::Cycle;
use mcm_probe::LinkId;
use mcm_telemetry::{global, Class, Counter};

/// Pre-registered per-kind injection counters. The schedule is a pure
/// function of the seed, so these are deterministic — they count the
/// same faults in serial and sharded runs — and strictly out-of-band:
/// timing never reads them.
struct FaultTele {
    link_errors: Counter,
    dram_throttled: Counter,
    mshr_poisoned: Counter,
}

fn tele() -> &'static FaultTele {
    static TELE: OnceLock<FaultTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let reg = global();
        FaultTele {
            link_errors: reg.counter("fault.link.errors_injected", Class::Deterministic),
            dram_throttled: reg.counter("fault.dram.throttled_draws", Class::Deterministic),
            mshr_poisoned: reg.counter("fault.mshr.fills_poisoned", Class::Deterministic),
        }
    })
}

/// Domain-separation salts so the four fault families draw from
/// decorrelated streams even under one seed.
const LINK_SALT: u64 = 0x6C69_6E6B; // "link"
const DRAM_SALT: u64 = 0x6472_616D; // "dram"
const POISON_SALT: u64 = 0x6D73_6872; // "mshr"

/// One uniform draw in `[0, 1)`, fully determined by its identifiers.
fn draw(parts: &[u64]) -> f64 {
    Xoshiro256::seeded(parts).next_f64()
}

/// A runtime fault schedule consulted by the simulator's contended
/// components.
///
/// Every hook has an inlined fault-free default, and call sites guard
/// on [`ACTIVE`](FaultPlan::ACTIVE), so an inactive plan monomorphizes
/// to the unperturbed simulator. Implementations must be deterministic:
/// the same call sequence must produce the same decisions, regardless
/// of wall clock or map iteration order.
pub trait FaultPlan {
    /// Whether this plan can inject anything. Call sites skip the fault
    /// path entirely when `false`, which also guarantees bit-exact
    /// timing (not merely "no faults fired").
    const ACTIVE: bool = true;

    /// Whether transfer attempt `attempt` (0-based) on `link` is hit by
    /// a transient error and must retransmit.
    fn link_error(&mut self, link: LinkId, attempt: u32) -> bool {
        let _ = (link, attempt);
        false
    }

    /// Backoff delay inserted before retransmit attempt `attempt + 1`.
    fn link_backoff(&self, attempt: u32) -> Cycle {
        let _ = attempt;
        Cycle::ZERO
    }

    /// Retransmit budget per transfer; after this many consecutive
    /// errors the transfer is forced through (the hardware analogue:
    /// the link retrains and the packet eventually lands).
    fn link_max_retries(&self) -> u32 {
        0
    }

    /// Service-time stretch factor (`>= 1.0`) for DRAM partition
    /// `module` at `now`. `1.0` means unthrottled.
    fn dram_stretch(&mut self, module: u32, now: Cycle) -> f64 {
        let _ = (module, now);
        1.0
    }

    /// Whether the fill for request `id` arrives poisoned and must
    /// replay. Consulted at most once per request (bounded replay).
    fn poison_fill(&mut self, id: u64) -> bool {
        let _ = id;
        false
    }

    /// Whether module `module`'s SM pool is offline during `kernel`.
    fn module_disabled(&self, module: usize, kernel: u32) -> bool {
        let _ = (module, kernel);
        false
    }
}

/// A plan behind a mutable reference: every hook forwards to the
/// referent. This lets a run loop *own* its plan generically (`F:
/// FaultPlan`) while the caller keeps the concrete plan and observes
/// its mutated counters afterwards — instantiate the loop with
/// `F = &mut ConcretePlan`.
impl<F: FaultPlan> FaultPlan for &mut F {
    const ACTIVE: bool = F::ACTIVE;

    fn link_error(&mut self, link: LinkId, attempt: u32) -> bool {
        (**self).link_error(link, attempt)
    }

    fn link_backoff(&self, attempt: u32) -> Cycle {
        (**self).link_backoff(attempt)
    }

    fn link_max_retries(&self) -> u32 {
        (**self).link_max_retries()
    }

    fn dram_stretch(&mut self, module: u32, now: Cycle) -> f64 {
        (**self).dram_stretch(module, now)
    }

    fn poison_fill(&mut self, id: u64) -> bool {
        (**self).poison_fill(id)
    }

    fn module_disabled(&self, module: usize, kernel: u32) -> bool {
        (**self).module_disabled(module, kernel)
    }
}

/// The do-nothing plan: `ACTIVE = false`, so every fault call site
/// disappears at monomorphization and timing is bit-identical to a
/// build without the fault layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullFaultPlan;

impl FaultPlan for NullFaultPlan {
    const ACTIVE: bool = false;
}

/// A hard GPM loss: module `module` stops admitting CTAs from kernel
/// `from_kernel` on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadModule {
    /// The module whose SM pool goes offline.
    pub module: u8,
    /// First kernel index (0-based) during which it is offline.
    pub from_kernel: u32,
}

/// Knobs for [`SeededFaultPlan`]. Rates are per-decision probabilities
/// in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Root seed; all fault families derive their streams from it.
    pub seed: u64,
    /// Probability that one link transfer attempt takes a CRC error.
    pub link_error_rate: f64,
    /// Retransmit budget per transfer (see
    /// [`FaultPlan::link_max_retries`]).
    pub link_max_retries: u32,
    /// Backoff before the first retransmit; doubles per attempt, capped
    /// at `base << 6`.
    pub backoff_base_cycles: u64,
    /// Probability that a DRAM partition is throttled during any one
    /// throttle window.
    pub dram_throttle_rate: f64,
    /// Length of one throttle window in cycles.
    pub dram_window_cycles: u64,
    /// Service-time stretch while throttled (`>= 1.0`).
    pub dram_throttle_stretch: f64,
    /// Probability that a fill arrives poisoned and replays once.
    pub mshr_poison_rate: f64,
    /// Optional hard GPM loss.
    pub dead_module: Option<DeadModule>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0x5EED,
            link_error_rate: 0.0,
            link_max_retries: 4,
            backoff_base_cycles: 8,
            dram_throttle_rate: 0.0,
            dram_window_cycles: 8192,
            dram_throttle_stretch: 2.0,
            mshr_poison_rate: 0.0,
            dead_module: None,
        }
    }
}

impl FaultConfig {
    /// A config with all three transient-fault rates set to `rate` (no
    /// hard GPM loss) — the knob the `resilience` sweep turns.
    pub fn with_rate(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            link_error_rate: rate,
            dram_throttle_rate: rate,
            mshr_poison_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// Checks the config for NaN and out-of-range knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("link_error_rate", self.link_error_rate),
            ("dram_throttle_rate", self.dram_throttle_rate),
            ("mshr_poison_rate", self.mshr_poison_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "{name} must be a probability in [0, 1], got {rate}"
                ));
            }
        }
        if !self.dram_throttle_stretch.is_finite() || self.dram_throttle_stretch < 1.0 {
            return Err(format!(
                "dram_throttle_stretch must be a finite factor >= 1.0, got {}",
                self.dram_throttle_stretch
            ));
        }
        if self.dram_window_cycles == 0 {
            return Err("dram_window_cycles must be nonzero".into());
        }
        Ok(())
    }
}

/// A fault schedule compiled from a [`FaultConfig`].
///
/// Decisions hash `(seed, family salt, site, counter)` through the
/// workspace RNG, so they depend only on the identifiers — never on map
/// iteration order or call interleaving across sites. The per-link
/// attempt counters live in a `HashMap` that is keyed, not iterated.
#[derive(Debug, Clone)]
pub struct SeededFaultPlan {
    cfg: FaultConfig,
    /// Per-link count of transfer attempts, the per-site counter that
    /// decorrelates successive draws on the same link.
    link_draws: HashMap<u64, u64>,
}

/// Collapses a [`LinkId`] to a stable integer key.
fn link_key(link: LinkId) -> u64 {
    match link {
        LinkId::RingCw(i) => (1 << 32) | u64::from(i),
        LinkId::RingCcw(i) => (2 << 32) | u64::from(i),
        LinkId::Mesh { from, to } => (3 << 32) | (u64::from(from) << 8) | u64::from(to),
    }
}

impl SeededFaultPlan {
    /// Compiles `cfg` into a plan.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FaultConfig::validate`].
    pub fn new(cfg: FaultConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FaultConfig: {e}");
        }
        SeededFaultPlan {
            cfg,
            link_draws: HashMap::new(),
        }
    }

    /// The config this plan was compiled from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }
}

impl FaultPlan for SeededFaultPlan {
    fn link_error(&mut self, link: LinkId, _attempt: u32) -> bool {
        if self.cfg.link_error_rate <= 0.0 {
            return false;
        }
        let key = link_key(link);
        let counter = self.link_draws.entry(key).or_insert(0);
        let n = *counter;
        *counter += 1;
        let hit = draw(&[self.cfg.seed, LINK_SALT, key, n]) < self.cfg.link_error_rate;
        if hit {
            tele().link_errors.inc();
        }
        hit
    }

    fn link_backoff(&self, attempt: u32) -> Cycle {
        Cycle::new(
            self.cfg
                .backoff_base_cycles
                .saturating_mul(1 << attempt.min(6)),
        )
    }

    fn link_max_retries(&self) -> u32 {
        self.cfg.link_max_retries
    }

    fn dram_stretch(&mut self, module: u32, now: Cycle) -> f64 {
        if self.cfg.dram_throttle_rate <= 0.0 {
            return 1.0;
        }
        let window = now.as_u64() / self.cfg.dram_window_cycles;
        if draw(&[self.cfg.seed, DRAM_SALT, u64::from(module), window])
            < self.cfg.dram_throttle_rate
        {
            tele().dram_throttled.inc();
            self.cfg.dram_throttle_stretch
        } else {
            1.0
        }
    }

    fn poison_fill(&mut self, id: u64) -> bool {
        let hit = self.cfg.mshr_poison_rate > 0.0
            && draw(&[self.cfg.seed, POISON_SALT, id]) < self.cfg.mshr_poison_rate;
        if hit {
            tele().mshr_poisoned.inc();
        }
        hit
    }

    fn module_disabled(&self, module: usize, kernel: u32) -> bool {
        self.cfg
            .dead_module
            .is_some_and(|d| usize::from(d.module) == module && kernel >= d.from_kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active<F: FaultPlan>() -> bool {
        F::ACTIVE
    }

    #[test]
    fn null_plan_is_inactive_and_faultless() {
        assert!(!active::<NullFaultPlan>());
        let mut p = NullFaultPlan;
        assert!(!p.link_error(LinkId::RingCw(0), 0));
        assert_eq!(p.link_backoff(3), Cycle::ZERO);
        assert_eq!(p.link_max_retries(), 0);
        assert_eq!(p.dram_stretch(0, Cycle::new(100)), 1.0);
        assert!(!p.poison_fill(42));
        assert!(!p.module_disabled(1, 0));
    }

    #[test]
    fn seeded_plan_is_reproducible() {
        let run = |seed| {
            let mut p = SeededFaultPlan::new(FaultConfig::with_rate(seed, 0.3));
            let links: Vec<bool> = (0..64)
                .map(|i| p.link_error(LinkId::Mesh { from: 0, to: 1 }, i))
                .collect();
            let drams: Vec<f64> = (0..16)
                .map(|w| p.dram_stretch(2, Cycle::new(w * 10_000)))
                .collect();
            let poisons: Vec<bool> = (0..64).map(|id| p.poison_fill(id)).collect();
            (links, drams, poisons)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should differ");
    }

    #[test]
    fn mut_ref_forwards_and_mirrors_active() {
        assert!(active::<&mut SeededFaultPlan>());
        assert!(!active::<&mut NullFaultPlan>());
        let mut owned = SeededFaultPlan::new(FaultConfig::with_rate(9, 0.3));
        let mut direct = SeededFaultPlan::new(FaultConfig::with_rate(9, 0.3));
        {
            let fwd: &mut SeededFaultPlan = &mut owned;
            for i in 0..32 {
                assert_eq!(
                    fwd.link_error(LinkId::RingCw(0), i),
                    direct.link_error(LinkId::RingCw(0), i)
                );
            }
            assert_eq!(fwd.link_backoff(2), direct.link_backoff(2));
            assert_eq!(fwd.link_max_retries(), direct.link_max_retries());
            assert!(!fwd.module_disabled(0, 0));
        }
        // The forwarded calls mutated the owned plan's counters.
        assert_eq!(
            owned.link_draws.get(&link_key(LinkId::RingCw(0))),
            Some(&32)
        );
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut p = SeededFaultPlan::new(FaultConfig::with_rate(1, 0.25));
        let n = 4000;
        let hits = (0..n)
            .filter(|&i| p.link_error(LinkId::RingCw(1), i))
            .count();
        let frac = hits as f64 / f64::from(n);
        assert!((0.2..0.3).contains(&frac), "rate drifted: {frac}");
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut p = SeededFaultPlan::new(FaultConfig::with_rate(5, 0.0));
        assert!((0..256).all(|i| !p.link_error(LinkId::RingCcw(0), i)));
        assert!((0..256).all(|w| p.dram_stretch(0, Cycle::new(w * 8192)) == 1.0));
        assert!((0..256).all(|id| !p.poison_fill(id)));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = SeededFaultPlan::new(FaultConfig::with_rate(0, 0.1));
        assert_eq!(p.link_backoff(0), Cycle::new(8));
        assert_eq!(p.link_backoff(1), Cycle::new(16));
        assert_eq!(p.link_backoff(3), Cycle::new(64));
        // Capped: attempts past 6 stop doubling.
        assert_eq!(p.link_backoff(6), p.link_backoff(20));
    }

    #[test]
    fn dead_module_respects_kernel_onset() {
        let cfg = FaultConfig {
            dead_module: Some(DeadModule {
                module: 2,
                from_kernel: 1,
            }),
            ..FaultConfig::default()
        };
        let p = SeededFaultPlan::new(cfg);
        assert!(!p.module_disabled(2, 0));
        assert!(p.module_disabled(2, 1));
        assert!(p.module_disabled(2, 7));
        assert!(!p.module_disabled(1, 1));
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(FaultConfig::with_rate(0, f64::NAN).validate().is_err());
        assert!(FaultConfig::with_rate(0, -0.5).validate().is_err());
        assert!(FaultConfig::with_rate(0, 1.5).validate().is_err());
        let mut c = FaultConfig {
            dram_throttle_stretch: 0.5,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        c.dram_throttle_stretch = f64::INFINITY;
        assert!(c.validate().is_err());
        let c = FaultConfig {
            dram_window_cycles: 0,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(FaultConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid FaultConfig")]
    fn plan_construction_panics_on_bad_config() {
        let _ = SeededFaultPlan::new(FaultConfig::with_rate(0, 2.0));
    }

    #[test]
    fn injections_are_counted_per_kind() {
        let reg = mcm_telemetry::global();
        let links = reg.counter("fault.link.errors_injected", Class::Deterministic);
        let poisons = reg.counter("fault.mshr.fills_poisoned", Class::Deterministic);
        let (l0, p0) = (links.get(), poisons.get());
        let mut p = SeededFaultPlan::new(FaultConfig::with_rate(3, 0.5));
        let fired_links = (0..200)
            .filter(|&i| p.link_error(LinkId::RingCw(7), i))
            .count() as u64;
        let fired_poisons = (1000..1200).filter(|&id| p.poison_fill(id)).count() as u64;
        assert!(fired_links > 0 && fired_poisons > 0, "rate 0.5 must fire");
        // Lower bounds: other tests in the binary share the registry.
        assert!(links.get() - l0 >= fired_links);
        assert!(poisons.get() - p0 >= fired_poisons);
    }
}
