//! End-to-end drill of the sweep service over the real simulator and
//! the real persistent store, driving the actual `serve` binary as a
//! subprocess:
//!
//! * two concurrent clients with overlapping grids — each unique pair
//!   simulated exactly once (`runs` from the `stats` op);
//! * served report bytes identical to a direct in-process
//!   [`Memo`](mcm_bench::harness::Memo) run of the same pair;
//! * `kill -9` mid-life, then a warm restart over the same `MCM_STORE`
//!   — the whole grid comes back as hits with the same bytes, and the
//!   dead server's stale `LOCK` is broken;
//! * a graceful shutdown leaves no `LOCK` behind;
//! * the scripted `serve_client` binary round-trips
//!   ping/sweep/stats/shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use mcm_bench::harness::Memo;
use mcm_gpu::SystemConfig;
use mcm_serve::protocol::report_slice;
use mcm_workloads::suite;

const SCALE: &str = "0.01";

/// A running `serve` subprocess with its advertised address.
struct Server {
    child: Child,
    addr: String,
    /// Kept open so the server's final status line never hits a closed
    /// pipe (println! panics on EPIPE).
    stdout: BufReader<std::process::ChildStdout>,
}

impl Server {
    fn spawn(store_dir: &Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .env("MCM_SCALE", SCALE)
            .env("MCM_STORE", store_dir)
            .env("MCM_SERVE_ADDR", "127.0.0.1:0")
            .env("MCM_SERVE_WORKERS", "2")
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve binary");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut first = String::new();
        stdout.read_line(&mut first).expect("read banner");
        let addr = first
            .trim()
            .rsplit(' ')
            .next()
            .expect("banner names the address")
            .to_string();
        assert!(
            first.starts_with("mcm-serve: listening on "),
            "unexpected banner: {first:?}"
        );
        Server {
            child,
            addr,
            stdout,
        }
    }

    fn kill_hard(mut self) {
        self.child.kill().expect("SIGKILL the server");
        let _ = self.child.wait();
    }

    fn wait_exit(mut self) {
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
        let status = self.child.wait().expect("server exit status");
        assert!(status.success(), "server exited with {status:?}\n{rest}");
        assert!(
            rest.contains("mcm-serve: shut down"),
            "missing farewell: {rest:?}"
        );
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .unwrap();
        Conn {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).expect("recv") > 0,
            "server closed the connection"
        );
        line.trim_end().to_string()
    }

    /// Sweeps and returns `(config, workload, source, report)` in index
    /// order.
    fn sweep(
        &mut self,
        id: u64,
        configs: &[&str],
        workloads: &[&str],
    ) -> Vec<(String, String, String, String)> {
        let quoted = |names: &[&str]| {
            names
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        self.send(&format!(
            "{{\"op\":\"sweep\",\"id\":{id},\"configs\":[{}],\"workloads\":[{}]}}",
            quoted(configs),
            quoted(workloads)
        ));
        let mut pairs = Vec::new();
        loop {
            let line = self.recv();
            if line.starts_with(&format!("{{\"done\":{id},")) {
                break;
            }
            if line.starts_with(&format!("{{\"ack\":{id},")) {
                continue;
            }
            assert!(!line.contains("\"error\""), "sweep {id} failed: {line}");
            let field = |key: &str| {
                let pat = format!("\"{key}\":\"");
                let rest = &line[line.find(&pat).unwrap() + pat.len()..];
                rest[..rest.find('"').unwrap()].to_string()
            };
            let index: usize = {
                let rest = &line[line.find("\"index\":").unwrap() + 8..];
                rest[..rest.find(',').unwrap()].parse().unwrap()
            };
            let report = report_slice(&line).expect("pair line has a report");
            pairs.push((
                index,
                field("config"),
                field("workload"),
                field("source"),
                report.to_string(),
            ));
        }
        pairs.sort_by_key(|(index, ..)| *index);
        pairs
            .into_iter()
            .map(|(_, c, w, s, r)| (c, w, s, r))
            .collect()
    }

    fn runs(&mut self) -> u64 {
        self.send("{\"op\":\"stats\"}");
        let line = self.recv();
        let rest = &line[line.find("\"runs\":").unwrap() + 7..];
        rest[..rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len())]
            .parse()
            .expect("runs is a number")
    }

    fn shutdown(&mut self) {
        self.send("{\"op\":\"shutdown\"}");
        assert_eq!(self.recv(), "{\"bye\":true}");
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mcm-serve-rt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn served_sweeps_run_once_match_direct_runs_and_survive_kill_minus_nine() {
    let store_dir = scratch("main");
    let all = suite::suite();
    let (w0, w1) = (all[0].name, all[1].name);

    // --- Cold server: two concurrent clients, overlapping grids. ---
    let server = Server::spawn(&store_dir);
    let twin = std::thread::spawn({
        let addr = server.addr.clone();
        move || Conn::open(&addr).sweep(50, &["baseline"], &[w1, w0])
    });
    let mut conn = Conn::open(&server.addr);
    let first = conn.sweep(1, &["baseline"], &[w0, w1]);
    let twin_pairs = twin.join().expect("twin client");

    // Exactly once: 2 unique pairs across both clients, 2 simulations.
    assert_eq!(conn.runs(), 2, "each unique pair simulated exactly once");
    assert_eq!(first.len(), 2);
    assert_eq!(twin_pairs.len(), 2);
    // Identical bytes on both connections (grids are reversed copies).
    assert_eq!(first[0].3, twin_pairs[1].3);
    assert_eq!(first[1].3, twin_pairs[0].3);

    // --- Byte identity against a direct in-process run. ---
    let scale: f64 = SCALE.parse().unwrap();
    let mut memo = Memo::new(scale);
    let direct0 = memo.run(&SystemConfig::baseline_mcm(), &all[0]);
    let direct1 = memo.run(&SystemConfig::baseline_mcm(), &all[1]);
    assert_eq!(
        first[0].3,
        mcm_serve::protocol::render_report(&direct0),
        "served report is byte-identical to a direct Memo run"
    );
    assert_eq!(first[1].3, mcm_serve::protocol::render_report(&direct1));

    // --- Same grid again: pure hits, no new simulations. ---
    let again = conn.sweep(2, &["baseline"], &[w0, w1]);
    assert!(
        again.iter().all(|(_, _, source, _)| source == "hit"),
        "warm repeat must be all hits: {again:?}"
    );
    assert_eq!(conn.runs(), 2, "hits never touch the pool");

    // --- kill -9, then warm-restart over the same store. ---
    server.kill_hard();
    assert!(
        store_dir.join("LOCK").exists(),
        "a SIGKILLed server leaves its stale LOCK behind (the point of the drill)"
    );
    let revived = Server::spawn(&store_dir);
    let mut conn = Conn::open(&revived.addr);
    let warm = conn.sweep(3, &["baseline"], &[w0, w1]);
    assert!(
        warm.iter().all(|(_, _, source, _)| source == "hit"),
        "after restart the grid is served from the store: {warm:?}"
    );
    assert_eq!(conn.runs(), 0, "the revived server never simulates");
    assert_eq!(warm[0].3, first[0].3, "bytes survive the restart");
    assert_eq!(warm[1].3, first[1].3);

    // --- Graceful shutdown cleans up. ---
    conn.shutdown();
    revived.wait_exit();
    assert!(
        !store_dir.join("LOCK").exists(),
        "graceful shutdown removes the store lock"
    );
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn scripted_client_round_trips_the_protocol() {
    let store_dir = scratch("client");
    let server = Server::spawn(&store_dir);
    let w0 = suite::suite()[0].name;
    let out = Command::new(env!("CARGO_BIN_EXE_serve_client"))
        .env("MCM_SERVE_ADDR", &server.addr)
        .env(
            "MCM_SERVE_SCRIPT",
            format!("ping; sweep baseline:{w0}; sweep2 baseline:{w0}; stats; shutdown"),
        )
        .output()
        .expect("run serve_client");
    assert!(
        out.status.success(),
        "serve_client exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "pong");
    assert!(lines[1].starts_with(&format!("pair 0 baseline {w0} {{")));
    assert_eq!(lines[2], "done 1");
    assert_eq!(lines[3], lines[1], "sweep2 serves the same bytes");
    assert_eq!(lines[4], "sweep2 ok");
    assert_eq!(lines[5], "runs=1", "three sweeps of one pair, one run");
    assert_eq!(lines[6], "bye");
    server.wait_exit();
    let _ = std::fs::remove_dir_all(&store_dir);
}
