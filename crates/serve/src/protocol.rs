//! The wire protocol: one JSON document per `\n`-terminated line, both
//! directions, over localhost TCP.
//!
//! ## Requests
//!
//! ```text
//! {"op":"sweep","id":1,"configs":["baseline","optimized"],"workloads":["CFD","*"]}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! `id` is a client-chosen request tag echoed on every response line of
//! that sweep. `"*"` in `workloads` expands to the backend's full
//! suite.
//!
//! ## Responses
//!
//! A sweep is answered with one `ack` line, one `pair` line per
//! `(config, workload)` pair of the request grid (in completion order,
//! *not* grid order — clients reorder by `index`), and one `done` line:
//!
//! ```text
//! {"ack":1,"pairs":2}
//! {"id":1,"index":0,"config":"baseline","workload":"CFD","source":"hit","report":{...}}
//! {"id":1,"index":1,"config":"optimized","workload":"CFD","source":"run","report":{...}}
//! {"done":1,"pairs":2}
//! ```
//!
//! `source` says how the pair was answered: `"hit"` (cache/store),
//! `"run"` (this request triggered the simulation), or `"shared"`
//! (subscribed to another request's in-flight run). The `report` value
//! is spliced in **verbatim** from [`render_report`] — the bytes are
//! identical across all three sources, which the integration tests
//! pin.
//!
//! Errors answer with `{"error":"...","id":N}` (the `id` is present
//! when the error belongs to a sweep). A rejected request (admission
//! control) produces *only* an error line: no ack, no pairs, nothing
//! scheduled.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mcm_gpu::RunReport;
use mcm_interconnect::energy::Tier;
use mcm_telemetry::json::{push_escaped, Json};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve) a config × workload grid.
    Sweep {
        /// Client-chosen tag echoed on every response line.
        id: u64,
        /// Configuration preset names.
        configs: Vec<String>,
        /// Workload names; `"*"` expands to the full suite.
        workloads: Vec<String>,
    },
    /// Report service counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop the service after answering.
    Shutdown,
}

fn string_list(obj: &BTreeMap<String, Json>, key: &str) -> Result<Vec<String>, String> {
    let arr = obj
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("sweep needs a {key:?} array"))?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        out.push(
            v.as_str()
                .ok_or_else(|| format!("{key:?} entries must be strings"))?
                .to_string(),
        );
    }
    if out.is_empty() {
        return Err(format!("{key:?} must not be empty"));
    }
    Ok(out)
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message for syntax errors, unknown ops, or
    /// missing/ill-typed fields; the service echoes it back verbatim.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let Json::Obj(obj) = &doc else {
            return Err("request must be a JSON object".to_string());
        };
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs an \"op\" string".to_string())?;
        match op {
            "sweep" => Ok(Request::Sweep {
                id: doc
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "sweep needs a numeric \"id\"".to_string())?,
                configs: string_list(obj, "configs")?,
                workloads: string_list(obj, "workloads")?,
            }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders the request as its wire line (without the newline).
    /// Clients use this; the service only parses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self {
            Request::Sweep {
                id,
                configs,
                workloads,
            } => {
                let _ = write!(out, "{{\"op\":\"sweep\",\"id\":{id},\"configs\":[");
                for (i, c) in configs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(&mut out, c);
                }
                out.push_str("],\"workloads\":[");
                for (i, w) in workloads.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(&mut out, w);
                }
                out.push_str("]}");
            }
            Request::Stats => out.push_str("{\"op\":\"stats\"}"),
            Request::Ping => out.push_str("{\"op\":\"ping\"}"),
            Request::Shutdown => out.push_str("{\"op\":\"shutdown\"}"),
        }
        out
    }
}

/// How a pair response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the backend's cache or persistent store.
    Hit,
    /// This request triggered the simulation.
    Run,
    /// Subscribed to another request's in-flight run.
    Shared,
}

impl Source {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Hit => "hit",
            Source::Run => "run",
            Source::Shared => "shared",
        }
    }
}

/// The `ack` line for a sweep of `pairs` pairs.
pub fn ack_line(id: u64, pairs: usize) -> String {
    format!("{{\"ack\":{id},\"pairs\":{pairs}}}")
}

/// One pair response line. `report` is spliced in verbatim — it must
/// be a complete JSON value, normally [`render_report`] output.
pub fn pair_line(
    id: u64,
    index: usize,
    config: &str,
    workload: &str,
    source: Source,
    report: &str,
) -> String {
    let mut out = String::with_capacity(report.len() + 96);
    let _ = write!(out, "{{\"id\":{id},\"index\":{index},\"config\":");
    push_escaped(&mut out, config);
    out.push_str(",\"workload\":");
    push_escaped(&mut out, workload);
    let _ = write!(out, ",\"source\":\"{}\",\"report\":", source.as_str());
    out.push_str(report);
    out.push('}');
    out
}

/// The `done` line closing a sweep.
pub fn done_line(id: u64, pairs: usize) -> String {
    format!("{{\"done\":{id},\"pairs\":{pairs}}}")
}

/// An error line; `id` ties it to a sweep when there is one.
pub fn error_line(message: &str, id: Option<u64>) -> String {
    let mut out = String::new();
    out.push_str("{\"error\":");
    push_escaped(&mut out, message);
    if let Some(id) = id {
        let _ = write!(out, ",\"id\":{id}");
    }
    out.push('}');
    out
}

/// The `pong` answer to a ping.
pub fn pong_line() -> String {
    "{\"pong\":true}".to_string()
}

/// The farewell answer to a shutdown request.
pub fn bye_line() -> String {
    "{\"bye\":true}".to_string()
}

/// Extracts the verbatim `report` value from a pair line. The splice
/// in [`pair_line`] puts `report` last, so this is an exact byte slice
/// of what [`render_report`] produced — the client-side half of the
/// byte-identity contract.
pub fn report_slice(pair_line: &str) -> Option<&str> {
    let start = pair_line.find("\"report\":")? + "\"report\":".len();
    let end = pair_line.len().checked_sub(1)?;
    (start <= end).then(|| &pair_line[start..end])
}

fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

fn push_ratio(out: &mut String, r: mcm_engine::stats::Ratio) {
    out.push('[');
    push_u64(out, r.hits());
    out.push(',');
    push_u64(out, r.total());
    out.push(']');
}

/// Renders a [`RunReport`] as canonical JSON: every field in struct
/// declaration order, ratios as `[hits,total]` pairs, the energy
/// ledger as its five raw byte counters (tier order then DRAM), and
/// per-module stats as nested arrays. Lossless — raw counters only, no
/// derived floats — and **byte-deterministic**: the same report always
/// renders to the same bytes, which is what lets the service promise
/// responses identical to a direct harness run.
pub fn render_report(r: &RunReport) -> String {
    let mut out = String::with_capacity(256 + r.modules.len() * 64);
    out.push_str("{\"workload\":");
    push_escaped(&mut out, &r.workload);
    out.push_str(",\"config\":");
    push_escaped(&mut out, &r.config);
    out.push_str(",\"cycles\":");
    push_u64(&mut out, r.cycles.as_u64());
    for (name, v) in [
        ("instructions", r.instructions),
        ("mem_ops", r.mem_ops),
        ("reads", r.reads),
        ("writes", r.writes),
        ("local_accesses", r.local_accesses),
        ("remote_accesses", r.remote_accesses),
    ] {
        let _ = write!(out, ",\"{name}\":");
        push_u64(&mut out, v);
    }
    for (name, ratio) in [("l1", r.l1), ("l15", r.l15), ("l2", r.l2)] {
        let _ = write!(out, ",\"{name}\":");
        push_ratio(&mut out, ratio);
    }
    out.push_str(",\"inter_module_bytes\":");
    push_u64(&mut out, r.inter_module_bytes);
    out.push_str(",\"dram_bytes\":");
    push_u64(&mut out, r.dram_bytes);
    out.push_str(",\"energy\":[");
    for tier in Tier::ALL {
        push_u64(&mut out, r.energy.bytes(tier));
        out.push(',');
    }
    push_u64(&mut out, r.energy.dram_bytes());
    out.push_str("],\"modules\":[");
    for (i, m) in r.modules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_u64(&mut out, m.instructions);
        out.push(',');
        push_u64(&mut out, m.dram_bytes);
        out.push(',');
        push_ratio(&mut out, m.l2);
        out.push(',');
        push_ratio(&mut out, m.l15);
        out.push(']');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_engine::stats::Ratio;
    use mcm_engine::Cycle;
    use mcm_gpu::ModuleStats;
    use mcm_interconnect::energy::EnergyLedger;

    fn sample_report() -> RunReport {
        let mut energy = EnergyLedger::new();
        energy.record(Tier::Chip, 100);
        energy.record(Tier::Package, 200);
        energy.record_dram(500);
        RunReport {
            workload: "CFD".into(),
            config: "MCM-GPU baseline (768 GB/s)".into(),
            cycles: Cycle::new(1000),
            instructions: 4000,
            mem_ops: 900,
            reads: 600,
            writes: 300,
            local_accesses: 700,
            remote_accesses: 200,
            l1: Ratio::from_parts(10, 20),
            l15: Ratio::from_parts(0, 0),
            l2: Ratio::from_parts(5, 8),
            inter_module_bytes: 123,
            dram_bytes: 456,
            energy,
            modules: vec![ModuleStats {
                instructions: 2000,
                dram_bytes: 228,
                l2: Ratio::from_parts(3, 4),
                l15: Ratio::from_parts(0, 0),
            }],
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Sweep {
                id: 7,
                configs: vec!["baseline".into(), "optimized".into()],
                workloads: vec!["CFD".into(), "*".into()],
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
    }

    #[test]
    fn bad_requests_are_named() {
        for (line, needle) in [
            ("nonsense", "bad request JSON"),
            ("[1,2]", "must be a JSON object"),
            ("{\"op\":\"dance\"}", "unknown op"),
            (
                "{\"op\":\"sweep\",\"id\":1,\"workloads\":[\"x\"]}",
                "configs",
            ),
            (
                "{\"op\":\"sweep\",\"id\":1,\"configs\":[],\"workloads\":[\"x\"]}",
                "must not be empty",
            ),
            (
                "{\"op\":\"sweep\",\"configs\":[\"a\"],\"workloads\":[\"x\"]}",
                "numeric \"id\"",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn rendered_reports_are_valid_deterministic_json() {
        let r = sample_report();
        let a = render_report(&r);
        let b = render_report(&r);
        assert_eq!(a, b, "rendering must be byte-deterministic");
        let doc = Json::parse(&a).expect("well-formed");
        assert_eq!(doc.get("workload").and_then(Json::as_str), Some("CFD"));
        assert_eq!(doc.get("cycles").and_then(Json::as_u64), Some(1000));
        // Ratios are raw [hits, total] pairs, never floats.
        let l1 = doc.get("l1").and_then(Json::as_arr).unwrap();
        assert_eq!(l1[0].as_u64(), Some(10));
        assert_eq!(l1[1].as_u64(), Some(20));
        // Energy is the five raw counters in tier-then-DRAM order.
        let energy = doc.get("energy").and_then(Json::as_arr).unwrap();
        assert_eq!(energy.len(), 5);
        assert_eq!(energy[0].as_u64(), Some(100));
        assert_eq!(energy[4].as_u64(), Some(500));
    }

    #[test]
    fn pair_lines_carry_the_report_verbatim() {
        let report = render_report(&sample_report());
        let line = pair_line(3, 1, "baseline", "CFD", Source::Shared, &report);
        assert_eq!(report_slice(&line), Some(report.as_str()));
        let doc = Json::parse(&line).expect("pair line is one JSON object");
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("source").and_then(Json::as_str), Some("shared"));
        assert_eq!(
            doc.get("report")
                .and_then(|r| r.get("workload"))
                .and_then(Json::as_str),
            Some("CFD")
        );
    }

    #[test]
    fn control_lines_are_well_formed() {
        for line in [
            ack_line(9, 4),
            done_line(9, 4),
            error_line("boom \"quoted\"", Some(9)),
            error_line("standalone", None),
            pong_line(),
            bye_line(),
        ] {
            Json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(error_line("x", Some(2)).contains("\"id\":2"));
        assert!(!error_line("x", None).contains("\"id\""));
    }
}
