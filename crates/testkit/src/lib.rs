//! `mcm-testkit`: the workspace's own correctness tooling.
//!
//! Two independent pieces, both dependency-free beyond `mcm-engine`:
//!
//! * [`gen`] + [`runner`] — a deterministic property-testing
//!   mini-harness. Generators compose structurally (tuples, vectors,
//!   `map`), every case derives from a seed via the simulator's own
//!   SplitMix64/xoshiro256** RNG, failures are greedily shrunk, and
//!   the failure report prints a seed that replays the exact case
//!   (`MCM_PROP_SEED=0x... cargo test <name>`).
//! * [`bench`] — a wall-clock bench runner (warmup + N timed samples,
//!   median/p95) for the workspace's `harness = false` bench targets.
//! * [`alloc`] — a counting [`std::alloc::System`] wrapper for
//!   allocation-freedom assertions over deterministic hot loops.
//! * [`tempdir`] — an RAII unique temp directory for
//!   filesystem-touching tests (the store suites).
//!
//! # Writing a property
//!
//! ```
//! use mcm_testkit::prelude::*;
//!
//! check("addition_commutes", &(u64s(0..1000), u64s(0..1000)), |&(a, b)| {
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Filter impossible cases with [`assume!`]; they are regenerated
//! instead of counted:
//!
//! ```
//! use mcm_testkit::prelude::*;
//!
//! check("subtraction_in_order", &(u64s(0..100), u64s(0..100)), |&(a, b)| {
//!     assume!(a >= b);
//!     assert!(a - b <= a);
//! });
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod gen;
pub mod runner;
pub mod tempdir;

/// One-stop imports for property-test files.
pub mod prelude {
    pub use crate::assume;
    pub use crate::gen::{any_u64, bools, f64s, u32s, u64s, u8s, usizes, vecs, Gen, GenExt};
    pub use crate::runner::{check, check_with, Config};
}
