//! Benchmark harness for the MCM-GPU reproduction.
//!
//! [`figures`] contains one function per table and figure of the
//! paper's evaluation; [`harness`] provides the memoized runner and
//! text-table rendering they share. The `src/bin/` binaries are thin
//! wrappers — `cargo run -p mcm-bench --release --bin fig04_link_sensitivity`
//! regenerates Fig. 4, and `--bin reproduce` regenerates everything
//! into `results/`.
//!
//! Set `MCM_SCALE` (default 0.5) to trade run length for fidelity;
//! shapes are stable across scales.

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod resilience;
pub mod serve_backend;
