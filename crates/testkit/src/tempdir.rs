//! A tiny RAII temp-directory helper for filesystem-touching tests.
//!
//! Each [`TempDir`] is unique per process *and* per call (pid plus an
//! atomic sequence number), so tests that run concurrently in one
//! binary — or across a parallel `cargo test` — never collide. The
//! directory is removed on drop; a panicking test leaves it behind for
//! post-mortem inspection only if the process dies before unwinding.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely-named directory under [`std::env::temp_dir`], created on
/// construction and removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh empty directory tagged `tag` (for readable
    /// paths in failure output).
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — a test without
    /// its filesystem fixture must not run.
    pub fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mcm-test-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `self.path().join(rel)`.
    pub fn join(&self, rel: &str) -> PathBuf {
        self.path.join(rel)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("a");
        let b = TempDir::new("a");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.join("f"), b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "dropped TempDir must remove its tree");
        assert!(b.path().is_dir());
    }
}
