//! Composable value generators with bounded greedy shrinking.
//!
//! A [`Gen`] produces values from the workspace's own deterministic
//! [`Xoshiro256`] generator, so a property case is a pure function of
//! its seed. Each generator also knows how to *shrink* a value it
//! produced: propose a short list of strictly simpler candidates
//! (smaller numbers, shorter vectors, per-component simplifications)
//! that the runner retries greedily while the property keeps failing.
//!
//! Generators compose structurally: tuples of generators are
//! generators, [`vecs`] lifts an element generator to vectors, and
//! [`GenExt::map`] post-processes values (at the cost of shrinking —
//! prefer generating a tuple of primitives and building the composite
//! value inside the property body, which keeps full shrinking).

use std::fmt::Debug;
use std::ops::Range;

use mcm_engine::rng::Xoshiro256;

/// A deterministic value generator with greedy shrink proposals.
pub trait Gen {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Produces one value from the case RNG.
    fn generate(&self, rng: &mut Xoshiro256) -> Self::Value;

    /// Proposes strictly simpler candidates for a failing `value`.
    ///
    /// Candidates must move toward a fixpoint (smaller magnitude,
    /// shorter length) so the runner's greedy loop terminates; the
    /// default proposes nothing, which disables shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_gen {
    ($(#[$doc:meta])* $fn_name:ident, $gen_name:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $gen_name {
            lo: $ty,
            hi: $ty,
        }

        $(#[$doc])*
        pub fn $fn_name(range: Range<$ty>) -> $gen_name {
            assert!(
                range.start < range.end,
                "empty generator range {}..{}",
                range.start,
                range.end
            );
            $gen_name { lo: range.start, hi: range.end }
        }

        impl Gen for $gen_name {
            type Value = $ty;

            fn generate(&self, rng: &mut Xoshiro256) -> $ty {
                let span = (self.hi - self.lo) as u64;
                self.lo + rng.next_range(span) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let v = *value;
                if v <= self.lo {
                    return Vec::new();
                }
                // A delta-halving ladder (lo, then v minus shrinking
                // deltas) so the runner's greedy loop converges to a
                // boundary counterexample in O(log²) attempts.
                let mut out = vec![self.lo];
                let mut delta = (v - self.lo) / 2;
                while delta > 0 {
                    let cand = v - delta;
                    if !out.contains(&cand) {
                        out.push(cand);
                    }
                    delta /= 2;
                }
                out
            }
        }
    };
}

int_gen!(
    /// Uniform `u8` in a half-open range; shrinks toward the low bound.
    u8s, U8s, u8
);
int_gen!(
    /// Uniform `u32` in a half-open range; shrinks toward the low bound.
    u32s, U32s, u32
);
int_gen!(
    /// Uniform `u64` in a half-open range; shrinks toward the low bound.
    u64s, U64s, u64
);
int_gen!(
    /// Uniform `usize` in a half-open range; shrinks toward the low bound.
    usizes, Usizes, usize
);

/// Uniform over the full `u64` domain (the moral `any::<u64>()`);
/// shrinks by halving toward zero.
#[derive(Debug, Clone)]
pub struct AnyU64;

/// Uniform over the full `u64` domain; shrinks by halving toward zero.
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Gen for AnyU64 {
    type Value = u64;

    fn generate(&self, rng: &mut Xoshiro256) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        if v == 0 {
            return Vec::new();
        }
        let mut out = vec![0];
        let mut delta = v / 2;
        while delta > 0 {
            let cand = v - delta;
            if !out.contains(&cand) {
                out.push(cand);
            }
            delta /= 2;
        }
        out
    }
}

/// Uniform booleans; `true` shrinks to `false`.
#[derive(Debug, Clone)]
pub struct Bools;

/// Uniform booleans; `true` shrinks to `false`.
pub fn bools() -> Bools {
    Bools
}

impl Gen for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut Xoshiro256) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward the low bound.
#[derive(Debug, Clone)]
pub struct F64s {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[range.start, range.end)`; shrinks toward the low
/// bound.
pub fn f64s(range: Range<f64>) -> F64s {
    assert!(
        range.start < range.end && range.start.is_finite() && range.end.is_finite(),
        "invalid f64 generator range {}..{}",
        range.start,
        range.end
    );
    F64s {
        lo: range.start,
        hi: range.end,
    }
}

impl Gen for F64s {
    type Value = f64;

    fn generate(&self, rng: &mut Xoshiro256) -> f64 {
        self.lo + rng.next_f64() * (self.hi - self.lo)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let span = self.hi - self.lo;
        let mut out = Vec::new();
        let delta = (v - self.lo) / 2.0;
        // Same ladder shape as the integer gens, cut off once the step
        // is negligible so the greedy loop converges despite f64
        // halving never exactly reaching the bound.
        for cand in [self.lo, v - delta, v - delta / 2.0, v - delta / 4.0] {
            if cand < v - span * 1e-6 {
                out.push(cand);
            }
        }
        out
    }
}

/// Vectors of a fixed element generator with length drawn from a
/// half-open range. Shrinks by shortening first, then simplifying
/// individual elements.
#[derive(Debug, Clone)]
pub struct Vecs<G> {
    elem: G,
    lo: usize,
    hi: usize,
}

/// Vectors with length in `len.start..len.end` over `elem` values.
pub fn vecs<G: Gen>(elem: G, len: Range<usize>) -> Vecs<G> {
    assert!(len.start < len.end, "empty vec length range");
    Vecs {
        elem,
        lo: len.start,
        hi: len.end,
    }
}

impl<G: Gen> Gen for Vecs<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Xoshiro256) -> Vec<G::Value> {
        let len = self.lo + rng.next_range((self.hi - self.lo) as u64) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Structural shrinks: minimal length, half length, one shorter.
        let mut seen_lens = Vec::new();
        for target in [self.lo, value.len() / 2, value.len().saturating_sub(1)] {
            if target >= self.lo && target < value.len() && !seen_lens.contains(&target) {
                seen_lens.push(target);
                out.push(value[..target].to_vec());
            }
        }
        // Element shrinks: simplify a few positions, bounded so the
        // candidate list stays small for long vectors.
        for i in 0..value.len().min(4) {
            for elem_cand in self.elem.shrink(&value[i]).into_iter().take(2) {
                let mut cand = value.clone();
                cand[i] = elem_cand;
                out.push(cand);
            }
        }
        out
    }
}

macro_rules! tuple_gen {
    ($($G:ident => $idx:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);

            fn generate(&self, rng: &mut Xoshiro256) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A => 0);
tuple_gen!(A => 0, B => 1);
tuple_gen!(A => 0, B => 1, C => 2);
tuple_gen!(A => 0, B => 1, C => 2, D => 3);
tuple_gen!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_gen!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
tuple_gen!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
tuple_gen!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
tuple_gen!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8);
tuple_gen!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9);

/// A generator post-processed by a pure function (see [`GenExt::map`]).
#[derive(Debug, Clone)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, F, T> Gen for Map<G, F>
where
    G: Gen,
    T: Clone + Debug,
    F: Fn(G::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Xoshiro256) -> T {
        (self.f)(self.inner.generate(rng))
    }
    // Mapped values cannot be shrunk: the pre-image of a candidate is
    // unknown. Build composites inside the property body instead when
    // shrinking matters.
}

/// Combinator extensions available on every generator.
pub trait GenExt: Gen + Sized {
    /// Transforms generated values with a pure function. The result
    /// does not shrink; prefer mapping inside the property body when
    /// counterexample minimization matters.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<G: Gen + Sized> GenExt for G {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(0xDEAD_BEEF)
    }

    #[test]
    fn int_gen_respects_range_and_shrinks_down() {
        let g = u64s(10..20);
        let mut r = rng();
        for _ in 0..1000 {
            let v = g.generate(&mut r);
            assert!((10..20).contains(&v));
        }
        let shrunk = g.shrink(&17);
        assert!(!shrunk.is_empty());
        assert!(shrunk.iter().all(|&s| (10..17).contains(&s)));
        assert!(g.shrink(&10).is_empty(), "the minimum cannot shrink");
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let g = (u64s(0..1000), vecs(bools(), 0..8), f64s(0.0..1.0));
        let a = g.generate(&mut rng());
        let b = g.generate(&mut rng());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert!((a.2 - b.2).abs() < f64::EPSILON);
    }

    #[test]
    fn vec_gen_respects_length_and_shrinks_shorter_first() {
        let g = vecs(u32s(0..100), 2..6);
        let mut r = rng();
        for _ in 0..200 {
            let v = g.generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        let v = vec![50u32, 60, 70, 80, 90];
        let shrunk = g.shrink(&v);
        assert!(shrunk.iter().any(|c| c.len() < v.len()));
        assert!(shrunk.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn tuple_gen_shrinks_one_component_at_a_time() {
        let g = (u64s(0..10), bools());
        let shrunk = g.shrink(&(5, true));
        assert!(shrunk.contains(&(0, true)));
        assert!(shrunk.contains(&(5, false)));
        assert!(shrunk.iter().all(|&(n, b)| n < 5 || (n == 5 && !b)));
    }

    #[test]
    fn f64_gen_stays_in_range() {
        let g = f64s(-2.0..3.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = g.generate(&mut r);
            assert!((-2.0..3.0).contains(&v));
        }
        assert!(g.shrink(&2.5).iter().all(|&c| (-2.0..2.5).contains(&c)));
    }

    #[test]
    fn map_transforms_values() {
        let g = u64s(1..5).map(|n| vec![0u8; n as usize]);
        let v = g.generate(&mut rng());
        assert!((1..5).contains(&v.len()));
        assert!(g.shrink(&v).is_empty(), "mapped gens do not shrink");
    }

    #[test]
    fn any_u64_halves_toward_zero() {
        let shrunk = any_u64().shrink(&1024);
        assert!(shrunk.contains(&0));
        assert!(shrunk.contains(&512));
        assert!(any_u64().shrink(&0).is_empty());
    }
}
