//! Workload specifications: the static description of one benchmark.

use std::fmt;

/// The paper's three workload categories (§4).
///
/// High-parallelism applications (parallel efficiency ≥ 25 %) are split
/// into memory-intensive (> 20 % slowdown when DRAM bandwidth is halved)
/// and compute-intensive; the rest are limited-parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// High parallelism, memory intensive ("M-Intensive").
    MemoryIntensive,
    /// High parallelism, compute intensive ("C-Intensive").
    ComputeIntensive,
    /// Insufficient parallelism to fill a 256-SM GPU ("Lim. Parallel").
    LimitedParallelism,
}

impl Category {
    /// All categories in the paper's reporting order.
    pub const ALL: [Category; 3] = [
        Category::MemoryIntensive,
        Category::ComputeIntensive,
        Category::LimitedParallelism,
    ];

    /// The paper's abbreviation for the category.
    pub const fn label(self) -> &'static str {
        match self {
            Category::MemoryIntensive => "M-Intensive",
            Category::ComputeIntensive => "C-Intensive",
            Category::LimitedParallelism => "Lim. Parallel",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The locality knobs of a workload's synthetic address stream.
///
/// Together these reproduce the access-pattern *properties* the paper's
/// proprietary traces exhibit; see DESIGN.md for the substitution
/// argument. All fractions are probabilities in `[0, 1]` over memory
/// operations; `streaming`, `neighbor_frac` and `shared_frac` partition
/// an access's target region (own slice stream/reuse, adjacent CTA's
/// slice, globally shared data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityProfile {
    /// Of own-slice accesses, the fraction that advance sequentially
    /// (streaming); the rest revisit the reuse window (temporal reuse).
    pub streaming: f64,
    /// Size of the temporal-reuse window in cache lines. Small windows
    /// cache well; windows larger than the per-GPM cache defeat it.
    pub reuse_window_lines: u32,
    /// Fraction of accesses that touch an adjacent CTA's data slice —
    /// the inter-CTA spatial locality distributed scheduling exploits
    /// (§5.2).
    pub neighbor_frac: f64,
    /// Fraction of accesses that touch the *hot* shared region
    /// (read-mostly tables, frontiers): traffic no placement policy can
    /// localize, but small enough that a GPM-side cache can capture it.
    pub shared_frac: f64,
    /// The hot shared region's size as a fraction of the footprint.
    pub shared_region_frac: f64,
    /// Fraction of accesses that touch the *whole footprint* uniformly
    /// (pointer chasing, irregular gathers): irreducibly remote traffic
    /// that neither caches nor placement can absorb.
    pub cold_shared_frac: f64,
    /// Memory divergence: when present, a fraction of memory
    /// instructions are uncoalesced gathers that issue several distinct
    /// line transactions (each costing an issue slot, as real SMs
    /// replay divergent accesses). `None` models fully coalesced code.
    pub divergence: Option<Divergence>,
}

/// Uncoalesced-gather behaviour for [`LocalityProfile::divergence`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divergence {
    /// Fraction of memory instructions that diverge.
    pub frac: f64,
    /// Line transactions a divergent instruction issues (including the
    /// primary one).
    pub degree: u8,
}

impl Divergence {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.frac) {
            return Err(format!(
                "divergence frac must be in [0,1], got {}",
                self.frac
            ));
        }
        if self.degree < 2 {
            return Err("divergent gathers need degree >= 2".to_string());
        }
        Ok(())
    }
}

impl LocalityProfile {
    /// A balanced default: mostly streaming over the CTA's own slice
    /// with a modest reuse window and small neighbor/shared components.
    pub const fn balanced() -> Self {
        LocalityProfile {
            streaming: 0.7,
            reuse_window_lines: 4096,
            neighbor_frac: 0.05,
            shared_frac: 0.05,
            shared_region_frac: 0.05,
            cold_shared_frac: 0.0,
            divergence: None,
        }
    }

    /// Returns a copy with the given cold-shared fraction — the
    /// irreducibly remote traffic component.
    pub const fn with_cold_shared(mut self, frac: f64) -> Self {
        self.cold_shared_frac = frac;
        self
    }

    /// Returns a copy where `frac` of memory instructions are
    /// uncoalesced gathers of `degree` lines.
    pub const fn with_divergence(mut self, frac: f64, degree: u8) -> Self {
        self.divergence = Some(Divergence { frac, degree });
        self
    }

    /// Validates that all fractions are within range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        let unit = |name: &str, v: f64| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be in [0,1], got {v}"))
            }
        };
        unit("streaming", self.streaming)?;
        unit("neighbor_frac", self.neighbor_frac)?;
        unit("shared_frac", self.shared_frac)?;
        unit("shared_region_frac", self.shared_region_frac)?;
        unit("cold_shared_frac", self.cold_shared_frac)?;
        let sum = self.neighbor_frac + self.shared_frac + self.cold_shared_frac;
        if sum > 1.0 {
            return Err(format!(
                "neighbor_frac + shared_frac + cold_shared_frac must not exceed 1, got {sum}"
            ));
        }
        if self.reuse_window_lines == 0 {
            return Err("reuse_window_lines must be nonzero".to_string());
        }
        if let Some(d) = self.divergence {
            d.validate()?;
        }
        Ok(())
    }
}

impl Default for LocalityProfile {
    fn default() -> Self {
        LocalityProfile::balanced()
    }
}

/// The full static description of one benchmark in the suite.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Reporting category.
    pub category: Category,
    /// Memory footprint in bytes (Table 4 values for the M-Intensive
    /// set).
    pub footprint_bytes: u64,
    /// CTAs per kernel launch.
    pub ctas: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Warp instructions each warp executes per kernel launch.
    pub insts_per_warp: u32,
    /// Fraction of warp instructions that are memory operations.
    pub mem_ratio: f64,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// Number of times the kernel is launched (convergence loops; §5.3's
    /// cross-kernel locality exists only when this exceeds 1).
    pub kernel_iters: u32,
    /// Address-stream locality knobs.
    pub locality: LocalityProfile,
    /// Per-CTA work imbalance: CTA `c` executes up to `1 + imbalance`
    /// times the base instruction count (0 = perfectly uniform).
    pub imbalance: f64,
    /// Base RNG seed; every derived stream hashes this with kernel, CTA
    /// and warp ids.
    pub seed: u64,
}

// Sweep executors hand specs to worker threads by reference; keep the
// thread-safety a compile-time guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WorkloadSpec>();
    assert_send_sync::<LocalityProfile>();
};

impl WorkloadSpec {
    /// A template spec used by tests and as a starting point for custom
    /// workloads: 256 CTAs × 4 warps, 64 MiB footprint, 30 % memory
    /// operations, balanced locality, 2 kernel iterations.
    pub fn template(name: &'static str) -> Self {
        WorkloadSpec {
            name,
            category: Category::MemoryIntensive,
            footprint_bytes: 64 << 20,
            ctas: 256,
            warps_per_cta: 4,
            insts_per_warp: 512,
            mem_ratio: 0.3,
            write_frac: 0.25,
            kernel_iters: 2,
            locality: LocalityProfile::balanced(),
            imbalance: 0.0,
            seed: 0xC0FFEE,
        }
    }

    /// Total warps per kernel launch.
    pub fn total_warps(&self) -> u64 {
        u64::from(self.ctas) * u64::from(self.warps_per_cta)
    }

    /// Approximate total warp instructions across all kernel launches
    /// (ignoring imbalance).
    pub fn approx_instructions(&self) -> u64 {
        self.total_warps() * u64::from(self.insts_per_warp) * u64::from(self.kernel_iters)
    }

    /// Footprint in cache lines.
    pub fn footprint_lines(&self) -> u64 {
        (self.footprint_bytes / mcm_mem::addr::LINE_BYTES).max(1)
    }

    /// Returns a copy with the instruction count per warp scaled by
    /// `factor` (at least one instruction), for quick-running tests and
    /// smoke benches.
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        let mut spec = self.clone();
        spec.insts_per_warp = ((f64::from(self.insts_per_warp) * factor).round() as u32).max(1);
        spec
    }

    /// Validates the spec's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ctas == 0 || self.warps_per_cta == 0 || self.insts_per_warp == 0 {
            return Err(format!("{}: ctas/warps/insts must be nonzero", self.name));
        }
        if self.kernel_iters == 0 {
            return Err(format!("{}: kernel_iters must be nonzero", self.name));
        }
        if !(0.0..=1.0).contains(&self.mem_ratio) || self.mem_ratio == 0.0 {
            return Err(format!(
                "{}: mem_ratio must be in (0,1], got {}",
                self.name, self.mem_ratio
            ));
        }
        if !(0.0..=1.0).contains(&self.write_frac) {
            return Err(format!("{}: write_frac must be in [0,1]", self.name));
        }
        if !(0.0..=1.0).contains(&self.imbalance) {
            return Err(format!("{}: imbalance must be in [0,1]", self.name));
        }
        if self.footprint_lines() < u64::from(self.ctas) {
            return Err(format!(
                "{}: footprint has fewer lines than CTAs",
                self.name
            ));
        }
        self.locality
            .validate()
            .map_err(|e| format!("{}: {e}", self.name))
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} MiB, {} CTAs x {} warps, {}% mem",
            self.name,
            self.category,
            self.footprint_bytes >> 20,
            self.ctas,
            self.warps_per_cta,
            (self.mem_ratio * 100.0).round()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_is_valid() {
        WorkloadSpec::template("t").validate().unwrap();
    }

    #[test]
    fn totals() {
        let spec = WorkloadSpec::template("t");
        assert_eq!(spec.total_warps(), 1024);
        assert_eq!(spec.approx_instructions(), 1024 * 512 * 2);
        assert_eq!(spec.footprint_lines(), (64 << 20) / 128);
    }

    #[test]
    fn scaled_rounds_and_clamps() {
        let spec = WorkloadSpec::template("t");
        assert_eq!(spec.scaled(0.5).insts_per_warp, 256);
        assert_eq!(spec.scaled(0.0).insts_per_warp, 1);
        assert_eq!(spec.scaled(2.0).insts_per_warp, 1024);
    }

    #[test]
    fn validation_catches_bad_fractions() {
        let mut spec = WorkloadSpec::template("t");
        spec.mem_ratio = 0.0;
        assert!(spec.validate().is_err());
        spec.mem_ratio = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = WorkloadSpec::template("t");
        spec.locality.neighbor_frac = 0.7;
        spec.locality.shared_frac = 0.7;
        assert!(spec.validate().is_err());

        let mut spec = WorkloadSpec::template("t");
        spec.locality.reuse_window_lines = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_catches_degenerate_shapes() {
        let mut spec = WorkloadSpec::template("t");
        spec.ctas = 0;
        assert!(spec.validate().is_err());

        let mut spec = WorkloadSpec::template("t");
        spec.footprint_bytes = 128; // 1 line but 256 CTAs
        assert!(spec.validate().is_err());
    }

    #[test]
    fn category_labels_match_paper() {
        assert_eq!(Category::MemoryIntensive.label(), "M-Intensive");
        assert_eq!(Category::ComputeIntensive.label(), "C-Intensive");
        assert_eq!(Category::LimitedParallelism.label(), "Lim. Parallel");
    }
}
