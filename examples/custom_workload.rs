//! Bring your own workload: describe an application's parallelism and
//! locality as a [`WorkloadSpec`] and ask which machine organization
//! serves it best.
//!
//! The example models a hypothetical iterative graph-analytics kernel:
//! moderate parallelism, a large shared graph structure, light writes,
//! and many kernel relaunches — then compares the buildable machines
//! (128-SM monolithic, MCM-GPU, multi-GPU) and the unbuildable 256-SM
//! reference.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::{Category, LocalityProfile, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        name: "my-graph-app",
        category: Category::MemoryIntensive,
        footprint_bytes: 900 << 20,
        ctas: 896,
        warps_per_cta: 4,
        insts_per_warp: 300,
        mem_ratio: 0.35,
        write_frac: 0.1,
        kernel_iters: 3,
        locality: LocalityProfile {
            streaming: 0.5,
            reuse_window_lines: 2048,
            neighbor_frac: 0.05,
            // Half the accesses chase pointers in a shared graph that
            // no placement policy can localize.
            shared_frac: 0.5,
            shared_region_frac: 0.35,
            ..LocalityProfile::balanced()
        },
        imbalance: 0.3,
        seed: 2026,
    };
    spec.validate().expect("workload must be well-formed");
    println!("evaluating: {spec}\n");

    let machines = [
        SystemConfig::largest_buildable_monolithic(),
        SystemConfig::baseline_mcm(),
        SystemConfig::optimized_mcm(),
        SystemConfig::multi_gpu_baseline(),
        SystemConfig::multi_gpu_optimized(),
        SystemConfig::hypothetical_monolithic_256(),
    ];

    let yardstick = Simulator::run(&machines[0], &spec);
    println!(
        "{:45} {:>12} {:>9} {:>8} {:>10}",
        "machine", "cycles", "speedup", "local %", "energy mJ"
    );
    let mut best: Option<(String, u64)> = None;
    for m in &machines {
        let r = Simulator::run(m, &spec);
        println!(
            "{:45} {:>12} {:>9.2} {:>8.1} {:>10.2}",
            r.config,
            r.cycles.as_u64(),
            r.speedup_over(&yardstick),
            r.locality_rate() * 100.0,
            r.energy.total_joules() * 1e3
        );
        let buildable = !r.config.contains("unbuildable");
        if buildable && best.as_ref().is_none_or(|(_, c)| r.cycles.as_u64() < *c) {
            best = Some((r.config.clone(), r.cycles.as_u64()));
        }
    }
    let (winner, _) = best.expect("at least one buildable machine");
    println!("\nbest buildable machine for this app: {winner}");
}
