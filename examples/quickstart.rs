//! Quickstart: simulate one workload on the baseline and the optimized
//! MCM-GPU and compare.
//!
//! ```text
//! cargo run --release --example quickstart [workload-name] [scale]
//! ```
//!
//! `workload-name` is any Table 4 / suite name (default `CoMD`);
//! `scale` shrinks per-warp instruction counts for quicker runs
//! (default 0.25).

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::suite;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "CoMD".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.25);

    let Some(workload) = suite::by_name(&name) else {
        eprintln!("unknown workload {name:?}; available:");
        for w in suite::suite() {
            eprintln!("  {w}");
        }
        std::process::exit(1);
    };
    let spec = workload.scaled(scale);
    println!("workload: {spec}");
    println!();

    let configs = [
        SystemConfig::baseline_mcm(),
        SystemConfig::optimized_mcm(),
        SystemConfig::largest_buildable_monolithic(),
        SystemConfig::hypothetical_monolithic_256(),
    ];

    let baseline = Simulator::run(&configs[0], &spec);
    println!(
        "{:45} {:>12} {:>8} {:>9} {:>9} {:>8}",
        "configuration", "cycles", "speedup", "ring TB/s", "DRAM TB/s", "local %"
    );
    for cfg in &configs {
        let r = Simulator::run(cfg, &spec);
        println!(
            "{:45} {:>12} {:>8.2} {:>9.2} {:>9.2} {:>8.1}",
            r.config,
            r.cycles.as_u64(),
            r.speedup_over(&baseline),
            r.inter_module_tbps(),
            r.dram_tbps(),
            r.locality_rate() * 100.0
        );
    }
    println!();
    let opt = Simulator::run(&configs[1], &spec);
    println!(
        "optimized MCM-GPU moves {:.1}x less inter-GPM data than baseline \
         ({} MB vs {} MB)",
        baseline.inter_module_bytes as f64 / opt.inter_module_bytes.max(1) as f64,
        opt.inter_module_bytes >> 20,
        baseline.inter_module_bytes >> 20,
    );
    println!(
        "data-movement energy: baseline {:.1} mJ, optimized {:.1} mJ",
        baseline.energy.total_joules() * 1e3,
        opt.energy.total_joules() * 1e3
    );
}
