//! The persistent result store's corruption matrix: every failure
//! shape the `mcm-store-v1` recovery scan distinguishes, driven end to
//! end through the public API with seeded, replayable disk faults.
//!
//! The invariants under test:
//!
//! * committed records survive a reopen bit-exactly;
//! * a torn tail (power loss mid-append) quarantines exactly the torn
//!   record and keeps every earlier one;
//! * a flipped payload byte quarantines exactly that record — in a
//!   multi-record segment the neighbours survive;
//! * a flipped header byte quarantines the rest of the file (lengths
//!   are untrustworthy past a bad header);
//! * a future schema version is refused wholesale, never reinterpreted;
//! * a quarantined key is a *miss*, and rewriting it round-trips
//!   bit-exactly — corruption costs a re-simulation, nothing else.

use mcm::engine::stats::Ratio;
use mcm::engine::Cycle;
use mcm::fault::inject::DiskFaultInjector;
use mcm::gpu::{ModuleStats, RunReport};
use mcm::interconnect::energy::{EnergyLedger, Tier};
use mcm::store::{format, Store};
use mcm_testkit::tempdir::TempDir;
use std::path::PathBuf;

/// A report exercising every codec field, distinct per salt.
fn report(salt: u64) -> RunReport {
    let mut energy = EnergyLedger::new();
    energy.record(Tier::Chip, 11 + salt);
    energy.record(Tier::Package, 22 + salt);
    energy.record(Tier::Board, 33 + salt);
    energy.record(Tier::System, 44 + salt);
    energy.record_dram(55 + salt);
    RunReport {
        workload: format!("w{salt}"),
        config: format!("cfg-{salt}"),
        cycles: Cycle::new(10_000 + salt),
        instructions: 5_000 + salt,
        mem_ops: 900 + salt,
        reads: 600 + salt,
        writes: 300 + salt,
        local_accesses: 500 + salt,
        remote_accesses: 400 + salt,
        l1: Ratio::from_parts(salt, salt + 10),
        l15: Ratio::from_parts(1, 2),
        l2: Ratio::from_parts(3, 4),
        inter_module_bytes: 1 << 20,
        dram_bytes: 1 << 19,
        energy,
        modules: (0..4)
            .map(|m| ModuleStats {
                instructions: 1_000 + m * 7 + salt,
                dram_bytes: 2_000 + m,
                l2: Ratio::from_parts(m, m + 2),
                l15: Ratio::from_parts(0, 1),
            })
            .collect(),
    }
}

/// The store's segment files, in commit order.
fn segments(dir: &TempDir) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mcmstore"))
        .collect();
    segs.sort();
    segs
}

#[test]
fn committed_records_survive_reopen_bit_exact() {
    let dir = TempDir::new("store-survive");
    {
        let store = Store::open(dir.path()).unwrap();
        for salt in 0..5 {
            assert!(store.put(salt, "w", &report(salt)));
        }
    }
    let store = Store::open(dir.path()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.recovered, 5);
    assert_eq!(stats.quarantined, 0);
    assert_eq!(stats.quarantined_files, 0);
    for salt in 0..5 {
        assert_eq!(store.get(salt, "w"), Some(report(salt)));
    }
}

#[test]
fn torn_tail_quarantines_only_the_torn_record() {
    let dir = TempDir::new("store-torn");
    {
        let store = Store::open(dir.path()).unwrap();
        for salt in 0..3 {
            store.put(salt, "w", &report(salt));
        }
    }
    // Tear the last segment: seeded cut anywhere past the magic.
    let segs = segments(&dir);
    assert_eq!(segs.len(), 3, "one segment per put");
    DiskFaultInjector::new(0xDEAD)
        .truncate_tail(&segs[2], format::MAGIC.len())
        .unwrap();
    let store = Store::open(dir.path()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.recovered, 2, "the intact records survive");
    assert_eq!(stats.quarantined, 1, "exactly the torn record is lost");
    assert_eq!(store.get(0, "w"), Some(report(0)));
    assert_eq!(store.get(1, "w"), Some(report(1)));
    assert_eq!(store.get(2, "w"), None, "torn record must be a miss");
}

#[test]
fn flipped_payload_byte_quarantines_one_record_neighbours_survive() {
    let dir = TempDir::new("store-payload-flip");
    {
        let store = Store::open(dir.path()).unwrap();
        for salt in 0..3 {
            store.put(salt, "w", &report(salt));
        }
        // One multi-record segment, so the scan must skip *exactly* the
        // damaged record and keep walking.
        store.compact().unwrap();
    }
    let segs = segments(&dir);
    assert_eq!(segs.len(), 1);
    // Locate record 1 (records are compacted in key order; keys here
    // are 0, 1, 2) from the format's own encoder.
    let rec = |salt: u64| format::encode_record(salt, "w", &report(salt));
    let start = format::MAGIC.len() + rec(0).len();
    let name_len = "w".len();
    // Flip inside record 1's payload: past the header and name, before
    // the trailing 8-byte body checksum.
    let payload = (start + format::HEADER_LEN + name_len)..(start + rec(1).len() - 8);
    DiskFaultInjector::new(0xBEEF)
        .flip_bit(&segs[0], payload)
        .unwrap();
    let store = Store::open(dir.path()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.recovered, 2, "records 0 and 2 survive");
    assert_eq!(stats.quarantined, 1);
    assert_eq!(store.get(0, "w"), Some(report(0)));
    assert_eq!(store.get(1, "w"), None, "flipped record must be a miss");
    assert_eq!(store.get(2, "w"), Some(report(2)));
}

#[test]
fn flipped_header_byte_quarantines_the_rest_of_the_file() {
    let dir = TempDir::new("store-header-flip");
    {
        let store = Store::open(dir.path()).unwrap();
        for salt in 0..3 {
            store.put(salt, "w", &report(salt));
        }
        store.compact().unwrap();
    }
    let segs = segments(&dir);
    let rec = |salt: u64| format::encode_record(salt, "w", &report(salt));
    let start = format::MAGIC.len() + rec(0).len();
    // Flip inside record 1's header: its length fields can no longer be
    // trusted, so records 1 and 2 are both gone; record 0 survives.
    let header = start..(start + format::HEADER_LEN);
    DiskFaultInjector::new(0xF00D)
        .flip_bit(&segs[0], header)
        .unwrap();
    let store = Store::open(dir.path()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.recovered, 1, "only the record before the bad header");
    assert_eq!(stats.quarantined, 1, "one quarantine event for the rest");
    assert_eq!(store.get(0, "w"), Some(report(0)));
    assert_eq!(store.get(1, "w"), None);
    assert_eq!(store.get(2, "w"), None);
}

#[test]
fn future_schema_version_is_refused_not_reinterpreted() {
    let dir = TempDir::new("store-schema");
    {
        let store = Store::open(dir.path()).unwrap();
        store.put(0, "w", &report(0));
    }
    // A plausible v2 file: right family, bumped version, valid-looking
    // v1 bytes after the magic (the trap: a v1 scanner that ignored the
    // version would happily decode them).
    let mut v2 = b"mcm-store-v2\n".to_vec();
    v2.extend_from_slice(&format::encode_record(9, "w", &report(9)));
    std::fs::write(dir.join("seg-00000099.mcmstore"), &v2).unwrap();
    let store = Store::open(dir.path()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.recovered, 1);
    assert_eq!(stats.quarantined_files, 1, "whole foreign file refused");
    assert_eq!(store.get(0, "w"), Some(report(0)));
    assert_eq!(store.get(9, "w"), None, "v2 bytes must not be decoded");
}

#[test]
fn rewriting_a_quarantined_record_round_trips_bit_exact() {
    let dir = TempDir::new("store-rewrite");
    {
        let store = Store::open(dir.path()).unwrap();
        store.put(5, "CoMD", &report(5));
    }
    let segs = segments(&dir);
    let rec_len = format::encode_record(5, "CoMD", &report(5)).len();
    // Damage the payload.
    let payload = (format::MAGIC.len() + format::HEADER_LEN + "CoMD".len())
        ..(format::MAGIC.len() + rec_len - 8);
    DiskFaultInjector::new(1)
        .flip_bit(&segs[0], payload)
        .unwrap();
    {
        let store = Store::open(dir.path()).unwrap();
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.get(5, "CoMD"), None);
        // The harness's contract: a quarantined key costs one
        // re-simulation; the rewrite is durable again.
        assert!(store.put(5, "CoMD", &report(5)));
    }
    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.get(5, "CoMD"), Some(report(5)));
}

#[test]
fn injector_is_replayable_end_to_end() {
    // The same seed tears the same store the same way — a failing
    // corruption test replays from its seed alone.
    let run = |tag: &str| -> (u64, u64) {
        let dir = TempDir::new(tag);
        {
            let store = Store::open(dir.path()).unwrap();
            for salt in 0..4 {
                store.put(salt, "w", &report(salt));
            }
        }
        let segs = segments(&dir);
        let mut inj = DiskFaultInjector::new(77);
        inj.truncate_tail(&segs[3], format::MAGIC.len()).unwrap();
        inj.flip_bit(&segs[1], format::MAGIC.len()..100).unwrap();
        let store = Store::open(dir.path()).unwrap();
        let s = store.stats();
        (s.recovered, s.quarantined)
    };
    assert_eq!(run("store-replay-a"), run("store-replay-b"));
}
