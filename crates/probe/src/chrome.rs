//! Chrome trace-event JSON sink: per-request lifecycles and warp-phase
//! slices, viewable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The mapping onto the trace-event model:
//!
//! * Each memory request is a **nestable async** span (`ph` `b`/`n`/`e`)
//!   under `cat:"req"`, keyed by the run-unique request id. Stage
//!   entries appear as instants (`n`) inside the span.
//! * Each warp phase is a **complete slice** (`ph:"X"`) on track
//!   `pid = SM + 1`, `tid = warp slot`, so one SM's warps stack under
//!   one process group.
//! * Each kernel launch is a complete slice on `pid 0`.
//!
//! Timestamps are integer simulated cycles written into the `ts` field
//! (the viewer will label them "µs"; read 1 µs as 1 cycle). Events are
//! appended in simulator hook order, so traces from identical runs are
//! byte-identical.

use std::collections::HashMap;

use mcm_engine::Cycle;

use crate::json::{push_str_escaped, Obj};
use crate::{FaultEvent, Probe, ReqStage, RequestMeta, WarpPhase};

/// Records a Chrome trace of the run; call
/// [`finish`](ChromeTraceProbe::finish) afterwards for the JSON.
#[derive(Debug, Default)]
pub struct ChromeTraceProbe {
    /// Comma-joined trace-event objects.
    buf: String,
    events: u64,
    /// Request id → meta, for naming stage/end events.
    reqs: HashMap<u64, RequestMeta>,
    /// Per warp slot: (slice start, phase, sm) of the open phase.
    warps: Vec<Option<(u64, WarpPhase, u32)>>,
    /// Kernel in flight: (index, start).
    kernel: Option<(u32, u64)>,
    /// Highest SM index seen (for process-name metadata).
    max_sm: Option<u32>,
}

impl ChromeTraceProbe {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ChromeTraceProbe::default()
    }

    /// Number of trace events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.events += 1;
    }

    fn req_name(meta: &RequestMeta) -> String {
        format!(
            "{} {} m{}>m{}",
            if meta.is_read { "read" } else { "write" },
            if meta.remote { "remote" } else { "local" },
            meta.module,
            meta.home
        )
    }

    /// Emits one complete (`X`) slice.
    fn slice(&mut self, pid: u64, tid: u64, cat: &str, name: &str, start: u64, end: u64) {
        self.sep();
        Obj::open(&mut self.buf)
            .str("ph", "X")
            .str("cat", cat)
            .str("name", name)
            .num("pid", pid)
            .num("tid", tid)
            .num("ts", start)
            .num("dur", end - start)
            .close();
    }

    /// Emits one nestable-async event (`b`/`n`/`e`) for request `id`.
    fn async_ev(&mut self, ph: &str, id: u64, meta: &RequestMeta, name: &str, ts: u64) {
        self.sep();
        Obj::open(&mut self.buf)
            .str("ph", ph)
            .str("cat", "req")
            .str("name", name)
            .num("id", id)
            .num("pid", 0)
            .num("tid", u64::from(meta.sm))
            .num("ts", ts)
            .close();
    }

    fn process_name(&mut self, pid: u64, name: &str) {
        self.sep();
        self.buf.push_str(&format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"args\":{{\"name\":"
        ));
        push_str_escaped(&mut self.buf, name);
        self.buf.push_str("}}");
    }

    /// Renders the accumulated trace as a Chrome trace-event JSON
    /// document. Call after the run completes (open warp phases, if
    /// any, are dropped).
    pub fn finish(&mut self) -> String {
        let max_sm = self.max_sm;
        self.process_name(0, "memory requests + kernels");
        if let Some(max) = max_sm {
            for sm in 0..=max {
                self.process_name(u64::from(sm) + 1, &format!("sm{sm}"));
            }
        }
        format!("{{\"traceEvents\":[{}]}}", self.buf)
    }

    /// Writes [`finish`](ChromeTraceProbe::finish) output to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn save(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.finish())
    }

    fn warp_slot(&mut self, warp: u32) -> &mut Option<(u64, WarpPhase, u32)> {
        let idx = warp as usize;
        if self.warps.len() <= idx {
            self.warps.resize(idx + 1, None);
        }
        &mut self.warps[idx]
    }

    /// Closes the open phase of `warp` at `now` (clamped monotone) and
    /// returns the clamped time.
    fn close_phase(&mut self, warp: u32, now: u64) -> u64 {
        let open = self.warp_slot(warp).take();
        match open {
            Some((start, phase, sm)) if now > start => {
                self.slice(
                    u64::from(sm) + 1,
                    u64::from(warp),
                    "warp",
                    phase.label(),
                    start,
                    now,
                );
                now
            }
            Some((start, ..)) => start,
            None => now,
        }
    }
}

impl Probe for ChromeTraceProbe {
    fn kernel_begin(&mut self, kernel: u32, now: Cycle) {
        self.kernel = Some((kernel, now.as_u64()));
    }

    fn kernel_end(&mut self, kernel: u32, now: Cycle) {
        if let Some((k, start)) = self.kernel.take() {
            debug_assert_eq!(k, kernel);
            let end = now.as_u64().max(start);
            self.slice(0, 0, "kernel", &format!("kernel{k}"), start, end);
        }
    }

    fn warp_spawn(&mut self, warp: u32, sm: u32, now: Cycle) {
        *self.warp_slot(warp) = Some((now.as_u64(), WarpPhase::Issue, sm));
        self.max_sm = Some(self.max_sm.map_or(sm, |m| m.max(sm)));
    }

    fn warp_phase(&mut self, warp: u32, sm: u32, now: Cycle, phase: WarpPhase) {
        let t = self.close_phase(warp, now.as_u64());
        *self.warp_slot(warp) = Some((t, phase, sm));
    }

    fn warp_retire(&mut self, warp: u32, _sm: u32, now: Cycle) {
        self.close_phase(warp, now.as_u64());
        *self.warp_slot(warp) = None;
    }

    fn request_issued(&mut self, id: u64, now: Cycle, meta: RequestMeta) {
        let name = Self::req_name(&meta);
        self.async_ev("b", id, &meta, &name, now.as_u64());
        self.reqs.insert(id, meta);
    }

    fn request_stage(&mut self, id: u64, now: Cycle, stage: ReqStage) {
        if let Some(meta) = self.reqs.get(&id).copied() {
            self.async_ev("n", id, &meta, &stage.label(), now.as_u64());
        }
    }

    fn request_retired(&mut self, id: u64, now: Cycle) {
        if let Some(meta) = self.reqs.remove(&id) {
            let name = Self::req_name(&meta);
            self.async_ev("e", id, &meta, &name, now.as_u64());
        }
    }

    fn fault(&mut self, now: Cycle, event: FaultEvent) {
        let name = match event {
            FaultEvent::LinkRetry { link, attempt } => {
                format!("link-retry {link} #{attempt}")
            }
            FaultEvent::DramThrottle { module, stretch } => {
                format!("dram-throttle m{module} x{stretch}")
            }
            FaultEvent::MshrPoison { request } => format!("mshr-poison req{request}"),
            FaultEvent::ModuleDisabled { module, kernel } => {
                format!("module-disabled m{module} k{kernel}")
            }
        };
        self.sep();
        Obj::open(&mut self.buf)
            .str("ph", "i")
            .str("cat", "fault")
            .str("name", &name)
            .str("s", "g")
            .num("pid", 0)
            .num("tid", 0)
            .num("ts", now.as_u64())
            .close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RequestMeta {
        RequestMeta {
            sm: 3,
            module: 0,
            home: 2,
            remote: true,
            is_read: true,
        }
    }

    #[test]
    fn request_lifecycle_emits_begin_instants_end() {
        let mut tr = ChromeTraceProbe::new();
        tr.request_issued(7, Cycle::new(10), meta());
        tr.request_stage(7, Cycle::new(20), ReqStage::ToHome { at: 0 });
        tr.request_stage(7, Cycle::new(50), ReqStage::Mem);
        tr.request_retired(7, Cycle::new(90));
        assert_eq!(tr.events(), 4);
        let json = tr.finish();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains(r#""ph":"b""#));
        assert!(json.contains(r#""ph":"e""#));
        assert!(json.contains("read remote m0>m2"));
        assert!(json.contains("ring>@0"));
    }

    #[test]
    fn warp_phases_become_slices() {
        let mut tr = ChromeTraceProbe::new();
        tr.warp_spawn(5, 1, Cycle::new(0));
        tr.warp_phase(5, 1, Cycle::new(10), WarpPhase::Compute);
        tr.warp_phase(5, 1, Cycle::new(40), WarpPhase::RemoteMem);
        tr.warp_retire(5, 1, Cycle::new(100));
        // Slices: issue [0,10), compute [10,40), remote-mem [40,100).
        assert_eq!(tr.events(), 3);
        let json = tr.finish();
        assert!(json.contains(r#""name":"issue""#));
        assert!(json.contains(r#""name":"remote-mem""#));
        assert!(json.contains(r#""dur":60"#));
        // Track layout: pid = sm + 1, tid = warp slot.
        assert!(json.contains(r#""pid":2,"tid":5"#));
    }

    #[test]
    fn non_monotone_phase_times_are_clamped() {
        let mut tr = ChromeTraceProbe::new();
        tr.warp_spawn(0, 0, Cycle::new(100));
        // A transition observed "before" the open slice start must not
        // produce a negative duration.
        tr.warp_phase(0, 0, Cycle::new(40), WarpPhase::LocalMem);
        tr.warp_retire(0, 0, Cycle::new(120));
        let json = tr.finish();
        assert!(!json.contains(":-"), "negative duration leaked: {json}");
    }

    #[test]
    fn kernel_slice_and_metadata() {
        let mut tr = ChromeTraceProbe::new();
        tr.kernel_begin(0, Cycle::new(0));
        tr.warp_spawn(0, 2, Cycle::new(0));
        tr.warp_retire(0, 2, Cycle::new(10));
        tr.kernel_end(0, Cycle::new(500));
        let json = tr.finish();
        assert!(json.contains(r#""name":"kernel0""#));
        assert!(json.contains(r#""name":"sm2""#));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn faults_become_instant_events() {
        let mut tr = ChromeTraceProbe::new();
        tr.fault(
            Cycle::new(42),
            FaultEvent::LinkRetry {
                link: crate::LinkId::RingCw(1),
                attempt: 0,
            },
        );
        tr.fault(
            Cycle::new(99),
            FaultEvent::DramThrottle {
                module: 2,
                stretch: 2.0,
            },
        );
        assert_eq!(tr.events(), 2);
        let json = tr.finish();
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""cat":"fault""#));
        assert!(json.contains("link-retry cw1 #0"));
        assert!(json.contains("dram-throttle m2 x2"));
    }

    #[test]
    fn identical_inputs_identical_json() {
        let run = || {
            let mut tr = ChromeTraceProbe::new();
            tr.request_issued(1, Cycle::new(5), meta());
            tr.request_retired(1, Cycle::new(50));
            tr.finish()
        };
        assert_eq!(run(), run());
    }
}
