//! `mcm-serve` daemon: the sweep service over the bench harness
//! backend.
//!
//! Runs until a client sends the `shutdown` op (or the process is
//! killed — the persistent store makes that safe: restart over the same
//! `MCM_STORE` and finished pairs are hits). Knobs:
//!
//! * `MCM_SERVE_ADDR` — bind address, default `127.0.0.1:0`
//!   (ephemeral; the chosen port is printed on the first line).
//! * `MCM_SERVE_WORKERS` — simulation workers, default `MCM_JOBS`'
//!   resolution ([`mcm_exec::jobs`]).
//! * `MCM_SERVE_QUEUE` — admission bound on queued jobs, default 1024.
//! * `MCM_STORE`, `MCM_SCALE` — as in the harness
//!   ([`mcm_bench::harness::Memo::from_env`]).

use std::sync::Arc;

use mcm_bench::harness::env_parsed;
use mcm_bench::serve_backend::MemoBackend;
use mcm_serve::service::{ServeOptions, SweepService};

fn main() {
    let addr = std::env::var("MCM_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let opts = ServeOptions {
        workers: env_parsed("MCM_SERVE_WORKERS").unwrap_or_else(mcm_exec::jobs),
        queue_capacity: env_parsed("MCM_SERVE_QUEUE").unwrap_or(1024),
    };
    let backend = Arc::new(MemoBackend::from_env());
    let service = SweepService::start(&addr, backend, opts)
        .unwrap_or_else(|e| panic!("mcm-serve: cannot bind {addr}: {e}"));
    // First line is machine-readable: scripts parse the port from it.
    println!("mcm-serve: listening on {}", service.local_addr());
    let stats = service.wait();
    println!(
        "mcm-serve: shut down ({} requests, {} hits, {} runs, {} shared, {} rejected)",
        stats.requests, stats.hits, stats.misses, stats.inflight_dedups, stats.rejections
    );
}
