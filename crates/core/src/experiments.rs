//! Experiment helpers: the aggregations the paper's figures report.
//!
//! The harness binaries in `mcm-bench` are thin loops over
//! [`crate::Simulator`]; the aggregation logic they share — per-category
//! geomeans (Figs. 4, 6, 9, 13), sorted speedup s-curves (Fig. 15),
//! bandwidth accounting — lives here so it can be unit-tested.

use mcm_engine::stats::geomean;
use mcm_workloads::{Category, WorkloadSpec};

use crate::report::RunReport;
use crate::{Simulator, SystemConfig};

/// A workload's result under a configuration and its paired baseline,
/// from which every figure's speedups derive.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Workload category (for category aggregation).
    pub category: Category,
    /// Result on the configuration under study.
    pub report: RunReport,
    /// Result on the baseline configuration.
    pub baseline: RunReport,
}

impl Comparison {
    /// Speedup of the studied configuration over the baseline.
    pub fn speedup(&self) -> f64 {
        self.report.speedup_over(&self.baseline)
    }
}

/// Runs every workload in `suite` on both `cfg` and `baseline`.
///
/// This is the inner loop of most figures; workloads can be pre-scaled
/// (see [`WorkloadSpec::scaled`]) to trade fidelity for wall-clock time.
pub fn compare_suite(
    suite: &[WorkloadSpec],
    cfg: &SystemConfig,
    baseline: &SystemConfig,
) -> Vec<Comparison> {
    suite
        .iter()
        .map(|spec| Comparison {
            category: spec.category,
            report: Simulator::run(cfg, spec),
            baseline: Simulator::run(baseline, spec),
        })
        .collect()
}

/// Geometric-mean speedup of the comparisons in `category`, or `None`
/// if the category is empty — the per-category bars of Figs. 6/9/13.
pub fn category_geomean(comparisons: &[Comparison], category: Category) -> Option<f64> {
    let speedups: Vec<f64> = comparisons
        .iter()
        .filter(|c| c.category == category)
        .map(Comparison::speedup)
        .collect();
    if speedups.is_empty() {
        None
    } else {
        Some(geomean(&speedups))
    }
}

/// Geometric-mean speedup across all comparisons.
///
/// # Panics
///
/// Panics if `comparisons` is empty.
pub fn overall_geomean(comparisons: &[Comparison]) -> f64 {
    assert!(!comparisons.is_empty(), "no comparisons to aggregate");
    let speedups: Vec<f64> = comparisons.iter().map(Comparison::speedup).collect();
    geomean(&speedups)
}

/// Speedups sorted ascending — the s-curve of Fig. 15.
pub fn s_curve(comparisons: &[Comparison]) -> Vec<(String, f64)> {
    let mut curve: Vec<(String, f64)> = comparisons
        .iter()
        .map(|c| (c.report.workload.clone(), c.speedup()))
        .collect();
    curve.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("speedups are finite"));
    curve
}

/// Mean inter-module bandwidth in TB/s across comparisons' studied
/// configuration — the bars of Figs. 7/10/14.
pub fn mean_inter_module_tbps(reports: &[&RunReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.inter_module_tbps()).sum::<f64>() / reports.len() as f64
}

/// The factor by which configuration `a` reduces inter-module traffic
/// relative to `b` (the paper's headline "5× inter-GPM bandwidth
/// reduction" metric), computed over total bytes.
pub fn traffic_reduction_factor(baseline: &[&RunReport], optimized: &[&RunReport]) -> f64 {
    let base: u64 = baseline.iter().map(|r| r.inter_module_bytes).sum();
    let opt: u64 = optimized.iter().map(|r| r.inter_module_bytes).sum();
    if opt == 0 {
        f64::INFINITY
    } else {
        base as f64 / opt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_engine::stats::Ratio;
    use mcm_engine::Cycle;
    use mcm_interconnect::energy::EnergyLedger;

    fn fake_report(workload: &str, cycles: u64, ring_bytes: u64) -> RunReport {
        RunReport {
            workload: workload.into(),
            config: "cfg".into(),
            cycles: Cycle::new(cycles),
            instructions: 100,
            mem_ops: 10,
            reads: 8,
            writes: 2,
            local_accesses: 5,
            remote_accesses: 5,
            l1: Ratio::new(),
            l15: Ratio::new(),
            l2: Ratio::new(),
            inter_module_bytes: ring_bytes,
            dram_bytes: 0,
            energy: EnergyLedger::new(),
            modules: Vec::new(),
        }
    }

    fn fake_cmp(name: &str, category: Category, fast: u64, slow: u64) -> Comparison {
        Comparison {
            category,
            report: fake_report(name, fast, 100),
            baseline: fake_report(name, slow, 500),
        }
    }

    #[test]
    fn category_geomean_filters() {
        let cmps = vec![
            fake_cmp("a", Category::MemoryIntensive, 100, 200), // 2.0
            fake_cmp("b", Category::MemoryIntensive, 100, 800), // 8.0
            fake_cmp("c", Category::ComputeIntensive, 100, 100), // 1.0
        ];
        let m = category_geomean(&cmps, Category::MemoryIntensive).unwrap();
        assert!((m - 4.0).abs() < 1e-12);
        let c = category_geomean(&cmps, Category::ComputeIntensive).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
        assert!(category_geomean(&cmps, Category::LimitedParallelism).is_none());
    }

    #[test]
    fn s_curve_is_sorted() {
        let cmps = vec![
            fake_cmp("fast", Category::MemoryIntensive, 100, 300),
            fake_cmp("slow", Category::MemoryIntensive, 100, 50),
            fake_cmp("mid", Category::MemoryIntensive, 100, 150),
        ];
        let curve = s_curve(&cmps);
        assert_eq!(curve[0].0, "slow");
        assert_eq!(curve[2].0, "fast");
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn traffic_reduction() {
        let base = [fake_report("a", 1, 1000), fake_report("b", 1, 1000)];
        let opt = [fake_report("a", 1, 300), fake_report("b", 1, 100)];
        let base_refs: Vec<&RunReport> = base.iter().collect();
        let opt_refs: Vec<&RunReport> = opt.iter().collect();
        assert!((traffic_reduction_factor(&base_refs, &opt_refs) - 5.0).abs() < 1e-12);
        let zero: Vec<&RunReport> = Vec::new();
        let _ = zero; // silences unused in non-infinity case
    }

    #[test]
    fn traffic_reduction_handles_zero_optimized() {
        let base = [fake_report("a", 1, 1000)];
        let opt = [fake_report("a", 1, 0)];
        let b: Vec<&RunReport> = base.iter().collect();
        let o: Vec<&RunReport> = opt.iter().collect();
        assert!(traffic_reduction_factor(&b, &o).is_infinite());
    }

    #[test]
    fn mean_bandwidth() {
        let a = fake_report("a", 1000, 2_000_000); // 2 TB/s
        let b = fake_report("b", 1000, 4_000_000); // 4 TB/s
        let refs: Vec<&RunReport> = vec![&a, &b];
        assert!((mean_inter_module_tbps(&refs) - 3.0).abs() < 1e-12);
        assert_eq!(mean_inter_module_tbps(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "no comparisons")]
    fn overall_geomean_empty_panics() {
        overall_geomean(&[]);
    }
}
