//! `mcm-telemetry`: fleet telemetry for the simulation infrastructure.
//!
//! The timing model already has first-class observability (`mcm-probe`:
//! traces, stall attribution). This crate instruments the layers that
//! *run* the simulations — the `mcm-exec` work-stealing pool, the bench
//! harness's memo cache, the sharded PDES engine, and the fault
//! injector — with always-on, out-of-band metrics:
//!
//! * [`Counter`] — a monotonic atomic counter.
//! * [`Gauge`] — a last-value / high-watermark atomic cell.
//! * [`Histogram`] — fixed-bucket counts over caller-chosen bounds.
//!
//! Metrics live in a [`Registry`] under hierarchical `scope.metric`
//! names (`exec.steals`, `memo.hits`, `shard.epochs`, …) and carry a
//! determinism [`Class`] that snapshots group by. The analytical fast
//! path reports under `analytic.*`: the model itself counts scored
//! predictions and calibration fits (`analytic.scored`,
//! `analytic.calibrations`), and the sweep planner counts grid points
//! pruned without simulation, survivors confirmed by the simulator,
//! and error-envelope violations (`analytic.pruned`,
//! `analytic.confirmed`, `analytic.envelope_violations`) — all
//! [`Class::Deterministic`]. The classes:
//!
//! * [`Class::Deterministic`] — identical across runs *and* across
//!   `MCM_JOBS` / `MCM_SHARDS` settings (grid items executed, cache
//!   hits, fault events). Two runs of the same work must produce
//!   byte-identical values; `tests/telemetry_determinism.rs` pins it.
//! * [`Class::PerConfig`] — deterministic for a fixed knob setting but
//!   a function of it (epoch counts at a given shard count, worker
//!   deque depth at a given job count).
//! * [`Class::Volatile`] — scheduling- or wall-clock-dependent (steal
//!   counts, busy/idle nanoseconds). Quarantined in its own clearly
//!   marked snapshot section so the reproducible sections can be
//!   diffed byte-for-byte.
//!
//! **Out-of-band contract.** Nothing in the simulator ever *reads* a
//! metric, so telemetry cannot perturb simulated time: every golden
//! cycle count, report, and artifact byte stream is identical with
//! telemetry running or ignored. Increments are relaxed atomics (or
//! thread-local accumulation flushed once), cheap enough to stay on in
//! every configuration — there is no off switch, only the choice of
//! whether to snapshot.
//!
//! Hermetic per the workspace rule: `std` only.
//!
//! # Example
//!
//! ```
//! use mcm_telemetry::{Class, Registry};
//!
//! let reg = Registry::new();
//! let hits = reg.counter("memo.hits", Class::Deterministic);
//! hits.add(3);
//! assert_eq!(hits.get(), 3);
//! let snap = reg.snapshot();
//! assert!(snap.to_json("example").contains("\"memo.hits\":3"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod snapshot;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use snapshot::{Snapshot, Value};

/// How a metric behaves across runs — the property the snapshot
/// sections and the determinism suite key on. See the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Identical across runs and across `MCM_JOBS`/`MCM_SHARDS`.
    Deterministic,
    /// Deterministic given the knob settings, a function of them.
    PerConfig,
    /// Scheduling- or wall-clock-dependent; quarantined in snapshots.
    Volatile,
}

/// A monotonic counter. Clones share the same cell, so a handle can be
/// resolved once (off the hot path) and incremented from anywhere.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: last-set value or high watermark, caller's choice of which
/// methods to use.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is higher (high-watermark mode).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: `bounds` are inclusive upper edges in
/// ascending order, plus one implicit overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    counts: Arc<Vec<AtomicU64>>,
}

impl Histogram {
    /// Records one observation of `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket upper edges this histogram was registered with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is
    /// overflow).
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }
}

/// The cells behind one registered metric.
#[derive(Debug, Clone)]
enum Cells {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Cells {
    fn kind(&self) -> &'static str {
        match self {
            Cells::Counter(_) => "counter",
            Cells::Gauge(_) => "gauge",
            Cells::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    class: Class,
    cells: Cells,
}

/// A namespace of metrics. Most code uses the process-wide [`global`]
/// registry; tests instantiate their own to stay isolated.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Entry>>,
}

/// Panics unless `name` is a valid `scope.metric` path: lowercase
/// alphanumerics and underscores, segments joined by single dots.
fn check_name(name: &str) {
    let valid = !name.is_empty()
        && !name.starts_with('.')
        && !name.ends_with('.')
        && !name.contains("..")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        && name.contains('.');
    assert!(
        valid,
        "metric name {name:?} must be a dotted lowercase path like \"scope.metric\""
    );
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry<F: FnOnce() -> Cells>(&self, name: &str, class: Class, make: F) -> Cells {
        check_name(name);
        let mut metrics = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = metrics.entry(name.to_string()).or_insert_with(|| Entry {
            class,
            cells: make(),
        });
        assert!(
            entry.class == class,
            "metric {name:?} registered as {:?}, requested {class:?}",
            entry.class
        );
        entry.cells.clone()
    }

    /// Registers (or looks up) a counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name, or if `name` already exists with a
    /// different kind or class — a metric's meaning must not drift
    /// between call sites.
    pub fn counter(&self, name: &str, class: Class) -> Counter {
        match self.entry(name, class, || {
            Cells::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Cells::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or looks up) a gauge.
    ///
    /// # Panics
    ///
    /// As for [`Registry::counter`].
    pub fn gauge(&self, name: &str, class: Class) -> Gauge {
        match self.entry(name, class, || {
            Cells::Gauge(Gauge {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Cells::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or looks up) a histogram over `bounds` (ascending
    /// inclusive upper edges; an overflow bucket is added).
    ///
    /// # Panics
    ///
    /// As for [`Registry::counter`], plus: empty or non-ascending
    /// bounds, or a bounds mismatch with an existing registration.
    pub fn histogram(&self, name: &str, class: Class, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name:?} needs bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly ascending"
        );
        match self.entry(name, class, || {
            Cells::Histogram(Histogram {
                bounds: Arc::new(bounds.to_vec()),
                counts: Arc::new((0..=bounds.len()).map(|_| AtomicU64::new(0)).collect()),
            })
        }) {
            Cells::Histogram(h) => {
                assert!(
                    h.bounds() == bounds,
                    "histogram {name:?} re-registered with different bounds"
                );
                h
            }
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Zeroes every cell (handles stay valid). For tests and the perf
    /// harness's per-repetition deltas.
    pub fn reset(&self) {
        let metrics = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for entry in metrics.values() {
            match &entry.cells {
                Cells::Counter(c) => c.cell.store(0, Ordering::Relaxed),
                Cells::Gauge(g) => g.cell.store(0, Ordering::Relaxed),
                Cells::Histogram(h) => {
                    for c in h.counts.iter() {
                        c.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// A point-in-time copy of every metric, grouped by [`Class`].
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snap = Snapshot::default();
        for (name, entry) in metrics.iter() {
            let value = match &entry.cells {
                Cells::Counter(c) => Value::Counter(c.get()),
                Cells::Gauge(g) => Value::Gauge(g.get()),
                Cells::Histogram(h) => Value::Histogram {
                    bounds: h.bounds().to_vec(),
                    counts: h.counts(),
                },
            };
            snap.section_mut(entry.class).insert(name.clone(), value);
        }
        snap
    }
}

/// The process-wide registry every instrumented layer reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let reg = Registry::new();
        let a = reg.counter("t.hits", Class::Deterministic);
        let b = reg.counter("t.hits", Class::Deterministic);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_set_and_high_watermark() {
        let reg = Registry::new();
        let g = reg.gauge("t.depth", Class::PerConfig);
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("t.sizes", Class::Volatile, &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), vec![2, 2, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn class_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("t.c", Class::Deterministic);
        let _ = reg.counter("t.c", Class::Volatile);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.gauge("t.g", Class::Volatile);
        let _ = reg.counter("t.g", Class::Volatile);
    }

    #[test]
    #[should_panic(expected = "dotted lowercase path")]
    fn undotted_names_are_rejected() {
        let _ = Registry::new().counter("hits", Class::Deterministic);
    }

    #[test]
    #[should_panic(expected = "dotted lowercase path")]
    fn uppercase_names_are_rejected() {
        let _ = Registry::new().counter("Memo.Hits", Class::Deterministic);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let reg = Registry::new();
        let c = reg.counter("t.n", Class::Deterministic);
        let h = reg.histogram("t.h", Class::PerConfig, &[1]);
        c.add(9);
        h.observe(0);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.total(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("selftest.global", Class::Volatile);
        global().counter("selftest.global", Class::Volatile).inc();
        assert!(a.get() >= 1);
    }
}
