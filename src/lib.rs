//! Umbrella crate for the MCM-GPU (ISCA 2017) reproduction.
//!
//! Re-exports the whole simulator stack under one roof and hosts the
//! runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). Library users should usually depend on the
//! individual crates instead:
//!
//! * [`engine`] ([`mcm_engine`]) — discrete-event kernel.
//! * [`exec`] ([`mcm_exec`]) — deterministic parallel sweep executor:
//!   seeded bounded thread pool over a chunked work-stealing queue.
//! * [`mem`] ([`mcm_mem`]) — caches, MSHRs, DRAM, page placement.
//! * [`interconnect`] ([`mcm_interconnect`]) — links, ring, crossbar,
//!   energy tiers.
//! * [`probe`] ([`mcm_probe`]) — zero-overhead instrumentation: the
//!   `Probe` trait, Chrome-trace, metrics, and stall-profile sinks.
//! * [`fault`] ([`mcm_fault`]) — deterministic runtime fault
//!   injection: the `FaultPlan` trait and the seeded schedule.
//! * [`telemetry`] ([`mcm_telemetry`]) — hermetic metrics registry:
//!   counters, gauges, histograms, and reproducibility-classed
//!   JSON/CSV snapshots.
//! * [`sm`] ([`mcm_sm`]) — SM model and CTA schedulers.
//! * [`serve`] ([`mcm_serve`]) — long-running sweep service over the
//!   result store: localhost line/JSON protocol, cross-client
//!   in-flight dedupe, fair bounded scheduling, warm restarts.
//! * [`store`] ([`mcm_store`]) — crash-safe on-disk content-addressed
//!   result store (`MCM_STORE`): checksummed segments, atomic
//!   commits, torn-tail recovery, lock-file exclusion.
//! * [`workloads`] ([`mcm_workloads`]) — the 48-benchmark synthetic
//!   suite.
//! * [`gpu`] ([`mcm_gpu`]) — the assembled MCM-GPU system, presets, and
//!   experiment helpers.
//!
//! # Example
//!
//! ```
//! use mcm::gpu::{Simulator, SystemConfig};
//! use mcm::workloads::suite;
//!
//! let spec = suite::by_name("CoMD").unwrap().scaled(0.02);
//! let report = Simulator::run(&SystemConfig::optimized_mcm(), &spec);
//! assert!(report.ipc() > 0.0);
//! ```

#![warn(missing_docs)]

pub use mcm_engine as engine;
pub use mcm_exec as exec;
pub use mcm_fault as fault;
pub use mcm_gpu as gpu;
pub use mcm_interconnect as interconnect;
pub use mcm_mem as mem;
pub use mcm_probe as probe;
pub use mcm_serve as serve;
pub use mcm_sm as sm;
pub use mcm_store as store;
pub use mcm_telemetry as telemetry;
pub use mcm_workloads as workloads;
