//! Reference data reproduced from the paper's tables.

/// One row of paper Table 1: key characteristics of recent NVIDIA GPU
/// generations, the scaling-trend motivation of §2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuGeneration {
    /// Architecture name.
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub sms: u32,
    /// Memory bandwidth in GB/s.
    pub bandwidth_gbps: u32,
    /// L2 capacity in KB.
    pub l2_kb: u32,
    /// Transistor count in billions.
    pub transistors_b: f64,
    /// Process node in nanometres.
    pub tech_node_nm: u32,
    /// Die size in mm².
    pub chip_size_mm2: u32,
}

/// Paper Table 1, verbatim.
pub const GPU_GENERATIONS: [GpuGeneration; 4] = [
    GpuGeneration {
        name: "Fermi",
        sms: 16,
        bandwidth_gbps: 177,
        l2_kb: 768,
        transistors_b: 3.0,
        tech_node_nm: 40,
        chip_size_mm2: 529,
    },
    GpuGeneration {
        name: "Kepler",
        sms: 15,
        bandwidth_gbps: 288,
        l2_kb: 1536,
        transistors_b: 7.1,
        tech_node_nm: 28,
        chip_size_mm2: 551,
    },
    GpuGeneration {
        name: "Maxwell",
        sms: 24,
        bandwidth_gbps: 288,
        l2_kb: 3072,
        transistors_b: 8.0,
        tech_node_nm: 28,
        chip_size_mm2: 601,
    },
    GpuGeneration {
        name: "Pascal",
        sms: 56,
        bandwidth_gbps: 720,
        l2_kb: 4096,
        transistors_b: 15.3,
        tech_node_nm: 16,
        chip_size_mm2: 610,
    },
];

/// The paper's assumed manufacturability limit: GPUs with more than 128
/// SMs "are not manufacturable on a monolithic die" (§2.1).
pub const MAX_BUILDABLE_SMS: u32 = 128;

/// The reticle-limited maximum die size in mm² (§1, §2.1).
pub const MAX_DIE_SIZE_MM2: u32 = 800;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(GPU_GENERATIONS.len(), 4);
        let pascal = GPU_GENERATIONS[3];
        assert_eq!(pascal.name, "Pascal");
        assert_eq!(pascal.sms, 56);
        assert_eq!(pascal.bandwidth_gbps, 720);
        assert_eq!(pascal.l2_kb, 4096);
        assert_eq!(pascal.transistors_b, 15.3);
        assert_eq!(pascal.tech_node_nm, 16);
        assert_eq!(pascal.chip_size_mm2, 610);
    }

    #[test]
    fn transistor_counts_grow_monotonically() {
        for w in GPU_GENERATIONS.windows(2) {
            assert!(w[1].transistors_b > w[0].transistors_b);
        }
    }

    #[test]
    fn limits_match_paper() {
        assert_eq!(MAX_BUILDABLE_SMS, 128);
        assert_eq!(MAX_DIE_SIZE_MM2, 800);
    }
}
