//! Golden determinism: exact cycle counts for one workload per
//! category on the two headline configurations. These pin down the
//! simulator's end-to-end determinism — any change to event ordering,
//! RNG streams, cache replacement, or scheduling that alters observed
//! behaviour shows up here as an exact-count diff.
//!
//! If a change *intentionally* alters simulated behaviour, update the
//! golden numbers in the table below and call out the change in the
//! commit message.

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::suite;

/// (workload, baseline_mcm cycles, optimized_mcm cycles).
/// One row per workload category: Stream is memory-intensive, Hotspot
/// compute-intensive, DWT limited-parallelism. All run at 2 % scale.
const GOLDEN: &[(&str, u64, u64)] = &[
    ("Stream", 5049, 1794),
    ("Hotspot", 1303, 1225),
    ("DWT", 2799, 1898),
];

#[test]
fn golden_cycle_counts() {
    let baseline = SystemConfig::baseline_mcm();
    let optimized = SystemConfig::optimized_mcm();
    let mut failures = Vec::new();
    for &(name, want_base, want_opt) in GOLDEN {
        let spec = suite::by_name(name).expect("suite workload").scaled(0.02);
        let got_base = Simulator::run(&baseline, &spec).cycles.as_u64();
        let got_opt = Simulator::run(&optimized, &spec).cycles.as_u64();
        eprintln!("(\"{name}\", {got_base}, {got_opt}),");
        if got_base != want_base {
            failures.push(format!(
                "{name} on baseline_mcm: got {got_base} cycles, golden {want_base}"
            ));
        }
        if got_opt != want_opt {
            failures.push(format!(
                "{name} on optimized_mcm: got {got_opt} cycles, golden {want_opt}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}",
        failures.join("\n")
    );
}

/// The same (config, workload) pair run twice yields bit-identical
/// reports, not just matching cycle counts.
#[test]
fn repeated_runs_are_identical() {
    let cfg = SystemConfig::baseline_mcm();
    let spec = suite::by_name("Stream")
        .expect("suite workload")
        .scaled(0.02);
    let a = Simulator::run(&cfg, &spec);
    let b = Simulator::run(&cfg, &spec);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.dram_bytes, b.dram_bytes);
    assert_eq!(a.inter_module_bytes, b.inter_module_bytes);
}
