//! Figure-harness benchmarks: time the building blocks the exhibit
//! binaries are made of — memoized comparison sweeps over a
//! representative workload subset and the static table renderers — so
//! `cargo bench` exercises the same code paths `reproduce` uses without
//! its full-suite runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcm_bench::figures;
use mcm_bench::harness::{geomean_speedup, Memo};
use mcm_gpu::SystemConfig;
use mcm_workloads::{suite, WorkloadSpec};

/// One representative workload per behaviour class.
fn mini_suite() -> Vec<WorkloadSpec> {
    ["Stream", "Kmeans", "SSSP", "DWT"]
        .iter()
        .map(|n| {
            let mut w = suite::by_name(n).expect("suite workload");
            w.ctas = w.ctas.min(128);
            w
        })
        .collect()
}

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    group.sample_size(10);
    group.bench_function("comparison_sweep_mini", |b| {
        let mini = mini_suite();
        b.iter(|| {
            let mut memo = Memo::new(0.02);
            let baseline = SystemConfig::baseline_mcm();
            let optimized = SystemConfig::optimized_mcm();
            black_box(geomean_speedup(
                &mut memo, &mini, &optimized, &baseline, None,
            ))
        });
    });
    group.bench_function("memoized_rerun", |b| {
        // With a warm memo the sweep is pure cache lookups.
        let mini = mini_suite();
        let mut memo = Memo::new(0.02);
        let baseline = SystemConfig::baseline_mcm();
        let optimized = SystemConfig::optimized_mcm();
        geomean_speedup(&mut memo, &mini, &optimized, &baseline, None);
        b.iter(|| {
            black_box(geomean_speedup(
                &mut memo, &mini, &optimized, &baseline, None,
            ))
        });
    });
    group.bench_function("static_tables", |b| {
        b.iter(|| {
            black_box((
                figures::table1(),
                figures::table2(),
                figures::table3(),
                figures::table4(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
