//! Smoke tests: every figure-harness binary runs to completion at a
//! tiny `MCM_SCALE`. These catch panics, broken CLI plumbing, and
//! accidental scale-insensitivity (a bin that ignores `MCM_SCALE`
//! makes this suite hang) without asserting anything about the
//! numbers themselves.
//!
//! Each binary runs in its own scratch directory so bins that write
//! `results/` (e.g. `reproduce`) never clobber the repo's checked-in
//! outputs.

use std::path::PathBuf;
use std::process::Command;

use mcm_telemetry::json::Json;

/// Tiny scale: big enough that every workload still has work to do,
/// small enough that the full sweep of a bin finishes in seconds.
const SMOKE_SCALE: &str = "0.01";

fn scratch_dir(bin: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcm-bin-smoke-{}-{bin}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_bin(bin: &str, exe: &str) {
    let dir = scratch_dir(bin);
    let out = Command::new(exe)
        .current_dir(&dir)
        .env("MCM_SCALE", SMOKE_SCALE)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    // `scorecard` exits 1 when a paper claim misses its acceptance
    // band — expected at smoke scale, where some effects don't have
    // enough work to amortize. Completing with a verdict is a pass
    // here; only crashes (panic = 101, signals = no code) fail.
    let ok = match out.status.code() {
        Some(0) => true,
        Some(1) => bin == "scorecard",
        _ => false,
    };
    assert!(
        ok,
        "{bin} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

macro_rules! bin_smoke {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                run_bin(stringify!($name), env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
            }
        )*
    };
}

bin_smoke!(
    ablation_alloc_policy,
    ablation_gpm_count,
    ablation_page_size,
    ablation_scheduler,
    ablation_topology,
    efficiency,
    explore,
    fig02_scaling,
    fig04_link_sensitivity,
    fig06_l15_cache,
    fig07_l15_bandwidth,
    fig09_distributed_sched,
    fig10_ds_bandwidth,
    fig13_first_touch,
    fig14_ft_bandwidth,
    fig15_scurve,
    fig16_breakdown,
    fig17_multi_gpu,
    profile,
    reproduce,
    resilience,
    scorecard,
    tables,
);

/// Structural well-formedness: balanced braces/brackets outside string
/// literals, with escape handling. Not a full parser, but enough to
/// catch truncated or mis-quoted output.
fn assert_well_formed_json(text: &str, what: &str) {
    let trimmed = text.trim();
    assert!(
        trimmed.starts_with('{') && trimmed.ends_with('}'),
        "{what}: not a JSON object"
    );
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in trimmed.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "{what}: unbalanced closers");
                }
                _ => {}
            }
        }
    }
    assert!(!in_str, "{what}: unterminated string");
    assert_eq!(depth, 0, "{what}: unbalanced braces/brackets");
}

fn assert_well_formed_csv(text: &str, what: &str) {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_else(|| panic!("{what}: empty CSV"));
    assert_eq!(
        header, "bucket_start,metric,unit,value",
        "{what}: unexpected CSV header"
    );
    let cols = header.split(',').count();
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        assert_eq!(
            line.split(',').count(),
            cols,
            "{what}: ragged row {}: {line:?}",
            i + 2
        );
        let first = line.split(',').next().unwrap();
        assert!(
            first.parse::<u64>().is_ok(),
            "{what}: non-numeric bucket_start in row {}: {line:?}",
            i + 2
        );
        rows += 1;
    }
    assert!(rows > 0, "{what}: CSV has a header but no data rows");
}

/// The acceptance bar for the fault layer's determinism: two `resilience`
/// runs with the same `MCM_FAULT_SEED` (and scale) must write
/// byte-identical degradation-curve CSVs.
#[test]
fn resilience_csv_is_byte_identical_across_seeded_runs() {
    let exe = env!("CARGO_BIN_EXE_resilience");
    let mut csvs = Vec::new();
    for run in 0..2 {
        let dir = scratch_dir(&format!("resilience-determinism-{run}"));
        let out = Command::new(exe)
            .current_dir(&dir)
            .env("MCM_SCALE", SMOKE_SCALE)
            .env("MCM_FAULT_SEED", "42")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn resilience: {e}"));
        assert!(
            out.status.success(),
            "resilience run {run} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let csv = std::fs::read_to_string(dir.join("results/resilience.csv"))
            .expect("read results/resilience.csv");
        assert!(
            csv.lines().count() > 1,
            "resilience.csv has a header but no data rows"
        );
        csvs.push(csv);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        csvs[0], csvs[1],
        "same MCM_FAULT_SEED must reproduce the degradation CSV byte-for-byte"
    );
}

/// Multiplies the first `wall_ns_median` in a BENCH snapshot by 10 —
/// a synthetic 10x regression fixture for the comparator.
fn inflate_first_median(text: &str) -> String {
    let key = "\"wall_ns_median\":";
    let start = text.find(key).expect("snapshot has a median field") + key.len();
    let len = text[start..]
        .find(|c: char| !c.is_ascii_digit())
        .expect("number is delimited");
    let old: u64 = text[start..start + len]
        .parse()
        .expect("median is an integer");
    format!("{}{}{}", &text[..start], old * 10, &text[start + len..])
}

/// The `perf` bin's `BENCH_*.json` snapshot is machine-readable: it
/// parses with the in-repo JSON reader, carries the schema tag, and
/// every duration is a positive integer (never NaN, never negative —
/// `Json::as_u64` rejects both).
#[test]
fn perf_snapshot_is_well_formed_and_comparator_catches_regressions() {
    let exe = env!("CARGO_BIN_EXE_perf");
    let dir = scratch_dir("perf");
    let out_path = dir.join("BENCH_smoke.json");
    let out = Command::new(exe)
        .args(["--smoke", "--label", "smoke", "--out"])
        .arg(&out_path)
        .current_dir(&dir)
        .output()
        .expect("spawn perf");
    assert!(
        out.status.success(),
        "perf --smoke failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&out_path).expect("read BENCH snapshot");
    let doc = Json::parse(&text).expect("BENCH snapshot must parse with the in-repo reader");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mcm-bench-v1")
    );
    assert_eq!(doc.get("label").and_then(Json::as_str), Some("smoke"));
    let entries = doc
        .get("entries")
        .and_then(Json::as_obj)
        .expect("entries object");
    assert!(!entries.is_empty(), "snapshot has no benchmark entries");
    for (name, entry) in entries {
        for field in ["wall_ns_median", "wall_ns_min", "reps"] {
            let v = entry
                .get(field)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{name}.{field} missing, negative, or not an integer"));
            assert!(v >= 1, "{name}.{field} must be >= 1, got {v}");
        }
    }
    // The embedded telemetry delta is itself a schema'd snapshot.
    assert_eq!(
        doc.get("telemetry")
            .and_then(|t| t.get("schema"))
            .and_then(Json::as_str),
        Some("mcm-telemetry-v1")
    );

    // Comparator: self-diff is clean, a synthetic 10x regression on one
    // entry exits nonzero.
    let self_diff = Command::new(exe)
        .arg("--compare")
        .args([&out_path, &out_path])
        .output()
        .expect("spawn perf --compare");
    assert!(
        self_diff.status.success(),
        "self-compare must be zero-diff:\n{}",
        String::from_utf8_lossy(&self_diff.stdout)
    );

    let doctored_path = dir.join("BENCH_doctored.json");
    std::fs::write(&doctored_path, inflate_first_median(&text)).expect("write fixture");
    let regressed = Command::new(exe)
        .arg("--compare")
        .args([&out_path, &doctored_path])
        .output()
        .expect("spawn perf --compare");
    assert_eq!(
        regressed.status.code(),
        Some(1),
        "a 10x median inflation must be flagged:\n{}",
        String::from_utf8_lossy(&regressed.stdout)
    );
    let report = String::from_utf8_lossy(&regressed.stdout);
    assert!(
        report.contains("REGRESSION"),
        "comparator output names the regression:\n{report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One artifact-writing run per entry point: a figure-harness binary
/// (whose runs flow through `Memo::run`) and the `profile` bin. With
/// `MCM_TRACE`/`MCM_METRICS` pointed at a scratch directory, both must
/// leave behind well-formed trace JSON and metrics CSV for every
/// simulated (config, workload) pair.
#[test]
fn observability_artifacts_are_written_and_well_formed() {
    for (bin, exe, args) in [
        (
            "fig16_breakdown",
            env!("CARGO_BIN_EXE_fig16_breakdown"),
            &[][..],
        ),
        (
            "profile",
            env!("CARGO_BIN_EXE_profile"),
            &["Stream", "baseline"][..],
        ),
    ] {
        let dir = scratch_dir(&format!("artifacts-{bin}"));
        let out = Command::new(exe)
            .args(args)
            .current_dir(&dir)
            .env("MCM_SCALE", SMOKE_SCALE)
            .env("MCM_TRACE", &dir)
            .env("MCM_METRICS", &dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed with artifacts enabled:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut traces = 0usize;
        let mut csvs = 0usize;
        for entry in std::fs::read_dir(&dir).expect("read scratch dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
            if name.ends_with(".trace.json") {
                assert_well_formed_json(&text, &name);
                traces += 1;
            } else if name.ends_with(".metrics.csv") {
                assert_well_formed_csv(&text, &name);
                csvs += 1;
            }
        }
        assert!(traces > 0, "{bin} wrote no trace JSON files");
        assert!(csvs > 0, "{bin} wrote no metrics CSV files");
        assert_eq!(traces, csvs, "{bin}: trace/metrics file counts differ");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
