//! The analytical models must agree with what the simulator measures.
//!
//! Two layers are validated here:
//!
//! * the §3.3.1 back-of-envelope **link sizing** (`mcm::gpu::analysis`):
//!   link settings the analysis calls sufficient shouldn't throttle the
//!   machine, and settings it calls throttling should;
//! * the calibrated **analytical fast path** (`mcm::gpu::analytic`):
//!   after a once-per-category calibration against the event simulator,
//!   its IPC predictions must land inside per-category error envelopes
//!   across the full 48-workload suite, and its *sensitivity orderings*
//!   along the paper's design axes (link bandwidth / Fig. 4, GPM count
//!   and scheduler / Fig. 9, page placement / Fig. 13) must rank the
//!   same way the simulator ranks them.

use mcm::gpu::analysis::{LinkSizing, LinkVerdict};
use mcm::gpu::analytic::{AnalyticModel, Calibration, Observation};
use mcm::gpu::{Simulator, SystemConfig};
use mcm::mem::page::PlacementPolicy;
use mcm::sm::SchedulerPolicy;
use mcm::workloads::{suite, Category};

#[test]
fn paper_example_constants() {
    let sizing = LinkSizing::paper_example();
    assert_eq!(sizing.gpms, 4);
    assert_eq!(sizing.dram_gbps_per_gpm, 768.0);
    // The paper's "2b supplied from each L2 partition".
    assert_eq!(sizing.supply_per_partition_gbps(), 2.0 * 768.0);
}

/// A measured L2 hit rate destined for [`LinkSizing`], checked loudly.
/// This used to be a silent `.min(0.9)` clamp — which would have fed
/// the analysis a fabricated hit rate (and a wrong "required" link
/// bandwidth) precisely when the simulator's measurement went bad.
fn checked_l2_rate(rate: f64) -> f64 {
    assert!(
        (0.0..=0.9).contains(&rate),
        "measured L2 hit rate {rate:.3} is outside the plausible [0, 0.9] band \
         for a bandwidth-bound workload; refusing to feed it to the sizing analysis"
    );
    rate
}

#[test]
fn analysis_verdicts_match_simulated_sensitivity() {
    // A bandwidth-hungry workload on a quarter-size machine (bandwidth
    // scaled with it). The analysis with the machine's parameters and
    // its own measured L2 hit rate should order the link settings the
    // same way the simulation does.
    let mut spec = suite::by_name("Stream").unwrap().scaled(0.15);
    spec.ctas /= 4;
    let machine = |link: f64| {
        let mut cfg = SystemConfig::mcm_with_link(link);
        cfg.topology.sms_per_module = 16;
        cfg.dram_total_gbps /= 4.0;
        cfg.caches.l2_bytes_total /= 4;
        cfg
    };

    // Measure the baseline hit rate once for the analysis input. The
    // probe run *is* the ample-link measurement — same config, same
    // workload — so it is reused below instead of simulated twice.
    let probe = Simulator::run(&machine(1536.0), &spec);
    let sizing = LinkSizing::new(4, 768.0 / 4.0, checked_l2_rate(probe.l2.rate()));

    let ample = probe;
    let starved_link = 48.0;
    let starved = Simulator::run(&machine(starved_link), &spec);

    // The analysis must call 1536 GB/s sufficient and 48 GB/s
    // throttling for this machine.
    assert!(matches!(
        sizing.verdict(1536.0),
        LinkVerdict::Sufficient { .. }
    ));
    let predicted_fraction = match sizing.verdict(starved_link) {
        LinkVerdict::Throttles {
            achievable_dram_fraction,
        } => achievable_dram_fraction,
        LinkVerdict::Sufficient { .. } => panic!("48 GB/s links cannot be sufficient"),
    };

    // And the simulation must agree: the starved machine is much
    // slower, in the same ballpark the analysis predicts (loose factor
    // 3 band — the analysis ignores locality and request overheads).
    let slowdown = starved.cycles.as_u64() as f64 / ample.cycles.as_u64() as f64;
    assert!(
        slowdown > 1.5,
        "analysis predicted throttling but the simulation barely slowed ({slowdown:.2}x)"
    );
    let predicted_slowdown = 1.0 / predicted_fraction;
    assert!(
        slowdown < predicted_slowdown * 3.0 && slowdown > predicted_slowdown / 3.0,
        "simulated slowdown {slowdown:.2}x too far from analytic {predicted_slowdown:.2}x"
    );
}

#[test]
fn sufficient_links_leave_no_performance_on_the_table() {
    // §3.3.1: "link bandwidth settings greater than [the requirement]
    // are not expected to yield any additional performance."
    let mut spec = suite::by_name("MiniAMR").unwrap().scaled(0.1);
    spec.ctas /= 4;
    let machine = |link: f64| {
        let mut cfg = SystemConfig::mcm_with_link(link);
        cfg.topology.sms_per_module = 16;
        cfg.dram_total_gbps /= 4.0;
        cfg.caches.l2_bytes_total /= 4;
        cfg
    };
    let probe = Simulator::run(&machine(1536.0), &spec);
    let sizing = LinkSizing::new(4, 768.0 / 4.0, checked_l2_rate(probe.l2.rate()));
    // The back-of-envelope requirement ignores ring multi-hop
    // traversal (~1.33x on 4 nodes), request-packet overhead (+25%),
    // and per-segment load imbalance, so the simulated knee sits a
    // factor ~2 above it (the paper's own Fig. 4 likewise shows
    // residual gains past its §3.3.1 estimate). Past twice the
    // requirement, returns must diminish sharply.
    let required = sizing.required_link_gbps();
    let at_2x = Simulator::run(&machine(required * 2.0), &spec);
    let at_4x = Simulator::run(&machine(required * 4.0), &spec);
    let gain = at_2x.cycles.as_u64() as f64 / at_4x.cycles.as_u64() as f64;
    assert!(
        gain < 1.10,
        "doubling links past 2x the analytic requirement bought \
         {gain:.2}x — the analysis promised diminishing returns"
    );
}

// ---------------------------------------------------------------------
// Calibrated analytical fast path vs. the event simulator
// ---------------------------------------------------------------------

/// The scale every analytic-validation run uses: small enough that a
/// 48-workload sweep stays test-suite friendly, large enough that the
/// simulator's bandwidth and locality shapes are developed.
const SCALE: f64 = 0.01;

/// Calibrates the model once against the event simulator at [`SCALE`].
fn calibrated() -> AnalyticModel {
    AnalyticModel::with_calibration(Calibration::fit_with(0xA11CE, SCALE, |cfg, spec| {
        Observation::from_report(&Simulator::run(cfg, spec))
    }))
}

/// Mean absolute percentage error of predicted vs simulated IPC.
fn mape(errors: &[f64]) -> f64 {
    assert!(!errors.is_empty());
    errors.iter().sum::<f64>() / errors.len() as f64
}

#[test]
fn calibrated_model_meets_per_category_error_envelopes() {
    let model = calibrated();
    let cfg = SystemConfig::baseline_mcm();
    let mut per_cat: Vec<(Category, Vec<f64>)> =
        Category::ALL.iter().map(|&c| (c, Vec::new())).collect();
    for spec in suite::suite() {
        let scaled = spec.scaled(SCALE);
        let sim = Simulator::run(&cfg, &scaled);
        let pred = model.predict(&cfg, &scaled);
        assert!(
            pred.ipc.is_finite() && pred.ipc > 0.0,
            "{}: non-finite prediction",
            spec.name
        );
        let ape = (pred.ipc - sim.ipc()).abs() / sim.ipc();
        per_cat
            .iter_mut()
            .find(|(c, _)| *c == spec.category)
            .unwrap()
            .1
            .push(ape);
    }
    // Per-category MAPE envelopes, set ~2x above the measured error so
    // they gate regressions (a model or calibration change that doubles
    // the error) without tracking noise. The envelope is part of the
    // model's contract: the planner prunes designs on these predictions.
    for (cat, errors) in &per_cat {
        let bound = match cat {
            Category::MemoryIntensive => 0.45,
            Category::ComputeIntensive => 0.45,
            Category::LimitedParallelism => 0.60,
        };
        let m = mape(errors);
        println!(
            "{cat:?}: MAPE {:.1}% over {} workloads (envelope {:.0}%)",
            m * 100.0,
            errors.len(),
            bound * 100.0
        );
        assert!(
            m < bound,
            "{cat:?}: calibrated-model MAPE {:.1}% exceeds the {:.0}% envelope \
             over {} workloads",
            m * 100.0,
            bound * 100.0,
            errors.len()
        );
    }
}

/// Average ranks (ties share the mean rank), for Spearman correlation.
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite values"));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation: Pearson correlation of the rank vectors.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for i in 0..a.len() {
        let (xa, xb) = (ra[i] - mean, rb[i] - mean);
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    num / (da * db).sqrt()
}

/// Predicted and simulated IPC for one workload across a config axis.
fn axis_ipcs(
    model: &AnalyticModel,
    configs: &[SystemConfig],
    spec_name: &str,
) -> (Vec<f64>, Vec<f64>) {
    let scaled = suite::by_name(spec_name).unwrap().scaled(SCALE);
    let mut pred = Vec::with_capacity(configs.len());
    let mut sim = Vec::with_capacity(configs.len());
    for cfg in configs {
        pred.push(model.predict(cfg, &scaled).ipc);
        sim.push(Simulator::run(cfg, &scaled).ipc());
    }
    (pred, sim)
}

#[test]
fn analytic_link_sensitivity_ranks_like_fig4() {
    // Fig. 4's axis: inter-GPM link bandwidth on the 4-GPM baseline.
    let model = calibrated();
    let configs: Vec<SystemConfig> = [192.0, 384.0, 768.0, 1536.0, 3072.0]
        .iter()
        .map(|&l| SystemConfig::mcm_with_link(l))
        .collect();
    let (pred, sim) = axis_ipcs(&model, &configs, "Stream");
    // The model deliberately plateaus once links stop binding (§3.3.1's
    // "additional bandwidth buys nothing"), while the simulator still
    // inches upward past the knee; those ties cap Spearman's rho just
    // below 1 even with zero inversions.
    let rho = spearman(&pred, &sim);
    assert!(
        rho >= 0.85,
        "link-bandwidth ordering disagrees with simulation: rho {rho:.2} \
         (pred {pred:?}, sim {sim:?})"
    );
    // Stronger than rank correlation: along the link axis the model
    // must never *invert* the simulated ordering — wherever simulation
    // says a bigger link clearly helps, the model must not predict a
    // slowdown.
    for i in 0..pred.len() {
        for j in (i + 1)..pred.len() {
            assert!(
                !(sim[j] > sim[i] * 1.02 && pred[j] < pred[i]),
                "model inverts the link ordering between points {i} and {j} \
                 (pred {pred:?}, sim {sim:?})"
            );
        }
    }
}

#[test]
fn analytic_gpm_and_scheduler_sensitivity_ranks_like_fig9() {
    // Fig. 9's axis: how much distributed CTA scheduling recovers, here
    // crossed with the GPM count at a fixed 256-SM total.
    let model = calibrated();
    let mut configs = Vec::new();
    for gpms in [2u8, 4, 8] {
        for sched in [SchedulerPolicy::Centralized, SchedulerPolicy::Distributed] {
            let mut cfg = SystemConfig::mcm_n_gpms(gpms);
            cfg.scheduler = sched;
            configs.push(cfg);
        }
    }
    let (pred, sim) = axis_ipcs(&model, &configs, "CoMD");
    let rho = spearman(&pred, &sim);
    assert!(
        rho >= 0.7,
        "GPM-count/scheduler ordering disagrees with simulation: rho {rho:.2} \
         (pred {pred:?}, sim {sim:?})"
    );
}

#[test]
fn analytic_placement_sensitivity_ranks_like_fig13() {
    // Fig. 13's axis: first-touch page placement (with distributed
    // scheduling, as the paper stacks it) against interleaving.
    let model = calibrated();
    let mut ft = SystemConfig::baseline_mcm();
    ft.placement = PlacementPolicy::FirstTouch;
    ft.scheduler = SchedulerPolicy::Distributed;
    let mut ds = SystemConfig::baseline_mcm();
    ds.scheduler = SchedulerPolicy::Distributed;
    let configs = vec![
        SystemConfig::baseline_mcm(),
        ds,
        ft,
        SystemConfig::optimized_mcm(),
    ];
    let (pred, sim) = axis_ipcs(&model, &configs, "CFD");
    let rho = spearman(&pred, &sim);
    assert!(
        rho >= 0.7,
        "placement ordering disagrees with simulation: rho {rho:.2} \
         (pred {pred:?}, sim {sim:?})"
    );
}
