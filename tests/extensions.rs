//! Integration tests for the beyond-the-paper extensions: the dynamic
//! CTA scheduler (§5.4 future work), the fully connected fabric (§3.2's
//! open question), and first-touch page granularity.

use mcm::gpu::{Simulator, SystemConfig};
use mcm::workloads::{suite, WorkloadSpec};

fn quarter(mut cfg: SystemConfig) -> SystemConfig {
    cfg.topology.sms_per_module = 16;
    cfg.topology.link_gbps /= 4.0;
    cfg.dram_total_gbps /= 4.0;
    cfg.caches.l2_bytes_total /= 4;
    cfg.caches.l15_bytes_total /= 4;
    cfg
}

fn workload(name: &str, scale: f64) -> WorkloadSpec {
    let mut spec = suite::by_name(name).expect("suite workload").scaled(scale);
    spec.ctas /= 4;
    spec
}

#[test]
fn dynamic_scheduler_fixes_imbalance() {
    // §5.4: "workloads where different CTAs perform unequal amounts of
    // work ... leads to workload imbalance due to the coarse-grained
    // distributed scheduling"; the dynamic scheduler is expected "to
    // obtain further performance gain". Bake heavy imbalance in and
    // check stealing recovers it.
    let mut spec = workload("Lulesh1", 0.15);
    spec.imbalance = 1.0;
    let distributed = Simulator::run(&quarter(SystemConfig::optimized_mcm()), &spec);
    // Steal in fine groups: since fills and MSHR releases apply at
    // response *delivery* (not anachronistically at the last hop
    // event), coarse stolen groups pay their full lost-locality cost
    // and group sizes >= 4 can lose to static chunks here.
    let dynamic = Simulator::run(&quarter(SystemConfig::optimized_mcm_dynamic(2)), &spec);
    assert!(
        dynamic.cycles.as_u64() as f64 <= distributed.cycles.as_u64() as f64 * 1.02,
        "stealing must not lose to static chunks under imbalance ({} vs {})",
        dynamic.cycles,
        distributed.cycles
    );
    // The busiest module under static chunking does disproportionate
    // work; stealing should flatten it.
    assert!(
        dynamic.module_imbalance() <= distributed.module_imbalance() + 0.02,
        "stealing should flatten per-module work ({:.3} vs {:.3})",
        dynamic.module_imbalance(),
        distributed.module_imbalance()
    );
}

#[test]
fn chunked_scheduling_preserves_contiguity_benefits() {
    // Finer chunks keep most of the distributed scheduler's locality:
    // performance should stay in the same band.
    let spec = workload("Srad-v2", 0.15);
    let distributed = Simulator::run(&quarter(SystemConfig::optimized_mcm()), &spec);
    let chunked = Simulator::run(&quarter(SystemConfig::optimized_mcm_chunked(16)), &spec);
    let ratio = chunked.cycles.as_u64() as f64 / distributed.cycles.as_u64() as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "group-16 chunking should stay near the distributed point, got {ratio:.2}"
    );
    assert!(
        chunked.locality_rate() > 0.5,
        "chunking must still localize"
    );
}

#[test]
fn fully_connected_fabric_runs_and_trades_hops_for_width() {
    let spec = workload("SSSP", 0.15);
    let ring = Simulator::run(&quarter(SystemConfig::optimized_mcm()), &spec);
    let mesh = Simulator::run(
        &quarter(SystemConfig::optimized_mcm_fully_connected()),
        &spec,
    );
    // Same work either way (modulo a handful of MSHR-stall replays).
    let budget = spec.approx_instructions();
    assert!(ring.instructions >= budget && mesh.instructions >= budget);
    assert!(
        (ring.instructions as f64 - mesh.instructions as f64).abs() < budget as f64 * 0.05,
        "instruction counts diverged: {} vs {}",
        ring.instructions,
        mesh.instructions
    );
    // The mesh carries each remote transfer exactly once (no multi-hop
    // re-transmission), so its total fabric byte count must not exceed
    // the ring's.
    assert!(
        mesh.inter_module_bytes <= ring.inter_module_bytes,
        "1-hop fabric cannot carry more bytes than a multi-hop ring \
         ({} vs {})",
        mesh.inter_module_bytes,
        ring.inter_module_bytes
    );
    // And it must be performance-competitive (within 30% either way at
    // this scale).
    let ratio = mesh.cycles.as_u64() as f64 / ring.cycles.as_u64() as f64;
    assert!(
        (0.7..1.3).contains(&ratio),
        "mesh vs ring ratio out of band: {ratio:.2}"
    );
}

#[test]
fn page_granularity_extremes_still_localize() {
    let spec = workload("MiniAMR", 0.1);
    for kib in [4u64, 2048] {
        let mut cfg = quarter(SystemConfig::optimized_mcm());
        cfg.ft_page_bytes = kib * 1024;
        let r = Simulator::run(&cfg, &spec);
        assert!(
            r.locality_rate() > 0.6,
            "{kib} KiB pages should still localize a stencil, got {:.2}",
            r.locality_rate()
        );
    }
}

#[test]
fn smaller_pages_localize_fragmented_sharing_better() {
    // With CTA slices far smaller than a huge page, neighbouring CTAs
    // on different GPMs share pages; small pages track the split.
    let mut spec = workload("CFD", 0.1); // 25 MB over many CTAs: tiny slices
    spec.kernel_iters = 2;
    let run_with = |kib: u64| {
        let mut cfg = quarter(SystemConfig::optimized_mcm());
        cfg.ft_page_bytes = kib * 1024;
        Simulator::run(&cfg, &spec)
    };
    let small = run_with(4);
    let huge = run_with(2048);
    assert!(
        small.locality_rate() >= huge.locality_rate() - 0.02,
        "4 KiB pages should localize at least as well as 2 MiB pages \
         ({:.2} vs {:.2})",
        small.locality_rate(),
        huge.locality_rate()
    );
}

#[test]
fn per_module_stats_are_consistent_with_totals() {
    let spec = workload("Kmeans", 0.1);
    let r = Simulator::run(&quarter(SystemConfig::optimized_mcm()), &spec);
    assert_eq!(r.modules.len(), 4);
    let sum_insts: u64 = r.modules.iter().map(|m| m.instructions).sum();
    assert_eq!(sum_insts, r.instructions);
    let sum_dram: u64 = r.modules.iter().map(|m| m.dram_bytes).sum();
    assert_eq!(sum_dram, r.dram_bytes);
    assert!(r.module_imbalance() >= 1.0);
}
