//! # mcm-gpu — the MCM-GPU system model
//!
//! A from-scratch Rust reproduction of *MCM-GPU: Multi-Chip-Module GPUs
//! for Continued Performance Scalability* (Arunkumar et al., ISCA 2017).
//!
//! The paper builds a 256-SM logical GPU out of four on-package GPU
//! modules (GPMs) and recovers the NUMA penalty with three locality
//! optimizations:
//!
//! 1. a GPM-side, **remote-only L1.5 cache** (§5.1),
//! 2. **distributed CTA scheduling** — contiguous CTA chunks per GPM
//!    (§5.2), and
//! 3. **first-touch page placement** (§5.3).
//!
//! This crate assembles the substrate crates (`mcm-engine`, `mcm-mem`,
//! `mcm-interconnect`, `mcm-sm`, `mcm-workloads`) into runnable
//! machines:
//!
//! * [`SystemConfig`] — every machine the paper evaluates, as presets:
//!   baseline/optimized MCM-GPU, link-bandwidth sweeps, L1.5 design
//!   points, buildable and hypothetical monolithic GPUs, and the §6
//!   multi-GPU comparison.
//! * [`Simulator`] — runs a workload on a configuration, returning a
//!   [`RunReport`] with cycles, cache hit rates, NUMA locality,
//!   inter-GPM bandwidth, and the Table 2 energy ledger.
//! * [`experiments`] — the aggregations the paper's figures report.
//! * [`analytic`] — the calibrated analytical fast path: closed-form
//!   IPC / hit-rate / traffic predictions in microseconds for
//!   design-space exploration ([`AnalyticModel`], [`Calibration`]).
//! * [`mod@reference`] — Table 1 data and manufacturability limits.
//!
//! # Quickstart
//!
//! ```
//! use mcm_gpu::{Simulator, SystemConfig};
//! use mcm_workloads::suite;
//!
//! // A scaled-down run of the Table 4 "Stream" workload on the
//! // baseline and optimized MCM-GPU.
//! let stream = suite::by_name("Stream").unwrap().scaled(0.05);
//! let baseline = Simulator::run(&SystemConfig::baseline_mcm(), &stream);
//! let optimized = Simulator::run(&SystemConfig::optimized_mcm(), &stream);
//! assert!(optimized.speedup_over(&baseline) > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod report;
mod shard;
mod sim;
mod system;

pub mod analysis;
pub mod analytic;
pub mod experiments;
pub mod reference;

pub use analytic::{AnalyticModel, Calibration, Observation, Prediction};
pub use config::{CacheHierarchy, SystemConfig, Topology, KIB, MIB};
pub use report::{ModuleStats, RunReport};
pub use shard::{effective_shards, ShardRunStats};
pub use sim::Simulator;
pub use system::McmSystem;
