//! Scripted client for the `mcm-serve` daemon — the tier-1 smoke
//! driver and a minimal example of the wire protocol.
//!
//! * `MCM_SERVE_ADDR` — the server's address (required).
//! * `MCM_SERVE_SCRIPT` — `;`-separated statements, run in order:
//!   * `sweep <cfg,..>:<wl,..>` — one connection; prints each pair as
//!     `pair <index> <config> <workload> <report>` in index order.
//!   * `sweep2 <cfg,..>:<wl,..>` — the same grid from two concurrent
//!     connections (exercises cross-client in-flight dedupe); prints
//!     the first connection's pairs, then `sweep2 ok` once both
//!     complete with byte-identical reports.
//!   * `stats` — prints `runs=<n>` (simulations the server ever ran).
//!   * `ping` — prints `pong`.
//!   * `shutdown` — asks the server to exit; prints `bye`.
//!
//! Pair output carries no hit/run/shared tags and is index-sorted, so
//! the bytes are identical whether the server answered cold, warm, or
//! mid-flight — scripts diff two runs' outputs directly.
//!
//! Protocol `error` lines are printed as `error <message>` and exit
//! the client with status 3.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::Duration;

use mcm_serve::protocol::report_slice;

struct Conn {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .expect("set read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { reader, stream }
    }

    fn send(&mut self, line: &str) {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .unwrap_or_else(|e| fail(&format!("send failed: {e}")));
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => fail("server closed the connection"),
            Ok(_) => line.trim_end().to_string(),
            Err(e) => fail(&format!("recv failed: {e}")),
        }
    }

    /// Runs one sweep, returning `(index, config, workload, report)`
    /// per pair, index-sorted. Exits on protocol errors.
    fn sweep(
        &mut self,
        id: u64,
        configs: &str,
        workloads: &str,
    ) -> Vec<(u64, String, String, String)> {
        let json_list = |csv: &str| {
            csv.split(',')
                .map(|n| format!("\"{}\"", n.trim()))
                .collect::<Vec<_>>()
                .join(",")
        };
        self.send(&format!(
            "{{\"op\":\"sweep\",\"id\":{id},\"configs\":[{}],\"workloads\":[{}]}}",
            json_list(configs),
            json_list(workloads)
        ));
        let mut pairs = Vec::new();
        loop {
            let line = self.recv();
            if line.starts_with(&format!("{{\"done\":{id},")) {
                break;
            }
            if line.starts_with(&format!("{{\"ack\":{id},")) {
                continue;
            }
            if let Some(msg) = field_str(&line, "error") {
                println!("error {msg}");
                exit(3);
            }
            let index = field_u64(&line, "index")
                .unwrap_or_else(|| fail(&format!("unparsable pair line: {line}")));
            let config = field_str(&line, "config").unwrap_or_default();
            let workload = field_str(&line, "workload").unwrap_or_default();
            let report = report_slice(&line)
                .unwrap_or_else(|| fail(&format!("pair line without report: {line}")))
                .to_string();
            pairs.push((index, config, workload, report));
        }
        pairs.sort_by_key(|(index, ..)| *index);
        pairs
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("mcm-serve-client: {msg}");
    exit(2);
}

/// Minimal field scraping: these lines are machine-generated with
/// known key order, so a substring scan is exact.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn print_pairs(pairs: &[(u64, String, String, String)]) {
    for (index, config, workload, report) in pairs {
        println!("pair {index} {config} {workload} {report}");
    }
}

fn main() {
    let addr =
        std::env::var("MCM_SERVE_ADDR").unwrap_or_else(|_| fail("MCM_SERVE_ADDR is required"));
    let script =
        std::env::var("MCM_SERVE_SCRIPT").unwrap_or_else(|_| fail("MCM_SERVE_SCRIPT is required"));
    let mut conn = Conn::open(&addr);
    let mut next_id = 0u64;
    for stmt in script.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        match stmt.split_once(' ').unwrap_or((stmt, "")) {
            ("ping", _) => {
                conn.send("{\"op\":\"ping\"}");
                let line = conn.recv();
                if line != "{\"pong\":true}" {
                    fail(&format!("bad pong: {line}"));
                }
                println!("pong");
            }
            ("stats", _) => {
                conn.send("{\"op\":\"stats\"}");
                let line = conn.recv();
                let runs =
                    field_u64(&line, "runs").unwrap_or_else(|| fail(&format!("bad stats: {line}")));
                println!("runs={runs}");
            }
            ("shutdown", _) => {
                conn.send("{\"op\":\"shutdown\"}");
                let line = conn.recv();
                if line != "{\"bye\":true}" {
                    fail(&format!("bad bye: {line}"));
                }
                println!("bye");
            }
            ("sweep", grid) => {
                let (configs, workloads) = grid
                    .split_once(':')
                    .unwrap_or_else(|| fail(&format!("sweep wants <cfgs>:<wls>, got {grid:?}")));
                next_id += 1;
                let pairs = conn.sweep(next_id, configs, workloads);
                print_pairs(&pairs);
                println!("done {}", pairs.len());
            }
            ("sweep2", grid) => {
                let (configs, workloads) = grid
                    .split_once(':')
                    .unwrap_or_else(|| fail(&format!("sweep2 wants <cfgs>:<wls>, got {grid:?}")));
                next_id += 1;
                let id = next_id;
                // Same grid from a second, concurrent connection: the
                // server must answer both while simulating each unique
                // pair at most once.
                let twin = std::thread::spawn({
                    let (addr, configs, workloads) =
                        (addr.clone(), configs.to_string(), workloads.to_string());
                    move || Conn::open(&addr).sweep(id, &configs, &workloads)
                });
                let pairs = conn.sweep(id, configs, workloads);
                let twin_pairs = twin.join().unwrap_or_else(|_| fail("twin sweep panicked"));
                for (a, b) in pairs.iter().zip(twin_pairs.iter()) {
                    if a.3 != b.3 {
                        fail(&format!(
                            "report bytes diverged across connections for ({}, {})",
                            a.1, a.2
                        ));
                    }
                }
                print_pairs(&pairs);
                println!("sweep2 ok");
            }
            (other, _) => fail(&format!("unknown statement {other:?}")),
        }
    }
}
