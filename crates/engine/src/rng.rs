//! Reproducible pseudo-random number generation.
//!
//! Every stochastic decision in the simulator (synthetic address streams,
//! compute-burst lengths) draws from a [`Xoshiro256`] generator seeded
//! deterministically from a hierarchy of identifiers via [`SplitMix64`],
//! so a run is a pure function of its configuration and seed.

/// The SplitMix64 generator, used to expand seeds.
///
/// SplitMix64 passes its output through a strong avalanche, so seeding a
/// family of generators with `base + i` still produces decorrelated
/// streams — exactly what we need for per-warp generators.
///
/// # Example
///
/// ```
/// use mcm_engine::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator: fast, high-quality, and deterministic.
///
/// # Example
///
/// ```
/// use mcm_engine::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seeded(&[7, 3, 1]);
/// let x = rng.next_range(100);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a single seed, expanded via SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates a generator from a hierarchy of identifiers (for example
    /// `[workload_seed, kernel, cta, warp]`), hashing them together so
    /// that adjacent identifiers produce decorrelated streams.
    pub fn seeded(parts: &[u64]) -> Self {
        let mut acc = SplitMix64::new(0x6D63_6D2D_6770_7573); // "mcm-gpus"
        let mut seed = acc.next_u64();
        for &p in parts {
            let mut sm = SplitMix64::new(seed ^ p);
            seed = sm.next_u64();
        }
        Xoshiro256::new(seed)
    }

    /// Produces the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (slightly biased for astronomically large bounds, which
    /// is irrelevant for workload synthesis).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A stable (process- and platform-independent) FNV-1a hasher for
/// deriving persistent identities — configuration fingerprints,
/// artifact-stem disambiguators. Unlike `std::hash`, the output is part
/// of the determinism contract: the same field values always hash to
/// the same 64-bit word, across runs, builds, and machines.
///
/// # Example
///
/// ```
/// use mcm_engine::rng::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_str("MCM-GPU baseline");
/// a.write_f64(768.0);
/// let mut b = StableHasher::new();
/// b.write_str("MCM-GPU baseline");
/// b.write_f64(768.0);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// FNV-1a 64-bit offset basis.
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    /// FNV-1a 64-bit prime.
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Creates a hasher at the FNV offset basis.
    pub const fn new() -> Self {
        StableHasher {
            state: Self::OFFSET,
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state = (self.state ^ u64::from(byte)).wrapping_mul(Self::PRIME);
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a `u32` (little-endian bytes).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` via its IEEE-754 bit pattern, so `-0.0` and
    /// `0.0` hash differently and NaN payloads are distinguished — the
    /// hash tracks representation, not numeric equality.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The 64-bit digest of everything absorbed so far.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Outputs should not all be equal.
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn xoshiro_reference_determinism() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn seeded_hierarchies_are_decorrelated() {
        let mut a = Xoshiro256::seeded(&[1, 0, 0]);
        let mut b = Xoshiro256::seeded(&[1, 0, 1]);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seeded_is_order_sensitive() {
        let mut a = Xoshiro256::seeded(&[1, 2]);
        let mut b = Xoshiro256::seeded(&[2, 1]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_range_respects_bound() {
        let mut rng = Xoshiro256::new(123);
        for _ in 0..10_000 {
            assert!(rng.next_range(17) < 17);
        }
        // bound 1 always yields 0
        assert_eq!(rng.next_range(1), 0);
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Xoshiro256::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn next_range_zero_bound_panics() {
        Xoshiro256::new(1).next_range(0);
    }

    #[test]
    fn stable_hasher_matches_fnv1a_reference() {
        // FNV-1a 64 of the empty input is the offset basis; of "a" it
        // is the published reference value.
        assert_eq!(StableHasher::new().finish(), 0xCBF2_9CE4_8422_2325);
        let mut h = StableHasher::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn stable_hasher_distinguishes_field_boundaries() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stable_hasher_separates_float_bit_patterns() {
        let mut pos = StableHasher::new();
        pos.write_f64(0.0);
        let mut neg = StableHasher::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }
}
