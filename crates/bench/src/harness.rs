//! Shared machinery for the figure/table harness binaries: scaled,
//! memoized simulation runs and plain-text table rendering.

use std::collections::HashMap;
use std::path::PathBuf;

use mcm_engine::stats::geomean;
use mcm_gpu::{RunReport, Simulator, SystemConfig};
use mcm_probe::{ChromeTraceProbe, MetricsProbe};
use mcm_workloads::{Category, WorkloadSpec};

/// The workload scale factor used by the harness: multiplies per-warp
/// instruction counts. Read from `MCM_SCALE` (default 0.5 — bandwidth
/// shapes are stable down to ~0.1, but cache-warm-up effects need the
/// longer streams; use 1.0 for full-length runs).
pub fn scale() -> f64 {
    std::env::var("MCM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// A memoizing runner: each `(configuration, workload)` pair is
/// simulated once per process, so figures that share configurations
/// (e.g. every figure needs the baseline) don't re-run it.
#[derive(Debug)]
pub struct Memo {
    scale: f64,
    cache: HashMap<(String, String), RunReport>,
}

impl Memo {
    /// Creates a runner at the given workload scale.
    pub fn new(scale: f64) -> Self {
        Memo {
            scale,
            cache: HashMap::new(),
        }
    }

    /// Creates a runner at the environment-selected scale.
    pub fn from_env() -> Self {
        Memo::new(scale())
    }

    /// The workload scale in force.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Runs `spec` (scaled) on `cfg`, memoized.
    ///
    /// Fresh (non-memoized) runs honour the observability environment
    /// variables: see [`run_instrumented`].
    pub fn run(&mut self, cfg: &SystemConfig, spec: &WorkloadSpec) -> RunReport {
        let key = (cfg.name.clone(), spec.name.to_string());
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        let report = run_instrumented(cfg, &spec.scaled(self.scale));
        self.cache.insert(key, report.clone());
        report
    }

    /// Runs every workload in `suite` on `cfg`.
    pub fn run_suite(&mut self, cfg: &SystemConfig, suite: &[WorkloadSpec]) -> Vec<RunReport> {
        suite.iter().map(|w| self.run(cfg, w)).collect()
    }

    /// All reports produced so far, sorted by (configuration, workload)
    /// for deterministic output.
    pub fn reports(&self) -> Vec<&RunReport> {
        let mut all: Vec<&RunReport> = self.cache.values().collect();
        all.sort_by(|a, b| (&a.config, &a.workload).cmp(&(&b.config, &b.workload)));
        all
    }
}

/// The time-series bucket width in cycles, read from
/// `MCM_METRICS_BUCKET` (default [`mcm_probe::metrics::DEFAULT_BUCKET`]).
pub fn metrics_bucket() -> u64 {
    std::env::var("MCM_METRICS_BUCKET")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(mcm_probe::metrics::DEFAULT_BUCKET)
}

/// Turns a configuration or workload name into a filename-safe stem:
/// every non-alphanumeric character becomes `-` (config names contain
/// `/`, `(`, `+`).
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Runs one (already scaled) workload on `cfg`, attaching observability
/// sinks selected by the environment:
///
/// - `MCM_TRACE=<dir>` — write a Chrome trace-event JSON per run to
///   `<dir>/<config>__<workload>.trace.json` (load in Perfetto).
/// - `MCM_METRICS=<dir>` — write a utilization time-series CSV per run
///   to `<dir>/<config>__<workload>.metrics.csv`; bucket width from
///   `MCM_METRICS_BUCKET` (cycles).
///
/// With neither variable set this is exactly [`Simulator::run`]: the
/// [`mcm_probe::NullProbe`] path monomorphizes to no instrumentation.
///
/// # Panics
///
/// Panics if an artifact directory cannot be created or written.
pub fn run_instrumented(cfg: &SystemConfig, spec: &WorkloadSpec) -> RunReport {
    let trace_dir = std::env::var_os("MCM_TRACE").map(PathBuf::from);
    let metrics_dir = std::env::var_os("MCM_METRICS").map(PathBuf::from);
    if trace_dir.is_none() && metrics_dir.is_none() {
        return Simulator::run(cfg, spec);
    }
    let mut probe = (
        trace_dir.as_ref().map(|_| ChromeTraceProbe::new()),
        metrics_dir
            .as_ref()
            .map(|_| MetricsProbe::new(metrics_bucket(), cfg.topology.sms_per_module)),
    );
    let report = Simulator::run_probed(cfg, spec, &mut probe);
    let stem = format!("{}__{}", sanitize(&cfg.name), sanitize(spec.name));
    if let (Some(dir), Some(trace)) = (&trace_dir, &mut probe.0) {
        std::fs::create_dir_all(dir).expect("create MCM_TRACE directory");
        let path = dir.join(format!("{stem}.trace.json"));
        trace.save(&path).expect("write Chrome trace");
    }
    if let (Some(dir), Some(metrics)) = (&metrics_dir, &probe.1) {
        std::fs::create_dir_all(dir).expect("create MCM_METRICS directory");
        let path = dir.join(format!("{stem}.metrics.csv"));
        metrics.save(&path).expect("write metrics CSV");
    }
    report
}

/// Geometric-mean speedup of `cfg` over `baseline` for the workloads of
/// one `category` within `suite` (or all categories when `None`).
pub fn geomean_speedup(
    memo: &mut Memo,
    suite: &[WorkloadSpec],
    cfg: &SystemConfig,
    baseline: &SystemConfig,
    category: Option<Category>,
) -> f64 {
    let speedups: Vec<f64> = suite
        .iter()
        .filter(|w| category.is_none_or(|c| w.category == c))
        .map(|w| {
            let r = memo.run(cfg, w);
            let b = memo.run(baseline, w);
            r.speedup_over(&b)
        })
        .collect();
    geomean(&speedups)
}

/// A plain-text table with right-aligned numeric columns, rendered the
/// way the paper's figure data would appear in a results log.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns: first column left-aligned, the
    /// rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a ratio as the percentage-speedup notation the paper uses
/// ("+22.8%" / "-4.7%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

/// Formats a value with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders `value` as a proportional bar of at most `width` cells
/// against `max` (the poor terminal's bar chart).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 || width == 0 {
        return String::new();
    }
    let cells = ((value / max) * width as f64).round() as usize;
    "#".repeat(cells.clamp(1, width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_workloads::suite;

    #[test]
    fn memo_caches_runs() {
        let mut memo = Memo::new(0.01);
        let cfg = SystemConfig::baseline_mcm();
        let spec = suite::by_name("CFD").unwrap();
        let a = memo.run(&cfg, &spec);
        let b = memo.run(&cfg, &spec);
        assert_eq!(a, b);
        assert_eq!(memo.cache.len(), 1);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer-name", "12.34"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12.34"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(100.0, 10.0, 10), "##########");
        assert_eq!(bar(0.01, 10.0, 10), "#");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(-1.0, 10.0, 10), "");
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(1.228), "+22.8%");
        assert_eq!(pct(0.953), "-4.7%");
    }
}
