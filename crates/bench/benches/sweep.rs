//! Parallel sweep executor throughput: one fixed configuration x
//! workload grid timed end to end at increasing worker counts, each as
//! a single shot (the grid takes seconds; batching would be
//! meaningless). On a multi-core machine the jobs=N lines should
//! approach an N-fold speedup over jobs=1 until the grid's longest
//! single run dominates; on one core they should all match, which is
//! itself worth watching — any jobs>1 overhead there is pure executor
//! cost.

use mcm_bench::harness::Memo;
use mcm_gpu::SystemConfig;
use mcm_workloads::{suite, WorkloadSpec};

fn main() {
    let configs = [
        SystemConfig::baseline_mcm(),
        SystemConfig::optimized_mcm(),
        SystemConfig::multi_gpu_baseline(),
    ];
    let workloads: Vec<WorkloadSpec> = ["Stream", "Hotspot", "DWT", "CFD", "CoMD", "Kmeans"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite workload"))
        .collect();
    let pairs: Vec<(&SystemConfig, &WorkloadSpec)> = configs
        .iter()
        .flat_map(|c| workloads.iter().map(move |w| (c, w)))
        .collect();
    println!(
        "\n== sweep ({} runs at 2% scale; available parallelism {}) ==",
        pairs.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let mut timings = Vec::new();
    for jobs in [1usize, 2, 4, 8] {
        // A fresh memo per job count: every pair simulates again.
        let mut memo = Memo::new(0.02);
        let (reports, secs) =
            mcm_testkit::bench::bench_once(&format!("run_grid/jobs={jobs}"), || {
                memo.run_grid_with_jobs(jobs, &pairs)
            });
        assert_eq!(reports.len(), pairs.len());
        timings.push((jobs, secs));
    }
    let (_, serial) = timings[0];
    for &(jobs, secs) in &timings[1..] {
        println!("jobs={jobs}: {:.2}x vs jobs=1", serial / secs.max(1e-9));
    }
}
