//! The simulation clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, measured in GPU core clock cycles.
///
/// The modelled GPU runs at 1 GHz (paper Table 3), so one cycle equals one
/// nanosecond; [`Cycle::from_ns`] and [`Cycle::as_ns`] make that
/// conversion explicit at call sites that speak in wall-clock units (for
/// example the 100 ns DRAM access latency).
///
/// `Cycle` is an absolute timestamp. Durations are also represented as
/// `Cycle` (the type is a plain count); subtraction of two timestamps
/// yields a duration.
///
/// # Example
///
/// ```
/// use mcm_engine::Cycle;
///
/// let dram_latency = Cycle::from_ns(100);
/// let issued = Cycle::new(40);
/// assert_eq!(issued + dram_latency, Cycle::new(140));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero timestamp (simulation start).
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable timestamp; used as an "infinitely far in
    /// the future" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp at the given absolute cycle count.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Converts nanoseconds of wall-clock time at the modelled 1 GHz core
    /// clock into cycles.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Cycle(ns)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This timestamp expressed in nanoseconds at the 1 GHz core clock.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This timestamp expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction: the duration from `earlier` to `self`, or
    /// zero if `earlier` is actually later.
    #[inline]
    pub const fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(cycles: u64) -> Self {
        Cycle(cycles)
    }
}

impl From<Cycle> for u64 {
    #[inline]
    fn from(cycle: Cycle) -> u64 {
        cycle.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip_at_one_ghz() {
        assert_eq!(Cycle::from_ns(100).as_u64(), 100);
        assert_eq!(Cycle::new(250).as_ns(), 250);
    }

    #[test]
    fn arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(4);
        assert_eq!(a + b, Cycle::new(14));
        assert_eq!(a - b, Cycle::new(6));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycle::new(14));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Cycle::new(5);
        let late = Cycle::new(9);
        assert_eq!(late.saturating_since(early), Cycle::new(4));
        assert_eq!(early.saturating_since(late), Cycle::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Cycle::new(3);
        let b = Cycle::new(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn ordering_and_sum() {
        assert!(Cycle::ZERO < Cycle::new(1));
        assert!(Cycle::new(1) < Cycle::MAX);
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
        assert_eq!(Cycle::ZERO.to_string(), "0cy");
    }

    #[test]
    fn seconds_conversion() {
        let one_ms = Cycle::from_ns(1_000_000);
        assert!((one_ms.as_secs_f64() - 1e-3).abs() < 1e-12);
    }
}
