//! Per-warp synthetic instruction/address streams.
//!
//! A [`WarpStream`] deterministically generates the alternating
//! compute-burst / memory-operation sequence one warp executes, with
//! addresses drawn according to the workload's
//! [`LocalityProfile`](crate::spec::LocalityProfile):
//!
//! * The footprint's first `shared_region_frac` is a **globally shared
//!   region** all CTAs sample uniformly (graph structure, lookup
//!   tables).
//! * The remainder is partitioned into equal **CTA slices**. A warp
//!   mostly walks its CTA's slice — streaming forward or revisiting a
//!   recent reuse window — and occasionally reaches into the *adjacent*
//!   CTA's slice (halo exchange), which is the inter-CTA spatial
//!   locality distributed CTA scheduling exploits (§5.2, Fig. 8).
//!
//! Streams are pure functions of `(spec.seed, kernel, cta, warp)`, so
//! repeated kernel launches re-walk the same data — the cross-kernel
//! page locality of §5.3 (Fig. 12).

use mcm_engine::rng::Xoshiro256;
use mcm_mem::addr::{AccessKind, MemAddr, LINE_BYTES};

use crate::spec::WorkloadSpec;

/// One dynamic warp instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpOp {
    /// A burst of `n` non-memory instructions issued back to back.
    Compute(u32),
    /// One (already coalesced) memory operation for the whole warp.
    Access {
        /// Byte address touched; the memory system fetches its line.
        addr: MemAddr,
        /// Load or store.
        kind: AccessKind,
    },
}

/// The deterministic instruction stream of one warp in one kernel
/// launch.
///
/// # Example
///
/// ```
/// use mcm_workloads::spec::WorkloadSpec;
/// use mcm_workloads::stream::{WarpOp, WarpStream};
///
/// let spec = WorkloadSpec::template("demo");
/// let ops: Vec<WarpOp> = WarpStream::new(&spec, 0, 0, 0).collect();
/// let again: Vec<WarpOp> = WarpStream::new(&spec, 0, 0, 0).collect();
/// assert_eq!(ops, again); // bit-reproducible
/// ```
#[derive(Debug, Clone)]
pub struct WarpStream {
    rng: Xoshiro256,
    remaining: u32,
    emit_mem_next: bool,
    // Geometry, in lines.
    shared_lines: u64,
    own_start: u64,
    own_lines: u64,
    left_start: u64,
    right_start: u64,
    neighbor_lines: u64,
    cursor: u64,
    // Knobs.
    mem_ratio: f64,
    write_frac: f64,
    streaming: f64,
    reuse_window: u64,
    neighbor_frac: f64,
    shared_frac: f64,
    cold_shared_frac: f64,
    footprint_lines: u64,
    divergence: Option<crate::spec::Divergence>,
    /// Remaining transactions of an in-progress divergent gather.
    pending_gather: u8,
}

/// Instructions warp `w` of CTA `cta` executes in one kernel launch,
/// including the spec's deterministic per-CTA imbalance.
///
/// Imbalance is a *gradient*: work grows linearly with the CTA index
/// (up to `1 + imbalance` times the base), the shape of triangular
/// loops and frontier phases. A gradient — unlike random per-CTA noise,
/// which averages out inside the distributed scheduler's large chunks —
/// concentrates extra work in one GPM's chunk, reproducing the §5.4
/// load-imbalance pathology.
pub fn cta_insts(spec: &WorkloadSpec, cta: u32) -> u32 {
    if spec.imbalance == 0.0 {
        return spec.insts_per_warp;
    }
    let frac = if spec.ctas <= 1 {
        0.0
    } else {
        f64::from(cta) / f64::from(spec.ctas - 1)
    };
    let scale = 1.0 + spec.imbalance * frac;
    ((f64::from(spec.insts_per_warp) * scale).round() as u32).max(1)
}

impl WarpStream {
    /// Creates the stream for warp `warp` of CTA `cta` in kernel launch
    /// `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`WorkloadSpec::validate`]) or
    /// `cta`/`warp` are out of range.
    pub fn new(spec: &WorkloadSpec, kernel: u32, cta: u32, warp: u32) -> Self {
        spec.validate().expect("invalid workload spec");
        assert!(cta < spec.ctas, "CTA index out of range");
        assert!(warp < spec.warps_per_cta, "warp index out of range");

        let total_lines = spec.footprint_lines();
        let shared_lines = ((total_lines as f64) * spec.locality.shared_region_frac) as u64;
        let region_lines = total_lines - shared_lines;
        let slice = (region_lines / u64::from(spec.ctas)).max(1);
        let slice_of = |c: u32| shared_lines + u64::from(c) * slice;
        let left = if cta == 0 { spec.ctas - 1 } else { cta - 1 };
        let right = if cta + 1 == spec.ctas { 0 } else { cta + 1 };

        // Warps start phase-shifted through the slice so a CTA's warps
        // cover its slice cooperatively.
        let warp_origin = (u64::from(warp) * slice) / u64::from(spec.warps_per_cta);

        WarpStream {
            rng: Xoshiro256::seeded(&[
                spec.seed,
                u64::from(kernel),
                u64::from(cta),
                u64::from(warp),
            ]),
            remaining: cta_insts(spec, cta),
            emit_mem_next: false,
            shared_lines,
            own_start: slice_of(cta),
            own_lines: slice,
            left_start: slice_of(left),
            right_start: slice_of(right),
            neighbor_lines: slice,
            cursor: warp_origin,
            mem_ratio: spec.mem_ratio,
            write_frac: spec.write_frac,
            streaming: spec.locality.streaming,
            reuse_window: u64::from(spec.locality.reuse_window_lines),
            neighbor_frac: spec.locality.neighbor_frac,
            shared_frac: spec.locality.shared_frac,
            cold_shared_frac: spec.locality.cold_shared_frac,
            footprint_lines: total_lines,
            divergence: spec.locality.divergence,
            pending_gather: 0,
        }
    }

    /// Instructions not yet emitted.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    fn pick_line(&mut self) -> u64 {
        let r = self.rng.next_f64();
        if r < self.shared_frac && self.shared_lines > 0 {
            return self.rng.next_range(self.shared_lines);
        }
        if r < self.shared_frac + self.cold_shared_frac {
            // Cold shared: a uniform gather over the whole footprint —
            // too large to cache, owned by no CTA.
            return self.rng.next_range(self.footprint_lines);
        }
        if r < self.shared_frac + self.cold_shared_frac + self.neighbor_frac {
            // Halo exchange: stencil-style kernels read the region of
            // the *adjacent* CTA that corresponds to their own current
            // sweep position. Because neighbouring CTAs sweep their
            // slices in lockstep, this access lands where the neighbour
            // is working *right now* — the temporal alignment that
            // makes distributed CTA scheduling (§5.2) profitable.
            let base = if self.rng.chance(0.5) {
                self.left_start
            } else {
                self.right_start
            };
            let jitter = self.rng.next_range(64);
            return base + (self.cursor + jitter) % self.neighbor_lines;
        }
        if self.rng.chance(self.streaming) {
            self.cursor = (self.cursor + 1) % self.own_lines;
            self.own_start + self.cursor
        } else {
            let window = self.reuse_window.min(self.own_lines);
            let back = self.rng.next_range(window);
            self.own_start + (self.cursor + self.own_lines - back) % self.own_lines
        }
    }

    /// Emits one memory transaction, arming further gather
    /// transactions when a divergent instruction begins.
    fn emit_access(&mut self) -> WarpOp {
        self.remaining -= 1;
        if self.pending_gather > 0 {
            self.pending_gather -= 1;
        } else if let Some(d) = self.divergence {
            if self.rng.chance(d.frac) {
                self.pending_gather = d.degree - 1;
            }
        }
        let line = self.pick_line();
        let kind = if self.rng.chance(self.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        WarpOp::Access {
            addr: MemAddr::new(line * LINE_BYTES),
            kind,
        }
    }

    fn next_op(&mut self) -> WarpOp {
        if self.pending_gather > 0 {
            // Finish the divergent gather before anything else.
            return self.emit_access();
        }
        if self.emit_mem_next {
            self.emit_mem_next = false;
            return self.emit_access();
        }
        // Compute burst: geometric with success probability `mem_ratio`,
        // so the long-run instruction mix matches the spec.
        let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let burst = if self.mem_ratio >= 1.0 {
            0
        } else {
            (u.ln() / (1.0 - self.mem_ratio).ln()) as u64
        };
        let burst = burst.min(u64::from(self.remaining.saturating_sub(1))) as u32;
        if burst == 0 {
            self.emit_mem_next = false;
            self.emit_access()
        } else {
            self.emit_mem_next = true;
            self.remaining -= burst;
            WarpOp::Compute(burst)
        }
    }
}

impl Iterator for WarpStream {
    type Item = WarpOp;

    fn next(&mut self) -> Option<WarpOp> {
        if self.remaining == 0 {
            None
        } else {
            Some(self.next_op())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LocalityProfile;
    use mcm_mem::addr::LINES_PER_PAGE;

    fn spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::template("t");
        s.insts_per_warp = 2000;
        s
    }

    fn mem_ops(stream: WarpStream) -> Vec<(u64, AccessKind)> {
        stream
            .filter_map(|op| match op {
                WarpOp::Access { addr, kind } => Some((addr.line().index(), kind)),
                WarpOp::Compute(_) => None,
            })
            .collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let s = spec();
        let a: Vec<WarpOp> = WarpStream::new(&s, 1, 5, 2).collect();
        let b: Vec<WarpOp> = WarpStream::new(&s, 1, 5, 2).collect();
        assert_eq!(a, b);
        // A different warp gets a different stream.
        let c: Vec<WarpOp> = WarpStream::new(&s, 1, 5, 3).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn instruction_budget_is_exact() {
        let s = spec();
        let total: u64 = WarpStream::new(&s, 0, 0, 0)
            .map(|op| match op {
                WarpOp::Compute(n) => u64::from(n),
                WarpOp::Access { .. } => 1,
            })
            .sum();
        assert_eq!(total, u64::from(s.insts_per_warp));
    }

    #[test]
    fn mem_ratio_is_respected_in_the_long_run() {
        let mut s = spec();
        s.insts_per_warp = 50_000;
        s.mem_ratio = 0.3;
        let ops: Vec<WarpOp> = WarpStream::new(&s, 0, 0, 0).collect();
        let mem = ops
            .iter()
            .filter(|o| matches!(o, WarpOp::Access { .. }))
            .count() as f64;
        let ratio = mem / f64::from(s.insts_per_warp);
        assert!(
            (ratio - 0.3).abs() < 0.03,
            "observed mem ratio {ratio} far from 0.3"
        );
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut s = spec();
        s.insts_per_warp = 50_000;
        s.write_frac = 0.4;
        let ops = mem_ops(WarpStream::new(&s, 0, 0, 0));
        let writes = ops.iter().filter(|(_, k)| k.is_write()).count() as f64;
        let frac = writes / ops.len() as f64;
        assert!((frac - 0.4).abs() < 0.05, "observed write frac {frac}");
    }

    #[test]
    fn addresses_stay_inside_footprint() {
        let s = spec();
        let max_line = s.footprint_lines();
        for cta in [0u32, 1, 127, 255] {
            for (line, _) in mem_ops(WarpStream::new(&s, 0, cta, 0)) {
                assert!(line < max_line, "line {line} outside footprint");
            }
        }
    }

    #[test]
    fn ctas_mostly_touch_their_own_slice() {
        let mut s = spec();
        s.locality = LocalityProfile {
            streaming: 0.8,
            reuse_window_lines: 256,
            neighbor_frac: 0.1,
            shared_frac: 0.1,
            shared_region_frac: 0.1,
            cold_shared_frac: 0.0,
            divergence: None,
        };
        s.insts_per_warp = 20_000;
        let total = s.footprint_lines();
        let shared = (total as f64 * 0.1) as u64;
        let slice = (total - shared) / u64::from(s.ctas);
        let cta = 100u32;
        let own_start = shared + u64::from(cta) * slice;
        let ops = mem_ops(WarpStream::new(&s, 0, cta, 0));
        let own = ops
            .iter()
            .filter(|(l, _)| (own_start..own_start + slice).contains(l))
            .count() as f64;
        let frac = own / ops.len() as f64;
        assert!(frac > 0.7, "own-slice fraction {frac} too low");
    }

    #[test]
    fn same_cta_same_pages_across_kernels() {
        // The §5.3 cross-kernel property: the set of pages CTA c touches
        // is stable across kernel launches (streams differ but the slice
        // is the same).
        let mut s = spec();
        s.locality.shared_frac = 0.0;
        s.locality.neighbor_frac = 0.0;
        let pages = |kernel: u32| -> std::collections::HashSet<u64> {
            mem_ops(WarpStream::new(&s, kernel, 7, 0))
                .into_iter()
                .map(|(l, _)| l / LINES_PER_PAGE)
                .collect()
        };
        let k0 = pages(0);
        let k1 = pages(1);
        let overlap = k0.intersection(&k1).count() as f64 / k0.len().max(1) as f64;
        assert!(overlap > 0.8, "cross-kernel page overlap {overlap} too low");
    }

    #[test]
    fn imbalance_varies_cta_instruction_counts() {
        let mut s = spec();
        s.imbalance = 0.5;
        let counts: Vec<u32> = (0..16).map(|c| cta_insts(&s, c)).collect();
        assert!(counts.iter().any(|&c| c != counts[0]));
        assert!(counts
            .iter()
            .all(|&c| c >= s.insts_per_warp && c <= (s.insts_per_warp * 3) / 2 + 1));
        // Deterministic.
        assert_eq!(cta_insts(&s, 3), cta_insts(&s, 3));
    }

    #[test]
    fn divergence_raises_memory_transaction_share() {
        let mut coalesced = spec();
        coalesced.insts_per_warp = 20_000;
        let mut divergent = coalesced.clone();
        divergent.locality = divergent.locality.with_divergence(0.5, 4);
        let mem_share = |s: &WorkloadSpec| {
            let ops: Vec<WarpOp> = WarpStream::new(s, 0, 0, 0).collect();
            ops.iter()
                .filter(|o| matches!(o, WarpOp::Access { .. }))
                .count() as f64
                / f64::from(s.insts_per_warp)
        };
        let base = mem_share(&coalesced);
        let div = mem_share(&divergent);
        assert!(
            div > base * 1.5,
            "divergent gathers must multiply memory transactions              ({div:.3} vs {base:.3})"
        );
        // Budget is still exact.
        let total: u64 = WarpStream::new(&divergent, 0, 0, 0)
            .map(|op| match op {
                WarpOp::Compute(n) => u64::from(n),
                WarpOp::Access { .. } => 1,
            })
            .sum();
        assert_eq!(total, u64::from(divergent.insts_per_warp));
    }

    #[test]
    fn divergence_validation() {
        let mut s = spec();
        s.locality = s.locality.with_divergence(0.5, 1);
        assert!(s.validate().is_err(), "degree 1 is not divergent");
        s.locality = s.locality.with_divergence(1.5, 4);
        assert!(s.validate().is_err());
        s.locality = s.locality.with_divergence(0.3, 8);
        assert!(s.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "CTA index out of range")]
    fn cta_out_of_range_panics() {
        let s = spec();
        WarpStream::new(&s, 0, s.ctas, 0);
    }
}
