//! Extension ablation: CTA scheduler granularity + dynamic stealing
//! (§5.4 future work). Honors `MCM_SCALE`.
fn main() {
    let _telemetry = mcm_bench::harness::telemetry_guard();
    let mut memo = mcm_bench::harness::Memo::from_env();
    println!("{}", mcm_bench::figures::ablation_scheduler(&mut memo));
}
