//! Stall-attribution profiler: runs one (workload, configuration) pair
//! and prints where every warp-cycle went — the measured analogue of
//! the paper's Fig. 16 decomposition.
//!
//! Usage: `profile [WORKLOAD] [CONFIG]` (defaults: `CFD` on
//! `optimized`). Honors `MCM_SCALE` (default 0.5), the observability
//! variables `MCM_TRACE` / `MCM_METRICS` / `MCM_METRICS_BUCKET` (see
//! the README's Observability section), and the fault knobs
//! `MCM_FAULT_RATE` / `MCM_FAULT_SEED` (see the Resilience section) —
//! useful for seeing where a degraded machine's warp-cycles go.

use std::path::PathBuf;

use mcm_bench::harness::{self, TextTable};
use mcm_gpu::SystemConfig;
use mcm_probe::{ChromeTraceProbe, MetricsProbe, StallProfile};
use mcm_workloads::suite;

const CONFIG_KEYS: &[&str] = &[
    "baseline",
    "optimized",
    "l15-ds",
    "mono128",
    "mono256",
    "multi-gpu",
];

fn config_by_key(key: &str) -> Option<SystemConfig> {
    Some(match key {
        "baseline" => SystemConfig::baseline_mcm(),
        "optimized" => SystemConfig::optimized_mcm(),
        "l15-ds" => SystemConfig::mcm_l15_ds(),
        "mono128" => SystemConfig::largest_buildable_monolithic(),
        "mono256" => SystemConfig::hypothetical_monolithic_256(),
        "multi-gpu" => SystemConfig::multi_gpu_baseline(),
        _ => return None,
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let wname = args.next().unwrap_or_else(|| "CFD".into());
    let ckey = args.next().unwrap_or_else(|| "optimized".into());
    let Some(spec) = suite::by_name(&wname) else {
        let names: Vec<&str> = suite::suite().iter().map(|w| w.name).collect();
        eprintln!("unknown workload '{wname}'; one of: {}", names.join(", "));
        std::process::exit(2);
    };
    let Some(cfg) = config_by_key(&ckey) else {
        eprintln!(
            "unknown config '{ckey}'; one of: {}",
            CONFIG_KEYS.join(", ")
        );
        std::process::exit(2);
    };
    let _telemetry = harness::telemetry_guard();
    let spec = spec.scaled(harness::scale());

    let trace_dir = std::env::var_os("MCM_TRACE").map(PathBuf::from);
    let metrics_dir = std::env::var_os("MCM_METRICS").map(PathBuf::from);
    let mut probe = (
        StallProfile::new(),
        (
            trace_dir.as_ref().map(|_| ChromeTraceProbe::new()),
            metrics_dir
                .as_ref()
                .map(|_| MetricsProbe::new(harness::metrics_bucket(), cfg.topology.sms_per_module)),
        ),
    );
    let report = harness::run_probed_env_faults(&cfg, &spec, &mut probe);
    let (profile, (mut trace, metrics)) = probe;

    let stem = harness::artifact_stem(&cfg, &spec);
    if let (Some(dir), Some(trace)) = (&trace_dir, &mut trace) {
        std::fs::create_dir_all(dir).expect("create MCM_TRACE directory");
        let path = dir.join(format!("{stem}.trace.json"));
        trace.save(&path).expect("write Chrome trace");
        println!("trace:   {}", path.display());
    }
    if let (Some(dir), Some(metrics)) = (&metrics_dir, &metrics) {
        std::fs::create_dir_all(dir).expect("create MCM_METRICS directory");
        let path = dir.join(format!("{stem}.metrics.csv"));
        metrics.save(&path).expect("write metrics CSV");
        println!("metrics: {}", path.display());
    }

    println!(
        "{} on {}: {}, {} warps ({} retired)\n",
        report.workload,
        report.config,
        report.cycles,
        profile.warps_spawned(),
        profile.warps_retired()
    );
    let total = profile.total_warp_cycles();
    let max = profile.phases().map(|(_, c)| c).max().unwrap_or(0);
    let mut table = TextTable::new(vec!["phase", "warp-cycles", "share", ""]);
    for (phase, cycles) in profile.phases() {
        table.row(vec![
            phase.label().to_string(),
            cycles.to_string(),
            format!("{:5.1}%", 100.0 * profile.fraction(phase)),
            harness::bar(cycles as f64, max as f64, 30),
        ]);
    }
    table.row(vec![
        "total".to_string(),
        total.to_string(),
        "100.0%".to_string(),
        String::new(),
    ]);
    print!("{}", table.render());
}
