//! Deterministic disk- and task-level fault injection for the
//! crash-safety test suites.
//!
//! The runtime fault plans in the crate root perturb the *simulated*
//! machine. This module instead perturbs the *harness* — the layer the
//! persistent result store and the supervised executor defend:
//!
//! * [`DiskFaultInjector`] — seeded file corruption (torn-tail
//!   truncation, single-bit flips) driven by the simulator's own
//!   [`Xoshiro256`], so a corruption matrix replays byte-for-byte from
//!   its seed.
//! * [`scripted_task_panic`] — environment-scripted worker panics
//!   (`MCM_FAULT_TASK_PANIC=<workload>`, with
//!   `MCM_FAULT_TASK_PANIC_ATTEMPTS=<n>` bounding how many attempts per
//!   pair fail before succeeding), the deterministic stand-in for a
//!   crashing simulation that the supervised executor retries and
//!   quarantines.

use std::collections::HashMap;
use std::io;
use std::ops::Range;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use mcm_engine::rng::Xoshiro256;

/// Seeded, replayable corruption of on-disk files. Every decision is a
/// pure function of the constructor seed and the call sequence, so a
/// test that fails can be re-run bit-identically from its seed alone.
#[derive(Debug)]
pub struct DiskFaultInjector {
    rng: Xoshiro256,
}

impl DiskFaultInjector {
    /// Creates an injector whose decisions derive from `seed`.
    pub fn new(seed: u64) -> DiskFaultInjector {
        DiskFaultInjector {
            rng: Xoshiro256::new(seed),
        }
    }

    /// Truncates `path` to a seeded length in `[min_keep, len - 1]` —
    /// a torn tail, as left by power loss mid-append. Returns the new
    /// length.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be read or truncated.
    ///
    /// # Panics
    ///
    /// Panics when the file is not longer than `min_keep` — there would
    /// be nothing to tear, and the test asking for it is broken.
    pub fn truncate_tail(&mut self, path: &Path, min_keep: usize) -> io::Result<u64> {
        let len = std::fs::metadata(path)?.len();
        assert!(
            len > min_keep as u64,
            "cannot tear {}: {len} bytes <= min_keep {min_keep}",
            path.display()
        );
        let keep = min_keep as u64 + self.rng.next_range(len - min_keep as u64);
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(keep)?;
        f.sync_all()?;
        Ok(keep)
    }

    /// Flips one seeded bit of one seeded byte inside `offsets` (a
    /// byte-offset range of the file). Returns `(offset, mask)` so the
    /// test can assert on — or undo — the exact damage.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be read or written.
    ///
    /// # Panics
    ///
    /// Panics when `offsets` is empty or reaches past the end of the
    /// file.
    pub fn flip_bit(&mut self, path: &Path, offsets: Range<usize>) -> io::Result<(usize, u8)> {
        let mut bytes = std::fs::read(path)?;
        assert!(
            !offsets.is_empty() && offsets.end <= bytes.len(),
            "bad flip range {offsets:?} for {} ({} bytes)",
            path.display(),
            bytes.len()
        );
        let offset =
            offsets.start + self.rng.next_range((offsets.end - offsets.start) as u64) as usize;
        let mask = 1u8 << self.rng.next_range(8);
        bytes[offset] ^= mask;
        std::fs::write(path, &bytes)?;
        Ok((offset, mask))
    }
}

/// How many scripted panics each `(config, workload)` pair has thrown
/// so far, process-wide. Keyed by name pair; the supervised executor
/// retries on the same worker, so the counter sequences identically at
/// any job count.
fn attempt_counts() -> &'static Mutex<HashMap<(String, String), u64>> {
    static COUNTS: OnceLock<Mutex<HashMap<(String, String), u64>>> = OnceLock::new();
    COUNTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The environment-scripted worker fault: panics when simulating
/// workload `MCM_FAULT_TASK_PANIC` (exact name match), at most
/// `MCM_FAULT_TASK_PANIC_ATTEMPTS` times per `(config, workload)` pair
/// (default: every attempt). With an attempt bound of 1 and one
/// supervised retry, a sweep completes with byte-identical output plus
/// a retry notice — the tier-1 self-healing smoke. Harness runners
/// call this at the top of every simulation; with the variable unset
/// it is a no-op.
///
/// # Panics
///
/// Panics (that is the point) for the scripted pair while its attempt
/// budget lasts, naming the pair; also panics when
/// `MCM_FAULT_TASK_PANIC_ATTEMPTS` is set but unparsable.
pub fn scripted_task_panic(config: &str, workload: &str) {
    let Ok(target) = std::env::var("MCM_FAULT_TASK_PANIC") else {
        return;
    };
    if workload != target {
        return;
    }
    let budget: u64 = match std::env::var("MCM_FAULT_TASK_PANIC_ATTEMPTS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
            panic!("MCM_FAULT_TASK_PANIC_ATTEMPTS must be a non-negative integer, got {raw:?}")
        }),
        Err(_) => u64::MAX,
    };
    let mut counts = attempt_counts().lock().expect("attempt counter poisoned");
    let n = counts
        .entry((config.to_string(), workload.to_string()))
        .or_insert(0);
    if *n < budget {
        *n += 1;
        let attempt = *n;
        drop(counts);
        panic!(
            "scripted fault (MCM_FAULT_TASK_PANIC): ({config:?}, {workload:?}) attempt {attempt}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_file(tag: &str, content: &[u8]) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mcm-inject-test-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn truncation_is_seeded_and_bounded() {
        let content = vec![7u8; 100];
        let a = temp_file("trunc-a", &content);
        let b = temp_file("trunc-b", &content);
        let la = DiskFaultInjector::new(42).truncate_tail(&a, 10).unwrap();
        let lb = DiskFaultInjector::new(42).truncate_tail(&b, 10).unwrap();
        assert_eq!(la, lb, "same seed, same tear");
        assert!((10..100).contains(&la));
        assert_eq!(std::fs::metadata(&a).unwrap().len(), la);
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn bit_flip_is_seeded_and_in_range() {
        let content: Vec<u8> = (0..64).collect();
        let a = temp_file("flip-a", &content);
        let b = temp_file("flip-b", &content);
        let (off_a, mask_a) = DiskFaultInjector::new(7).flip_bit(&a, 16..32).unwrap();
        let (off_b, mask_b) = DiskFaultInjector::new(7).flip_bit(&b, 16..32).unwrap();
        assert_eq!((off_a, mask_a), (off_b, mask_b));
        assert!((16..32).contains(&off_a));
        assert_eq!(mask_a.count_ones(), 1);
        let damaged = std::fs::read(&a).unwrap();
        assert_eq!(damaged[off_a], content[off_a] ^ mask_a);
        // Exactly one byte differs.
        let diffs = damaged.iter().zip(&content).filter(|(x, y)| x != y).count();
        assert_eq!(diffs, 1);
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn different_seeds_diverge() {
        let content = vec![0u8; 4096];
        let a = temp_file("seed-a", &content);
        let b = temp_file("seed-b", &content);
        let fa = DiskFaultInjector::new(1).flip_bit(&a, 0..4096).unwrap();
        let fb = DiskFaultInjector::new(2).flip_bit(&b, 0..4096).unwrap();
        assert_ne!(fa, fb, "distinct seeds must corrupt differently");
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn scripted_panic_is_inert_when_unset() {
        // The test process does not set MCM_FAULT_TASK_PANIC, so this
        // must be a no-op for any pair.
        scripted_task_panic("any config", "any workload");
    }
}
